// Common-centroid placement and Fig. 3 area model tests.

#include <gtest/gtest.h>

#include "common/error.h"
#include "layout/area.h"
#include "layout/common_centroid.h"
#include "monitor/table1.h"

namespace xysig::layout {
namespace {

TEST(CommonCentroid, MonitorArrayEightDevicesSplitByFour) {
    // The paper's layout: 8 transistors split into 4 units each (Fig. 3).
    const Placement p = common_centroid_place(8, 4, 4);
    EXPECT_EQ(p.rows(), 4u);
    EXPECT_EQ(p.cols(), 8u);
    for (int d = 0; d < 8; ++d) {
        EXPECT_EQ(p.unit_count(d), 4u) << "device " << d;
        EXPECT_NEAR(p.centroid_error(d), 0.0, 1e-12) << "device " << d;
    }
    EXPECT_TRUE(p.is_common_centroid());
}

TEST(CommonCentroid, TwoDeviceDifferentialPair) {
    const Placement p = common_centroid_place(2, 2, 2);
    EXPECT_TRUE(p.is_common_centroid());
    EXPECT_EQ(p.unit_count(0), 2u);
    EXPECT_EQ(p.unit_count(1), 2u);
}

TEST(CommonCentroid, SpareCellsBecomeSymmetricDummies) {
    // 3 devices x 2 units = 6 units on a 4x2 grid: 2 dummies.
    const Placement p = common_centroid_place(3, 2, 4);
    EXPECT_EQ(p.rows() * p.cols() - 6u, p.unit_count(-1));
    EXPECT_TRUE(p.is_common_centroid());
    // Dummies are centrally symmetric too: treat them as a pseudo-device.
    double sum_r = 0.0, sum_c = 0.0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < p.rows(); ++r)
        for (std::size_t c = 0; c < p.cols(); ++c)
            if (p.device_at(r, c) == -1) {
                sum_r += static_cast<double>(r);
                sum_c += static_cast<double>(c);
                ++n;
            }
    ASSERT_GT(n, 0u);
    EXPECT_NEAR(sum_r / static_cast<double>(n),
                (static_cast<double>(p.rows()) - 1.0) / 2.0, 1e-12);
    EXPECT_NEAR(sum_c / static_cast<double>(n),
                (static_cast<double>(p.cols()) - 1.0) / 2.0, 1e-12);
}

TEST(CommonCentroid, OddUnitCountRejected) {
    EXPECT_THROW((void)common_centroid_place(4, 3, 2), ContractError);
}

TEST(CommonCentroid, DispersionBeatsClumpedPlacement) {
    // The generator interleaves devices; a clumped layout (all of device 0
    // in the top-left corner) has both a centroid error and worse
    // gradient-averaging. Compare dispersion against such a layout.
    const Placement good = common_centroid_place(2, 4, 2);
    Placement clumped(2, 4);
    clumped.set_device(0, 0, 0);
    clumped.set_device(0, 1, 0);
    clumped.set_device(0, 2, 0);
    clumped.set_device(0, 3, 0);
    clumped.set_device(1, 0, 1);
    clumped.set_device(1, 1, 1);
    clumped.set_device(1, 2, 1);
    clumped.set_device(1, 3, 1);
    EXPECT_TRUE(good.is_common_centroid());
    EXPECT_FALSE(clumped.is_common_centroid());
}

TEST(AreaModel, CoreMatchesPaperDimensions) {
    // Paper Fig. 3: 53.54 um^2 core, 11.64 um x 4.6 um.
    const auto cfg = monitor::table1_config(1); // the wide-device config
    const AreaReport core = monitor_core_area(cfg, 2e-6);
    EXPECT_NEAR(core.area_um2(), 53.54, 0.15 * 53.54);
    EXPECT_NEAR(core.width_um(), 11.64, 0.15 * 11.64);
    EXPECT_NEAR(core.height_um(), 4.6, 0.15 * 4.6);
}

TEST(AreaModel, TotalMatchesPaperWithOutputStage) {
    const auto cfg = monitor::table1_config(1);
    const AreaReport total = monitor_total_area(cfg, 2e-6);
    EXPECT_NEAR(total.area * 1e12, 116.1, 0.15 * 116.1);
}

TEST(AreaModel, AreaGrowsWithDeviceWidth) {
    auto cfg = monitor::table1_config(1);
    const AreaReport base = monitor_core_area(cfg, 2e-6);
    for (auto& leg : cfg.legs)
        leg.width *= 2.0;
    const AreaReport bigger = monitor_core_area(cfg, 2e-6);
    EXPECT_GT(bigger.area, base.area);
}

TEST(AreaModel, RejectsInvalidParameters) {
    const auto cfg = monitor::table1_config(1);
    EXPECT_THROW((void)monitor_core_area(cfg, 0.0), ContractError);
    EXPECT_THROW((void)monitor_core_area(cfg, 2e-6, {}, 0), ContractError);
}

} // namespace
} // namespace xysig::layout
