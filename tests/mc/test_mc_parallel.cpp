// Parallel Monte-Carlo engine: results must be byte-identical to the
// serial path for the same seed, whatever the worker count.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mc/monte_carlo.h"

namespace xysig::mc {
namespace {

TEST(RunMonteCarloParallel, BitIdenticalToSerial) {
    // The observable consumes a sample-dependent number of draws, so any
    // stream-sharing bug between workers would shift the outputs.
    const auto fn = [](Rng& rng) {
        const int extra = static_cast<int>(rng.uniform_int(0, 7));
        double acc = rng.normal(0.0, 1.0);
        for (int i = 0; i < extra; ++i)
            acc += rng.uniform(-1.0, 1.0);
        return acc;
    };
    const auto serial = run_monte_carlo(500, 20260730, fn);
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        const auto parallel = run_monte_carlo_parallel(500, 20260730, fn, threads);
        EXPECT_EQ(serial, parallel) << "threads = " << threads;
    }
}

TEST(RunMonteCarloParallel, DifferentSeedsStillDiffer) {
    const auto fn = [](Rng& rng) { return rng.normal(0.0, 1.0); };
    EXPECT_NE(run_monte_carlo_parallel(64, 1, fn, 4),
              run_monte_carlo_parallel(64, 2, fn, 4));
}

TEST(MonteCarloEnvelopeParallel, BitIdenticalToSerial) {
    const std::vector<double> xs = {0.0, 0.5, 1.0, 1.5, 2.0};
    const auto curve_fn = [](Rng& rng, const std::vector<double>& grid) {
        const double gain = rng.normal(1.0, 0.1);
        const double offset = rng.uniform(-0.5, 0.5);
        std::vector<double> ys;
        ys.reserve(grid.size());
        for (const double x : grid)
            ys.push_back(gain * x + offset + (x > 1.5 && rng.bernoulli(0.25)
                                                  ? std::nan("")
                                                  : 0.0));
        return ys;
    };
    const CurveEnvelope serial = monte_carlo_envelope(200, 42, xs, curve_fn);
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        const CurveEnvelope parallel =
            monte_carlo_envelope_parallel(200, 42, xs, curve_fn, threads);
        EXPECT_EQ(serial.xs, parallel.xs);
        for (std::size_t j = 0; j < xs.size(); ++j) {
            EXPECT_DOUBLE_EQ(serial.p05[j], parallel.p05[j]);
            EXPECT_DOUBLE_EQ(serial.p50[j], parallel.p50[j]);
            EXPECT_DOUBLE_EQ(serial.p95[j], parallel.p95[j]);
            EXPECT_DOUBLE_EQ(serial.lo[j], parallel.lo[j]);
            EXPECT_DOUBLE_EQ(serial.hi[j], parallel.hi[j]);
        }
    }
}

TEST(MonteCarloEnvelopeParallel, RepeatedRunsAreStable) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const auto curve_fn = [](Rng& rng, const std::vector<double>& grid) {
        std::vector<double> ys;
        for (const double x : grid)
            ys.push_back(x * rng.normal(1.0, 0.2));
        return ys;
    };
    const auto a = monte_carlo_envelope_parallel(100, 7, xs, curve_fn, 4);
    const auto b = monte_carlo_envelope_parallel(100, 7, xs, curve_fn, 4);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
}

} // namespace
} // namespace xysig::mc
