// Monte-Carlo engine, mismatch model and envelope tests.

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/statistics.h"
#include "mc/mismatch.h"
#include "mc/monte_carlo.h"

namespace xysig::mc {
namespace {

TEST(RunMonteCarlo, DeterministicInSeed) {
    const auto fn = [](Rng& rng) { return rng.normal(0.0, 1.0); };
    const auto a = run_monte_carlo(50, 123, fn);
    const auto b = run_monte_carlo(50, 123, fn);
    EXPECT_EQ(a, b);
    const auto c = run_monte_carlo(50, 124, fn);
    EXPECT_NE(a, c);
}

TEST(RunMonteCarlo, SamplesAreIndependentStreams) {
    // Each sample forks its own stream: consuming more draws inside one
    // sample must not change the others.
    const auto one_draw = [](Rng& rng) { return rng.uniform(); };
    const auto two_draws = [](Rng& rng) {
        (void)rng.uniform();
        return rng.uniform();
    };
    const auto a = run_monte_carlo(10, 5, one_draw);
    const auto b = run_monte_carlo(10, 5, two_draws);
    // First draws of each sample's stream coincide for a:
    // different draw *within* the stream for b, but stream seeds match, so
    // sample 0 of both used the same stream.
    EXPECT_NE(a[0], b[0]);
    // Determinism of the fork sequence:
    const auto a2 = run_monte_carlo(10, 5, one_draw);
    EXPECT_EQ(a, a2);
}

TEST(Pelgrom, SigmaScalesInverseSqrtArea) {
    const PelgromModel m;
    const double s1 = m.sigma_vt(1e-6, 180e-9);
    const double s4 = m.sigma_vt(4e-6, 180e-9); // 4x area
    EXPECT_NEAR(s1 / s4, 2.0, 1e-12);
    EXPECT_GT(s1, 0.0);
}

TEST(Pelgrom, MagnitudeIsMillivoltsFor65nmDevices) {
    const PelgromModel m;
    // W = 1.8 um, L = 180 nm: sigma(Vt) should be single-digit mV.
    const double s = m.sigma_vt(1.8e-6, 180e-9);
    EXPECT_GT(s, 1e-3);
    EXPECT_LT(s, 20e-3);
}

TEST(ProcessSample, ZeroSpreadIsIdentity) {
    ProcessVariation pv;
    pv.sigma_vt0 = 0.0;
    pv.sigma_kp_rel = 0.0;
    Rng rng(1);
    const ProcessSample s = sample_process(pv, rng);
    EXPECT_DOUBLE_EQ(s.delta_vt0, 0.0);
    EXPECT_DOUBLE_EQ(s.kp_scale, 1.0);
}

TEST(ProcessSample, KpScaleGuarded) {
    ProcessVariation pv;
    pv.sigma_kp_rel = 10.0; // absurd spread to hit the guard
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(sample_process(pv, rng).kp_scale, 0.5);
}

TEST(Envelope, PercentilesAreOrdered) {
    const auto curve_fn = [](Rng& rng, const std::vector<double>& xs) {
        const double offset = rng.normal(0.0, 1.0);
        std::vector<double> ys;
        ys.reserve(xs.size());
        for (double x : xs)
            ys.push_back(x + offset);
        return ys;
    };
    const auto env = monte_carlo_envelope(100, 42, {0.0, 1.0, 2.0}, curve_fn);
    for (std::size_t i = 0; i < env.xs.size(); ++i) {
        EXPECT_LE(env.lo[i], env.p05[i]);
        EXPECT_LE(env.p05[i], env.p50[i]);
        EXPECT_LE(env.p50[i], env.p95[i]);
        EXPECT_LE(env.p95[i], env.hi[i]);
    }
}

TEST(Envelope, ContainsNominalCurve) {
    const auto curve_fn = [](Rng& rng, const std::vector<double>& xs) {
        const double offset = rng.normal(0.0, 0.1);
        std::vector<double> ys;
        for (double x : xs)
            ys.push_back(2.0 * x + offset);
        return ys;
    };
    const auto env = monte_carlo_envelope(200, 9, {0.0, 0.5, 1.0}, curve_fn);
    const std::vector<double> nominal = {0.0, 1.0, 2.0};
    EXPECT_TRUE(env.contains(nominal));
    const std::vector<double> off = {1.0, 2.0, 3.0};
    EXPECT_FALSE(env.contains(off));
}

TEST(Envelope, NanValuesExcludedFromStatistics) {
    const auto curve_fn = [](Rng& rng, const std::vector<double>& xs) {
        std::vector<double> ys;
        for (double x : xs) {
            // Half the curves have no value at x = 1.
            if (x == 1.0 && rng.bernoulli(0.5))
                ys.push_back(std::nan(""));
            else
                ys.push_back(x);
        }
        return ys;
    };
    const auto env = monte_carlo_envelope(100, 17, {0.0, 1.0}, curve_fn);
    EXPECT_NEAR(env.p50[1], 1.0, 1e-12); // finite curves dominate the stats
}

TEST(Envelope, MismatchedCurveLengthIsError) {
    const auto bad_fn = [](Rng&, const std::vector<double>&) {
        return std::vector<double>{1.0};
    };
    EXPECT_THROW((void)monte_carlo_envelope(10, 1, {0.0, 1.0}, bad_fn),
                 ContractError);
}

} // namespace
} // namespace xysig::mc
