// The stimulus trace cache: one sampling per job, exact keying, and safe
// concurrent reuse.
//
// The misses() counter is the sampling-count probe — every actual stimulus
// sampling performed through the cache is exactly one miss, so "a whole
// behavioural job costs one sampling" is assertable as misses() == 1
// across pipeline construction plus any number of member evaluations at
// any thread count. Keys are exact hexfloat fingerprints: a stimulus
// differing in a single phase bit, a different samples_per_period, or the
// other sampling mode can never alias. The concurrency test runs a
// SweepService worker pool over the one shared immutable trace (the TSan
// CI lane executes this file under ThreadSanitizer).

#include "core/trace_cache.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "filter/cut.h"
#include "monitor/table1.h"
#include "server/sweep_service.h"

namespace xysig {
namespace {

using core::StimulusTraceCache;

/// Every test starts from an empty cache with zeroed counters so the
/// misses() probe counts only its own samplings; capacity is restored in
/// case an LRU test shrank it.
class TraceCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        StimulusTraceCache::instance().set_capacity(
            StimulusTraceCache::kDefaultCapacity);
        StimulusTraceCache::instance().clear();
    }
};

core::SignaturePipeline make_pipeline(bool fast_math = false,
                                      std::size_t spp = 1024) {
    core::PipelineOptions opts;
    opts.samples_per_period = spp;
    opts.fast_math = fast_math;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

/// A behavioural-shaped member with no stable solution: claims the
/// x-is-stimulus capability (so it rides the shared trace) but every
/// evaluation diverges — the NaN member of a catastrophic universe.
class DivergingCut final : public filter::Cut {
public:
    [[nodiscard]] XyTrace respond(const MultitoneWaveform&,
                                  std::size_t) const override {
        throw NumericError("diverging member has no steady state");
    }
    [[nodiscard]] bool x_is_stimulus() const noexcept override { return true; }
    void respond_y_into(const MultitoneWaveform&, std::size_t,
                        std::vector<double>&, double&,
                        SampleMode) const override {
        throw NumericError("diverging member has no steady state");
    }
    [[nodiscard]] std::string description() const override {
        return "diverging";
    }
};

TEST_F(TraceCacheTest, PipelineSamplesStimulusExactlyOnce) {
    const core::SignaturePipeline pipeline = make_pipeline();
    auto& cache = StimulusTraceCache::instance();
    EXPECT_EQ(cache.misses(), 1u);
    ASSERT_NE(pipeline.stimulus_trace(), nullptr);
    ASSERT_EQ(pipeline.stimulus_trace()->size(), 1024u);

    // The shared trace is bit-identical to sampling directly.
    std::vector<double> reference;
    SampledSignal::sample_waveform_into(pipeline.stimulus(), 0.0,
                                        pipeline.stimulus().period(), 1024,
                                        reference);
    for (std::size_t i = 0; i < reference.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint64_t>((*pipeline.stimulus_trace())[i]),
                  std::bit_cast<std::uint64_t>(reference[i]))
            << "sample " << i;
}

TEST_F(TraceCacheTest, WholeBehaviouralJobCostsOneSampling) {
    core::SignaturePipeline pipeline = make_pipeline();
    pipeline.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    auto& cache = StimulusTraceCache::instance();
    ASSERT_EQ(cache.misses(), 1u);

    std::vector<double> deviations;
    for (int d = -12; d <= 12; ++d)
        deviations.push_back(d);
    const core::BatchNdfEvaluator batch(pipeline, {.threads = 3});
    const std::vector<double> ndfs =
        batch.evaluate_deviations(core::paper_biquad(), deviations);
    ASSERT_EQ(ndfs.size(), deviations.size());

    // members x samples stimulus sine evaluations eliminated: the whole
    // job performed exactly the one sampling from construction.
    EXPECT_EQ(cache.misses(), 1u);

    // And sharing did not change a single bit vs the serial reference.
    core::NdfScratch scratch;
    for (std::size_t i = 0; i < deviations.size(); ++i) {
        const filter::BehaviouralCut cut(
            core::paper_biquad().with_f0_shift(deviations[i] / 100.0));
        ASSERT_EQ(ndfs[i], pipeline.ndf_of(cut, scratch)) << "member " << i;
    }
}

TEST_F(TraceCacheTest, PhaseOnlyDifferenceNeverAliases) {
    const MultitoneWaveform base = core::paper_stimulus();
    std::vector<Tone> tones = base.tones();
    ASSERT_FALSE(tones.empty());
    // The smallest representable phase perturbation: one bit.
    tones[0].phase_rad = std::nextafter(tones[0].phase_rad, 1e9);
    const MultitoneWaveform perturbed(base.offset(), tones);

    const std::string key_a =
        core::stimulus_trace_key(base, 1024, SampleMode::exact);
    const std::string key_b =
        core::stimulus_trace_key(perturbed, 1024, SampleMode::exact);
    EXPECT_NE(key_a, key_b);

    // Mode and samples_per_period are part of the key as well.
    EXPECT_NE(key_a, core::stimulus_trace_key(base, 2048, SampleMode::exact));
    EXPECT_NE(key_a, core::stimulus_trace_key(base, 1024, SampleMode::fast_math));

    auto& cache = StimulusTraceCache::instance();
    const core::SignaturePipeline a(monitor::build_table1_bank(), base,
                                    {.samples_per_period = 1024});
    const core::SignaturePipeline b(monitor::build_table1_bank(), perturbed,
                                    {.samples_per_period = 1024});
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(a.stimulus_trace().get(), b.stimulus_trace().get());
}

TEST_F(TraceCacheTest, FastAndExactModesAreDistinctEntries) {
    core::SignaturePipeline pipeline = make_pipeline(false);
    auto& cache = StimulusTraceCache::instance();
    ASSERT_EQ(cache.misses(), 1u);

    pipeline.set_fast_math(true); // second mode -> second sampling
    EXPECT_EQ(cache.misses(), 2u);
    pipeline.set_fast_math(false); // back to the retained exact entry
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_GE(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(TraceCacheTest, NanMembersLeaveSharingIntact) {
    core::SignaturePipeline pipeline = make_pipeline();
    const filter::BehaviouralCut golden(core::paper_biquad());
    pipeline.set_golden(golden);
    auto& cache = StimulusTraceCache::instance();
    ASSERT_EQ(cache.misses(), 1u);

    const filter::BehaviouralCut good_a(core::paper_biquad().with_f0_shift(0.1));
    const filter::BehaviouralCut good_b(core::paper_biquad().with_f0_shift(-0.1));
    const DivergingCut bad;
    const std::vector<const filter::Cut*> universe = {&good_a, &bad, &good_b};

    const core::BatchNdfEvaluator batch(
        pipeline, {.threads = 2, .nan_on_numeric_error = true});
    const std::vector<double> ndfs = batch.evaluate(universe);
    ASSERT_EQ(ndfs.size(), 3u);
    EXPECT_TRUE(std::isnan(ndfs[1]));

    // The diverging member neither re-sampled nor corrupted the shared
    // trace: still one sampling, and its neighbours match the serial path.
    EXPECT_EQ(cache.misses(), 1u);
    core::NdfScratch scratch;
    EXPECT_EQ(ndfs[0], pipeline.ndf_of(good_a, scratch));
    EXPECT_EQ(ndfs[2], pipeline.ndf_of(good_b, scratch));
}

TEST_F(TraceCacheTest, SweepServiceWorkersShareOneTrace) {
    // Four workers, small shards: every worker touches the shared
    // immutable buffer concurrently (the TSan lane runs this file).
    server::SweepService service(make_pipeline(),
                                 {.workers = 4, .shard_size = 4});
    auto& cache = StimulusTraceCache::instance();
    ASSERT_EQ(cache.misses(), 1u);

    std::vector<double> deviations;
    for (int d = -30; d < 30; ++d)
        deviations.push_back(static_cast<double>(d) / 2.0);
    server::SweepJob job =
        server::SweepJob::deviation_grid(core::paper_biquad(), deviations);

    std::vector<double> streamed;
    const server::JobSummary summary = service.run(
        job, [&](const server::SweepResult& r) { streamed.push_back(r.ndf); });
    ASSERT_EQ(summary.members_done, deviations.size());
    EXPECT_EQ(cache.misses(), 1u) << "workers must not re-sample the stimulus";

    // A fast_math job needs (and gets) its own trace entry; flipping back
    // is a hit, not a third sampling.
    job.fast_math = true;
    std::vector<double> fast_streamed;
    (void)service.run(job, [&](const server::SweepResult& r) {
        fast_streamed.push_back(r.ndf);
    });
    EXPECT_EQ(cache.misses(), 2u);
    job.fast_math = false;
    (void)service.run(job, [](const server::SweepResult&) {});
    EXPECT_EQ(cache.misses(), 2u);

    // Same job, same mode: bit-identical to the serial batch engine.
    core::SignaturePipeline serial = make_pipeline();
    serial.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const core::BatchNdfEvaluator batch(serial, {.threads = 1});
    const std::vector<double> reference =
        batch.evaluate_deviations(core::paper_biquad(), deviations);
    ASSERT_EQ(streamed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        ASSERT_EQ(streamed[i], reference[i]) << "member " << i;
}

TEST_F(TraceCacheTest, LruEvictionAndSharedPtrKeepAlive) {
    auto& cache = StimulusTraceCache::instance();
    cache.set_capacity(2);
    EXPECT_EQ(cache.capacity(), 2u);

    const auto make = [](double v) {
        return [v] { return std::vector<double>(8, v); };
    };
    const auto first = cache.find_or_compute("k1", make(1.0));
    (void)cache.find_or_compute("k2", make(2.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    // Third key evicts the LRU entry (k1) — but the returned shared_ptr
    // keeps the evicted trace alive and intact for existing holders.
    (void)cache.find_or_compute("k3", make(3.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    ASSERT_EQ(first->size(), 8u);
    EXPECT_EQ((*first)[0], 1.0);

    // Re-fetching the evicted key is a genuine recompute (a miss).
    const std::size_t misses_before = cache.misses();
    (void)cache.find_or_compute("k1", make(1.0));
    EXPECT_EQ(cache.misses(), misses_before + 1);

    // Touching k2 refreshes its recency: the next insert evicts k1 again,
    // not k2.
    (void)cache.find_or_compute("k2", make(2.0));
    (void)cache.find_or_compute("k4", make(4.0));
    const std::size_t misses_k2 = cache.misses();
    (void)cache.find_or_compute("k2", make(2.0));
    EXPECT_EQ(cache.misses(), misses_k2) << "k2 should have survived";

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    cache.set_capacity(StimulusTraceCache::kDefaultCapacity);
}

} // namespace
} // namespace xysig
