// End-to-end pipeline tests on the paper's reference setup, including the
// golden-signature cache semantics of set_golden.

#include "core/pipeline.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/golden_cache.h"
#include "core/paper_setup.h"
#include "monitor/table1.h"
#include "spice/elements.h"

namespace xysig::core {
namespace {

SignaturePipeline make_pipeline(PipelineOptions opts = {}) {
    opts.samples_per_period =
        opts.samples_per_period == 8192 ? 4096 : opts.samples_per_period;
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(), opts);
}

TEST(Pipeline, GoldenAgainstItselfIsZero) {
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(paper_biquad());
    pipe.set_golden(golden);
    EXPECT_DOUBLE_EQ(pipe.ndf_of(golden), 0.0);
}

TEST(Pipeline, RequiresGoldenBeforeNdf) {
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut cut(paper_biquad());
    EXPECT_THROW((void)pipe.ndf_of(cut), ContractError);
}

TEST(Pipeline, TenPercentShiftLandsNearPaperValue) {
    // Paper Fig. 7: NDF = 0.1021 for +10% f0. Our calibrated setup lands in
    // the same region (the paper fixes the geometry only graphically).
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    const filter::BehaviouralCut defective(paper_biquad().with_f0_shift(0.10));
    const double v = pipe.ndf_of(defective);
    EXPECT_GT(v, 0.06);
    EXPECT_LT(v, 0.14);
}

TEST(Pipeline, ChronogramVisitsPaperZoneCount) {
    // Fig. 7 shows the golden trace visiting on the order of 15-20 zones per
    // period (16 distinct codes exist, some visited twice).
    SignaturePipeline pipe = make_pipeline();
    const auto ch = pipe.chronogram(filter::BehaviouralCut(paper_biquad()));
    EXPECT_GE(ch.zone_visits(), 10u);
    EXPECT_LE(ch.zone_visits(), 30u);
    EXPECT_NEAR(ch.period(), 200e-6, 1e-9);
}

TEST(Pipeline, NoiseRequiresRngAndRaisesNdf) {
    PipelineOptions opts;
    opts.noise_sigma = 0.005;
    SignaturePipeline pipe = make_pipeline(opts);
    const filter::BehaviouralCut golden(paper_biquad());
    pipe.set_golden(golden);
    // Without an RNG the pipeline is deterministic and noise-free.
    EXPECT_DOUBLE_EQ(pipe.ndf_of(golden), 0.0);
    Rng rng(123);
    const double noisy = pipe.ndf_of(golden, &rng);
    EXPECT_GT(noisy, 0.0);
    EXPECT_LT(noisy, 0.05); // noise floor well under defect signal levels
}

TEST(Pipeline, QuantisedChronogramCloseToIdeal) {
    PipelineOptions ideal_opts;
    SignaturePipeline ideal_pipe = make_pipeline(ideal_opts);

    PipelineOptions q_opts;
    q_opts.quantise = true;
    q_opts.capture.f_clk = 10e6;
    q_opts.capture.counter_bits = 16;
    SignaturePipeline q_pipe = make_pipeline(q_opts);

    const filter::BehaviouralCut golden(paper_biquad());
    const auto ideal = ideal_pipe.chronogram(golden);
    const auto quantised = q_pipe.chronogram(golden);
    // Quantisation error at 10 MHz on a 200 us period is tiny.
    EXPECT_LT(ndf(ideal, quantised), 0.01);
}

TEST(Pipeline, CaptureProducesPaperStyleSignature) {
    SignaturePipeline pipe = make_pipeline();
    const auto res = pipe.capture(filter::BehaviouralCut(paper_biquad()));
    EXPECT_EQ(res.overflow_events, 0);
    EXPECT_GE(res.signature.size(), 10u);
    // 200 us at 10 MHz.
    EXPECT_EQ(res.signature.total_ticks(), 2000u);
}

TEST(GoldenCache, SetGoldenMatchesVirtualChronogramPathExactly) {
    // set_golden now runs the compiled scratch path; the stored golden must
    // still equal the virtual-path chronogram bit for bit (the kernels'
    // identity guarantee carried to the golden).
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(paper_biquad());
    pipe.set_golden(golden);
    const auto reference = pipe.chronogram(golden);
    ASSERT_EQ(pipe.golden().events().size(), reference.events().size());
    for (std::size_t i = 0; i < reference.events().size(); ++i) {
        EXPECT_EQ(pipe.golden().events()[i].t, reference.events()[i].t);
        EXPECT_EQ(pipe.golden().events()[i].code, reference.events()[i].code);
    }
    EXPECT_DOUBLE_EQ(pipe.golden().period(), reference.period());
}

TEST(GoldenCache, RebuildingPipelinesHitsTheCache) {
    auto& cache = GoldenSignatureCache::instance();
    cache.clear();

    SignaturePipeline first = make_pipeline();
    first.set_golden(filter::BehaviouralCut(paper_biquad()));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // Same (bank, stimulus, options, cut): the rebuild must not recompute.
    SignaturePipeline second = make_pipeline();
    second.set_golden(filter::BehaviouralCut(paper_biquad()));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_GE(cache.hits(), 1u);
    ASSERT_EQ(second.golden().events().size(), first.golden().events().size());
    for (std::size_t i = 0; i < first.golden().events().size(); ++i)
        EXPECT_EQ(second.golden().events()[i].t, first.golden().events()[i].t);

    // A different golden cut is a different key, never a stale hit.
    SignaturePipeline third = make_pipeline();
    third.set_golden(filter::BehaviouralCut(paper_biquad().with_f0_shift(0.05)));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(GoldenCache, CaptureGridSharesOneIdealGolden) {
    // The ablation pattern: pipelines rebuilt per capture grid point share
    // the (bank, stimulus, spp, cut) ideal chronogram; only quantisation
    // differs. The cache must serve all of them from a single entry and the
    // quantised goldens must match a cold computation.
    auto& cache = GoldenSignatureCache::instance();
    cache.clear();

    const filter::BehaviouralCut golden(paper_biquad());
    for (const double f_clk : {5e6, 10e6, 20e6}) {
        PipelineOptions opts;
        opts.quantise = true;
        opts.capture.f_clk = f_clk;
        opts.capture.counter_bits = 16;
        SignaturePipeline pipe = make_pipeline(opts);
        pipe.set_golden(golden);

        cache.clear(); // force the next identical pipeline to recompute cold
        SignaturePipeline cold = make_pipeline(opts);
        cold.set_golden(golden);
        ASSERT_EQ(pipe.golden().events().size(), cold.golden().events().size())
            << "f_clk " << f_clk;
        for (std::size_t i = 0; i < cold.golden().events().size(); ++i) {
            EXPECT_EQ(pipe.golden().events()[i].t, cold.golden().events()[i].t);
            EXPECT_EQ(pipe.golden().events()[i].code,
                      cold.golden().events()[i].code);
        }
    }

    cache.clear();
    std::size_t computes = 0;
    for (const double f_clk : {5e6, 10e6, 20e6}) {
        PipelineOptions opts;
        opts.quantise = true;
        opts.capture.f_clk = f_clk;
        opts.capture.counter_bits = 16;
        SignaturePipeline pipe = make_pipeline(opts);
        pipe.set_golden(golden);
        computes = cache.misses();
    }
    EXPECT_EQ(computes, 1u); // one ideal golden served the whole grid
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(GoldenCache, KeyIsExactNotRounded) {
    // Two cuts that format identically at display precision must still get
    // distinct keys (the display string rounds; the key must not).
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut a(paper_biquad());
    const filter::BehaviouralCut b(paper_biquad().with_f0_shift(1e-13));
    const std::string ka = pipe.golden_cache_key(a);
    const std::string kb = pipe.golden_cache_key(b);
    ASSERT_FALSE(ka.empty());
    ASSERT_FALSE(kb.empty());
    EXPECT_NE(ka, kb);
    EXPECT_EQ(a.description(), b.description());
}

TEST(GoldenCache, SpiceCutIsUncacheableButStillWorks) {
    // SpiceCut has no exact fingerprint -> empty key -> computed uncached.
    SignaturePipeline pipe = make_pipeline();
    auto nl = std::make_unique<spice::Netlist>();
    const auto in = nl->node("in");
    const auto out = nl->node("out");
    nl->add<spice::VoltageSource>("Vin", in, spice::kGround, 0.0);
    nl->add<spice::Resistor>("R1", in, out, 1e3);
    nl->add<spice::Capacitor>("C1", out, spice::kGround, 1e-9);
    const filter::SpiceCut cut(std::move(nl), "Vin", "in", "out", 2);
    EXPECT_TRUE(pipe.golden_cache_key(cut).empty());

    auto& cache = GoldenSignatureCache::instance();
    cache.clear();
    pipe.set_golden(cut);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(pipe.has_golden());
}

TEST(Pipeline, RejectsEmptyBankAndCoarseSampling) {
    EXPECT_THROW(SignaturePipeline(monitor::MonitorBank{}, paper_stimulus(), {}),
                 ContractError);
    PipelineOptions opts;
    opts.samples_per_period = 16;
    EXPECT_THROW(SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(),
                                   opts),
                 ContractError);
}

} // namespace
} // namespace xysig::core
