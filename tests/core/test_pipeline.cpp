// End-to-end pipeline tests on the paper's reference setup.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/paper_setup.h"
#include "monitor/table1.h"

namespace xysig::core {
namespace {

SignaturePipeline make_pipeline(PipelineOptions opts = {}) {
    opts.samples_per_period =
        opts.samples_per_period == 8192 ? 4096 : opts.samples_per_period;
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(), opts);
}

TEST(Pipeline, GoldenAgainstItselfIsZero) {
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(paper_biquad());
    pipe.set_golden(golden);
    EXPECT_DOUBLE_EQ(pipe.ndf_of(golden), 0.0);
}

TEST(Pipeline, RequiresGoldenBeforeNdf) {
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut cut(paper_biquad());
    EXPECT_THROW((void)pipe.ndf_of(cut), ContractError);
}

TEST(Pipeline, TenPercentShiftLandsNearPaperValue) {
    // Paper Fig. 7: NDF = 0.1021 for +10% f0. Our calibrated setup lands in
    // the same region (the paper fixes the geometry only graphically).
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    const filter::BehaviouralCut defective(paper_biquad().with_f0_shift(0.10));
    const double v = pipe.ndf_of(defective);
    EXPECT_GT(v, 0.06);
    EXPECT_LT(v, 0.14);
}

TEST(Pipeline, ChronogramVisitsPaperZoneCount) {
    // Fig. 7 shows the golden trace visiting on the order of 15-20 zones per
    // period (16 distinct codes exist, some visited twice).
    SignaturePipeline pipe = make_pipeline();
    const auto ch = pipe.chronogram(filter::BehaviouralCut(paper_biquad()));
    EXPECT_GE(ch.zone_visits(), 10u);
    EXPECT_LE(ch.zone_visits(), 30u);
    EXPECT_NEAR(ch.period(), 200e-6, 1e-9);
}

TEST(Pipeline, NoiseRequiresRngAndRaisesNdf) {
    PipelineOptions opts;
    opts.noise_sigma = 0.005;
    SignaturePipeline pipe = make_pipeline(opts);
    const filter::BehaviouralCut golden(paper_biquad());
    pipe.set_golden(golden);
    // Without an RNG the pipeline is deterministic and noise-free.
    EXPECT_DOUBLE_EQ(pipe.ndf_of(golden), 0.0);
    Rng rng(123);
    const double noisy = pipe.ndf_of(golden, &rng);
    EXPECT_GT(noisy, 0.0);
    EXPECT_LT(noisy, 0.05); // noise floor well under defect signal levels
}

TEST(Pipeline, QuantisedChronogramCloseToIdeal) {
    PipelineOptions ideal_opts;
    SignaturePipeline ideal_pipe = make_pipeline(ideal_opts);

    PipelineOptions q_opts;
    q_opts.quantise = true;
    q_opts.capture.f_clk = 10e6;
    q_opts.capture.counter_bits = 16;
    SignaturePipeline q_pipe = make_pipeline(q_opts);

    const filter::BehaviouralCut golden(paper_biquad());
    const auto ideal = ideal_pipe.chronogram(golden);
    const auto quantised = q_pipe.chronogram(golden);
    // Quantisation error at 10 MHz on a 200 us period is tiny.
    EXPECT_LT(ndf(ideal, quantised), 0.01);
}

TEST(Pipeline, CaptureProducesPaperStyleSignature) {
    SignaturePipeline pipe = make_pipeline();
    const auto res = pipe.capture(filter::BehaviouralCut(paper_biquad()));
    EXPECT_EQ(res.overflow_events, 0);
    EXPECT_GE(res.signature.size(), 10u);
    // 200 us at 10 MHz.
    EXPECT_EQ(res.signature.total_ticks(), 2000u);
}

TEST(Pipeline, RejectsEmptyBankAndCoarseSampling) {
    EXPECT_THROW(SignaturePipeline(monitor::MonitorBank{}, paper_stimulus(), {}),
                 ContractError);
    PipelineOptions opts;
    opts.samples_per_period = 16;
    EXPECT_THROW(SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(),
                                   opts),
                 ContractError);
}

} // namespace
} // namespace xysig::core
