// NDF metric tests: hand-computed integrals, metric properties, and the
// sampled-estimator cross-check.

#include "core/ndf.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace xysig::core {
namespace {

using capture::Chronogram;

TEST(HammingDistance, Basics) {
    EXPECT_EQ(hamming_distance(0u, 0u), 0u);
    EXPECT_EQ(hamming_distance(0b111111u, 0u), 6u);
    EXPECT_EQ(hamming_distance(0b011110u, 0b011100u), 1u);
    EXPECT_EQ(hamming_distance(0b111110u, 0b011100u), 2u); // paper's [48,50]us case
}

TEST(Ndf, IdenticalChronogramsGiveZero) {
    const Chronogram a(1.0, 4, {{0.0, 3u}, {0.4, 7u}});
    EXPECT_DOUBLE_EQ(ndf(a, a), 0.0);
}

TEST(Ndf, HandComputedExample) {
    // a: code 0 on [0, 0.5), code 1 on [0.5, 1).
    // b: code 0 on [0, 0.25), code 3 on [0.25, 1).
    // dH: [0,0.25): 0 ; [0.25,0.5): dH(0,3)=2 ; [0.5,1): dH(1,3)=1
    // NDF = 0.25*2 + 0.5*1 = 1.0... over T=1: 1.0.
    const Chronogram a(1.0, 2, {{0.0, 0u}, {0.5, 1u}});
    const Chronogram b(1.0, 2, {{0.0, 0u}, {0.25, 3u}});
    EXPECT_DOUBLE_EQ(ndf(a, b), 0.25 * 2.0 + 0.5 * 1.0);
}

TEST(Ndf, IsSymmetric) {
    const Chronogram a(1.0, 3, {{0.0, 1u}, {0.3, 5u}, {0.7, 2u}});
    const Chronogram b(1.0, 3, {{0.0, 0u}, {0.5, 7u}});
    EXPECT_DOUBLE_EQ(ndf(a, b), ndf(b, a));
}

TEST(Ndf, BoundedByCodeWidth) {
    const Chronogram a(1.0, 3, {{0.0, 0u}});
    const Chronogram b(1.0, 3, {{0.0, 7u}});
    EXPECT_DOUBLE_EQ(ndf(a, b), 3.0); // all 3 bits differ all the time
}

TEST(Ndf, TriangleInequalityOnExamples) {
    const Chronogram a(1.0, 4, {{0.0, 0u}, {0.5, 15u}});
    const Chronogram b(1.0, 4, {{0.0, 3u}, {0.6, 12u}});
    const Chronogram c(1.0, 4, {{0.0, 5u}});
    // Pointwise Hamming distance satisfies the triangle inequality, so its
    // time average must too.
    EXPECT_LE(ndf(a, c), ndf(a, b) + ndf(b, c) + 1e-12);
}

TEST(Ndf, SlightPeriodMismatchTolerated) {
    const Chronogram a(1.0, 2, {{0.0, 0u}, {0.5, 1u}});
    const Chronogram b(1.0005, 2, {{0.0, 0u}, {0.5, 1u}});
    EXPECT_NO_THROW((void)ndf(a, b));
    const Chronogram c(1.2, 2, {{0.0, 0u}});
    EXPECT_THROW((void)ndf(a, c), ContractError);
}

TEST(HammingProfile, SegmentsTileThePeriodAndMerge) {
    const Chronogram a(1.0, 2, {{0.0, 0u}, {0.5, 1u}});
    const Chronogram b(1.0, 2, {{0.0, 0u}, {0.25, 3u}});
    const auto prof = hamming_profile(a, b);
    ASSERT_EQ(prof.size(), 3u);
    EXPECT_DOUBLE_EQ(prof[0].t_begin, 0.0);
    EXPECT_EQ(prof[0].distance, 0u);
    EXPECT_DOUBLE_EQ(prof[1].t_begin, 0.25);
    EXPECT_EQ(prof[1].distance, 2u);
    EXPECT_DOUBLE_EQ(prof[2].t_begin, 0.5);
    EXPECT_EQ(prof[2].distance, 1u);
    EXPECT_DOUBLE_EQ(prof[2].t_end, 1.0);
    for (std::size_t i = 1; i < prof.size(); ++i)
        EXPECT_DOUBLE_EQ(prof[i].t_begin, prof[i - 1].t_end);
}

TEST(NdfSampled, ConvergesToExact) {
    const Chronogram a(1.0, 3, {{0.0, 1u}, {0.37, 5u}, {0.81, 2u}});
    const Chronogram b(1.0, 3, {{0.0, 0u}, {0.52, 7u}});
    const double exact = ndf(a, b);
    EXPECT_NEAR(ndf_sampled(a, b, 100000), exact, 1e-3);
}

} // namespace
} // namespace xysig::core
