// Batch NDF engine: concurrent evaluation of a CUT universe must match
// SignaturePipeline::ndf_of one-by-one results exactly, and the scratch
// path must be bit-identical to the allocating path.

#include "core/batch_ndf.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_setup.h"
#include "monitor/table1.h"

namespace xysig::core {
namespace {

SignaturePipeline make_pipeline(PipelineOptions opts = {}) {
    opts.samples_per_period = 2048; // keep the batch tests fast
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(), opts);
}

std::vector<filter::BehaviouralCut> deviation_universe() {
    std::vector<filter::BehaviouralCut> cuts;
    for (int d = -20; d <= 20; d += 2)
        cuts.emplace_back(paper_biquad().with_f0_shift(d / 100.0));
    return cuts;
}

TEST(BatchNdfEvaluator, MatchesSerialNdfOfExactly) {
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));

    const auto universe = deviation_universe();
    std::vector<const filter::Cut*> raw;
    for (const auto& c : universe)
        raw.push_back(&c);

    for (const unsigned threads : {1u, 2u, 4u}) {
        const BatchNdfEvaluator batch(pipe, {.threads = threads});
        const auto ndfs = batch.evaluate(raw);
        ASSERT_EQ(ndfs.size(), universe.size());
        for (std::size_t i = 0; i < universe.size(); ++i)
            EXPECT_DOUBLE_EQ(ndfs[i], pipe.ndf_of(universe[i]))
                << "cut " << i << " threads " << threads;
    }
}

TEST(BatchNdfEvaluator, QuantisedCapturePathAlsoMatches) {
    PipelineOptions opts;
    opts.quantise = true;
    opts.capture.f_clk = 10e6;
    opts.capture.counter_bits = 16;
    SignaturePipeline pipe = make_pipeline(opts);
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));

    const auto universe = deviation_universe();
    std::vector<const filter::Cut*> raw;
    for (const auto& c : universe)
        raw.push_back(&c);

    const BatchNdfEvaluator batch(pipe, {.threads = 4});
    const auto ndfs = batch.evaluate(raw);
    for (std::size_t i = 0; i < universe.size(); ++i)
        EXPECT_DOUBLE_EQ(ndfs[i], pipe.ndf_of(universe[i])) << "cut " << i;
}

TEST(BatchNdfEvaluator, OwningPointerOverload) {
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    std::vector<std::unique_ptr<filter::Cut>> cuts;
    cuts.push_back(std::make_unique<filter::BehaviouralCut>(paper_biquad()));
    cuts.push_back(std::make_unique<filter::BehaviouralCut>(
        paper_biquad().with_f0_shift(0.10)));
    const BatchNdfEvaluator batch(pipe);
    const auto ndfs = batch.evaluate(cuts);
    ASSERT_EQ(ndfs.size(), 2u);
    EXPECT_DOUBLE_EQ(ndfs[0], 0.0);
    EXPECT_GT(ndfs[1], 0.05);
}

TEST(BatchNdfEvaluator, EvaluateDeviationsMatchesManualUniverse) {
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    const std::vector<double> devs = {-10.0, -5.0, 0.0, 5.0, 10.0};
    const BatchNdfEvaluator batch(pipe, {.threads = 4});
    const auto ndfs = batch.evaluate_deviations(paper_biquad(), devs);
    ASSERT_EQ(ndfs.size(), devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
        const filter::BehaviouralCut cut(
            paper_biquad().with_f0_shift(devs[i] / 100.0));
        EXPECT_DOUBLE_EQ(ndfs[i], pipe.ndf_of(cut)) << "dev " << devs[i];
    }
}

TEST(BatchNdfEvaluator, RequiresGolden) {
    SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut cut(paper_biquad());
    const filter::Cut* raw[] = {&cut};
    const BatchNdfEvaluator batch(pipe);
    EXPECT_THROW((void)batch.evaluate(raw), ContractError);
}

TEST(NdfScratch, ScratchPathBitIdenticalToAllocatingPath) {
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    NdfScratch scratch;
    // Reused across calls on purpose: stale buffer contents must not leak.
    for (int d = -15; d <= 15; d += 5) {
        const filter::BehaviouralCut cut(paper_biquad().with_f0_shift(d / 100.0));
        EXPECT_DOUBLE_EQ(pipe.ndf_of(cut, scratch), pipe.ndf_of(cut))
            << "deviation " << d << "%";
    }
}

TEST(NdfScratch, NoisyScratchPathMatchesNoisyAllocatingPath) {
    PipelineOptions opts;
    opts.noise_sigma = 0.005;
    SignaturePipeline pipe = make_pipeline(opts);
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));
    const filter::BehaviouralCut cut(paper_biquad().with_f0_shift(0.05));
    NdfScratch scratch;
    // Identical seeds must give identical noise draws on both paths.
    Rng rng_a(99);
    Rng rng_b(99);
    for (int trial = 0; trial < 3; ++trial)
        EXPECT_DOUBLE_EQ(pipe.ndf_of(cut, scratch, &rng_a),
                         pipe.ndf_of(cut, &rng_b))
            << "trial " << trial;
}

TEST(DeviationSweep, ThreadCountDoesNotChangeResults) {
    SignaturePipeline pipe = make_pipeline();
    std::vector<double> devs;
    for (int d = -12; d <= 12; d += 3)
        devs.push_back(d);
    const auto one = deviation_sweep(pipe, paper_biquad(), devs,
                                     SweptParameter::f0, 1);
    const auto four = deviation_sweep(pipe, paper_biquad(), devs,
                                      SweptParameter::f0, 4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_DOUBLE_EQ(one[i].deviation_percent, four[i].deviation_percent);
        EXPECT_DOUBLE_EQ(one[i].ndf_value, four[i].ndf_value);
    }
}

} // namespace
} // namespace xysig::core
