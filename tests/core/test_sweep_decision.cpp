// Sweep (Fig. 8) and PASS/FAIL decision tests.

#include <cmath>

#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "monitor/table1.h"

namespace xysig::core {
namespace {

SignaturePipeline make_pipeline() {
    PipelineOptions opts;
    opts.samples_per_period = 4096;
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(), opts);
}

std::vector<double> symmetric_grid() {
    std::vector<double> devs;
    for (int d = -20; d <= 20; d += 4)
        devs.push_back(d);
    return devs;
}

TEST(DeviationSweep, ZeroDeviationGivesZeroNdf) {
    SignaturePipeline pipe = make_pipeline();
    const auto sweep =
        deviation_sweep(pipe, paper_biquad(), std::vector<double>{0.0});
    ASSERT_EQ(sweep.size(), 1u);
    EXPECT_DOUBLE_EQ(sweep[0].ndf_value, 0.0);
}

TEST(DeviationSweep, NdfIncreasesWithDeviationMagnitude) {
    SignaturePipeline pipe = make_pipeline();
    const std::vector<double> devs = {1.0, 2.0, 5.0, 10.0, 15.0, 20.0};
    const auto sweep = deviation_sweep(pipe, paper_biquad(), devs);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].ndf_value, sweep[i - 1].ndf_value)
            << "at " << sweep[i].deviation_percent << "%";
}

TEST(DeviationSweep, Fig8ShapeAlmostLinearAndSymmetric) {
    SignaturePipeline pipe = make_pipeline();
    const auto sweep = deviation_sweep(pipe, paper_biquad(), symmetric_grid());
    const SweepShape shape = analyse_sweep(sweep);
    // Paper: "increases almost linearly ... quite symmetrically".
    EXPECT_GT(shape.r_squared, 0.95);
    EXPECT_LT(shape.asymmetry, 0.15);
    // Fig. 8 magnitude: ~0.01 NDF per % deviation.
    EXPECT_GT(shape.slope_per_percent, 0.005);
    EXPECT_LT(shape.slope_per_percent, 0.02);
}

TEST(DeviationSweep, QParameterAlsoDetectable) {
    SignaturePipeline pipe = make_pipeline();
    const std::vector<double> devs = {-20.0, 20.0};
    const auto sweep =
        deviation_sweep(pipe, paper_biquad(), devs, SweptParameter::q);
    for (const auto& p : sweep)
        EXPECT_GT(p.ndf_value, 0.01);
}

TEST(AnalyseSweep, RequiresEnoughPoints) {
    const std::vector<SweepPoint> two = {{0.0, 0.0}, {1.0, 0.01}};
    EXPECT_THROW((void)analyse_sweep(two), ContractError);
}

TEST(NdfThreshold, FromSweepInterpolates) {
    const std::vector<SweepPoint> sweep = {
        {-10.0, 0.10}, {-5.0, 0.05}, {0.0, 0.0}, {5.0, 0.06}, {10.0, 0.12}};
    const NdfThreshold thr = NdfThreshold::from_sweep(sweep, 7.5);
    // +7.5% interpolates to 0.09, -7.5% to 0.075 -> conservative min.
    EXPECT_NEAR(thr.threshold(), 0.075, 1e-12);
}

TEST(NdfThreshold, ClassifiesPassFail) {
    const NdfThreshold thr(0.05);
    EXPECT_EQ(thr.classify(0.01), TestOutcome::pass);
    EXPECT_EQ(thr.classify(0.05), TestOutcome::pass); // inclusive
    EXPECT_EQ(thr.classify(0.051), TestOutcome::fail);
}

TEST(NdfThreshold, ToleranceOutsideSweepRejected) {
    const std::vector<SweepPoint> sweep = {{-5.0, 0.05}, {0.0, 0.0}, {5.0, 0.06}};
    EXPECT_THROW((void)NdfThreshold::from_sweep(sweep, 10.0), InvalidInput);
}

TEST(Decision, EndToEndPassFailBands) {
    // Calibrate a +/-5% tolerance band on the Fig. 8 sweep, then check that
    // an in-band circuit passes and an out-of-band circuit fails.
    SignaturePipeline pipe = make_pipeline();
    const auto sweep = deviation_sweep(pipe, paper_biquad(), symmetric_grid());
    const NdfThreshold thr = NdfThreshold::from_sweep(sweep, 5.0);

    const filter::BehaviouralCut in_band(paper_biquad().with_f0_shift(0.02));
    const filter::BehaviouralCut out_band(paper_biquad().with_f0_shift(0.12));
    EXPECT_EQ(thr.classify(pipe.ndf_of(in_band)), TestOutcome::pass);
    EXPECT_EQ(thr.classify(pipe.ndf_of(out_band)), TestOutcome::fail);
}

} // namespace
} // namespace xysig::core
