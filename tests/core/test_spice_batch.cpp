// SPICE fault universes through the batch NDF engine: enumeration of
// bridging/open universes, clone-based fault injection, and the core
// guarantee — batch evaluation is bit-identical to the serial path at any
// thread count (each cut owns its deep-cloned netlist, so workers never
// share simulation state).

#include "core/batch_ndf.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "capture/fault_injection.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"
#include "spice/elements.h"

namespace xysig::core {
namespace {

filter::TowThomasCircuit nominal_circuit() {
    return filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(paper_biquad().design(), 10e3));
}

SpiceObservation observation(const filter::TowThomasCircuit& ckt) {
    return {ckt.input_source, ckt.input_node, ckt.lp_node,
            /*settle_periods=*/2};
}

/// Bit-identity including NaNs (NaN != NaN under operator==, but the batch
/// guarantee is about bit patterns).
bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

SignaturePipeline make_pipeline() {
    PipelineOptions opts;
    opts.samples_per_period = 256; // keep the transient runs fast
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(),
                             opts);
}

/// A small mixed universe: a handful of bridging faults plus every open.
std::vector<capture::NetlistFault> small_universe(const spice::Netlist& nl) {
    const capture::FaultUniverseOptions fopts;
    auto faults = capture::enumerate_bridging_faults(nl, fopts);
    faults.resize(std::min<std::size_t>(faults.size(), 6));
    const auto opens = capture::enumerate_open_faults(nl, fopts);
    faults.insert(faults.end(), opens.begin(), opens.end());
    return faults;
}

TEST(FaultEnumeration, BridgingCoversEveryNonGroundNodePair) {
    const auto ckt = nominal_circuit();
    const auto faults = capture::enumerate_bridging_faults(ckt.netlist);
    // n non-ground nodes -> n*(n-1)/2 unordered pairs.
    const std::size_t n = ckt.netlist.node_count() - 1;
    EXPECT_EQ(faults.size(), n * (n - 1) / 2);
    for (const auto& f : faults) {
        EXPECT_EQ(f.kind, capture::NetlistFault::Kind::bridging);
        EXPECT_NE(f.node_a, f.node_b);
        EXPECT_GT(f.value, 0.0);
    }

    capture::FaultUniverseOptions with_ground;
    with_ground.bridge_to_ground = true;
    EXPECT_EQ(capture::enumerate_bridging_faults(ckt.netlist, with_ground).size(),
              n * (n - 1) / 2 + n);
}

TEST(FaultEnumeration, OpensCoverEveryResistorAndCapacitor) {
    const auto ckt = nominal_circuit();
    const auto faults = capture::enumerate_open_faults(ckt.netlist);
    std::size_t rc_count = 0;
    for (const auto& dev : ckt.netlist.devices())
        if (dynamic_cast<const spice::Resistor*>(dev.get()) != nullptr ||
            dynamic_cast<const spice::Capacitor*>(dev.get()) != nullptr)
            ++rc_count;
    EXPECT_EQ(faults.size(), rc_count);
    EXPECT_GE(rc_count, 8u); // Tow-Thomas: 6 resistors + 2 capacitors
}

TEST(ApplyFault, LeavesNominalUntouchedAndInjectsIntoClone) {
    const auto ckt = nominal_circuit();
    const double r2_before = ckt.netlist.get<spice::Resistor>("R2").resistance();

    capture::NetlistFault open;
    open.kind = capture::NetlistFault::Kind::open;
    open.device = "R2";
    open.value = 1e6;
    const spice::Netlist faulty = capture::apply_fault(ckt.netlist, open);
    EXPECT_DOUBLE_EQ(faulty.get<spice::Resistor>("R2").resistance(),
                     r2_before * 1e6);
    EXPECT_DOUBLE_EQ(ckt.netlist.get<spice::Resistor>("R2").resistance(),
                     r2_before);

    capture::NetlistFault bridge;
    bridge.kind = capture::NetlistFault::Kind::bridging;
    bridge.node_a = "bp";
    bridge.node_b = "lp";
    bridge.value = 100.0;
    const spice::Netlist shorted = capture::apply_fault(ckt.netlist, bridge);
    EXPECT_EQ(shorted.devices().size(), ckt.netlist.devices().size() + 1);
    EXPECT_NE(shorted.try_get<spice::Resistor>("Rbridge_bp_lp"), nullptr);
    EXPECT_EQ(ckt.netlist.try_get<spice::Resistor>("Rbridge_bp_lp"), nullptr);
}

TEST(ApplyFault, OpenOnUnsupportedDeviceThrows) {
    const auto ckt = nominal_circuit();
    capture::NetlistFault bad;
    bad.kind = capture::NetlistFault::Kind::open;
    bad.device = "A1"; // an opamp, not an R/C
    bad.value = 1e6;
    EXPECT_THROW((void)capture::apply_fault(ckt.netlist, bad), InvalidInput);
}

TEST(SpiceBatch, BatchMatchesSerialBitIdenticallyAtAnyThreadCount) {
    const auto ckt = nominal_circuit();
    const auto obs = observation(ckt);
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::SpiceCut(
        std::make_unique<spice::Netlist>(ckt.netlist.clone()), obs.input_source,
        obs.x_node, obs.y_node, obs.settle_periods));

    const auto faults = small_universe(ckt.netlist);
    const auto universe =
        BatchNdfEvaluator::build_fault_universe(ckt.netlist, faults, obs);
    ASSERT_EQ(universe.size(), faults.size());

    // Serial reference through the allocating path (the strictest identity:
    // scratch vs allocating AND serial vs parallel must both hold), under
    // the same NaN-on-non-convergence policy the batch engine applies.
    std::vector<double> serial;
    serial.reserve(universe.size());
    for (const auto& cut : universe) {
        try {
            serial.push_back(pipe.ndf_of(*cut));
        } catch (const NumericError&) {
            // Must be the exact constant the batch policy writes: the test
            // compares bit patterns, and std::nan("")'s payload is not
            // guaranteed to match on every libc.
            serial.push_back(std::numeric_limits<double>::quiet_NaN());
        }
    }

    for (const unsigned threads : {1u, 2u, 4u}) {
        const BatchNdfEvaluator batch(
            pipe, {.threads = threads, .nan_on_numeric_error = true});
        const auto ndfs = batch.evaluate(universe);
        ASSERT_EQ(ndfs.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_TRUE(same_bits(ndfs[i], serial[i]))
                << "fault " << faults[i].description() << " threads " << threads
                << " got " << ndfs[i] << " want " << serial[i];
    }
}

TEST(SpiceBatch, EvaluateNetlistFaultsMatchesManualUniverseAndDetects) {
    const auto ckt = nominal_circuit();
    const auto obs = observation(ckt);
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::SpiceCut(
        std::make_unique<spice::Netlist>(ckt.netlist.clone()), obs.input_source,
        obs.x_node, obs.y_node, obs.settle_periods));

    const auto faults = small_universe(ckt.netlist);
    const BatchNdfEvaluator batch(pipe, {.threads = 4});
    const auto ndfs = batch.evaluate_netlist_faults(ckt.netlist, faults, obs);

    // evaluate_netlist_faults forces the NaN policy; the manual universe
    // must opt in explicitly to match.
    const BatchNdfEvaluator tolerant(
        pipe, {.threads = 4, .nan_on_numeric_error = true});
    const auto universe =
        BatchNdfEvaluator::build_fault_universe(ckt.netlist, faults, obs);
    const auto manual = tolerant.evaluate(universe);
    ASSERT_EQ(ndfs.size(), manual.size());
    for (std::size_t i = 0; i < manual.size(); ++i)
        EXPECT_TRUE(same_bits(ndfs[i], manual[i]))
            << "fault " << faults[i].description();

    // Sanity on the universe shape: detectable faults exist, and the
    // pathological members (no stable solution, e.g. the open loop-feedback
    // resistor) came back as NaN instead of killing the sweep.
    bool any_detected = false;
    bool any_nan = false;
    for (const double v : ndfs) {
        any_detected = any_detected || (std::isfinite(v) && v > 0.0);
        any_nan = any_nan || std::isnan(v);
    }
    EXPECT_TRUE(any_detected);
    EXPECT_TRUE(any_nan);
}

TEST(SpiceBatch, GoldenSpiceCutHasZeroNdfAgainstItself) {
    const auto ckt = nominal_circuit();
    const auto obs = observation(ckt);
    SignaturePipeline pipe = make_pipeline();
    filter::SpiceCut golden(
        std::make_unique<spice::Netlist>(ckt.netlist.clone()), obs.input_source,
        obs.x_node, obs.y_node, obs.settle_periods);
    pipe.set_golden(golden);
    // Re-evaluating the very same cut must reproduce the golden exactly
    // (re-entrant transient: every run restarts from the DC operating point).
    EXPECT_DOUBLE_EQ(pipe.ndf_of(golden), 0.0);
}

} // namespace
} // namespace xysig::core
