// Property-based tests of the NDF metric over randomly generated
// chronogram pairs: metric axioms, bounds, invariances. Parameterised over
// RNG seeds so each instantiation explores a different random structure.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ndf.h"

namespace xysig::core {
namespace {

using capture::Chronogram;
using capture::CodeEvent;

/// Random chronogram: 1..12 events over the given period, 4-bit codes.
Chronogram random_chronogram(Rng& rng, double period) {
    const auto n_events = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::set<double> times;
    times.insert(0.0);
    while (times.size() < n_events)
        times.insert(rng.uniform(0.0, period * 0.999));

    std::vector<CodeEvent> events;
    unsigned prev = 16; // sentinel outside the 4-bit space
    for (const double t : times) {
        unsigned code = static_cast<unsigned>(rng.uniform_int(0, 15));
        if (code == prev)
            code = (code + 1) % 16;
        events.push_back({t, code});
        prev = code;
    }
    return Chronogram(period, 4, std::move(events));
}

class NdfProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NdfProperties, IdentityOfIndiscernibles) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    EXPECT_DOUBLE_EQ(ndf(a, a), 0.0);
}

TEST_P(NdfProperties, Symmetry) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);
    EXPECT_DOUBLE_EQ(ndf(a, b), ndf(b, a));
}

TEST_P(NdfProperties, NonNegativeAndBoundedByCodeWidth) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);
    const double v = ndf(a, b);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 4.0); // 4-bit codes: dH <= 4 everywhere
}

TEST_P(NdfProperties, TriangleInequality) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);
    const Chronogram c = random_chronogram(rng, 1e-3);
    EXPECT_LE(ndf(a, c), ndf(a, b) + ndf(b, c) + 1e-12);
}

TEST_P(NdfProperties, TimeScaleInvariance) {
    // NDF is normalised by the period: stretching both chronograms by the
    // same factor leaves it unchanged.
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);

    auto stretch = [](const Chronogram& ch, double k) {
        std::vector<CodeEvent> events;
        for (const auto& ev : ch.events())
            events.push_back({ev.t * k, ev.code});
        return Chronogram(ch.period() * k, ch.code_bits(), std::move(events));
    };
    const double v1 = ndf(a, b);
    const double v2 = ndf(stretch(a, 7.5), stretch(b, 7.5));
    EXPECT_NEAR(v1, v2, 1e-12);
}

TEST_P(NdfProperties, SampledEstimatorConverges) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);
    EXPECT_NEAR(ndf_sampled(a, b, 200000), ndf(a, b), 5e-3);
}

TEST_P(NdfProperties, ProfileTilesPeriodAndIntegralMatches) {
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    const Chronogram b = random_chronogram(rng, 1e-3);
    const auto profile = hamming_profile(a, b);
    ASSERT_FALSE(profile.empty());
    EXPECT_DOUBLE_EQ(profile.front().t_begin, 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < profile.size(); ++i) {
        if (i > 0)
            EXPECT_DOUBLE_EQ(profile[i].t_begin, profile[i - 1].t_end);
        acc += profile[i].distance * (profile[i].t_end - profile[i].t_begin);
    }
    EXPECT_NEAR(profile.back().t_end, 1e-3, 1e-15);
    EXPECT_NEAR(acc / 1e-3, ndf(a, b), 1e-12);
}

TEST_P(NdfProperties, BitComplementGivesFullDistance) {
    // Complementing every code of one chronogram yields NDF == code width
    // when compared against the original.
    Rng rng(GetParam());
    const Chronogram a = random_chronogram(rng, 1e-3);
    std::vector<CodeEvent> inverted;
    for (const auto& ev : a.events())
        inverted.push_back({ev.t, ev.code ^ 0xFu});
    const Chronogram b(a.period(), 4, std::move(inverted));
    EXPECT_DOUBLE_EQ(ndf(a, b), 4.0);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NdfProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

} // namespace
} // namespace xysig::core
