// Noise detectability study (paper Section IV-C) and the regression
// estimator extension.

#include <cmath>

#include <gtest/gtest.h>

#include "core/detectability.h"
#include "core/estimator.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "monitor/table1.h"

namespace xysig::core {
namespace {

SignaturePipeline make_pipeline() {
    PipelineOptions opts;
    opts.samples_per_period = 4096; // noise MC is expensive; keep tests quick
    return SignaturePipeline(monitor::build_table1_bank(), paper_stimulus(), opts);
}

TEST(Detectability, OnePercentDetectedUnderPaperNoise) {
    // The paper's claim: 3*sigma = 15 mV white noise, 1% f0 deviation still
    // detected.
    SignaturePipeline pipe = make_pipeline();
    DetectabilityOptions opts;
    opts.trials = 15;
    opts.noise_sigma = 0.005;
    opts.periods_averaged = 16;
    const std::vector<double> devs = {1.0};
    const auto study = noise_detectability(pipe, paper_biquad(), devs, opts, 2024);
    ASSERT_EQ(study.points.size(), 1u);
    EXPECT_TRUE(study.points[0].detected)
        << "rate=" << study.points[0].detection_rate;
}

TEST(Detectability, LargerDeviationsSeparateFurther) {
    SignaturePipeline pipe = make_pipeline();
    DetectabilityOptions opts;
    opts.trials = 8;
    opts.noise_sigma = 0.005;
    opts.periods_averaged = 4;
    const std::vector<double> devs = {1.0, 5.0};
    const auto study = noise_detectability(pipe, paper_biquad(), devs, opts, 7);
    EXPECT_GT(study.points[1].ndf_mean, study.points[0].ndf_mean);
    EXPECT_GT(study.points[1].ndf_min, study.threshold);
}

TEST(Detectability, NoiseFloorIsSmallAndPositive) {
    SignaturePipeline pipe = make_pipeline();
    DetectabilityOptions opts;
    opts.trials = 8;
    opts.noise_sigma = 0.005;
    opts.periods_averaged = 2;
    const std::vector<double> devs = {2.0};
    const auto study = noise_detectability(pipe, paper_biquad(), devs, opts, 99);
    EXPECT_GT(study.noise_floor_mean, 0.0);
    EXPECT_LT(study.noise_floor_mean, 0.04);
    EXPECT_GE(study.threshold, study.noise_floor_mean);
}

TEST(Detectability, MinimumDetectableReported) {
    DetectabilityStudy study;
    study.points = {{0.5, 0, 0, 0, 0.5, false},
                    {1.0, 0, 0, 0, 1.0, true},
                    {-2.0, 0, 0, 0, 1.0, true}};
    EXPECT_DOUBLE_EQ(study.minimum_detectable(), 1.0);
}

TEST(Detectability, DeterministicInSeed) {
    SignaturePipeline pipe = make_pipeline();
    DetectabilityOptions opts;
    opts.trials = 5;
    opts.periods_averaged = 2;
    const std::vector<double> devs = {1.0};
    const auto a = noise_detectability(pipe, paper_biquad(), devs, opts, 31);
    const auto b = noise_detectability(pipe, paper_biquad(), devs, opts, 31);
    EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
    EXPECT_DOUBLE_EQ(a.points[0].ndf_mean, b.points[0].ndf_mean);
}

TEST(Estimator, RecoversDeviationFromSignature) {
    // Train on a coarse sweep, predict held-out intermediate deviations.
    SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(paper_biquad()));

    std::vector<capture::Chronogram> train;
    std::vector<double> targets;
    for (double dev = -20.0; dev <= 20.0; dev += 2.0) {
        const filter::BehaviouralCut cut(paper_biquad().with_f0_shift(dev / 100.0));
        train.push_back(pipe.chronogram(cut));
        targets.push_back(dev);
    }
    SignatureRegressor reg(6);
    reg.fit(train, targets, 1e-4);

    for (double dev : {-13.0, -5.0, 3.0, 11.0}) {
        const filter::BehaviouralCut cut(paper_biquad().with_f0_shift(dev / 100.0));
        const double predicted = reg.predict(pipe.chronogram(cut));
        EXPECT_NEAR(predicted, dev, 2.5) << "dev=" << dev;
    }
}

TEST(Estimator, FeaturesAreDwellFractions) {
    const capture::Chronogram ch(1.0, 2, {{0.0, 0u}, {0.25, 1u}, {0.75, 3u}});
    const SignatureRegressor reg(2);
    const auto f = reg.features(ch);
    ASSERT_EQ(f.size(), 5u); // 4 codes + bias
    EXPECT_DOUBLE_EQ(f[0], 0.25);
    EXPECT_DOUBLE_EQ(f[1], 0.5);
    EXPECT_DOUBLE_EQ(f[2], 0.0);
    EXPECT_DOUBLE_EQ(f[3], 0.25);
    EXPECT_DOUBLE_EQ(f[4], 1.0);
}

TEST(Estimator, PredictBeforeFitRejected) {
    const SignatureRegressor reg(2);
    const capture::Chronogram ch(1.0, 2, {{0.0, 0u}});
    EXPECT_THROW((void)reg.predict(ch), ContractError);
}

} // namespace
} // namespace xysig::core
