// GoldenSignatureCache bounds: a long-lived sweep service sees an unbounded
// stream of distinct golden fingerprints, so the cache must evict (LRU)
// instead of leaking one chronogram per fingerprint forever.

#include "core/golden_cache.h"

#include <string>

#include <gtest/gtest.h>

namespace xysig::core {
namespace {

/// Distinct, recognisable chronogram per key.
capture::Chronogram make_chronogram(unsigned code) {
    return capture::Chronogram(1.0, 6, {{0.0, code}});
}

TEST(GoldenCacheLru, EvictsLeastRecentlyUsedBeyondCapacity) {
    GoldenSignatureCache cache;
    cache.set_capacity(2);

    int computes = 0;
    const auto get = [&](const std::string& key, unsigned code) {
        return cache.find_or_compute(key, [&] {
            ++computes;
            return make_chronogram(code);
        });
    };

    (void)get("a", 1);
    (void)get("b", 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cache.evictions(), 0u);

    // Touch "a" so "b" becomes the LRU entry, then insert "c".
    EXPECT_EQ(get("a", 1)->events()[0].code, 1u);
    (void)get("c", 3);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    // "a" and "c" hit; "b" was evicted and recomputes.
    EXPECT_EQ(computes, 3);
    (void)get("a", 1);
    (void)get("c", 3);
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(get("b", 2)->events()[0].code, 2u);
    EXPECT_EQ(computes, 4);
    EXPECT_EQ(cache.evictions(), 2u); // inserting "b" evicted the LRU ("a")
}

TEST(GoldenCacheLru, EvictedEntriesStayAliveForHolders) {
    GoldenSignatureCache cache;
    cache.set_capacity(1);
    const auto held =
        cache.find_or_compute("x", [] { return make_chronogram(7); });
    (void)cache.find_or_compute("y", [] { return make_chronogram(8); });
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    // The shared_ptr returned before eviction is still valid.
    EXPECT_EQ(held->events()[0].code, 7u);
}

TEST(GoldenCacheLru, ShrinkingCapacityEvictsImmediately) {
    GoldenSignatureCache cache;
    cache.set_capacity(8);
    for (unsigned i = 0; i < 5; ++i)
        (void)cache.find_or_compute("k" + std::to_string(i),
                                    [&] { return make_chronogram(i); });
    EXPECT_EQ(cache.size(), 5u);
    cache.set_capacity(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 3u);
    EXPECT_EQ(cache.capacity(), 2u);
}

TEST(GoldenCacheLru, StatsAndClear) {
    GoldenSignatureCache cache;
    cache.set_capacity(4);
    (void)cache.find_or_compute("k", [] { return make_chronogram(1); });
    (void)cache.find_or_compute("k", [] { return make_chronogram(1); });
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.capacity(), 4u); // clear keeps the configured bound
}

TEST(GoldenCacheLru, ProcessWideInstanceIsBounded) {
    // The instance used by SignaturePipeline::set_golden must never be
    // unbounded (that is the sweep-service leak this PR closes).
    EXPECT_GE(GoldenSignatureCache::instance().capacity(), 1u);
    EXPECT_LE(GoldenSignatureCache::instance().capacity(), 1u << 20);
}

} // namespace
} // namespace xysig::core
