// Bit-identity of the compiled signature kernels against the virtual path:
// mos_id vs mos_evaluate().id, tone-table sampling vs per-sample
// Waveform::value, compiled zoning vs MonitorBank::code over randomized
// traces for every boundary type (linear, MOS, mixed banks, fallback), the
// fused encode_codes path vs encode_events, and the whole pipeline with
// kernels on vs off (noise-free, noisy and capture-quantised).

#include "kernels/compiled_monitor_bank.h"
#include "kernels/compiled_waveform.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "capture/chronogram.h"
#include "common/rng.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "monitor/table1.h"
#include "spice/mosfet.h"

namespace xysig {
namespace {

/// A boundary the compiler cannot lower: circle of radius r around
/// (cx, cy), origin outside -> h < 0 at the origin already.
class CircleBoundary final : public monitor::Boundary {
public:
    CircleBoundary(double cx, double cy, double r) : cx_(cx), cy_(cy), r_(r) {}
    [[nodiscard]] double h(double x, double y) const override {
        const double dx = x - cx_;
        const double dy = y - cy_;
        return r_ * r_ - (dx * dx + dy * dy);
    }
    [[nodiscard]] std::unique_ptr<monitor::Boundary> clone() const override {
        return std::make_unique<CircleBoundary>(*this);
    }

private:
    double cx_, cy_, r_;
};

/// Random trace wandering around the monitor window.
void random_trace(Rng& rng, std::size_t n, std::vector<double>& xs,
                  std::vector<double>& ys) {
    xs.resize(n);
    ys.resize(n);
    double x = 0.5;
    double y = 0.5;
    for (std::size_t i = 0; i < n; ++i) {
        x += rng.normal(0.0, 0.04);
        y += rng.normal(0.0, 0.04);
        x = std::min(1.2, std::max(-0.2, x));
        y = std::min(1.2, std::max(-0.2, y));
        xs[i] = x;
        ys[i] = y;
    }
}

void expect_codes_identical(const monitor::MonitorBank& bank,
                            const std::vector<double>& xs,
                            const std::vector<double>& ys) {
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    ASSERT_EQ(compiled.size(), bank.size());
    std::vector<unsigned> codes;
    compiled.codes_into(xs, ys, codes);
    ASSERT_EQ(codes.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        ASSERT_EQ(codes[i], bank.code(xs[i], ys[i]))
            << "sample " << i << " at (" << xs[i] << ", " << ys[i] << ")";
        ASSERT_EQ(compiled.code(xs[i], ys[i]), codes[i]) << "sample " << i;
    }
}

TEST(MosId, BitIdenticalToMosEvaluateId) {
    for (const spice::MosModel model : {spice::MosModel::ekv, spice::MosModel::level1}) {
        for (const spice::MosType type : {spice::MosType::nmos, spice::MosType::pmos}) {
            spice::MosParams p;
            p.model = model;
            p.type = type;
            p.w = 1.8e-6;
            for (double vgs = -1.5; vgs <= 1.5; vgs += 0.03125) {
                for (double vds = -1.5; vds <= 1.5; vds += 0.03125) {
                    const double full = spice::mos_evaluate(p, vgs, vds).id;
                    const double id = spice::mos_id(p, vgs, vds);
                    // Exact bitwise equality, not a tolerance.
                    ASSERT_EQ(full, id) << "model " << static_cast<int>(model)
                                        << " type " << static_cast<int>(type)
                                        << " vgs " << vgs << " vds " << vds;
                }
            }
        }
    }
}

TEST(CompiledWaveform, MultitoneSamplesBitIdentical) {
    Rng rng(11u);
    for (int rep = 0; rep < 5; ++rep) {
        std::vector<Tone> tones;
        const int n_tones = 1 + rep % 4;
        for (int k = 0; k < n_tones; ++k)
            tones.push_back({rng.uniform(0.05, 0.4), 1000.0 * (k + 1),
                             rng.uniform(0.0, 6.28)});
        const MultitoneWaveform w(rng.uniform(0.2, 0.8), tones);
        const auto compiled = kernels::CompiledWaveform::compile(w);
        ASSERT_TRUE(compiled.has_value());
        EXPECT_EQ(compiled->tone_count(), tones.size());

        const double t0 = rng.uniform(0.0, 1e-3);
        const double duration = w.period();
        const std::size_t n = 777;
        std::vector<double> kernel_buf;
        compiled->sample_into(t0, duration, n, kernel_buf);
        const double dt = duration / static_cast<double>(n);
        ASSERT_EQ(kernel_buf.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const double t = t0 + static_cast<double>(i) * dt;
            ASSERT_EQ(kernel_buf[i], w.value(t)) << "sample " << i;
        }
    }
}

TEST(CompiledWaveform, SineAndDcBitIdentical) {
    const SineWaveform sine(0.4, 0.25, 5e3, 1.234);
    const DcWaveform dc(0.6125);
    for (const Waveform* w : {static_cast<const Waveform*>(&sine),
                              static_cast<const Waveform*>(&dc)}) {
        const auto compiled = kernels::CompiledWaveform::compile(*w);
        ASSERT_TRUE(compiled.has_value());
        std::vector<double> buf;
        compiled->sample_into(1e-5, 4e-4, 512, buf);
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const double t = 1e-5 + static_cast<double>(i) * (4e-4 / 512.0);
            ASSERT_EQ(buf[i], w->value(t));
        }
    }
}

TEST(CompiledWaveform, NonClosedFormFallsBackToVirtualLoop) {
    const PwlWaveform pwl({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.5}});
    EXPECT_FALSE(kernels::CompiledWaveform::compile(pwl).has_value());
    // The SampledSignal entry point still samples it (virtual loop).
    std::vector<double> buf;
    SampledSignal::sample_waveform_into(pwl, 0.0, 2.0, 64, buf);
    for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i], pwl.value(static_cast<double>(i) * (2.0 / 64.0)));
}

TEST(CompiledMonitorBank, Table1MosBankBitIdentical) {
    Rng rng(42u);
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 2048, xs, ys);
    const auto bank = monitor::build_table1_bank();
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    EXPECT_EQ(compiled.compiled_count(), bank.size());
    EXPECT_EQ(compiled.fallback_count(), 0u);
    // Table I shares its X/Y input devices across rows: the 12 dynamic
    // legs deduplicate to 6 unique currents per sample.
    EXPECT_EQ(compiled.unique_leg_count(), 6u);
    expect_codes_identical(bank, xs, ys);
}

TEST(CompiledMonitorBank, PerturbedMosMonitorsBitIdentical) {
    // Monte-Carlo-perturbed legs exercise the vt0_delta / kp_scale /
    // offset_current merge the compiler hoists.
    Rng rng(7u);
    const mc::PelgromModel pelgrom;
    const mc::ProcessVariation process;
    monitor::MonitorBank bank;
    for (int row = 1; row <= 6; ++row)
        bank.add(std::make_unique<monitor::MosCurrentBoundary>(
            monitor::perturb_monitor(monitor::table1_config(row), pelgrom,
                                     process, rng)));
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 1024, xs, ys);
    expect_codes_identical(bank, xs, ys);
}

TEST(CompiledMonitorBank, LinearBankBitIdentical) {
    Rng rng(43u);
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 2048, xs, ys);
    const auto bank = monitor::build_linear_approximation_bank();
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    EXPECT_EQ(compiled.fallback_count(), 0u);
    expect_codes_identical(bank, xs, ys);
}

TEST(CompiledMonitorBank, MixedBankWithFallbackBitIdentical) {
    Rng rng(44u);
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 2048, xs, ys);
    monitor::MonitorBank bank;
    bank.add(std::make_unique<monitor::LinearBoundary>(1.0, 1.0, -1.0));
    bank.add(std::make_unique<monitor::MosCurrentBoundary>(monitor::table1_config(3)));
    bank.add(std::make_unique<CircleBoundary>(0.7, 0.7, 0.2));
    bank.add(std::make_unique<monitor::LinearBoundary>(-1.0, 2.0, -0.4));
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    EXPECT_EQ(compiled.size(), 4u);
    EXPECT_EQ(compiled.compiled_count(), 3u);
    EXPECT_EQ(compiled.fallback_count(), 1u);
    expect_codes_identical(bank, xs, ys);
}

TEST(CompiledMonitorBank, EmptyCompilableSubsetStillCorrect) {
    // Every monitor non-compilable: the kernel degrades to the virtual path
    // wholesale and must still produce identical codes.
    Rng rng(45u);
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 512, xs, ys);
    monitor::MonitorBank bank;
    bank.add(std::make_unique<CircleBoundary>(0.3, 0.3, 0.25));
    bank.add(std::make_unique<CircleBoundary>(0.7, 0.5, 0.15));
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    EXPECT_EQ(compiled.compiled_count(), 0u);
    EXPECT_EQ(compiled.fallback_count(), 2u);
    expect_codes_identical(bank, xs, ys);
}

TEST(CompiledMonitorBank, CopyIsDeep) {
    monitor::MonitorBank bank;
    bank.add(std::make_unique<CircleBoundary>(0.3, 0.3, 0.25));
    bank.add(std::make_unique<monitor::LinearBoundary>(1.0, 0.0, -0.5));
    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    const kernels::CompiledMonitorBank copy(compiled); // clones the fallback
    EXPECT_EQ(copy.code(0.3, 0.4), compiled.code(0.3, 0.4));
    EXPECT_EQ(copy.code(0.9, 0.9), bank.code(0.9, 0.9));
}

TEST(EncodeCodes, MatchesEncodeEvents) {
    Rng rng(46u);
    std::vector<double> xs;
    std::vector<double> ys;
    random_trace(rng, 4096, xs, ys);
    const auto bank = monitor::build_table1_bank();
    const double dt = 1e-7;

    std::vector<capture::CodeEvent> virtual_events;
    capture::Chronogram::encode_events(xs, ys, dt, bank, virtual_events);

    const auto compiled = kernels::CompiledMonitorBank::compile(bank);
    std::vector<unsigned> codes;
    compiled.codes_into(xs, ys, codes);
    std::vector<capture::CodeEvent> kernel_events;
    capture::Chronogram::encode_codes(codes, dt, kernel_events);

    ASSERT_EQ(kernel_events.size(), virtual_events.size());
    for (std::size_t i = 0; i < kernel_events.size(); ++i) {
        ASSERT_EQ(kernel_events[i].t, virtual_events[i].t) << "event " << i;
        ASSERT_EQ(kernel_events[i].code, virtual_events[i].code) << "event " << i;
    }
}

core::SignaturePipeline make_pipeline(bool compiled, double noise_sigma = 0.0,
                                      bool quantise = false) {
    core::PipelineOptions opts;
    opts.samples_per_period = 2048;
    opts.compiled_kernels = compiled;
    opts.noise_sigma = noise_sigma;
    opts.quantise = quantise;
    if (quantise)
        opts.capture = {.f_clk = 20e6, .counter_bits = 24};
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

TEST(PipelineKernels, CompiledNdfBitIdenticalToVirtual) {
    core::SignaturePipeline fast = make_pipeline(true);
    core::SignaturePipeline slow = make_pipeline(false);
    const filter::BehaviouralCut golden(core::paper_biquad());
    fast.set_golden(golden);
    slow.set_golden(golden);
    core::NdfScratch scratch_fast;
    core::NdfScratch scratch_slow;
    for (double dev = -0.2; dev <= 0.2001; dev += 0.04) {
        const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(dev));
        const double a = fast.ndf_of(cut, scratch_fast);
        const double b = slow.ndf_of(cut, scratch_slow);
        ASSERT_EQ(a, b) << "deviation " << dev;
        // And against the allocating virtual reference path.
        ASSERT_EQ(a, slow.ndf_of(cut)) << "deviation " << dev;
    }
}

TEST(PipelineKernels, NoisyAndQuantisedPathsBitIdentical) {
    core::SignaturePipeline fast = make_pipeline(true, 0.005, true);
    core::SignaturePipeline slow = make_pipeline(false, 0.005, true);
    const filter::BehaviouralCut golden(core::paper_biquad());
    fast.set_golden(golden);
    slow.set_golden(golden);
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.1));
    core::NdfScratch sa;
    core::NdfScratch sb;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        ASSERT_EQ(fast.ndf_of(cut, sa, &rng_a), slow.ndf_of(cut, sb, &rng_b))
            << "seed " << seed;
    }
}

TEST(PipelineKernels, BatchEvaluatorUsesCompiledPath) {
    core::SignaturePipeline fast = make_pipeline(true);
    core::SignaturePipeline slow = make_pipeline(false);
    const filter::BehaviouralCut golden(core::paper_biquad());
    fast.set_golden(golden);
    slow.set_golden(golden);
    std::vector<double> devs;
    for (int d = -15; d <= 15; d += 3)
        devs.push_back(d);
    const core::BatchNdfEvaluator batch_fast(fast, {.threads = 2});
    const core::BatchNdfEvaluator batch_slow(slow, {.threads = 2});
    const auto a = batch_fast.evaluate_deviations(core::paper_biquad(), devs);
    const auto b = batch_slow.evaluate_deviations(core::paper_biquad(), devs);
    ASSERT_EQ(a, b);
}

} // namespace
} // namespace xysig
