// Differential exactness harness for the fast-math vecmath layer.
//
// Three contracts, each gate-enforced here and in bench_kernels:
//  * the exact sampling path is untouched by the fast-math work — over
//    seeded randomized tone tables, CompiledWaveform::sample_into in
//    SampleMode::exact stays bit-identical to the virtual per-sample
//    Waveform::value loop;
//  * the fast kernels are accurate — sin/exp within 2 ULP of libm, log
//    within 2 ULP, softplus within 4 ULP of a long-double reference —
//    with a ULP histogram printed on any violation;
//  * the fast kernels are ISA-independent — forcing scalar dispatch
//    reproduces the native (SIMD) results bit for bit, and the exposed
//    *_scalar reference lanes equal single-lane batch calls exactly.
//
// Case counts escalate under -DXYSIG_FAST_MATH_TESTS=ON (the dedicated
// CI lane): 1500 randomized tone tables instead of the local 200.

#include "kernels/vecmath.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/compiled_waveform.h"
#include "signal/sampled.h"
#include "signal/waveform.h"

namespace xysig {
namespace {

namespace vm = kernels::vecmath;

#ifdef XYSIG_FAST_MATH_TESTS
constexpr int kToneTables = 1500;
constexpr std::size_t kSamplesPerTable = 1024;
constexpr std::size_t kKernelPoints = 1u << 20;
#else
constexpr int kToneTables = 200;
constexpr std::size_t kSamplesPerTable = 512;
constexpr std::size_t kKernelPoints = 1u << 17;
#endif

/// Bitwise equality including the sign of zero and NaN payloads — the
/// cross-ISA and scalar-vs-batch contracts are about bits, not values.
[[nodiscard]] bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// ULP-distance histogram accumulated over a scan; printed when the
/// kernel under test leaves its contract so the failure shows the error
/// distribution, not just the worst offender.
class UlpHistogram {
public:
    void record(double x, double got, double want) {
        const std::uint64_t d = vm::ulp_distance(got, want);
        ++buckets_[d <= 4 ? d : 5];
        ++total_;
        if (d > worst_) {
            worst_ = d;
            worst_x_ = x;
            worst_got_ = got;
            worst_want_ = want;
        }
    }
    [[nodiscard]] std::uint64_t worst() const { return worst_; }
    [[nodiscard]] std::string str(const char* name) const {
        std::ostringstream os;
        os << name << " ULP histogram over " << total_ << " samples:\n";
        for (int b = 0; b <= 4; ++b)
            os << "  " << b << " ulp: " << buckets_[b] << "\n";
        os << "  >4 ulp: " << buckets_[5] << "\n";
        os << "  worst: " << worst_ << " ulp at x=" << std::hexfloat << worst_x_
           << " got=" << worst_got_ << " want=" << worst_want_
           << std::defaultfloat;
        return os.str();
    }

private:
    std::uint64_t buckets_[6] = {};
    std::uint64_t total_ = 0;
    std::uint64_t worst_ = 0;
    double worst_x_ = 0.0;
    double worst_got_ = 0.0;
    double worst_want_ = 0.0;
};

void expect_within_ulp(const UlpHistogram& hist, std::uint64_t bound,
                       const char* name) {
    EXPECT_LE(hist.worst(), bound) << hist.str(name);
}

/// Pins vecmath dispatch for a scope and always restores it (ASSERT
/// failures unwind through this).
class ForcedIsa {
public:
    explicit ForcedIsa(vm::Isa isa) { vm::force_isa(isa); }
    ~ForcedIsa() { vm::clear_forced_isa(); }
    ForcedIsa(const ForcedIsa&) = delete;
    ForcedIsa& operator=(const ForcedIsa&) = delete;
};

/// Randomized multitone stimulus in the paper's parameter neighbourhood:
/// 1-6 commensurable tones, random amplitudes/phases, random DC offset.
MultitoneWaveform random_multitone(Rng& rng) {
    const int n_tones = static_cast<int>(rng.uniform_int(1, 6));
    const double f0 = rng.uniform(200.0, 20e3);
    std::vector<Tone> tones;
    tones.reserve(static_cast<std::size_t>(n_tones));
    for (int k = 0; k < n_tones; ++k)
        tones.push_back({rng.uniform(0.01, 0.6),
                         f0 * static_cast<double>(k + 1),
                         rng.uniform(0.0, 6.283185307179586)});
    return MultitoneWaveform(rng.uniform(-0.5, 0.8), tones);
}

// ---------------------------------------------------------------------------
// Kernel accuracy vs libm / long-double references
// ---------------------------------------------------------------------------

TEST(VecmathDifferential, SinWithinTwoUlpOfLibm) {
    Rng rng(0x51eaf00dULL);
    std::vector<double> xs(kKernelPoints);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        // Three argument scales: the tone-table working range, the wider
        // Cody-Waite reduction range, and near-zero where the polynomial
        // tail dominates.
        switch (i % 3) {
        case 0: xs[i] = rng.uniform(-2000.0, 2000.0); break;
        case 1:
            xs[i] = rng.uniform(-vm::kMaxSinArgument, vm::kMaxSinArgument);
            break;
        default: xs[i] = rng.uniform(-1e-3, 1e-3); break;
        }
    }
    std::vector<double> out(xs.size());
    vm::sin_batch(xs.data(), out.data(), xs.size());
    UlpHistogram hist;
    for (std::size_t i = 0; i < xs.size(); ++i)
        hist.record(xs[i], out[i], std::sin(xs[i]));
    expect_within_ulp(hist, 2, "sin");
}

TEST(VecmathDifferential, ExpWithinTwoUlpOfLibm) {
    Rng rng(0xe4bf00dULL);
    std::vector<double> xs(kKernelPoints);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = (i % 2 == 0)
                    ? rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument)
                    : rng.uniform(-40.0, 40.0);
    std::vector<double> out(xs.size());
    vm::exp_batch(xs.data(), out.data(), xs.size());
    UlpHistogram hist;
    for (std::size_t i = 0; i < xs.size(); ++i)
        hist.record(xs[i], out[i], std::exp(xs[i]));
    expect_within_ulp(hist, 2, "exp");
}

TEST(VecmathDifferential, LogWithinTwoUlpOfLibm) {
    Rng rng(0x10af00dULL);
    std::vector<double> xs(kKernelPoints);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        // Positive normals spanning the full binade range, plus a band
        // around 1 where the fdlibm kernel's f = m - 1 cancellation lives.
        xs[i] = (i % 2 == 0) ? std::exp(rng.uniform(-700.0, 700.0))
                             : rng.uniform(0.25, 4.0);
    }
    std::vector<double> out(xs.size());
    vm::log_batch(xs.data(), out.data(), xs.size());
    UlpHistogram hist;
    for (std::size_t i = 0; i < xs.size(); ++i)
        hist.record(xs[i], out[i], std::log(xs[i]));
    expect_within_ulp(hist, 2, "log");
}

TEST(VecmathDifferential, SoftplusWithinFourUlpOfLongDoubleReference) {
    Rng rng(0x50f7f00dULL);
    std::vector<double> xs(kKernelPoints);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        // Half the samples in the EKV working band (the zoning path's
        // arguments), half across the full documented domain — including
        // the |x| ~ 30 band where a naive branch split loses the
        // second-order term.
        xs[i] = (i % 2 == 0)
                    ? rng.uniform(-60.0, 60.0)
                    : rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument);
    }
    std::vector<double> out(xs.size());
    vm::softplus_batch(xs.data(), out.data(), xs.size());
    UlpHistogram hist;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const long double e = std::exp(static_cast<long double>(xs[i]));
        const double want = static_cast<double>(std::log1p(e));
        hist.record(xs[i], out[i], want);
    }
    expect_within_ulp(hist, 4, "softplus");
}

// ---------------------------------------------------------------------------
// ISA-dispatch consistency
// ---------------------------------------------------------------------------

TEST(VecmathDifferential, ForcedScalarBitIdenticalToNativeDispatch) {
    const vm::Isa native = vm::native_isa();
    if (native == vm::Isa::scalar)
        GTEST_SKIP() << "no SIMD ISA on this CPU; nothing to differentiate";

    Rng rng(0x15a1d0ULL);
    // Odd length on purpose: the SIMD kernels hand the tail to the scalar
    // reference, so an off-by-one there shows up as a trailing mismatch.
    const std::size_t n = kKernelPoints / 4 + 3;
    std::vector<double> sin_x(n), exp_x(n), log_x(n), sp_x(n);
    for (std::size_t i = 0; i < n; ++i) {
        sin_x[i] = rng.uniform(-vm::kMaxSinArgument, vm::kMaxSinArgument);
        exp_x[i] = rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument);
        log_x[i] = std::exp(rng.uniform(-700.0, 700.0));
        sp_x[i] = rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument);
    }

    std::vector<double> nat(n), sca(n);
    struct Kernel {
        const char* name;
        void (*fn)(const double*, double*, std::size_t);
        const std::vector<double>* args;
    };
    const Kernel kernels[] = {
        {"sin", &vm::sin_batch, &sin_x},
        {"exp", &vm::exp_batch, &exp_x},
        {"log", &vm::log_batch, &log_x},
        {"softplus", &vm::softplus_batch, &sp_x},
    };
    for (const Kernel& k : kernels) {
        ASSERT_EQ(vm::active_isa(), native);
        k.fn(k.args->data(), nat.data(), n);
        {
            const ForcedIsa forced(vm::Isa::scalar);
            ASSERT_EQ(vm::active_isa(), vm::Isa::scalar);
            k.fn(k.args->data(), sca.data(), n);
        }
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_TRUE(same_bits(nat[i], sca[i]))
                << k.name << " lane " << i << ": native("
                << vm::isa_name(native) << ")=" << std::hexfloat << nat[i]
                << " scalar=" << sca[i] << " for x=" << (*k.args)[i];
    }
}

TEST(VecmathDifferential, ScalarReferenceEqualsSingleLaneBatch) {
    Rng rng(0x5ca1a4ULL);
    for (int i = 0; i < 2000; ++i) {
        const double sx = rng.uniform(-vm::kMaxSinArgument, vm::kMaxSinArgument);
        const double ex = rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument);
        const double lx = std::exp(rng.uniform(-700.0, 700.0));
        const double px = rng.uniform(-vm::kMaxExpArgument, vm::kMaxExpArgument);
        double out = 0.0;
        vm::sin_batch(&sx, &out, 1);
        ASSERT_TRUE(same_bits(out, vm::sin_scalar(sx))) << "sin x=" << sx;
        vm::exp_batch(&ex, &out, 1);
        ASSERT_TRUE(same_bits(out, vm::exp_scalar(ex))) << "exp x=" << ex;
        vm::log_batch(&lx, &out, 1);
        ASSERT_TRUE(same_bits(out, vm::log_scalar(lx))) << "log x=" << lx;
        vm::softplus_batch(&px, &out, 1);
        ASSERT_TRUE(same_bits(out, vm::softplus_scalar(px)))
            << "softplus x=" << px;
    }
}

TEST(VecmathDifferential, ForceIsaRejectsUnsupported) {
    for (const vm::Isa isa : {vm::Isa::scalar, vm::Isa::sse2, vm::Isa::avx2,
                              vm::Isa::neon}) {
        if (vm::isa_supported(isa)) {
            vm::force_isa(isa);
            EXPECT_EQ(vm::active_isa(), isa);
            vm::clear_forced_isa();
        } else {
            EXPECT_THROW(vm::force_isa(isa), std::exception);
        }
    }
    EXPECT_EQ(vm::active_isa(), vm::native_isa());
}

// ---------------------------------------------------------------------------
// Randomized tone tables: the sampling differential
// ---------------------------------------------------------------------------

TEST(VecmathDifferential, RandomizedToneTablesExactBitIdenticalFastWithinBound) {
    Rng rng(0xd1ff3a11ULL);
    std::vector<double> exact_buf;
    std::vector<double> fast_buf;
    std::vector<double> entry_buf;
    std::uint64_t worst_sample_ulp = 0;
    for (int table = 0; table < kToneTables; ++table) {
        const MultitoneWaveform w = random_multitone(rng);
        const auto compiled = kernels::CompiledWaveform::compile(w);
        ASSERT_TRUE(compiled.has_value()) << "table " << table;

        const double t0 = rng.uniform(0.0, 1e-3);
        const double duration = w.period();
        const std::size_t n = kSamplesPerTable;
        const double dt = duration / static_cast<double>(n);

        // Exact mode: bit-identical to the virtual per-sample loop (the
        // untouched-default contract) and to the SampledSignal entry point.
        compiled->sample_into(t0, duration, n, exact_buf, SampleMode::exact);
        ASSERT_EQ(exact_buf.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const double t = t0 + static_cast<double>(i) * dt;
            ASSERT_TRUE(same_bits(exact_buf[i], w.value(t)))
                << "table " << table << " sample " << i;
        }
        SampledSignal::sample_waveform_into(w, t0, duration, n, entry_buf,
                                            SampleMode::exact);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_TRUE(same_bits(entry_buf[i], exact_buf[i]))
                << "table " << table << " sample " << i;

        // Fast mode: each tone's sine within 2 ULP of correctly rounded,
        // so the per-sample error of the identical accumulation order is
        // bounded by 2 ULP (at full scale) per tone.
        compiled->sample_into(t0, duration, n, fast_buf,
                              SampleMode::fast_math);
        ASSERT_EQ(fast_buf.size(), n);
        double full_scale = std::fabs(w.offset());
        for (const Tone& tone : w.tones())
            full_scale += std::fabs(tone.amplitude);
        const double tol = 2.0 * static_cast<double>(w.tones().size()) *
                           vm::ulp_of(full_scale);
        for (std::size_t i = 0; i < n; ++i) {
            const double err = std::fabs(fast_buf[i] - exact_buf[i]);
            ASSERT_LE(err, tol)
                << "table " << table << " sample " << i << ": exact="
                << std::hexfloat << exact_buf[i] << " fast=" << fast_buf[i];
            worst_sample_ulp = std::max(
                worst_sample_ulp, vm::ulp_distance(fast_buf[i], exact_buf[i]));
        }

        // And the SampledSignal entry point routes fast_math identically.
        SampledSignal::sample_waveform_into(w, t0, duration, n, entry_buf,
                                            SampleMode::fast_math);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_TRUE(same_bits(entry_buf[i], fast_buf[i]))
                << "table " << table << " sample " << i;
    }
    // Not a gate, but a canary in the log: the fused pass stays tight.
    RecordProperty("worst_sample_ulp",
                   static_cast<int>(std::min<std::uint64_t>(
                       worst_sample_ulp, 1u << 20)));
}

TEST(VecmathDifferential, FastPathCrossIsaBitIdenticalOnToneTables) {
    if (vm::native_isa() == vm::Isa::scalar)
        GTEST_SKIP() << "no SIMD ISA on this CPU; nothing to differentiate";
    Rng rng(0xc405515aULL);
    std::vector<double> native_buf;
    std::vector<double> scalar_buf;
    const int tables = kToneTables / 10 + 5;
    for (int table = 0; table < tables; ++table) {
        const MultitoneWaveform w = random_multitone(rng);
        const auto compiled = kernels::CompiledWaveform::compile(w);
        ASSERT_TRUE(compiled.has_value());
        const double t0 = rng.uniform(0.0, 1e-3);
        compiled->sample_into(t0, w.period(), kSamplesPerTable, native_buf,
                              SampleMode::fast_math);
        {
            const ForcedIsa forced(vm::Isa::scalar);
            compiled->sample_into(t0, w.period(), kSamplesPerTable, scalar_buf,
                                  SampleMode::fast_math);
        }
        for (std::size_t i = 0; i < native_buf.size(); ++i)
            ASSERT_TRUE(same_bits(native_buf[i], scalar_buf[i]))
                << "table " << table << " sample " << i;
    }
}

TEST(VecmathDifferential, OutOfRangeToneTableFallsBackToExact) {
    // 60 GHz tone over a long window: omega * t leaves kMaxSinArgument,
    // so tones_in_range must refuse and the fast path must produce the
    // exact bits (deterministic fallback, not a degraded polynomial).
    const MultitoneWaveform w(0.1, {{0.5, 60e9, 0.25}});
    const auto compiled = kernels::CompiledWaveform::compile(w);
    ASSERT_TRUE(compiled.has_value());
    const double t0 = 5.0; // omega * t0 ~ 1.9e12 >> 2^20
    const std::size_t n = 256;

    const double omega = 2.0 * 3.141592653589793 * 60e9;
    const double amp = 0.5;
    const double phase = 0.25;
    const vm::ToneTable tt{.amplitude = &amp,
                           .omega = &omega,
                           .phase = &phase,
                           .tones = 1,
                           .offset = 0.1};
    EXPECT_FALSE(vm::tones_in_range(tt, t0, w.period() / 256.0, n));

    std::vector<double> exact_buf;
    std::vector<double> fast_buf;
    compiled->sample_into(t0, w.period(), n, exact_buf, SampleMode::exact);
    compiled->sample_into(t0, w.period(), n, fast_buf, SampleMode::fast_math);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_TRUE(same_bits(exact_buf[i], fast_buf[i])) << "sample " << i;
}

TEST(VecmathDifferential, PureDcTableFastIsExact) {
    const DcWaveform dc(0.6125);
    const auto compiled = kernels::CompiledWaveform::compile(dc);
    ASSERT_TRUE(compiled.has_value());
    std::vector<double> exact_buf;
    std::vector<double> fast_buf;
    compiled->sample_into(0.0, 1e-3, 128, exact_buf, SampleMode::exact);
    compiled->sample_into(0.0, 1e-3, 128, fast_buf, SampleMode::fast_math);
    for (std::size_t i = 0; i < 128; ++i)
        ASSERT_TRUE(same_bits(exact_buf[i], fast_buf[i])) << "sample " << i;
}

} // namespace
} // namespace xysig
