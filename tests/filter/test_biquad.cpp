// Biquad behavioural model tests against closed-form second-order theory.

#include "filter/biquad.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"

namespace xysig::filter {
namespace {

Biquad lp(double f0 = 10e3, double q = 1.0, double gain = 1.0) {
    return Biquad({.f0 = f0, .q = q, .gain = gain, .kind = BiquadKind::low_pass});
}

TEST(Biquad, LowPassDcGainAndRolloff) {
    const Biquad b = lp(10e3, 1.0, 2.0);
    EXPECT_NEAR(b.magnitude(1.0), 2.0, 1e-6);
    // Two decades above f0: -80 dB/2dec from the 2nd-order rolloff.
    EXPECT_NEAR(b.magnitude(1e6), 2.0 * 1e-4, 2e-5);
}

TEST(Biquad, MagnitudeAtF0IsQTimesGain) {
    for (double q : {0.5, 0.707, 1.0, 2.0, 5.0}) {
        const Biquad b = lp(10e3, q, 1.0);
        EXPECT_NEAR(b.magnitude(10e3), q, 1e-9) << "Q=" << q;
        EXPECT_NEAR(b.phase(10e3), -kPi / 2.0, 1e-9) << "Q=" << q;
    }
}

TEST(Biquad, BandPassPeaksAtF0) {
    const Biquad b({.f0 = 10e3, .q = 2.0, .gain = 1.0, .kind = BiquadKind::band_pass});
    EXPECT_NEAR(b.magnitude(10e3), 1.0, 1e-9); // unity at centre
    EXPECT_LT(b.magnitude(5e3), 0.8);
    EXPECT_LT(b.magnitude(20e3), 0.8);
    EXPECT_NEAR(b.phase(10e3), 0.0, 1e-9);
}

TEST(Biquad, HighPassBlocksDcPassesHighF) {
    const Biquad b({.f0 = 10e3, .q = 1.0, .gain = 1.0, .kind = BiquadKind::high_pass});
    EXPECT_NEAR(b.magnitude(1.0), 0.0, 1e-7);
    EXPECT_NEAR(b.magnitude(1e6), 1.0, 1e-3);
}

TEST(Biquad, F0ShiftScalesNaturalFrequency) {
    const Biquad b = lp(10e3);
    const Biquad shifted = b.with_f0_shift(0.10);
    EXPECT_NEAR(shifted.design().f0, 11e3, 1e-9);
    // Q and gain untouched.
    EXPECT_DOUBLE_EQ(shifted.design().q, b.design().q);
    EXPECT_DOUBLE_EQ(shifted.design().gain, b.design().gain);
    EXPECT_THROW((void)b.with_f0_shift(-1.5), ContractError);
}

TEST(Biquad, QShiftScalesQuality) {
    const Biquad b = lp(10e3, 2.0);
    EXPECT_NEAR(b.with_q_shift(-0.25).design().q, 1.5, 1e-12);
}

TEST(Biquad, SteadyStateOutputTonewiseExact) {
    const Biquad b = lp(14e3, 1.0);
    const MultitoneWaveform in(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, kPi}});
    const MultitoneWaveform out = b.steady_state_output(in);
    ASSERT_EQ(out.tones().size(), 2u);
    EXPECT_NEAR(out.offset(), 0.5, 1e-12); // H(0) = 1
    EXPECT_NEAR(out.tones()[0].amplitude, 0.3 * b.magnitude(5e3), 1e-12);
    EXPECT_NEAR(out.tones()[1].amplitude, 0.15 * b.magnitude(15e3), 1e-12);
    EXPECT_NEAR(out.tones()[0].phase_rad, b.phase(5e3), 1e-12);
    EXPECT_NEAR(out.tones()[1].phase_rad, kPi + b.phase(15e3), 1e-12);
}

TEST(Biquad, SimulateConvergesToSteadyState) {
    const Biquad b = lp(14e3, 1.0);
    const MultitoneWaveform in(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, kPi}});
    const MultitoneWaveform expected = b.steady_state_output(in);
    const double T = in.period();
    // Simulate 10 periods; compare the last one against the exact output.
    const std::size_t n_per = 2048;
    const auto sim = b.simulate(in, 0.0, 10.0 * T, 10 * n_per);
    double max_err = 0.0;
    for (std::size_t i = 9 * n_per; i < 10 * n_per; ++i) {
        const double t = sim.time_at(i);
        max_err = std::max(max_err, std::abs(sim[i] - expected.value(t)));
    }
    EXPECT_LT(max_err, 2e-4);
}

TEST(Biquad, SimulateStepResponseSecondOrder) {
    // Critically-ish damped LP step response must settle to gain without
    // excessive overshoot for Q = 0.5 (two real poles).
    const Biquad b = lp(1e3, 0.5, 1.0);
    const DcWaveform step(1.0);
    const auto sim = b.simulate(step, 0.0, 10e-3, 10000);
    EXPECT_NEAR(sim[sim.size() - 1], 1.0, 1e-3);
    EXPECT_LT(sim.max(), 1.001); // no overshoot for Q <= 0.5
}

TEST(Biquad, RejectsInvalidDesign) {
    EXPECT_THROW(Biquad({.f0 = 0.0, .q = 1.0, .gain = 1.0, .kind = BiquadKind::low_pass}),
                 ContractError);
    EXPECT_THROW(Biquad({.f0 = 1e3, .q = 0.0, .gain = 1.0, .kind = BiquadKind::low_pass}),
                 ContractError);
}

} // namespace
} // namespace xysig::filter
