// CUT abstraction tests: behavioural fast path vs transistor... vs netlist
// transient path must agree on the observed Lissajous period.

#include "filter/cut.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_setup.h"
#include "filter/tow_thomas.h"

namespace xysig::filter {
namespace {

TEST(BehaviouralCut, XChannelIsTheStimulus) {
    const BehaviouralCut cut(core::paper_biquad());
    const MultitoneWaveform stim = core::paper_stimulus();
    const XyTrace tr = cut.respond(stim, 512);
    ASSERT_EQ(tr.size(), 512u);
    EXPECT_DOUBLE_EQ(tr.start_time(), 0.0);
    for (std::size_t i = 0; i < tr.size(); i += 37)
        EXPECT_NEAR(tr.x()[i], stim.value(tr.time_at(i)), 1e-12);
}

TEST(BehaviouralCut, TraceSpansOneExactPeriod) {
    const BehaviouralCut cut(core::paper_biquad());
    const MultitoneWaveform stim = core::paper_stimulus();
    const XyTrace tr = cut.respond(stim, 1000);
    EXPECT_NEAR(tr.dt() * static_cast<double>(tr.size()), stim.period(), 1e-15);
    // Periodicity: value just past the window equals the first sample.
    EXPECT_NEAR(tr.x()[0], stim.value(stim.period()), 1e-9);
}

TEST(BehaviouralCut, OutputIsFilteredStimulus) {
    const Biquad bq = core::paper_biquad();
    const BehaviouralCut cut(bq);
    const MultitoneWaveform stim = core::paper_stimulus();
    const MultitoneWaveform expected = bq.steady_state_output(stim);
    const XyTrace tr = cut.respond(stim, 256);
    for (std::size_t i = 0; i < tr.size(); i += 17)
        EXPECT_NEAR(tr.y()[i], expected.value(tr.time_at(i)), 1e-12);
}

TEST(BehaviouralCut, DescriptionMentionsParameters) {
    const BehaviouralCut cut(core::paper_biquad());
    EXPECT_NE(cut.description().find("14000"), std::string::npos);
}

TEST(SpiceCut, TowThomasMatchesBehaviouralBiquad) {
    // The central cross-validation: the netlist CUT simulated by our SPICE
    // engine must produce the same Lissajous as the exact behavioural path.
    const Biquad bq = core::paper_biquad();
    TowThomasCircuit ckt =
        build_tow_thomas(TowThomasDesign::from_biquad(bq.design(), 10e3));
    SpiceCut spice_cut(ckt.netlist, ckt.input_source, ckt.input_node, ckt.lp_node,
                       /*settle_periods=*/10);
    const BehaviouralCut fast_cut(bq);

    const MultitoneWaveform stim = core::paper_stimulus();
    const std::size_t n = 512;
    const XyTrace slow = spice_cut.respond(stim, n);
    const XyTrace fast = fast_cut.respond(stim, n);

    double max_err_x = 0.0, max_err_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        max_err_x = std::max(max_err_x, std::abs(slow.x()[i] - fast.x()[i]));
        max_err_y = std::max(max_err_y, std::abs(slow.y()[i] - fast.y()[i]));
    }
    EXPECT_LT(max_err_x, 1e-6);  // x is the source itself
    EXPECT_LT(max_err_y, 5e-3);  // y: integration + residual settling error
}

TEST(SpiceCut, RejectsTooFewSettlePeriods) {
    TowThomasCircuit ckt = build_tow_thomas(TowThomasDesign{});
    EXPECT_THROW(SpiceCut(ckt.netlist, "Vin", "in", "lp", 0), ContractError);
}

TEST(SpiceCut, RespondIntoBitIdenticalToRespondAndRepeatable) {
    TowThomasCircuit ckt = build_tow_thomas(
        TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    const SpiceCut cut(ckt.netlist, ckt.input_source, ckt.input_node,
                       ckt.lp_node, /*settle_periods=*/2);
    const MultitoneWaveform stim = core::paper_stimulus();

    const XyTrace tr = cut.respond(stim, 256);
    std::vector<double> xs, ys;
    double dt = 0.0;
    // Twice through the scratch path: the reused internal transient buffer
    // must not leak state between evaluations.
    for (int round = 0; round < 2; ++round) {
        cut.respond_into(stim, 256, xs, ys, dt);
        ASSERT_EQ(xs.size(), 256u);
        EXPECT_EQ(dt, tr.dt());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            ASSERT_EQ(xs[i], tr.x()[i]) << "round " << round << " i " << i;
            ASSERT_EQ(ys[i], tr.y()[i]) << "round " << round << " i " << i;
        }
    }
}

TEST(SpiceCut, OwningConstructorMatchesReferenceForm) {
    TowThomasCircuit ckt = build_tow_thomas(
        TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    const SpiceCut by_ref(ckt.netlist, ckt.input_source, ckt.input_node,
                          ckt.lp_node, /*settle_periods=*/2);
    const SpiceCut owning(
        std::make_unique<spice::Netlist>(ckt.netlist.clone()), ckt.input_source,
        ckt.input_node, ckt.lp_node, /*settle_periods=*/2);

    const MultitoneWaveform stim = core::paper_stimulus();
    const XyTrace a = by_ref.respond(stim, 256);
    const XyTrace b = owning.respond(stim, 256);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(b.x()[i], a.x()[i]) << "i " << i;
        ASSERT_EQ(b.y()[i], a.y()[i]) << "i " << i;
    }
}

} // namespace
} // namespace xysig::filter
