// Cross-validation of the Tow-Thomas and Sallen-Key netlist builders
// against the behavioural Biquad: the same transfer function must emerge
// from our own AC engine.

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "filter/sallen_key.h"
#include "filter/tow_thomas.h"
#include "spice/ac.h"
#include "spice/elements.h"

namespace xysig::filter {
namespace {

TEST(TowThomasDesign, FromBiquadRealisesParameters) {
    const BiquadDesign d{.f0 = 14e3, .q = 1.0, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    const TowThomasDesign t = TowThomasDesign::from_biquad(d, 10e3);
    EXPECT_NEAR(t.f0(), 14e3, 1e-6 * 14e3);
    EXPECT_NEAR(t.q_factor(), 1.0, 1e-12);
    EXPECT_NEAR(t.dc_gain(), 1.0, 1e-12);
}

TEST(TowThomas, AcResponseMatchesBehaviouralBiquad) {
    const BiquadDesign d{.f0 = 10e3, .q = 1.5, .gain = 2.0,
                         .kind = BiquadKind::low_pass};
    const Biquad behavioural(d);
    TowThomasCircuit ckt = build_tow_thomas(TowThomasDesign::from_biquad(d, 10e3));
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);

    spice::AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 1e6;
    opts.points_per_decade = 10;
    const auto res = spice::run_ac(ckt.netlist, opts);

    for (std::size_t i = 0; i < res.point_count(); ++i) {
        const double f = res.frequencies()[i];
        const std::complex<double> expected = behavioural.transfer(f);
        const std::complex<double> got = res.voltage(ckt.lp_node, i);
        EXPECT_NEAR(std::abs(got), std::abs(expected), 1e-4 * std::abs(expected) + 1e-9)
            << "f=" << f;
    }
}

TEST(TowThomas, BandPassOutputMatchesBiquadBp) {
    const BiquadDesign d{.f0 = 10e3, .q = 1.5, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    TowThomasCircuit ckt = build_tow_thomas(TowThomasDesign::from_biquad(d, 10e3));
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);
    spice::AcOptions opts;
    opts.f_start = 10e3;
    opts.f_stop = 10.001e3; // single point at f0
    opts.points_per_decade = 1;
    const auto res = spice::run_ac(ckt.netlist, opts);
    // At f0 the band-pass node peaks with |H_bp| = Q * (R/Rin) = Q here.
    EXPECT_NEAR(std::abs(res.voltage(ckt.bp_node, 0)), 1.5, 0.01);
}

TEST(TowThomas, F0InjectionMovesNaturalFrequency) {
    const BiquadDesign d{.f0 = 10e3, .q = 1.0, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    TowThomasCircuit ckt = build_tow_thomas(TowThomasDesign::from_biquad(d, 10e3));
    ckt.inject_f0_shift(0.10);
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);

    // Compare against a behavioural biquad with f0 shifted +10%.
    const Biquad shifted = Biquad(d).with_f0_shift(0.10);
    spice::AcOptions opts;
    opts.f_start = 1e3;
    opts.f_stop = 100e3;
    opts.points_per_decade = 10;
    const auto res = spice::run_ac(ckt.netlist, opts);
    for (std::size_t i = 0; i < res.point_count(); ++i) {
        const double f = res.frequencies()[i];
        EXPECT_NEAR(std::abs(res.voltage(ckt.lp_node, i)), shifted.magnitude(f),
                    1e-3 * shifted.magnitude(f) + 1e-9);
    }
}

TEST(SallenKeyDesign, FromBiquadRealisesParameters) {
    const BiquadDesign d{.f0 = 14e3, .q = 0.9, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    const SallenKeyDesign s = SallenKeyDesign::from_biquad(d, 10e3);
    EXPECT_NEAR(s.f0(), 14e3, 1.0);
    EXPECT_NEAR(s.q_factor(), 0.9, 1e-9);
}

TEST(SallenKey, AcResponseMatchesBehaviouralBiquad) {
    const BiquadDesign d{.f0 = 12e3, .q = 0.707, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    const Biquad behavioural(d);
    SallenKeyCircuit ckt = build_sallen_key(SallenKeyDesign::from_biquad(d, 10e3));
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);
    spice::AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 1e6;
    opts.points_per_decade = 8;
    const auto res = spice::run_ac(ckt.netlist, opts);
    for (std::size_t i = 0; i < res.point_count(); ++i) {
        const double f = res.frequencies()[i];
        const double expected = behavioural.magnitude(f);
        EXPECT_NEAR(std::abs(res.voltage(ckt.lp_node, i)), expected,
                    1e-4 * expected + 1e-9)
            << "f=" << f;
    }
}

TEST(SallenKey, F0InjectionScalesCutoff) {
    const BiquadDesign d{.f0 = 10e3, .q = 0.707, .gain = 1.0,
                         .kind = BiquadKind::low_pass};
    SallenKeyCircuit ckt = build_sallen_key(SallenKeyDesign::from_biquad(d, 10e3));
    ckt.inject_f0_shift(-0.10);
    const double c1 = ckt.netlist.get<spice::Capacitor>("C1").capacitance();
    EXPECT_NEAR(c1, ckt.design.c1 / 0.9, 1e-15);
}

} // namespace
} // namespace xysig::filter
