// Unit tests for sampled signals and X-Y traces.

#include "signal/sampled.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "signal/waveform.h"

namespace xysig {
namespace {

TEST(SampledSignal, FromWaveformSamplesCorrectTimes) {
    const SineWaveform w(0.0, 1.0, 1.0);
    const auto s = SampledSignal::from_waveform(w, 0.0, 1.0, 100);
    EXPECT_EQ(s.size(), 100u);
    EXPECT_DOUBLE_EQ(s.dt(), 0.01);
    EXPECT_NEAR(s[25], 1.0, 1e-12); // quarter period
    EXPECT_NEAR(s.time_at(50), 0.5, 1e-12);
}

TEST(SampledSignal, EndpointExcludedSoPeriodsConcatenate) {
    const SineWaveform w(0.0, 1.0, 1.0);
    const auto s = SampledSignal::from_waveform(w, 0.0, 1.0, 10);
    // Last sample is at t = 0.9, not t = 1.0.
    EXPECT_NEAR(s.time_at(9), 0.9, 1e-12);
}

TEST(SampledSignal, ValueAtInterpolatesLinearly) {
    SampledSignal s(0.0, 1.0, {0.0, 10.0, 20.0});
    EXPECT_DOUBLE_EQ(s.value_at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.value_at(1.25), 12.5);
    EXPECT_DOUBLE_EQ(s.value_at(-1.0), 0.0);  // clamp low
    EXPECT_DOUBLE_EQ(s.value_at(10.0), 20.0); // clamp high
}

TEST(SampledSignal, RmsOfSine) {
    const SineWaveform w(0.0, 1.0, 1.0);
    const auto s = SampledSignal::from_waveform(w, 0.0, 1.0, 1000);
    EXPECT_NEAR(s.rms(), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(SampledSignal, MinMax) {
    const SineWaveform w(0.5, 0.3, 1.0);
    const auto s = SampledSignal::from_waveform(w, 0.0, 1.0, 1000);
    EXPECT_NEAR(s.min(), 0.2, 1e-4);
    EXPECT_NEAR(s.max(), 0.8, 1e-4);
}

TEST(SampledSignal, SliceTimeKeepsAlignment) {
    SampledSignal s(0.0, 0.1, {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
    const auto cut = s.slice_time(0.15, 0.45);
    ASSERT_EQ(cut.size(), 3u);
    EXPECT_NEAR(cut.start_time(), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(cut[0], 2.0);
    EXPECT_DOUBLE_EQ(cut[2], 4.0);
}

/// Reference implementation of the pre-arithmetic slice_time: scan every
/// index and apply the predicate directly. The arithmetic version must
/// select exactly the same samples under floating-point rounding.
SampledSignal slice_time_by_scan(const SampledSignal& s, double t_begin,
                                 double t_end) {
    std::vector<double> out;
    double new_start = t_begin;
    bool first = true;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const double t = s.time_at(i);
        if (t >= t_begin && t < t_end) {
            if (first) {
                new_start = t;
                first = false;
            }
            out.push_back(s[i]);
        }
    }
    return SampledSignal(new_start, s.dt(), std::move(out));
}

TEST(SampledSignal, SliceTimeMatchesFullScanOnRandomWindows) {
    Rng rng(99u);
    for (int rep = 0; rep < 200; ++rep) {
        const double start = rng.uniform(-1.0, 1.0);
        const double dt = rng.uniform(1e-6, 0.3);
        const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform(0.0, 64.0));
        std::vector<double> samples(n);
        for (double& v : samples)
            v = rng.uniform(-1.0, 1.0);
        const SampledSignal s(start, dt, samples);

        // Windows that straddle the signal, clip an edge or land exactly on
        // sample instants (the FP-sensitive case).
        double t_begin = rng.uniform(start - 2.0 * dt,
                                     start + static_cast<double>(n) * dt);
        if (rep % 3 == 0)
            t_begin = s.time_at(static_cast<std::size_t>(
                rng.uniform(0.0, static_cast<double>(n - 1))));
        const double t_end =
            t_begin + rng.uniform(dt, static_cast<double>(n + 2) * dt);

        const SampledSignal ref = slice_time_by_scan(s, t_begin, t_end);
        if (ref.empty()) {
            EXPECT_THROW((void)s.slice_time(t_begin, t_end), ContractError)
                << "rep " << rep;
            continue;
        }
        const SampledSignal got = s.slice_time(t_begin, t_end);
        ASSERT_EQ(got.size(), ref.size()) << "rep " << rep;
        EXPECT_EQ(got.start_time(), ref.start_time()) << "rep " << rep;
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], ref[i]) << "rep " << rep << " sample " << i;
    }
}

TEST(SampledSignal, SliceTimeWholeSignalAndEdges) {
    const SampledSignal s(1.0, 0.25, {10.0, 11.0, 12.0, 13.0});
    const auto all = s.slice_time(0.0, 100.0);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_DOUBLE_EQ(all.start_time(), 1.0);
    // t_begin exactly on a sample keeps it; t_end exactly on one drops it.
    const auto half = s.slice_time(1.25, 1.75);
    ASSERT_EQ(half.size(), 2u);
    EXPECT_DOUBLE_EQ(half[0], 11.0);
    EXPECT_DOUBLE_EQ(half[1], 12.0);
    // Window entirely outside the samples: nothing to keep.
    EXPECT_THROW((void)s.slice_time(3.0, 4.0), ContractError);
    EXPECT_THROW((void)s.slice_time(-2.0, -1.0), ContractError);
}

TEST(SampledSignal, WhiteNoiseHasRequestedSigma) {
    SampledSignal s(0.0, 1e-6, std::vector<double>(50000, 0.0));
    Rng rng(1234);
    s.add_white_noise(rng, 0.005);
    EXPECT_NEAR(stddev(s.samples()), 0.005, 3e-4);
    EXPECT_NEAR(mean(s.samples()), 0.0, 3e-4);
}

TEST(SampledSignal, ZeroNoiseIsNoOp) {
    SampledSignal s(0.0, 1.0, {1.0, 2.0});
    Rng rng(1);
    s.add_white_noise(rng, 0.0);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(XyTrace, RequiresMatchingTimeBase) {
    SampledSignal x(0.0, 1.0, {0.0, 1.0, 2.0});
    SampledSignal y_ok(0.0, 1.0, {5.0, 6.0, 7.0});
    EXPECT_NO_THROW(XyTrace(x, y_ok));
    SampledSignal y_len(0.0, 1.0, {5.0, 6.0});
    EXPECT_THROW(XyTrace(x, y_len), ContractError);
    SampledSignal y_dt(0.0, 0.5, {5.0, 6.0, 7.0});
    EXPECT_THROW(XyTrace(x, y_dt), ContractError);
}

TEST(XyTrace, BoundingBox) {
    SampledSignal x(0.0, 1.0, {0.1, 0.9, 0.5});
    SampledSignal y(0.0, 1.0, {0.2, 0.4, 0.8});
    const XyTrace tr(x, y);
    const auto box = tr.bounding_box();
    EXPECT_DOUBLE_EQ(box.x_min, 0.1);
    EXPECT_DOUBLE_EQ(box.x_max, 0.9);
    EXPECT_DOUBLE_EQ(box.y_min, 0.2);
    EXPECT_DOUBLE_EQ(box.y_max, 0.8);
}

TEST(XyTrace, NoiseAffectsBothChannels) {
    SampledSignal x(0.0, 1.0, std::vector<double>(1000, 0.0));
    SampledSignal y(0.0, 1.0, std::vector<double>(1000, 0.0));
    XyTrace tr(std::move(x), std::move(y));
    Rng rng(77);
    tr.add_white_noise(rng, 0.01);
    EXPECT_GT(stddev(tr.x().samples()), 0.005);
    EXPECT_GT(stddev(tr.y().samples()), 0.005);
    // Channels get independent draws.
    bool differ = false;
    for (std::size_t i = 0; i < tr.size() && !differ; ++i)
        differ = tr.x()[i] != tr.y()[i];
    EXPECT_TRUE(differ);
}

/// A waveform the tone-table compiler cannot see through — the "custom"
/// case of the fast_math no-op contract.
class StaircaseWaveform final : public Waveform {
public:
    [[nodiscard]] double value(double t) const override {
        return std::floor(t * 10.0) * 0.125;
    }
    [[nodiscard]] double period() const override { return 0.0; }
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<StaircaseWaveform>(*this);
    }
};

TEST(SampleWaveformInto, FastMathIsANoOpForFallbackWaveforms) {
    // Waveforms without a tone-table form (PWL, pulse, custom) must ignore
    // the sampling mode entirely: fast_math output is bit-for-bit the exact
    // output. A regression here would silently put approximate samples on
    // the exact path's non-closed-form waveforms.
    const PwlWaveform pwl({{0.0, 0.0}, {0.4, 1.0}, {1.0, -0.5}, {2.0, 0.25}});
    const PulseWaveform pulse(0.0, 1.0, 0.1, 0.05, 0.07, 0.4, 1.0);
    const StaircaseWaveform custom;
    for (const Waveform* w : {static_cast<const Waveform*>(&pwl),
                              static_cast<const Waveform*>(&pulse),
                              static_cast<const Waveform*>(&custom)}) {
        std::vector<double> exact_buf;
        std::vector<double> fast_buf;
        SampledSignal::sample_waveform_into(*w, 0.125, 2.0, 333, exact_buf,
                                            SampleMode::exact);
        SampledSignal::sample_waveform_into(*w, 0.125, 2.0, 333, fast_buf,
                                            SampleMode::fast_math);
        ASSERT_EQ(exact_buf.size(), 333u);
        ASSERT_EQ(fast_buf.size(), 333u);
        for (std::size_t i = 0; i < exact_buf.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(fast_buf[i]),
                      std::bit_cast<std::uint64_t>(exact_buf[i]))
                << "sample " << i;
            // And both equal the virtual per-sample loop.
            const double t = 0.125 + static_cast<double>(i) * (2.0 / 333.0);
            ASSERT_EQ(exact_buf[i], w->value(t)) << "sample " << i;
        }
    }
}

TEST(SampleWaveformInto, DefaultModeArgumentIsExact) {
    // Callers that never heard of SampleMode keep the exact path.
    const SineWaveform sine(0.4, 0.25, 5e3, 1.234);
    std::vector<double> default_buf;
    std::vector<double> exact_buf;
    SampledSignal::sample_waveform_into(sine, 0.0, 4e-4, 256, default_buf);
    SampledSignal::sample_waveform_into(sine, 0.0, 4e-4, 256, exact_buf,
                                        SampleMode::exact);
    for (std::size_t i = 0; i < default_buf.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint64_t>(default_buf[i]),
                  std::bit_cast<std::uint64_t>(exact_buf[i]))
            << "sample " << i;
}

} // namespace
} // namespace xysig
