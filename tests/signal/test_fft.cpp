// Unit tests for the FFT and tone-extraction helpers.

#include "signal/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"

namespace xysig {
namespace {

TEST(NextPow2, Basics) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fft, RoundTripRecoversSignal) {
    std::vector<std::complex<double>> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = {std::sin(0.3 * static_cast<double>(i)),
                   std::cos(0.7 * static_cast<double>(i))};
    const auto original = data;
    fft_radix2(data);
    fft_radix2(data, /*inverse=*/true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
    }
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
    std::vector<std::complex<double>> data(8, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft_radix2(data);
    for (const auto& c : data) {
        EXPECT_NEAR(c.real(), 1.0, 1e-12);
        EXPECT_NEAR(c.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, NonPowerOfTwoIsContractViolation) {
    std::vector<std::complex<double>> data(12);
    EXPECT_THROW(fft_radix2(data), ContractError);
}

TEST(Fft, ParsevalHolds) {
    std::vector<std::complex<double>> data(128);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = {std::cos(0.1 * static_cast<double>(i) * static_cast<double>(i)), 0.0};
    double time_energy = 0.0;
    for (const auto& c : data)
        time_energy += std::norm(c);
    fft_radix2(data);
    double freq_energy = 0.0;
    for (const auto& c : data)
        freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(data.size()),
                1e-6 * freq_energy);
}

TEST(ToneComponent, RecoversAmplitudeAndPhase) {
    const double fs = 1e6;
    const double f = 12.5e3; // exactly 25 cycles in 2000 samples
    const double amp = 0.37;
    const double phase = 0.9;
    std::vector<double> samples(2000);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = amp * std::sin(kTwoPi * f * static_cast<double>(i) / fs + phase);
    const auto c = tone_component(samples, fs, f);
    EXPECT_NEAR(std::abs(c), amp, 1e-9);
    EXPECT_NEAR(std::arg(c), phase - kPi / 2.0, 1e-9);
}

TEST(ToneComponent, DcComponent) {
    std::vector<double> samples(100, 0.55);
    const auto c = tone_component(samples, 1e3, 0.0);
    EXPECT_NEAR(c.real(), 0.55, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
}

TEST(ToneComponent, RejectsOutOfBandFrequency) {
    std::vector<double> samples(16, 0.0);
    EXPECT_THROW((void)tone_component(samples, 1000.0, 600.0), ContractError);
}

TEST(MagnitudeSpectrum, PeakAtToneBin) {
    const std::size_t n = 1024;
    const double fs = 1024.0;
    const double f = 128.0; // bin 128 exactly
    std::vector<double> samples(n);
    for (std::size_t i = 0; i < n; ++i)
        samples[i] = 0.8 * std::sin(kTwoPi * f * static_cast<double>(i) / fs);
    const auto mags = magnitude_spectrum(samples);
    ASSERT_EQ(mags.size(), n / 2 + 1);
    EXPECT_NEAR(mags[128], 0.8, 1e-9);
    EXPECT_NEAR(mags[64], 0.0, 1e-9);
}

TEST(MagnitudeSpectrum, DcLevelAtBinZero) {
    std::vector<double> samples(256, 1.5);
    const auto mags = magnitude_spectrum(samples);
    EXPECT_NEAR(mags[0], 1.5, 1e-9);
}

} // namespace
} // namespace xysig
