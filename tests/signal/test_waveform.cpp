// Unit tests for stimulus waveforms, including the exact common-period
// computation that defines the Lissajous period T used by the signature.

#include "signal/waveform.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"

namespace xysig {
namespace {

TEST(DcWaveform, ConstantEverywhere) {
    const DcWaveform w(0.55);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.55);
    EXPECT_DOUBLE_EQ(w.value(1e3), 0.55);
    EXPECT_DOUBLE_EQ(w.period(), 0.0);
}

TEST(SineWaveform, ValueAndPeriod) {
    const SineWaveform w(0.5, 0.3, 5e3);
    EXPECT_DOUBLE_EQ(w.period(), 1.0 / 5e3);
    EXPECT_NEAR(w.value(0.0), 0.5, 1e-12);
    EXPECT_NEAR(w.value(0.25 / 5e3), 0.8, 1e-12); // quarter period: peak
    EXPECT_NEAR(w.value(0.75 / 5e3), 0.2, 1e-12);
}

TEST(SineWaveform, PhaseShift) {
    const SineWaveform w(0.0, 1.0, 1.0, kPi / 2.0); // cos
    EXPECT_NEAR(w.value(0.0), 1.0, 1e-12);
}

TEST(SineWaveform, RejectsNonPositiveFrequency) {
    EXPECT_THROW(SineWaveform(0.0, 1.0, 0.0), ContractError);
}

TEST(CommonPeriod, HarmonicTones) {
    // 5 kHz and 15 kHz -> period of the 5 kHz fundamental.
    const double t = common_period({5e3, 15e3});
    EXPECT_NEAR(t, 1.0 / 5e3, 1e-15);
}

TEST(CommonPeriod, NonHarmonicRational) {
    // 2 Hz and 3 Hz -> T = 1 s (LCM of 1/2 and 1/3).
    EXPECT_NEAR(common_period({2.0, 3.0}), 1.0, 1e-12);
    // 10 Hz and 25 Hz -> T = 0.2 s (f ratio 2:5).
    EXPECT_NEAR(common_period({10.0, 25.0}), 0.2, 1e-12);
}

TEST(CommonPeriod, SingleTone) {
    EXPECT_NEAR(common_period({7.0}), 1.0 / 7.0, 1e-15);
}

TEST(CommonPeriod, RejectsEmptyAndNonPositive) {
    EXPECT_THROW((void)common_period({}), NumericError);
    EXPECT_THROW((void)common_period({1.0, -2.0}), NumericError);
}

TEST(MultitoneWaveform, PaperStimulusPeriodIs200us) {
    // The paper's chronogram (Fig. 7) spans one 200 us Lissajous period;
    // tones at 5 kHz and 15 kHz share exactly that period.
    const MultitoneWaveform w(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, 0.0}});
    EXPECT_NEAR(w.period(), 200e-6, 1e-12);
}

TEST(MultitoneWaveform, ValueIsSumOfTones) {
    const MultitoneWaveform w(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, 0.3}});
    const double t = 37e-6;
    const double expected = 0.5 + 0.3 * std::sin(kTwoPi * 5e3 * t) +
                            0.15 * std::sin(kTwoPi * 15e3 * t + 0.3);
    EXPECT_NEAR(w.value(t), expected, 1e-12);
}

TEST(MultitoneWaveform, PeriodicityHolds) {
    const MultitoneWaveform w(0.5, {{0.3, 5e3, 0.1}, {0.15, 15e3, 0.7}});
    const double T = w.period();
    for (double t : {0.0, 13e-6, 150e-6})
        EXPECT_NEAR(w.value(t), w.value(t + T), 1e-9);
}

TEST(MultitoneWaveform, ExcursionBound) {
    const MultitoneWaveform w(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, 0.0}});
    EXPECT_DOUBLE_EQ(w.max_abs_excursion(), 0.45);
}

TEST(PwlWaveform, InterpolatesAndClamps) {
    const PwlWaveform w({{0.0, 0.0}, {1.0, 2.0}, {3.0, 0.0}});
    EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0); // clamp before
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(1.0), 2.0);
    EXPECT_DOUBLE_EQ(w.value(2.0), 1.0);
    EXPECT_DOUBLE_EQ(w.value(5.0), 0.0); // clamp after
}

TEST(PwlWaveform, RejectsNonMonotonicTime) {
    EXPECT_THROW(PwlWaveform({{0.0, 0.0}, {0.0, 1.0}}), ContractError);
}

TEST(PulseWaveform, EdgesAndLevels) {
    // 0->1 pulse: delay 1, rise 1, width 2, fall 1, period 10.
    const PulseWaveform w(0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 10.0);
    EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);
    EXPECT_DOUBLE_EQ(w.value(1.5), 0.5); // mid-rise
    EXPECT_DOUBLE_EQ(w.value(3.0), 1.0); // on
    EXPECT_DOUBLE_EQ(w.value(4.5), 0.5); // mid-fall
    EXPECT_DOUBLE_EQ(w.value(9.0), 0.0); // off
    EXPECT_DOUBLE_EQ(w.value(11.5), 0.5); // periodic repeat
}

TEST(Waveform, CloneIsDeepAndEquivalent) {
    const MultitoneWaveform w(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, 0.0}});
    const auto c = w.clone();
    for (double t : {0.0, 1e-5, 9e-5})
        EXPECT_DOUBLE_EQ(c->value(t), w.value(t));
    EXPECT_DOUBLE_EQ(c->period(), w.period());
}

} // namespace
} // namespace xysig
