// JobResultCache guarantees: content-addressed whole-job lookups with
// covering-range semantics (a cached superset serves any contained member
// slice), LRU bounding with superset-absorbs-subset insertion, and an
// exact pipeline fingerprint that switches caching off — never aliases —
// for pipelines whose bits cannot be fingerprinted.

#include "server/job_cache.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_setup.h"
#include "monitor/table1.h"

namespace xysig::server {
namespace {

core::SignaturePipeline make_pipeline(core::PipelineOptions opts = {}) {
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

/// Synthetic result range [first, first+count) under GLOBAL member ids.
std::vector<SweepResult> make_range(std::size_t first, std::size_t count) {
    std::vector<SweepResult> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        SweepResult r;
        r.member_id = first + i;
        r.ndf = 0.125 * static_cast<double>(first + i);
        r.label = "m" + std::to_string(first + i);
        out.push_back(std::move(r));
    }
    return out;
}

TEST(PipelineFingerprint, ExactWhenCacheableEmptyOtherwise) {
    core::PipelineOptions opts;
    opts.samples_per_period = 256;
    const std::string fp = pipeline_fingerprint(make_pipeline(opts));
    ASSERT_FALSE(fp.empty());
    // Deterministic: same construction, same fingerprint.
    EXPECT_EQ(fp, pipeline_fingerprint(make_pipeline(opts)));
    // Every bit-relevant knob must move the fingerprint.
    core::PipelineOptions spp = opts;
    spp.samples_per_period = 512;
    EXPECT_NE(fp, pipeline_fingerprint(make_pipeline(spp)));
    core::PipelineOptions kernels = opts;
    kernels.compiled_kernels = false;
    EXPECT_NE(fp, pipeline_fingerprint(make_pipeline(kernels)));
    // Noise and capture quantisation make results non-replayable from a
    // content key (RNG / capture options outside the key): caching off.
    core::PipelineOptions noisy = opts;
    noisy.noise_sigma = 1e-3;
    EXPECT_TRUE(pipeline_fingerprint(make_pipeline(noisy)).empty());
    core::PipelineOptions quantised = opts;
    quantised.quantise = true;
    EXPECT_TRUE(pipeline_fingerprint(make_pipeline(quantised)).empty());
}

TEST(JobResultCache, MissThenExactHit) {
    JobResultCache cache(4);
    EXPECT_FALSE(cache.lookup("k", 0, 10).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert("k", 0, make_range(0, 10));
    EXPECT_EQ(cache.size(), 1u);
    const auto hit = cache.lookup("k", 0, 10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->first, 0u);
    ASSERT_EQ(hit->results->size(), 10u);
    EXPECT_EQ((*hit->results)[7].member_id, 7u);
    EXPECT_EQ(cache.hits(), 1u);
    // A different key, or the same key past the stored range, still misses.
    EXPECT_FALSE(cache.lookup("other", 0, 10).has_value());
    EXPECT_FALSE(cache.lookup("k", 5, 6).has_value());
}

TEST(JobResultCache, CoveringRangeServesSubsets) {
    JobResultCache cache(4);
    cache.insert("k", 10, make_range(10, 20)); // members [10, 30)
    const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
        {10, 20}, {10, 5}, {25, 5}, {14, 3}, {12, 0}};
    for (const auto& [first, count] : ranges) {
        const auto hit = cache.lookup("k", first, count);
        ASSERT_TRUE(hit.has_value()) << first << "+" << count;
        // The caller indexes results[(first - hit->first) + i].
        ASSERT_LE(hit->first, first);
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ((*hit->results)[first - hit->first + i].member_id,
                      first + i);
    }
    // Ranges that poke outside the stored span are misses, not clamps.
    EXPECT_FALSE(cache.lookup("k", 5, 10).has_value());
    EXPECT_FALSE(cache.lookup("k", 25, 10).has_value());
    EXPECT_FALSE(cache.lookup("k", 30, 1).has_value());
}

TEST(JobResultCache, SupersetInsertAbsorbsContainedEntries) {
    JobResultCache cache(8);
    cache.insert("k", 0, make_range(0, 5));
    cache.insert("k", 20, make_range(20, 5));
    EXPECT_EQ(cache.size(), 2u);
    // A superset of the first entry replaces it; the disjoint one stays.
    cache.insert("k", 0, make_range(0, 10));
    EXPECT_EQ(cache.size(), 2u);
    const auto hit = cache.lookup("k", 0, 10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->results->size(), 10u);
    // Inserting a range an existing entry already covers is a no-op.
    cache.insert("k", 2, make_range(2, 3));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup("k", 0, 10).has_value());
}

TEST(JobResultCache, LruEvictionAndRecencyRefresh) {
    JobResultCache cache(2);
    cache.insert("a", 0, make_range(0, 1));
    cache.insert("b", 0, make_range(0, 1));
    // Touch "a" so "b" is the LRU victim when "c" arrives.
    EXPECT_TRUE(cache.lookup("a", 0, 1).has_value());
    cache.insert("c", 0, make_range(0, 1));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.lookup("a", 0, 1).has_value());
    EXPECT_TRUE(cache.lookup("c", 0, 1).has_value());
    EXPECT_FALSE(cache.lookup("b", 0, 1).has_value());
    // A hit's payload outlives eviction of its entry (draining streams).
    const auto held = cache.lookup("a", 0, 1);
    cache.set_capacity(1);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_TRUE(held.has_value());
    EXPECT_EQ((*held->results)[0].member_id, 0u);
}

TEST(JobResultCache, ClearResetsEntriesAndCounters) {
    JobResultCache cache(4);
    cache.insert("k", 0, make_range(0, 2));
    (void)cache.lookup("k", 0, 2);
    (void)cache.lookup("nope", 0, 1);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.capacity(), 4u);
    EXPECT_FALSE(cache.lookup("k", 0, 2).has_value());
}

} // namespace
} // namespace xysig::server
