// ChaosTransport guarantees: under every injected fault mode —
// disconnect, permanent stall, mid-JSON truncation, garbage injection,
// straggler delay — the fan-out driver's recovery machinery (re-dispatch
// from the first unreceived member, inactivity timeout, malformed-line
// peer death, work-stealing) still merges a stream bit-identical to the
// single-process reference, with a bounded number of dispatch attempts.
// The matrix runs every fault over both transports (in-process loopback
// and real sweep_server child processes) at 2 and 4 partitions.

#include "server/chaos.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "common/strings.h"
#include "server/fanout.h"
#include "server/transport.h"
#include "server/wire.h"

namespace xysig::server {
namespace {

constexpr std::size_t kSpp = 256;

/// 48 members: big enough that every partition at 4-way still sees the
/// fault fire mid-stream, small enough for a matrix of 20 runs.
const char* kGridJob =
    R"({"job":"deviations","grid":{"from":-12,"to":12,"count":48},"shard_size":8})";

[[nodiscard]] FanoutDriver::TransportFactory loopback_factory() {
    LoopbackTransport::Options opts;
    opts.workers = 2;
    opts.shard_size = 8;
    opts.samples_per_period = kSpp;
    return [opts] { return std::make_unique<LoopbackTransport>(opts); };
}

/// Server binary for process rows: ctest runs in the build directory, so
/// the default relative path resolves; XYSIG_SWEEP_SERVER overrides (the
/// TSan CI job builds without examples and skips these rows).
[[nodiscard]] std::string server_binary() {
    const char* env = std::getenv("XYSIG_SWEEP_SERVER");
    return env != nullptr ? env : "./example_sweep_server";
}

[[nodiscard]] FanoutDriver::TransportFactory
process_factory(const std::string& binary) {
    const std::vector<std::string> argv = {
        binary, "--spp=" + std::to_string(kSpp), "--workers=2",
        "--shard-size=8"};
    return [argv] { return std::make_unique<ProcessTransport>(argv); };
}

[[nodiscard]] std::vector<std::string>
single_process_reference(const std::string& job_line) {
    WireJob wire = parse_wire_job(JsonValue::parse(job_line));
    SweepServiceOptions sopts;
    sopts.workers = 2;
    SweepService service(make_paper_pipeline(kSpp), sopts);
    std::vector<std::string> out;
    (void)service.run(wire.job, [&](const SweepResult& r) {
        out.push_back(format_double_exact(r.ndf));
    });
    return out;
}

/// One matrix cell: run the grid job under `plan` with the first
/// transport poisoned, assert exact merge and bounded attempts.
void run_chaos_cell(const FanoutDriver::TransportFactory& base,
                    const char* transport_name, ChaosPlan plan,
                    unsigned partitions,
                    const std::vector<std::string>& reference) {
    SCOPED_TRACE(std::string(chaos_mode_name(plan.mode)) + " over " +
                 transport_name + " at " + std::to_string(partitions) +
                 " partitions");
    FanoutOptions opts;
    opts.partitions = partitions;
    // Tight enough that a permanent stall is detected fast, loose enough
    // that a loaded CI box never shoots a healthy peer (heartbeats are
    // not on here; the fault modes themselves provide the silence).
    opts.read_timeout_seconds = plan.mode == ChaosMode::stall ? 1.0 : 5.0;
    opts.max_attempts = 3;
    if (plan.mode == ChaosMode::delay)
        opts.steal_threshold = 4; // rescue the straggler instead of waiting

    FanoutDriver driver(chaos_factory(base, plan), opts);
    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(std::string(kGridJob), [&](const FanoutRecord& r) {
            merged.push_back(r);
        });

    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(merged[i].member, i);
        EXPECT_EQ(merged[i].ndf_hex, reference[i]) << "member " << i;
    }
    EXPECT_EQ(summary.members_done, reference.size());
    EXPECT_FALSE(summary.cancelled);

    unsigned total_attempts = 0;
    for (const PartitionOutcome& p : summary.partitions)
        total_attempts += p.attempts;
    if (plan.mode == ChaosMode::delay) {
        // Nothing dies in delay mode: attempts beyond one-per-segment
        // would mean the driver shot a slow-but-alive peer.
        EXPECT_EQ(summary.redispatches, 0u);
    } else {
        // Exactly one poisoned transport, so recovery costs at most a
        // couple of extra dispatches across the whole run.
        EXPECT_GE(summary.redispatches, 1u);
        EXPECT_LE(total_attempts, partitions + opts.max_attempts);
    }
}

class ChaosMatrix : public ::testing::TestWithParam<ChaosMode> {};

TEST_P(ChaosMatrix, LoopbackMergeStaysBitIdentical) {
    const auto reference = single_process_reference(kGridJob);
    ASSERT_EQ(reference.size(), 48u);
    for (const unsigned partitions : {2u, 4u}) {
        ChaosPlan plan;
        plan.mode = GetParam();
        plan.after_lines = 5;
        plan.stall_seconds = 0.0; // stall never recovers on its own
        plan.delay_seconds = 0.01;
        run_chaos_cell(loopback_factory(), "loopback", plan, partitions,
                       reference);
    }
}

TEST_P(ChaosMatrix, ProcessMergeStaysBitIdentical) {
    const std::string binary = server_binary();
    if (::access(binary.c_str(), X_OK) != 0)
        GTEST_SKIP() << "sweep_server binary not found at " << binary
                     << " (set XYSIG_SWEEP_SERVER)";
    const auto reference = single_process_reference(kGridJob);
    ASSERT_EQ(reference.size(), 48u);
    for (const unsigned partitions : {2u, 4u}) {
        ChaosPlan plan;
        plan.mode = GetParam();
        plan.after_lines = 5;
        plan.stall_seconds = 0.0;
        plan.delay_seconds = 0.01;
        run_chaos_cell(process_factory(binary), "process", plan, partitions,
                       reference);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFaultModes, ChaosMatrix,
                         ::testing::Values(ChaosMode::disconnect,
                                           ChaosMode::stall,
                                           ChaosMode::truncate,
                                           ChaosMode::garbage,
                                           ChaosMode::delay),
                         // `param_info`, not `info`: the macro expansion has
                         // its own `info` in scope (-Wshadow under hardening).
                         [](const auto& param_info) {
                             return std::string(
                                 chaos_mode_name(param_info.param));
                         });

TEST(ChaosTransport, GarbageLineIsDeterministicForAFixedSeed) {
    // Two transports with the same plan corrupt identically — the whole
    // point of seeded chaos is reproducible failures.
    auto make = [] {
        LoopbackTransport::Options opts;
        opts.workers = 1;
        opts.samples_per_period = kSpp;
        return std::make_unique<LoopbackTransport>(opts);
    };
    ChaosPlan plan;
    plan.mode = ChaosMode::garbage;
    plan.after_lines = 0; // corrupt the very first line (the ready banner)
    plan.seed = 42;

    std::string first, second;
    {
        ChaosTransport t(make(), plan);
        ASSERT_EQ(t.read_line(first, 10.0), Transport::ReadStatus::line);
    }
    {
        ChaosTransport t(make(), plan);
        ASSERT_EQ(t.read_line(second, 10.0), Transport::ReadStatus::line);
    }
    EXPECT_EQ(first, second);
    EXPECT_THROW((void)JsonValue::parse(first), std::exception);
}

TEST(ChaosTransport, FaultyTransportBudgetLimitsInjection) {
    // chaos_factory(_, _, 1): only the first transport is poisoned; the
    // re-dispatch replacement (second invocation) must come up clean.
    ChaosPlan plan;
    plan.mode = ChaosMode::disconnect;
    plan.after_lines = 0;
    auto factory = chaos_factory(loopback_factory(), plan, 1);

    auto poisoned = factory();
    std::string line;
    EXPECT_EQ(poisoned->read_line(line, 10.0), Transport::ReadStatus::closed);

    auto clean = factory();
    ASSERT_EQ(clean->read_line(line, 10.0), Transport::ReadStatus::line);
    const JsonValue ready = JsonValue::parse(line);
    EXPECT_EQ(ready.string_or("event", ""), "ready");
}

} // namespace
} // namespace xysig::server
