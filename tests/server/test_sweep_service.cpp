// SweepService guarantees: bit-identity to the serial/batch NDF paths at
// any (shard size x worker count), one netlist clone per worker on SPICE
// universes (pinned through the Netlist::clone_count() probe), in-order
// streaming, mid-job cancellation, and golden-cache reuse across jobs.

#include "server/sweep_service.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "capture/fault_injection.h"
#include "core/batch_ndf.h"
#include "core/golden_cache.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"

namespace xysig::server {
namespace {

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

core::SignaturePipeline make_pipeline(std::size_t samples_per_period = 256) {
    core::PipelineOptions opts;
    opts.samples_per_period = samples_per_period;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

std::vector<double> grid(double from, double to, std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(from + (to - from) * static_cast<double>(i) /
                                 static_cast<double>(count - 1));
    return out;
}

TEST(SweepService, DeviationJobBitIdenticalToBatchAtAnyShardAndWorkerCount) {
    // >= 10^3-member universe, >= 3 (shard size x worker count) combos: the
    // acceptance gate of the sharded service.
    const std::vector<double> deviations = grid(-20.0, 20.0, 1200);
    const filter::Biquad nominal = core::paper_biquad();

    core::SignaturePipeline reference_pipe = make_pipeline();
    reference_pipe.set_golden(filter::BehaviouralCut(nominal));
    const core::BatchNdfEvaluator batch(reference_pipe, {.threads = 2});
    const std::vector<double> reference =
        batch.evaluate_deviations(nominal, deviations);

    struct Combo {
        std::size_t shard_size;
        unsigned workers;
    };
    for (const Combo combo : {Combo{1, 1}, Combo{7, 4}, Combo{64, 3},
                              Combo{1200, 2}, Combo{500, 8}}) {
        SweepServiceOptions sopts;
        sopts.workers = combo.workers;
        sopts.shard_size = combo.shard_size;
        SweepService service(make_pipeline(), sopts);
        SweepJob job = SweepJob::deviation_grid(nominal, deviations);

        std::vector<double> streamed;
        std::vector<std::size_t> order;
        const JobSummary summary = service.run(job, [&](const SweepResult& r) {
            order.push_back(r.member_id);
            streamed.push_back(r.ndf);
        });

        ASSERT_EQ(streamed.size(), reference.size())
            << "shard " << combo.shard_size << " workers " << combo.workers;
        for (std::size_t i = 0; i < reference.size(); ++i)
            ASSERT_TRUE(same_bits(streamed[i], reference[i]))
                << "member " << i << " shard " << combo.shard_size
                << " workers " << combo.workers;
        // In-order, gap-free streaming on an uncancelled job.
        for (std::size_t i = 0; i < order.size(); ++i)
            ASSERT_EQ(order[i], i);
        EXPECT_FALSE(summary.cancelled);
        EXPECT_EQ(summary.members_done, deviations.size());
        EXPECT_EQ(summary.shards_done, summary.shards_total);
        EXPECT_EQ(summary.netlist_clones, 0u); // behavioural: no SPICE clones
        EXPECT_EQ(summary.shard_timings.size(), summary.shards_total);
    }
}

TEST(SweepService, StreamsSignaturesAndLabels) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 2});
    const SweepJob job = SweepJob::deviation_grid(
        core::paper_biquad(), {-10.0, 10.0}, core::SweptParameter::f0);
    std::vector<SweepResult> results;
    (void)service.run(job,
                      [&](const SweepResult& r) { results.push_back(r); });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "dev(f0,-10%)");
    EXPECT_EQ(results[1].label, "dev(f0,10%)");
    for (const SweepResult& r : results) {
        ASSERT_TRUE(r.signature.has_value());
        EXPECT_GE(r.signature->zone_visits(), 2u);
        EXPECT_TRUE(std::isfinite(r.ndf));
        EXPECT_GT(r.ndf, 0.0); // +/-10% f0 is detectable (paper Fig. 8)
    }
}

TEST(SweepService, ExplicitCutListMatchesBatchEvaluate) {
    const filter::Biquad nominal = core::paper_biquad();
    std::vector<filter::BehaviouralCut> cuts;
    for (const double dev : grid(-15.0, 15.0, 64))
        cuts.emplace_back(nominal.with_q_shift(dev / 100.0));
    std::vector<const filter::Cut*> raw;
    for (const auto& c : cuts)
        raw.push_back(&c);
    const filter::BehaviouralCut golden(nominal);

    core::SignaturePipeline reference_pipe = make_pipeline();
    reference_pipe.set_golden(golden);
    const core::BatchNdfEvaluator batch(reference_pipe, {.threads = 2});
    const std::vector<double> reference = batch.evaluate(raw);

    SweepService service(make_pipeline(), {.workers = 3, .shard_size = 5});
    const SweepJob job = SweepJob::from_cuts(raw, &golden);
    std::vector<double> streamed;
    (void)service.run(job,
                      [&](const SweepResult& r) { streamed.push_back(r.ndf); });
    ASSERT_EQ(streamed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_TRUE(same_bits(streamed[i], reference[i])) << "member " << i;
}

TEST(SweepService, SpiceUniverseOneClonePerWorkerAndBitIdenticalToBatch) {
    const auto circuit = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    const core::SpiceObservation obs{circuit.input_source, circuit.input_node,
                                     circuit.lp_node, /*settle_periods=*/2};
    capture::FaultUniverseOptions fopts;
    auto faults = capture::enumerate_bridging_faults(circuit.netlist, fopts);
    const auto opens = capture::enumerate_open_faults(circuit.netlist, fopts);
    faults.insert(faults.end(), opens.begin(), opens.end());

    // Reference: the PR-3 batch engine (one deep clone PER FAULT).
    core::SignaturePipeline reference_pipe = make_pipeline();
    reference_pipe.set_golden(filter::SpiceCut(
        std::make_unique<spice::Netlist>(circuit.netlist.clone()),
        obs.input_source, obs.x_node, obs.y_node, obs.settle_periods));
    const core::BatchNdfEvaluator batch(reference_pipe, {.threads = 2});
    const std::vector<double> reference =
        batch.evaluate_netlist_faults(circuit.netlist, faults, obs);

    constexpr unsigned kWorkers = 3;
    SweepService service(make_pipeline(), {.workers = kWorkers, .shard_size = 1});
    const SweepJob job = SweepJob::fault_universe(
        std::make_shared<spice::Netlist>(circuit.netlist.clone()), faults, obs);

    const std::uint64_t clones_before = spice::Netlist::clone_count();
    std::vector<double> streamed;
    bool any_nan = false;
    const JobSummary summary = service.run(job, [&](const SweepResult& r) {
        streamed.push_back(r.ndf);
        if (std::isnan(r.ndf)) {
            any_nan = true;
            EXPECT_FALSE(r.signature.has_value());
        } else {
            EXPECT_TRUE(r.signature.has_value());
        }
    });
    const std::uint64_t clones_during =
        spice::Netlist::clone_count() - clones_before;

    // One clone per participating worker — never one per fault — plus
    // exactly one for the job's golden CUT. shard_size = 1 gives every
    // worker ample chance to participate, so the probe also caps the total.
    EXPECT_EQ(summary.netlist_clones, clones_during - 1);
    EXPECT_GE(summary.netlist_clones, 1u);
    EXPECT_LE(summary.netlist_clones, kWorkers);
    EXPECT_LT(clones_during, faults.size()); // the clone-per-fault smell test
    EXPECT_EQ(summary.shards_total, faults.size());

    // Bit identity against the clone-per-fault reference, NaNs included.
    ASSERT_EQ(streamed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        ASSERT_TRUE(same_bits(streamed[i], reference[i]))
            << "fault " << faults[i].description();
    EXPECT_TRUE(any_nan); // the universe contains unsolvable members
}

TEST(SweepService, CancellationMidJobStopsDispatchKeepsOrder) {
    SweepService service(make_pipeline(), {.workers = 4, .shard_size = 4});
    // Large enough that the workers cannot plausibly drain the whole
    // universe before the callback has delivered (and cancelled at) 20
    // results on the caller thread.
    const SweepJob job =
        SweepJob::deviation_grid(core::paper_biquad(), grid(-20.0, 20.0, 2000));

    SweepCancelToken cancel;
    std::vector<std::size_t> order;
    const JobSummary summary = service.run(
        job,
        [&](const SweepResult& r) {
            order.push_back(r.member_id);
            if (order.size() == 20)
                cancel.cancel();
        },
        &cancel);

    EXPECT_TRUE(summary.cancelled);
    EXPECT_GE(order.size(), 20u);
    EXPECT_LT(order.size(), 2000u); // dispatch really stopped
    EXPECT_LT(summary.shards_done, summary.shards_total);
    // Every evaluated member is delivered, in ascending order (gaps allowed
    // after the cancellation point).
    EXPECT_EQ(order.size(), summary.members_done);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]);
    // The contiguous prefix before cancellation is gap-free.
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepService, GoldenComputedOncePerFingerprintAcrossJobs) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    const SweepJob job =
        SweepJob::deviation_grid(core::paper_biquad(), grid(-5.0, 5.0, 32));
    auto& cache = core::GoldenSignatureCache::instance();

    (void)service.run(job, [](const SweepResult&) {});
    const std::size_t misses_after_first = cache.misses();
    const std::size_t hits_after_first = cache.hits();

    (void)service.run(job, [](const SweepResult&) {});
    (void)service.run(job, [](const SweepResult&) {});
    EXPECT_EQ(cache.misses(), misses_after_first); // no recomputation
    EXPECT_GE(cache.hits(), hits_after_first + 2); // one hit per repeat job

    const auto stats = service.stats();
    EXPECT_EQ(stats.jobs, 3u);
    EXPECT_EQ(stats.members, 3u * 32u);
}

TEST(SweepService, WorkerFaultInjectionErrorPropagates) {
    const auto circuit = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    const core::SpiceObservation obs{circuit.input_source, circuit.input_node,
                                     circuit.lp_node, 2};
    capture::NetlistFault bogus;
    bogus.kind = capture::NetlistFault::Kind::bridging;
    bogus.node_a = "no_such_node";
    bogus.node_b = circuit.lp_node;
    bogus.value = 100.0;

    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 1});
    const SweepJob job = SweepJob::fault_universe(
        std::make_shared<spice::Netlist>(circuit.netlist.clone()), {bogus}, obs);
    EXPECT_THROW((void)service.run(job, [](const SweepResult&) {}),
                 InvalidInput);
}

TEST(SweepService, ThrowingResultCallbackStopsJobAndServiceSurvives) {
    SweepService service(make_pipeline(), {.workers = 4, .shard_size = 4});
    const SweepJob job =
        SweepJob::deviation_grid(core::paper_biquad(), grid(-20.0, 20.0, 500));
    // A consumer that throws mid-stream: run() must stop the workers, wait
    // for them to release the job context, and rethrow — not crash.
    EXPECT_THROW(
        (void)service.run(job,
                          [](const SweepResult& r) {
                              if (r.member_id == 3)
                                  throw std::runtime_error("consumer failed");
                          }),
        std::runtime_error);
    // The pool is intact: the next job runs normally.
    std::size_t delivered = 0;
    (void)service.run(
        SweepJob::deviation_grid(core::paper_biquad(), {-5.0, 5.0}),
        [&](const SweepResult&) { ++delivered; });
    EXPECT_EQ(delivered, 2u);
}

TEST(SweepService, EmptyJobCompletesImmediately) {
    SweepService service(make_pipeline(), {.workers = 2});
    const SweepJob job = SweepJob::deviation_grid(core::paper_biquad(), {});
    std::size_t calls = 0;
    const JobSummary summary =
        service.run(job, [&](const SweepResult&) { ++calls; });
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(summary.members_total, 0u);
    EXPECT_EQ(summary.shards_total, 0u);
    EXPECT_FALSE(summary.cancelled);
}

} // namespace
} // namespace xysig::server
