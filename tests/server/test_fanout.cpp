// FanoutDriver guarantees: the merged multi-process result stream is
// bit-identical to a single-process SweepService::run over the same
// universe at any partition count — across empty partitions,
// single-member partitions, NaN members straddling partition boundaries,
// worker death mid-partition (re-dispatch), and cooperative cancellation
// fan-out. All tests use LoopbackTransport: a real ServerSession speaking
// the real wire format, deterministically in-process.

#include "server/fanout.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/strings.h"
#include "server/chaos.h"
#include "server/transport.h"
#include "server/wire.h"

namespace xysig::server {
namespace {

constexpr std::size_t kSpp = 256;

[[nodiscard]] FanoutDriver::TransportFactory
loopback_factory(std::size_t die_after_results = 0) {
    LoopbackTransport::Options opts;
    opts.workers = 2;
    opts.shard_size = 8;
    opts.samples_per_period = kSpp;
    opts.die_after_results = die_after_results;
    return [opts] { return std::make_unique<LoopbackTransport>(opts); };
}

struct ExpectedMember {
    std::string ndf_hex;
    std::optional<std::string> signature;
};

/// Single-process reference over the same wire job (the thing the merged
/// stream must be bit-identical to).
[[nodiscard]] std::vector<ExpectedMember>
single_process_reference(const std::string& job_line) {
    WireJob wire = parse_wire_job(JsonValue::parse(job_line));
    SweepServiceOptions sopts;
    sopts.workers = 2;
    SweepService service(make_paper_pipeline(kSpp), sopts);
    std::vector<ExpectedMember> out;
    (void)service.run(wire.job, [&](const SweepResult& r) {
        ExpectedMember m;
        m.ndf_hex = format_double_exact(r.ndf);
        if (r.signature.has_value())
            m.signature = signature_string(*r.signature);
        out.push_back(std::move(m));
    });
    return out;
}

void expect_merged_identical(const std::vector<FanoutRecord>& merged,
                             const std::vector<ExpectedMember>& reference) {
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(merged[i].member, i);
        EXPECT_EQ(merged[i].ndf_hex, reference[i].ndf_hex) << "member " << i;
        EXPECT_EQ(merged[i].signature, reference[i].signature)
            << "member " << i;
    }
}

TEST(FanoutDriver, DeviationGridMergedBitIdenticalAtMultiplePartitionCounts) {
    // The acceptance gate: a >= 1200-member deviation grid, merged streams
    // at >= 2 partition counts, bit-identical to one in-process run.
    const std::string job =
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":1200},"shard_size":16})";
    const auto reference = single_process_reference(job);
    ASSERT_EQ(reference.size(), 1200u);

    for (const unsigned partitions : {2u, 4u}) {
        FanoutOptions opts;
        opts.partitions = partitions;
        opts.verify_single_process = true;
        FanoutDriver driver(loopback_factory(), opts);

        std::vector<FanoutRecord> merged;
        const FanoutSummary summary = driver.run(
            job, [&](const FanoutRecord& r) { merged.push_back(r); });

        expect_merged_identical(merged, reference);
        EXPECT_TRUE(summary.verify_ran);
        EXPECT_TRUE(summary.verify_identical) << partitions << " partitions";
        EXPECT_EQ(summary.members_total, 1200u);
        EXPECT_EQ(summary.members_done, 1200u);
        EXPECT_EQ(summary.redispatches, 0u);
        EXPECT_FALSE(summary.cancelled);
        EXPECT_EQ(summary.samples_per_period, kSpp);
        ASSERT_EQ(summary.partitions.size(), partitions);
        std::size_t covered = 0;
        for (const PartitionOutcome& p : summary.partitions) {
            EXPECT_EQ(p.members_done, p.member_count);
            EXPECT_EQ(p.attempts, 1u);
            covered += p.member_count;
        }
        EXPECT_EQ(covered, 1200u);
    }
}

TEST(FanoutDriver, SpiceFaultUniverseMergedBitIdenticalIncludingNaN) {
    // The 29-fault Tow-Thomas universe contains members with no stable
    // solution (quiet-NaN NDFs, no signature); they must merge exactly
    // like finite members.
    const std::string job =
        R"({"job":"spice_faults","universe":"bridging+open","settle_periods":2,"shard_size":2})";
    const auto reference = single_process_reference(job);
    ASSERT_GE(reference.size(), 29u);

    for (const unsigned partitions : {2u, 3u}) {
        FanoutOptions opts;
        opts.partitions = partitions;
        opts.verify_single_process = true;
        FanoutDriver driver(loopback_factory(), opts);

        std::vector<FanoutRecord> merged;
        bool any_nan = false;
        const FanoutSummary summary =
            driver.run(job, [&](const FanoutRecord& r) {
                merged.push_back(r);
                if (std::isnan(r.ndf)) {
                    any_nan = true;
                    EXPECT_FALSE(r.signature.has_value());
                }
            });

        expect_merged_identical(merged, reference);
        EXPECT_TRUE(any_nan);
        EXPECT_TRUE(summary.verify_identical) << partitions << " partitions";
        // Clone-per-worker still holds per partition (each loopback peer
        // runs 2 workers, plus one golden clone per peer).
        for (const PartitionOutcome& p : summary.partitions)
            if (p.member_count > 0)
                EXPECT_LE(p.netlist_clones, 2u);
    }
}

TEST(FanoutDriver, NaNMembersStraddlingAPartitionBoundary) {
    const std::string job =
        R"({"job":"spice_faults","universe":"bridging+open","settle_periods":2})";
    const auto reference = single_process_reference(job);

    // Find a NaN member and put partition boundaries right at it: the NaN
    // becomes a single-member partition, its neighbours end/start the
    // adjacent partitions.
    std::size_t nan_member = reference.size();
    for (std::size_t i = 0; i < reference.size(); ++i) {
        if (reference[i].ndf_hex == format_double_exact(
                                        std::numeric_limits<double>::quiet_NaN())) {
            nan_member = i;
            break;
        }
    }
    ASSERT_LT(nan_member, reference.size()) << "universe lost its NaN members";
    ASSERT_GT(nan_member, 0u);

    FanoutOptions opts;
    opts.partition_starts = {0, nan_member, nan_member + 1};
    opts.verify_single_process = true;
    FanoutDriver driver(loopback_factory(), opts);

    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    expect_merged_identical(merged, reference);
    EXPECT_TRUE(summary.verify_identical);
    ASSERT_EQ(summary.partitions.size(), 3u);
    EXPECT_EQ(summary.partitions[1].first_member, nan_member);
    EXPECT_EQ(summary.partitions[1].member_count, 1u); // single-member partition
    EXPECT_TRUE(std::isnan(merged[nan_member].ndf));
}

TEST(FanoutDriver, EmptyAndSingleMemberPartitions) {
    // More partitions than members: the split leaves empty partitions,
    // which must neither dispatch nor stall the merge.
    const std::string job = R"({"job":"deviations","deviations":[-10,0,10]})";
    const auto reference = single_process_reference(job);

    {
        FanoutOptions opts;
        opts.partitions = 8;
        opts.verify_single_process = true;
        FanoutDriver driver(loopback_factory(), opts);
        std::vector<FanoutRecord> merged;
        const FanoutSummary summary =
            driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });
        expect_merged_identical(merged, reference);
        EXPECT_TRUE(summary.verify_identical);
        ASSERT_EQ(summary.partitions.size(), 8u);
        std::size_t empties = 0;
        for (const PartitionOutcome& p : summary.partitions) {
            if (p.member_count == 0) {
                ++empties;
                EXPECT_EQ(p.attempts, 0u); // empty partitions never dispatch
            } else {
                EXPECT_EQ(p.member_count, 1u); // and the rest are singletons
            }
        }
        EXPECT_EQ(empties, 5u);
    }
    {
        // Explicit boundaries with repeats: deliberately empty middles.
        FanoutOptions opts;
        opts.partition_starts = {0, 1, 1, 3};
        opts.verify_single_process = true;
        FanoutDriver driver(loopback_factory(), opts);
        std::vector<FanoutRecord> merged;
        const FanoutSummary summary =
            driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });
        expect_merged_identical(merged, reference);
        EXPECT_TRUE(summary.verify_identical);
        EXPECT_EQ(summary.partitions[1].member_count, 0u);
        EXPECT_EQ(summary.partitions[3].member_count, 0u);
    }
}

TEST(FanoutDriver, WorkerDeathMidPartitionIsRedispatchedBitIdentically) {
    const std::string job =
        R"({"job":"deviations","grid":{"from":-15,"to":15,"count":60},"shard_size":4})";
    const auto reference = single_process_reference(job);

    // The first transport the factory hands out dies after 5 result
    // lines; every later one is healthy. Exactly one partition loses its
    // worker mid-range and must resume at member 5 of its range on a
    // fresh transport, with nothing delivered twice.
    unsigned transports_made = 0;
    auto factory = [&transports_made]() -> std::unique_ptr<Transport> {
        LoopbackTransport::Options opts;
        opts.workers = 2;
        opts.shard_size = 8;
        opts.samples_per_period = kSpp;
        opts.die_after_results = transports_made++ == 0 ? 5 : 0;
        return std::make_unique<LoopbackTransport>(opts);
    };

    FanoutOptions opts;
    opts.partitions = 2;
    opts.verify_single_process = true;
    FanoutDriver driver(factory, opts);

    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    expect_merged_identical(merged, reference);
    EXPECT_TRUE(summary.verify_identical);
    EXPECT_EQ(summary.members_done, 60u);
    EXPECT_GE(summary.redispatches, 1u);
    EXPECT_GE(transports_made, 3u); // 2 partitions + >= 1 re-dispatch
}

TEST(FanoutDriver, ExhaustedDispatchAttemptsFailTheRun) {
    // Every peer dies after 2 results: with max_attempts = 2 the dying
    // partitions must exhaust their budget and fail the run as a whole.
    FanoutOptions opts;
    opts.partitions = 2;
    opts.max_attempts = 2;
    FanoutDriver driver(loopback_factory(/*die_after_results=*/2), opts);
    const std::string job =
        R"({"job":"deviations","grid":{"from":-10,"to":10,"count":40}})";
    EXPECT_THROW((void)driver.run(job, [](const FanoutRecord&) {}), Error);
}

TEST(FanoutDriver, CancellationFansOutAndKeepsAscendingOrder) {
    const std::string job =
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":2000},"shard_size":4})";
    FanoutOptions opts;
    opts.partitions = 2;
    FanoutDriver driver(loopback_factory(), opts);

    SweepCancelToken cancel;
    std::vector<std::size_t> order;
    const FanoutSummary summary = driver.run(
        job,
        [&](const FanoutRecord& r) {
            order.push_back(r.member);
            if (order.size() == 10)
                cancel.cancel();
        },
        &cancel);

    EXPECT_TRUE(summary.cancelled);
    EXPECT_GE(order.size(), 10u);
    EXPECT_LT(order.size(), 2000u); // dispatch really stopped
    EXPECT_EQ(order.size(), summary.members_done);
    // Ascending global order throughout; contiguous prefix before cancel.
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_FALSE(summary.verify_ran); // nothing to compare a partial stream to
}

TEST(FanoutDriver, RejectsJobsWithAnExplicitMemberRange) {
    FanoutDriver driver(loopback_factory(), {});
    const std::string job =
        R"({"job":"deviations","deviations":[-5,5],"members":{"first":0,"count":1}})";
    EXPECT_THROW((void)driver.run(job, [](const FanoutRecord&) {}),
                 InvalidInput);
}

TEST(FanoutDriver, ThrowingCallbackStopsPartitionsAndRethrows) {
    const std::string job =
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":500},"shard_size":4})";
    FanoutOptions opts;
    opts.partitions = 2;
    FanoutDriver driver(loopback_factory(), opts);
    EXPECT_THROW(
        (void)driver.run(job,
                         [](const FanoutRecord& r) {
                             if (r.member == 3)
                                 throw std::runtime_error("consumer failed");
                         }),
        std::runtime_error);
}

TEST(LoopbackTransport, EmittedEventStreamPassesProtocolCheck) {
    // Closes the emitter <-> validator loop: every line a real session
    // emits for a real job must satisfy check_protocol_line — the same
    // validator CI replays the docs/PROTOCOL.md examples through.
    LoopbackTransport::Options lopts;
    lopts.workers = 2;
    lopts.shard_size = 2;
    lopts.samples_per_period = kSpp;
    LoopbackTransport peer(lopts);

    ASSERT_TRUE(peer.send_line(
        R"({"job":"deviations","id":"ev","deviations":[-10,5],"progress_every":1,"verify_serial":true})"));
    ASSERT_TRUE(peer.send_line(R"({"cmd":"stats"})"));
    ASSERT_TRUE(peer.send_line(R"({"job":"nope","id":"bad"})")); // -> error event
    ASSERT_TRUE(peer.send_line(R"({"cmd":"quit"})"));

    std::size_t lines = 0;
    bool saw_verify = false, saw_stats = false, saw_error = false;
    std::string line;
    while (peer.read_line(line, 30.0) == Transport::ReadStatus::line) {
        EXPECT_NO_THROW(check_protocol_line(line)) << line;
        ++lines;
        saw_verify = saw_verify || line.find("\"event\":\"verify\"") !=
                                       std::string::npos;
        saw_stats = saw_stats ||
                    line.find("\"event\":\"stats\"") != std::string::npos;
        saw_error = saw_error ||
                    line.find("\"event\":\"error\"") != std::string::npos;
    }
    EXPECT_GE(lines, 8u); // ready, job_start, 2 results, 2 progress, ...
    EXPECT_TRUE(saw_verify);
    EXPECT_TRUE(saw_stats);
    EXPECT_TRUE(saw_error);
}

TEST(FanoutDriver, RejectsMalformedPartitionBoundaries) {
    // Hand-rolled partition_starts must fail loudly at run() with a
    // message naming the violated rule — not silently drop or duplicate
    // members. (Repeated starts are NOT an error: they are the documented
    // way to spell an empty partition, covered above.)
    const std::string job = R"({"job":"deviations","deviations":[-10,-5,0,5,10]})";
    const auto run_with = [&](std::vector<std::size_t> starts) {
        FanoutOptions opts;
        opts.partition_starts = std::move(starts);
        FanoutDriver driver(loopback_factory(), opts);
        (void)driver.run(job, [](const FanoutRecord&) {});
    };

    const auto expect_message = [&](std::vector<std::size_t> starts,
                                    const std::string& needle) {
        try {
            run_with(std::move(starts));
            FAIL() << "accepted malformed starts (wanted \"" << needle << "\")";
        } catch (const InvalidInput& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    expect_message({1, 3}, "begin at 0");       // first range leaks members
    expect_message({0, 9}, "past the universe"); // 5-member universe
    expect_message({0, 4, 2}, "ascend");         // descending boundary
}

TEST(FanoutDriver, ZeroReadTimeoutSurfacesAFootgunWarning) {
    // read_timeout_seconds == 0 disables the liveness watchdog entirely;
    // the run still works, but the summary must carry a warning so CLIs
    // and logs surface the hang-forever footgun.
    const std::string job = R"({"job":"deviations","deviations":[-10,0,10]})";
    const auto reference = single_process_reference(job);

    FanoutOptions opts;
    opts.partitions = 2;
    opts.read_timeout_seconds = 0.0;
    std::vector<FanoutRecord> merged;
    const FanoutSummary no_watchdog =
        FanoutDriver(loopback_factory(), opts)
            .run(job, [&](const FanoutRecord& r) { merged.push_back(r); });
    expect_merged_identical(merged, reference);
    ASSERT_FALSE(no_watchdog.warnings.empty());
    EXPECT_NE(no_watchdog.warnings.front().find("read_timeout"),
              std::string::npos);

    opts.read_timeout_seconds = 30.0;
    merged.clear();
    const FanoutSummary with_watchdog =
        FanoutDriver(loopback_factory(), opts)
            .run(job, [&](const FanoutRecord& r) { merged.push_back(r); });
    expect_merged_identical(merged, reference);
    EXPECT_TRUE(with_watchdog.warnings.empty());
}

TEST(FanoutDriver, WorkStealingRescuesAStragglerBitIdentically) {
    // One partition's transport delays every delivered line; with
    // steal_threshold set, the partition that finishes first must take
    // over the top half of the straggler's remaining range (repeatedly,
    // until the tail is small) — and the merged stream must not show a
    // seam at any stolen boundary.
    const std::string job =
        R"({"job":"deviations","grid":{"from":-15,"to":15,"count":60},"shard_size":8})";
    const auto reference = single_process_reference(job);
    ASSERT_EQ(reference.size(), 60u);

    ChaosPlan plan;
    plan.mode = ChaosMode::delay;
    plan.after_lines = 3;
    plan.delay_seconds = 0.02; // ~0.6 s serial tail without stealing

    FanoutOptions opts;
    opts.partitions = 2;
    opts.steal_threshold = 4;
    opts.read_timeout_seconds = 5.0; // delayed lines still beat this
    FanoutDriver driver(chaos_factory(loopback_factory(), plan), opts);

    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    expect_merged_identical(merged, reference);
    EXPECT_GE(summary.steals, 1u);
    EXPECT_EQ(summary.redispatches, 0u); // nobody died, nobody was shot
    unsigned per_partition = 0;
    for (const PartitionOutcome& p : summary.partitions)
        per_partition += p.steals;
    EXPECT_EQ(per_partition, summary.steals); // victim accounting adds up
}

TEST(FanoutDriver, PartitionWallClockIsRecordedForEveryBusyPartition) {
    // Regression: the per-partition wall-clock used to be written after the
    // thread's last serve loop WITHOUT the driver lock, racing the merge
    // thread's reads of the same outcome entry (and, with stealing on,
    // sibling threads' accounting writes). Pin that every non-empty
    // partition reports a positive wall-clock and that the min/max/mean
    // straggler stats are consistent with the per-partition values.
    const std::string job =
        R"({"job":"deviations","grid":{"from":-12,"to":12,"count":96},"shard_size":8})";
    FanoutOptions opts;
    opts.partitions = 3;
    opts.steal_threshold = 4; // exercise the post-steal accounting path too
    FanoutDriver driver(loopback_factory(), opts);

    std::size_t delivered = 0;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord&) { ++delivered; });

    EXPECT_EQ(delivered, 96u);
    ASSERT_EQ(summary.partitions.size(), 3u);
    double max_seen = 0.0;
    for (const PartitionOutcome& p : summary.partitions) {
        if (p.member_count == 0)
            continue;
        EXPECT_GT(p.seconds, 0.0) << "partition " << p.partition;
        max_seen = std::max(max_seen, p.seconds);
    }
    EXPECT_GT(summary.partition_seconds_min, 0.0);
    EXPECT_GE(summary.partition_seconds_max, summary.partition_seconds_min);
    EXPECT_GE(summary.partition_seconds_mean, summary.partition_seconds_min);
    EXPECT_LE(summary.partition_seconds_mean, summary.partition_seconds_max);
    EXPECT_EQ(summary.partition_seconds_max, max_seen);
}

TEST(FanoutDriver, ThrowingTransportFactoryCostsOneAttempt) {
    // A factory that fails to produce a transport (spawn failure, connect
    // refused) burns one dispatch attempt for that range and the driver
    // retries — it must neither crash the partition thread nor retry
    // for free forever.
    const std::string job = R"({"job":"deviations","deviations":[-10,0,10,20]})";
    const auto reference = single_process_reference(job);

    auto calls = std::make_shared<std::atomic<unsigned>>(0);
    auto base = loopback_factory();
    FanoutDriver::TransportFactory flaky = [calls, base] {
        if (calls->fetch_add(1) == 0)
            throw std::runtime_error("simulated spawn failure");
        return base();
    };

    FanoutOptions opts;
    opts.partitions = 2;
    opts.max_attempts = 3;
    FanoutDriver driver(std::move(flaky), opts);
    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    expect_merged_identical(merged, reference);
    EXPECT_EQ(summary.redispatches, 1u); // exactly the one failed spawn
    unsigned attempts = 0;
    for (const PartitionOutcome& p : summary.partitions)
        attempts += p.attempts;
    EXPECT_EQ(attempts, 3u); // 2 partitions + 1 retry after the throw
}

} // namespace
} // namespace xysig::server
