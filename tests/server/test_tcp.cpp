// TcpTransport / TcpListener guarantees: a localhost listen/connect pair
// speaks byte-for-byte the same protocol as the pipe transport (the
// fan-out driver cannot tell them apart), the connect handshake rejects a
// peer advertising a newer protocol version before any job flows, a
// dropped connection re-dispatches and resumes bit-identically, and v3
// heartbeats keep a slow-but-alive worker from being shot by a tight
// inactivity timeout.

#include "server/tcp_transport.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/strings.h"
#include "server/chaos.h"
#include "server/fanout.h"
#include "server/wire.h"

namespace xysig::server {
namespace {

constexpr std::size_t kSpp = 256;

[[nodiscard]] TcpListener::Options listener_options() {
    TcpListener::Options opts;
    opts.bind_address = "127.0.0.1";
    opts.port = 0; // ephemeral; port() reports the bound one
    opts.workers = 2;
    opts.shard_size = 8;
    opts.samples_per_period = kSpp;
    return opts;
}

[[nodiscard]] FanoutDriver::TransportFactory tcp_factory(unsigned short port) {
    return [port] {
        return std::make_unique<TcpTransport>("127.0.0.1", port);
    };
}

[[nodiscard]] std::vector<std::string>
single_process_reference(const std::string& job_line) {
    WireJob wire = parse_wire_job(JsonValue::parse(job_line));
    SweepServiceOptions sopts;
    sopts.workers = 2;
    SweepService service(make_paper_pipeline(kSpp), sopts);
    std::vector<std::string> out;
    (void)service.run(wire.job, [&](const SweepResult& r) {
        out.push_back(format_double_exact(r.ndf));
    });
    return out;
}

TEST(TcpTransport, ConnectHandshakeRedeliversTheReadyBanner) {
    TcpListener listener(listener_options());
    listener.start();

    TcpTransport transport("127.0.0.1", listener.port());
    // The constructor consumed the banner for version validation; the
    // first read must still see it — drop-in compatibility with the
    // pipe transports' stream.
    std::string line;
    ASSERT_EQ(transport.read_line(line, 10.0), Transport::ReadStatus::line);
    const JsonValue ready = JsonValue::parse(line);
    EXPECT_EQ(ready.string_or("event", ""), "ready");
    EXPECT_EQ(ready.number_or("version", 0.0), kProtocolVersion);
    EXPECT_EQ(transport.connect_attempts(), 1u);

    // And the connection actually serves jobs: ping -> pong (v3).
    ASSERT_TRUE(transport.send_line(R"({"cmd":"ping","id":"t1"})"));
    ASSERT_EQ(transport.read_line(line, 10.0), Transport::ReadStatus::line);
    const JsonValue pong = JsonValue::parse(line);
    EXPECT_EQ(pong.string_or("event", ""), "pong");
    EXPECT_EQ(pong.string_or("id", ""), "t1");
}

TEST(TcpTransport, RejectsAPeerSpeakingANewerProtocolVersion) {
    TcpListener::Options opts = listener_options();
    opts.ready_version_override = kProtocolVersion + 96; // a future build
    TcpListener listener(opts);
    listener.start();

    try {
        TcpTransport transport("127.0.0.1", listener.port());
        FAIL() << "handshake accepted an unsupported protocol version";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(TcpTransport, ConnectRetriesWithBackoffThenFails) {
    // Nothing listens here: a closed port must cost bounded attempts and
    // a bounded wait, then throw — not hang or crash.
    TcpListener probe(listener_options()); // grab an ephemeral port...
    const unsigned short dead_port = probe.port();
    probe.stop(); // ...then free it so nothing accepts

    TcpTransportOptions topts;
    topts.max_connect_attempts = 3;
    topts.initial_backoff_seconds = 0.01;
    topts.connect_timeout_seconds = 5.0;
    EXPECT_THROW(TcpTransport("127.0.0.1", dead_port, topts), Error);
}

TEST(TcpFanout, FourPartitionGridMergesBitIdenticallyOverLocalhost) {
    const std::string job =
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":96},"shard_size":8})";
    const auto reference = single_process_reference(job);
    ASSERT_EQ(reference.size(), 96u);

    TcpListener listener(listener_options());
    listener.start();

    FanoutOptions fopts;
    fopts.partitions = 4;
    fopts.read_timeout_seconds = 10.0;
    FanoutDriver driver(tcp_factory(listener.port()), fopts);
    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(merged[i].ndf_hex, reference[i]) << "member " << i;
    EXPECT_EQ(summary.redispatches, 0u);
    EXPECT_EQ(listener.connections_accepted(), 4u);
}

TEST(TcpFanout, DroppedConnectionReconnectsAndResumesBitIdentically) {
    const std::string job =
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":96},"shard_size":8})";
    const auto reference = single_process_reference(job);

    TcpListener listener(listener_options());
    listener.start();

    // First connection dies after 8 delivered lines; the replacement
    // connects to the same listener and resumes from the first
    // unreceived member.
    ChaosPlan plan;
    plan.mode = ChaosMode::disconnect;
    plan.after_lines = 8;
    FanoutOptions fopts;
    fopts.partitions = 2;
    fopts.read_timeout_seconds = 10.0;
    FanoutDriver driver(chaos_factory(tcp_factory(listener.port()), plan),
                        fopts);
    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(merged[i].ndf_hex, reference[i]) << "member " << i;
    EXPECT_GE(summary.redispatches, 1u);
    EXPECT_GE(listener.connections_accepted(), 3u); // 2 + the replacement
}

TEST(TcpFanout, HeartbeatsKeepAQueuedJobAliveThroughATightTimeout) {
    // One shared single-worker service serialises jobs across
    // connections. A fat job occupies it; the driver's job then waits in
    // line, receiving nothing but heartbeats — with a read timeout far
    // smaller than the wait, only the v3 liveness channel keeps the
    // driver from shooting a healthy worker.
    TcpListener::Options opts = listener_options();
    opts.share_service = true;
    opts.workers = 1;
    opts.session.heartbeat_seconds = 0.02;
    TcpListener listener(opts);
    listener.start();

    // Occupy the service with a deliberately slow job and wait until it
    // actually starts (its job_start event) so the ordering is pinned.
    TcpTransport fat("127.0.0.1", listener.port());
    ASSERT_TRUE(fat.send_line(
        R"({"job":"spice_faults","universe":"bridging+open","settle_periods":20,"emit_signatures":false,"id":"fat"})"));
    std::string line;
    bool fat_started = false;
    for (int i = 0; i < 1000 && !fat_started; ++i) {
        ASSERT_NE(fat.read_line(line, 10.0), Transport::ReadStatus::closed);
        if (line.find("\"event\":\"job_start\"") != std::string::npos)
            fat_started = true;
    }
    ASSERT_TRUE(fat_started);

    const std::string job =
        R"({"job":"deviations","grid":{"from":-6,"to":6,"count":12},"shard_size":4})";
    const auto reference = single_process_reference(job);

    FanoutOptions fopts;
    fopts.partitions = 1;
    fopts.read_timeout_seconds = 0.35; // far below the fat job's runtime
    fopts.max_attempts = 1;            // a single false kill fails the run
    FanoutDriver driver(tcp_factory(listener.port()), fopts);
    std::vector<FanoutRecord> merged;
    const FanoutSummary summary =
        driver.run(job, [&](const FanoutRecord& r) { merged.push_back(r); });

    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(merged[i].ndf_hex, reference[i]) << "member " << i;
    EXPECT_EQ(summary.redispatches, 0u);
    ASSERT_EQ(summary.partitions.size(), 1u);
    EXPECT_EQ(summary.partitions[0].attempts, 1u);
    // The wait was bridged by heartbeats, and the driver saw them.
    EXPECT_GT(summary.heartbeats, 0u);

    fat.shutdown(); // abandon the fat job; the listener tears it down
}

} // namespace
} // namespace xysig::server
