// Minimal JSON layer of the sweep server's NDJSON wire format, plus the
// wire-schema rules layered on top of it (protocol version, unknown-field
// tolerance, member-range slicing): see docs/PROTOCOL.md.

#include "server/json.h"

#include <bit>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "server/wire.h"

namespace xysig::server {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
    const JsonValue v = JsonValue::parse(
        R"({"a":1.5,"b":"text","c":[1,2,3],"d":{"e":true,"f":null},"g":-2e3})");
    EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
    EXPECT_EQ(v.at("b").as_string(), "text");
    ASSERT_EQ(v.at("c").as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("c").as_array()[2].as_number(), 3.0);
    EXPECT_TRUE(v.at("d").at("e").as_bool());
    EXPECT_TRUE(v.at("d").at("f").is_null());
    EXPECT_DOUBLE_EQ(v.at("g").as_number(), -2000.0);
}

TEST(Json, ObjectHelpers) {
    const JsonValue v = JsonValue::parse(R"({"n":4,"s":"x","b":false})");
    EXPECT_TRUE(v.has("n"));
    EXPECT_FALSE(v.has("missing"));
    EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
    EXPECT_EQ(v.string_or("s", "d"), "x");
    EXPECT_EQ(v.string_or("missing", "d"), "d");
    EXPECT_FALSE(v.bool_or("b", true));
    EXPECT_TRUE(v.bool_or("missing", true));
    EXPECT_THROW((void)v.at("missing"), InvalidInput);
}

TEST(Json, StringEscapes) {
    const JsonValue v = JsonValue::parse(R"({"s":"a\"b\\c\n\tA"})");
    EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\n\tA");
    // Round trip.
    const JsonValue again = JsonValue::parse(v.dump());
    EXPECT_EQ(again.at("s").as_string(), v.at("s").as_string());
}

TEST(Json, DumpIsDeterministicAndRoundTrips) {
    const char* text = R"({"z":1,"a":[true,null,"s"],"m":{"k":0.125}})";
    const JsonValue v = JsonValue::parse(text);
    const std::string dumped = v.dump();
    // Sorted keys, compact form.
    EXPECT_EQ(dumped, R"({"a":[true,null,"s"],"m":{"k":0.125},"z":1})");
    EXPECT_EQ(JsonValue::parse(dumped).dump(), dumped);
}

TEST(Json, NumbersRoundTripExactly) {
    for (const double x : {0.1, 1e300, -4.9e-324, 12345.6789, 0.0}) {
        const std::string dumped = JsonValue(x).dump();
        EXPECT_EQ(JsonValue::parse(dumped).as_number(), x) << dumped;
    }
}

TEST(Json, NonFiniteNumbersSerialiseAsNull) {
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW((void)JsonValue::parse(""), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{\"a\":}"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("[1,2,]"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("tru"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{} extra"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("\"unterminated"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{\"a\":1}{}"), InvalidInput);
}

TEST(Json, RejectsNonRfc8259Numbers) {
    // RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
    // std::from_chars alone is laxer than that (it accepts "inf"/"nan" and
    // leading-zero forms), so the parser pre-scans the grammar; none of
    // these may sneak onto the wire as a number.
    for (const char* bad :
         {"inf", "-inf", "Infinity", "-Infinity", "nan", "-nan", "NaN",
          "01", "-01", "00", "1.", "-2.", ".5", "-.5", "+1", "1e", "1e+",
          "1.e3", "0x10", "1_000", "--1", "1..2", "1.2.3", "9e999999999"}) {
        EXPECT_THROW((void)JsonValue::parse(bad), InvalidInput) << bad;
        EXPECT_THROW((void)JsonValue::parse(std::string("{\"x\":") + bad + "}"),
                     InvalidInput)
            << bad;
    }
    // The strict grammar still admits every legitimate spelling.
    for (const char* good : {"0", "-0", "10", "0.5", "-0.5", "1e3", "1E-3",
                             "1e+3", "0e0", "123.456e-7"})
        EXPECT_NO_THROW((void)JsonValue::parse(good)) << good;
}

TEST(Json, NestingDepthIsBounded) {
    // An adversarial line of ~100k '[' used to recurse once per bracket and
    // overflow the stack; depth is now capped (default 64) with a clean
    // InvalidInput instead.
    const auto nested = [](std::size_t depth) {
        return std::string(depth, '[') + "1" + std::string(depth, ']');
    };
    EXPECT_NO_THROW((void)JsonValue::parse(nested(64))); // at the cap
    EXPECT_THROW((void)JsonValue::parse(nested(65)), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse(nested(100000)), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse(std::string(100000, '[')),
                 InvalidInput); // unbalanced variant must not overflow either
    // Mixed object/array nesting counts every container level.
    std::string mixed = "1";
    for (std::size_t i = 0; i < 50; ++i)
        mixed = "{\"k\":[" + mixed + "]}";
    EXPECT_THROW((void)JsonValue::parse(mixed), InvalidInput);
    // The cap is a parse option, not a hard constant.
    JsonParseOptions deep;
    deep.max_depth = 200;
    EXPECT_NO_THROW((void)JsonValue::parse(nested(200), deep));
    EXPECT_THROW((void)JsonValue::parse(nested(201), deep), InvalidInput);
}

TEST(Json, DuplicateKeysRejectedInStrictMode) {
    const std::string dup = R"({"id":"a","id":"b"})";
    // The tolerant parse keeps last-wins (interoperability with peers that
    // emit duplicates), strict mode refuses the line outright.
    EXPECT_EQ(JsonValue::parse(dup).at("id").as_string(), "b");
    EXPECT_THROW((void)JsonValue::parse_strict(dup), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse_strict(
                     R"({"outer":{"k":1,"k":2}})"), // nested objects too
                 InvalidInput);
    EXPECT_NO_THROW((void)JsonValue::parse_strict(
        R"({"a":{"k":1},"b":{"k":2}})")); // same key in sibling objects is fine
}

TEST(Json, KindMismatchThrows) {
    const JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW((void)v.as_object(), InvalidInput);
    EXPECT_THROW((void)v.as_number(), InvalidInput);
    EXPECT_THROW((void)v.as_array()[0].as_string(), InvalidInput);
}

// ---------------------------------------------------------------- wire layer

TEST(Wire, VersionlessPr4JobsStillParse) {
    // Backward compatibility: every PR-4 job line (no "version" field) is
    // a valid version-1 job, byte for byte.
    const WireJob wire = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","id":"legacy","parameter":"q","deviations":[-10,-5,5,10],"shard_size":2,"progress_every":3,"cancel_after":0,"emit_signatures":false,"verify_serial":true})"));
    EXPECT_EQ(wire.version, 1);
    EXPECT_EQ(wire.id, "legacy");
    EXPECT_EQ(wire.job.size(), 4u);
    EXPECT_EQ(wire.universe_members, 4u);
    EXPECT_EQ(wire.member_offset, 0u);
    EXPECT_EQ(wire.parameter, core::SweptParameter::q);
    EXPECT_EQ(wire.job.shard_size, 2u);
    EXPECT_EQ(wire.progress_every, 3u);
    EXPECT_FALSE(wire.emit_signatures);
    EXPECT_TRUE(wire.verify_serial);
}

TEST(Wire, VersionFieldAcceptedCheckedAndUnknownFieldsTolerated) {
    // "version":1 is accepted, unknown fields are ignored (the tolerant-
    // reader rule that makes minor protocol additions non-breaking)...
    const WireJob wire = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","version":1,"deviations":[-5,5],"some_future_field":{"x":1},"another":true})"));
    EXPECT_EQ(wire.version, 1);
    EXPECT_EQ(wire.job.size(), 2u);
    // ...while a version newer than this build and malformed versions are
    // rejected up front.
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","version":99,"deviations":[-5,5]})")),
                 InvalidInput);
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","version":0,"deviations":[-5,5]})")),
                 InvalidInput);
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","version":1.5,"deviations":[-5,5]})")),
                 InvalidInput);
}

TEST(Wire, MemberRangeSlicesTheUniverse) {
    const WireJob wire = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","deviations":[0,1,2,3,4,5,6,7,8,9],"members":{"first":3,"count":4}})"));
    EXPECT_EQ(wire.universe_members, 10u);
    EXPECT_EQ(wire.member_offset, 3u);
    ASSERT_EQ(wire.deviations.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(wire.deviations[i], static_cast<double>(3 + i));

    // count omitted = to the universe end; count 0 = an empty slice.
    EXPECT_EQ(parse_wire_job(
                  JsonValue::parse(
                      R"({"job":"deviations","deviations":[0,1,2],"members":{"first":1}})"))
                  .job.size(),
              2u);
    EXPECT_EQ(parse_wire_job(
                  JsonValue::parse(
                      R"({"job":"deviations","deviations":[0,1,2],"members":{"first":1,"count":0}})"))
                  .job.size(),
              0u);
    // Ranges past the universe end are schema errors, not clamps.
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","deviations":[0,1],"members":{"first":3}})")),
                 InvalidInput);
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","deviations":[0,1],"members":{"first":1,"count":2}})")),
                 InvalidInput);
}

TEST(Wire, GridSlicesAreBitIdenticalToTheFullGrid) {
    // The fan-out cornerstone: a grid member's deviation value depends on
    // its global id only, so slicing after materialisation concatenates
    // back to the full grid bit for bit.
    const std::string grid =
        R"("grid":{"from":-20,"to":20,"count":101})";
    const WireJob full = parse_wire_job(
        JsonValue::parse(R"({"job":"deviations",)" + grid + "}"));
    const WireJob lo = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations",)" + grid +
        R"(,"members":{"first":0,"count":37}})"));
    const WireJob hi = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations",)" + grid + R"(,"members":{"first":37}})"));
    ASSERT_EQ(lo.deviations.size() + hi.deviations.size(),
              full.deviations.size());
    for (std::size_t i = 0; i < full.deviations.size(); ++i) {
        const double sliced =
            i < 37 ? lo.deviations[i] : hi.deviations[i - 37];
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sliced),
                  std::bit_cast<std::uint64_t>(full.deviations[i]))
            << "member " << i;
    }
}

TEST(Wire, CheckProtocolLineAcceptsTheSchemaAndRejectsDrift) {
    // Requests.
    EXPECT_NO_THROW(check_protocol_line(
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":100}})"));
    EXPECT_NO_THROW(check_protocol_line(R"({"cmd":"stats"})"));
    EXPECT_NO_THROW(check_protocol_line(R"({"cmd":"cancel","id":"job-1"})"));
    // Events, including null NDFs (NaN members).
    EXPECT_NO_THROW(check_protocol_line(
        R"x({"event":"result","member":3,"ndf":null,"ndf_hex":"nan","label":"open(R1)"})x"));
    // Unknown events / commands, missing required fields, wrong types.
    EXPECT_THROW(check_protocol_line(R"({"event":"nope"})"), InvalidInput);
    EXPECT_THROW(check_protocol_line(R"({"cmd":"reboot"})"), InvalidInput);
    EXPECT_THROW(check_protocol_line(
                     R"({"event":"result","member":3,"ndf":0.5,"label":"x"})"),
                 InvalidInput); // ndf_hex missing
    EXPECT_THROW(check_protocol_line(
                     R"({"event":"progress","done":"three","total":10})"),
                 InvalidInput); // wrong type
    EXPECT_THROW(check_protocol_line(R"({"hello":"world"})"), InvalidInput);
    EXPECT_THROW(check_protocol_line(R"([1,2,3])"), InvalidInput);
}

TEST(Wire, CheckProtocolLineIsStrictAboutMaliciousLines) {
    // The `--check` gate (and the live session) run the hardened parser:
    // non-RFC-8259 numbers, pathological nesting and duplicate keys are
    // schema violations, not silently-massaged input.
    EXPECT_THROW(check_protocol_line(
                     R"({"job":"deviations","deviations":[-inf,5]})"),
                 InvalidInput);
    EXPECT_THROW(check_protocol_line(
                     R"({"job":"deviations","deviations":[01,5]})"),
                 InvalidInput);
    EXPECT_THROW(
        check_protocol_line(std::string(100000, '[')), // depth bomb
        InvalidInput);
    EXPECT_THROW(check_protocol_line(
                     R"({"cmd":"cancel","id":"a","id":"b"})"), // dup key
                 InvalidInput);
}

TEST(Wire, SchedulingFieldsParseAndValidate) {
    const WireJob wire = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","version":2,"deviations":[-5,5],"priority":7,"client":"tester"})"));
    EXPECT_EQ(wire.version, 2);
    EXPECT_EQ(wire.priority, 7);
    EXPECT_EQ(wire.client, "tester");
    // Defaults when absent.
    const WireJob plain = parse_wire_job(
        JsonValue::parse(R"({"job":"deviations","deviations":[-5,5]})"));
    EXPECT_EQ(plain.priority, 0);
    EXPECT_TRUE(plain.client.empty());
    // Priority must be an integer in a sane range.
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","deviations":[1],"priority":1.5})")),
                 InvalidInput);
    EXPECT_THROW((void)parse_wire_job(JsonValue::parse(
                     R"({"job":"deviations","deviations":[1],"priority":1e10})")),
                 InvalidInput);
}

TEST(Wire, FastMathFieldIsAlwaysPinned) {
    // Tolerant-reader default: an absent fast_math field means exact mode,
    // and the decoded job always pins the flag (never nullopt/inherit) so
    // one client's fast_math job can never change the mode a later exact
    // job in the same service evaluates under.
    const WireJob plain = parse_wire_job(
        JsonValue::parse(R"({"job":"deviations","deviations":[-5,5]})"));
    ASSERT_TRUE(plain.job.fast_math.has_value());
    EXPECT_FALSE(*plain.job.fast_math);
    const WireJob fast = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","version":3,"deviations":[-5,5],"fast_math":true})"));
    ASSERT_TRUE(fast.job.fast_math.has_value());
    EXPECT_TRUE(*fast.job.fast_math);
    // Present but not a boolean is malformed, not silently defaulted.
    EXPECT_THROW(
        (void)parse_wire_job(JsonValue::parse(
            R"({"job":"deviations","deviations":[1],"fast_math":1})")),
        InvalidInput);
}

TEST(Wire, UniverseKeyIsContentAddressedAndRangeFree) {
    // The whole-job cache key half: the same full universe spelled as an
    // explicit list or a grid hashes identically, and the member range is
    // excluded (covering-range lookups depend on that).
    const WireJob list = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","deviations":[-20,-10,0,10,20]})"));
    const WireJob grid = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":5}})"));
    ASSERT_FALSE(list.universe_key.empty());
    EXPECT_EQ(list.universe_key, grid.universe_key);
    const WireJob slice = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","deviations":[-20,-10,0,10,20],"members":{"first":1,"count":2}})"));
    EXPECT_EQ(slice.universe_key, list.universe_key);
    // Different parameter or different values = different key.
    const WireJob q = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","parameter":"q","deviations":[-20,-10,0,10,20]})"));
    EXPECT_NE(q.universe_key, list.universe_key);
    const WireJob other = parse_wire_job(JsonValue::parse(
        R"({"job":"deviations","deviations":[-20,-10,0,10,21]})"));
    EXPECT_NE(other.universe_key, list.universe_key);
}

} // namespace
} // namespace xysig::server
