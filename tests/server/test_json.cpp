// Minimal JSON layer of the sweep server's NDJSON wire format.

#include "server/json.h"

#include <limits>

#include <gtest/gtest.h>

namespace xysig::server {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
    const JsonValue v = JsonValue::parse(
        R"({"a":1.5,"b":"text","c":[1,2,3],"d":{"e":true,"f":null},"g":-2e3})");
    EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
    EXPECT_EQ(v.at("b").as_string(), "text");
    ASSERT_EQ(v.at("c").as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("c").as_array()[2].as_number(), 3.0);
    EXPECT_TRUE(v.at("d").at("e").as_bool());
    EXPECT_TRUE(v.at("d").at("f").is_null());
    EXPECT_DOUBLE_EQ(v.at("g").as_number(), -2000.0);
}

TEST(Json, ObjectHelpers) {
    const JsonValue v = JsonValue::parse(R"({"n":4,"s":"x","b":false})");
    EXPECT_TRUE(v.has("n"));
    EXPECT_FALSE(v.has("missing"));
    EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
    EXPECT_EQ(v.string_or("s", "d"), "x");
    EXPECT_EQ(v.string_or("missing", "d"), "d");
    EXPECT_FALSE(v.bool_or("b", true));
    EXPECT_TRUE(v.bool_or("missing", true));
    EXPECT_THROW((void)v.at("missing"), InvalidInput);
}

TEST(Json, StringEscapes) {
    const JsonValue v = JsonValue::parse(R"({"s":"a\"b\\c\n\tA"})");
    EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\n\tA");
    // Round trip.
    const JsonValue again = JsonValue::parse(v.dump());
    EXPECT_EQ(again.at("s").as_string(), v.at("s").as_string());
}

TEST(Json, DumpIsDeterministicAndRoundTrips) {
    const char* text = R"({"z":1,"a":[true,null,"s"],"m":{"k":0.125}})";
    const JsonValue v = JsonValue::parse(text);
    const std::string dumped = v.dump();
    // Sorted keys, compact form.
    EXPECT_EQ(dumped, R"({"a":[true,null,"s"],"m":{"k":0.125},"z":1})");
    EXPECT_EQ(JsonValue::parse(dumped).dump(), dumped);
}

TEST(Json, NumbersRoundTripExactly) {
    for (const double x : {0.1, 1e300, -4.9e-324, 12345.6789, 0.0}) {
        const std::string dumped = JsonValue(x).dump();
        EXPECT_EQ(JsonValue::parse(dumped).as_number(), x) << dumped;
    }
}

TEST(Json, NonFiniteNumbersSerialiseAsNull) {
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW((void)JsonValue::parse(""), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{\"a\":}"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("[1,2,]"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("tru"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{} extra"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("\"unterminated"), InvalidInput);
    EXPECT_THROW((void)JsonValue::parse("{\"a\":1}{}"), InvalidInput);
}

TEST(Json, KindMismatchThrows) {
    const JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW((void)v.as_object(), InvalidInput);
    EXPECT_THROW((void)v.as_number(), InvalidInput);
    EXPECT_THROW((void)v.as_array()[0].as_string(), InvalidInput);
}

} // namespace
} // namespace xysig::server
