// JobScheduler guarantees: queued submission with per-job result streams
// that stay ascending and bit-identical to a serial SweepService::run() at
// any queue depth, fair-share round-robin across client ids, strict
// priority ordering (no inversion), whole-job cache hits that stream with
// zero netlist clones, golden prefetch overlap, and clean cancellation of
// queued and running jobs — including scheduler teardown with a backlog.

#include "server/scheduler.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/annotated_mutex.h"
#include "common/strings.h"
#include "core/golden_cache.h"
#include "core/paper_setup.h"
#include "monitor/table1.h"
#include "server/job_cache.h"
#include "server/json.h"
#include "server/wire.h"
#include "spice/netlist.h"

namespace xysig::server {
namespace {

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

core::SignaturePipeline make_pipeline(std::size_t samples_per_period = 256) {
    core::PipelineOptions opts;
    opts.samples_per_period = samples_per_period;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

WireJob wire_job(const std::string& line) {
    return parse_wire_job(JsonValue::parse(line));
}

std::vector<SweepResult> drain(JobHandle& handle) {
    std::vector<SweepResult> out;
    SweepResult r;
    while (handle.next(r))
        out.push_back(std::move(r));
    return out;
}

/// Stats for dispatcher-run jobs land moments after the handle closes (the
/// dispatcher accounts on its own thread once execute returns); tests that
/// assert on Stats after a drain poll for the expected value first.
void wait_for(const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!pred() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
}

/// Serial reference of a decoded job straight through the service — the
/// stream every scheduled variant must reproduce bit for bit.
std::vector<SweepResult> serial_reference(SweepService& service,
                                          const WireJob& wire) {
    std::vector<SweepResult> out;
    (void)service.run(wire.job,
                      [&](const SweepResult& r) { out.push_back(r); });
    return out;
}

void expect_same_stream(const std::vector<SweepResult>& got,
                        const std::vector<SweepResult>& want,
                        const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].member_id, want[i].member_id) << what << " #" << i;
        EXPECT_TRUE(same_bits(got[i].ndf, want[i].ndf))
            << what << " #" << i << ": "
            << format_double_exact(got[i].ndf) << " vs "
            << format_double_exact(want[i].ndf);
        EXPECT_EQ(got[i].label, want[i].label) << what << " #" << i;
        EXPECT_EQ(got[i].signature.has_value(), want[i].signature.has_value())
            << what << " #" << i;
    }
}

TEST(JobScheduler, FairShareRoundRobinAcrossClients) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    JobScheduler::Options opts;
    opts.cache_capacity = 0; // ordering test: every job must really run
    JobScheduler sched(service, opts);
    sched.set_paused(true);

    const auto submit = [&](const std::string& client) {
        JobScheduler::SubmitOptions so;
        so.client = client;
        return sched.submit(
            wire_job(R"({"job":"deviations","deviations":[-5,5]})"), so);
    };
    // Client A floods four jobs before B and C submit two each.
    std::vector<JobHandle> handles;
    for (int i = 0; i < 4; ++i)
        handles.push_back(submit("A"));
    for (int i = 0; i < 2; ++i)
        handles.push_back(submit("B"));
    for (int i = 0; i < 2; ++i)
        handles.push_back(submit("C"));
    EXPECT_EQ(sched.stats().queue_depth, 8u);
    sched.set_paused(false);

    std::vector<std::uint64_t> seq;
    for (JobHandle& h : handles) {
        EXPECT_EQ(drain(h).size(), 2u);
        seq.push_back(h.outcome().run_sequence);
    }
    // Round-robin across A, B, C at equal priority — A's flood cannot
    // starve B or C: A1 B1 C1 A2 B2 C2 A3 A4.
    const std::vector<std::uint64_t> a = {seq[0], seq[1], seq[2], seq[3]};
    const std::vector<std::uint64_t> b = {seq[4], seq[5]};
    const std::vector<std::uint64_t> c = {seq[6], seq[7]};
    EXPECT_EQ(a, (std::vector<std::uint64_t>{1, 4, 7, 8}));
    EXPECT_EQ(b, (std::vector<std::uint64_t>{2, 5}));
    EXPECT_EQ(c, (std::vector<std::uint64_t>{3, 6}));

    wait_for([&] { return sched.stats().completed >= 8; });
    const auto stats = sched.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(JobScheduler, PriorityOrdersDispatchWithoutInversion) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    JobScheduler::Options opts;
    opts.cache_capacity = 0;
    JobScheduler sched(service, opts);
    sched.set_paused(true);

    const auto submit = [&](int priority, const std::string& client) {
        JobScheduler::SubmitOptions so;
        so.priority = priority;
        so.client = client;
        return sched.submit(
            wire_job(R"({"job":"deviations","deviations":[-5,5]})"), so);
    };
    // Submission order deliberately scrambles priorities, and the flood
    // client's low-priority backlog precedes the high-priority late job:
    // fairness must never override priority.
    std::vector<JobHandle> handles;
    std::vector<int> priorities = {0, 0, 5, -3, 5};
    handles.push_back(submit(0, "flood"));
    handles.push_back(submit(0, "flood"));
    handles.push_back(submit(5, "flood"));
    handles.push_back(submit(-3, "background"));
    handles.push_back(submit(5, "late")); // arrives last, still beats 0s
    sched.set_paused(false);

    std::vector<std::uint64_t> seq;
    for (JobHandle& h : handles) {
        (void)drain(h);
        seq.push_back(h.outcome().run_sequence);
    }
    // No inversion: for every pair queued together, the strictly-higher
    // priority ran strictly earlier.
    for (std::size_t i = 0; i < seq.size(); ++i)
        for (std::size_t j = 0; j < seq.size(); ++j)
            if (priorities[i] > priorities[j])
                EXPECT_LT(seq[i], seq[j]) << i << " vs " << j;
    // FIFO among the equal-priority pair from one client.
    EXPECT_LT(seq[0], seq[1]);
    // The two priority-5 jobs run 1st/2nd, the -3 job dead last.
    EXPECT_EQ(seq[3], 5u);
}

TEST(JobScheduler, ExactSpiceResubmitStreamsFromCacheWithZeroClones) {
    SweepService service(make_pipeline(), {.workers = 3, .shard_size = 1});
    ASSERT_FALSE(pipeline_fingerprint(service.pipeline()).empty());
    JobScheduler sched(service, JobScheduler::Options{});

    const std::string line = R"({"job":"spice_faults","id":"s1"})";
    JobHandle first = sched.submit(wire_job(line));
    const std::vector<SweepResult> reference = drain(first);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(first.outcome().state, JobState::done);
    EXPECT_FALSE(first.outcome().from_cache);
    bool any_nan = false;
    for (const SweepResult& r : reference)
        any_nan = any_nan || std::isnan(r.ndf);
    EXPECT_TRUE(any_nan); // the universe contains unsolvable members


    // Exact resubmit: bit-identical replay, no queue wait, no worker — the
    // netlist clone counter must not move at all (decoded up front so the
    // probe brackets only the submit-and-stream window).
    WireJob resubmit = wire_job(line);
    const std::uint64_t clones_before = spice::Netlist::clone_count();
    JobHandle again = sched.submit(std::move(resubmit));
    EXPECT_TRUE(again.from_cache());
    const std::vector<SweepResult> replayed = drain(again);
    EXPECT_EQ(spice::Netlist::clone_count(), clones_before);
    expect_same_stream(replayed, reference, "cached spice resubmit");
    const JobOutcome out = again.outcome();
    EXPECT_EQ(out.state, JobState::done);
    EXPECT_TRUE(out.from_cache);
    EXPECT_EQ(out.run_sequence, 0u); // never touched the service
    EXPECT_EQ(out.summary.netlist_clones, 0u);

    wait_for([&] { return sched.stats().completed >= 2; });
    const auto stats = sched.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(sched.cache().hits(), 1u);
}

TEST(JobScheduler, MemberRangeSliceServedByCachedSuperset) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 4});
    JobScheduler sched(service, JobScheduler::Options{});

    JobHandle full = sched.submit(wire_job(
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":11}})"));
    const std::vector<SweepResult> reference = drain(full);
    ASSERT_EQ(reference.size(), 11u);

    // A fan-out slice of the SAME universe (grid spelled as the explicit
    // list — the content key is over materialised values) hits the cached
    // superset and streams under local ids.
    JobHandle slice = sched.submit(wire_job(
        R"({"job":"deviations","deviations":[-20,-16,-12,-8,-4,0,4,8,12,16,20],"members":{"first":3,"count":4}})"));
    EXPECT_TRUE(slice.from_cache());
    const std::vector<SweepResult> sliced = drain(slice);
    ASSERT_EQ(sliced.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(sliced[i].member_id, i); // local ids, offset 3 on the wire
        EXPECT_TRUE(same_bits(sliced[i].ndf, reference[3 + i].ndf));
        EXPECT_EQ(sliced[i].label, reference[3 + i].label);
    }
    // A slice past the cached span runs for real (and is then cached).
    JobHandle wider = sched.submit(wire_job(
        R"({"job":"deviations","grid":{"from":-20,"to":20,"count":12}})"));
    EXPECT_FALSE(wider.from_cache());
    EXPECT_EQ(drain(wider).size(), 12u);
    EXPECT_EQ(sched.stats().cache_hits, 1u);
}

TEST(JobScheduler, InterleavedQueueBitIdenticalToSerialIncludingNaNs) {
    SweepService service(make_pipeline(), {.workers = 3, .shard_size = 4});
    // References first, straight through the service (the scheduler is not
    // constructed yet, so nothing interleaves with these).
    const std::vector<std::string> lines = {
        R"({"job":"deviations","id":"d1","grid":{"from":-20,"to":20,"count":60}})",
        R"({"job":"spice_faults","id":"s1","universe":"open"})",
        R"({"job":"deviations","id":"d2","parameter":"q","grid":{"from":-15,"to":15,"count":45}})",
        R"({"job":"deviations","id":"d1-again","grid":{"from":-20,"to":20,"count":60}})",
        R"({"job":"deviations","id":"d3","deviations":[-7,-3,3,7]})",
    };
    std::vector<std::vector<SweepResult>> references;
    for (const std::string& line : lines)
        references.push_back(serial_reference(service, wire_job(line)));

    // Queue everything at once from two clients with mixed priorities and
    // drain every handle from its own consumer thread — maximum interleave.
    JobScheduler sched(service, JobScheduler::Options{});
    std::vector<JobHandle> handles;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        JobScheduler::SubmitOptions so;
        so.client = i % 2 == 0 ? "alice" : "bob";
        so.priority = static_cast<int>(i % 3);
        handles.push_back(sched.submit(wire_job(lines[i]), so));
    }
    std::vector<std::vector<SweepResult>> streamed(handles.size());
    std::vector<std::thread> consumers;
    for (std::size_t i = 0; i < handles.size(); ++i)
        consumers.emplace_back(
            [&, i] { streamed[i] = drain(handles[i]); });
    for (std::thread& t : consumers)
        t.join();

    for (std::size_t i = 0; i < handles.size(); ++i) {
        expect_same_stream(streamed[i], references[i], "job " + lines[i]);
        // Ascending, gap-free member order per job regardless of queue
        // interleaving.
        for (std::size_t m = 0; m < streamed[i].size(); ++m)
            ASSERT_EQ(streamed[i][m].member_id, m) << lines[i];
        EXPECT_EQ(handles[i].outcome().state, JobState::done);
    }
    // Of the two identical d1 jobs, whichever the priority/fair-share
    // order dispatched second was served by the cache (the dispatch-time
    // re-check) — and its stream was still bit-identical above.
    EXPECT_NE(handles[0].outcome().from_cache,
              handles[3].outcome().from_cache);
    wait_for([&] { return sched.stats().cache_hits >= 1; });
    EXPECT_GE(sched.stats().cache_hits, 1u);
}

TEST(JobScheduler, QueuedJobsCancelWithoutRunning) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    JobScheduler::Options opts;
    opts.cache_capacity = 0;
    JobScheduler sched(service, opts);
    sched.set_paused(true);

    JobHandle keep = sched.submit(
        wire_job(R"({"job":"deviations","id":"keep","deviations":[-5,5]})"));
    JobHandle by_handle = sched.submit(
        wire_job(R"({"job":"deviations","id":"h","deviations":[-5,5]})"));
    JobHandle by_id = sched.submit(
        wire_job(R"({"job":"deviations","id":"w","deviations":[-5,5]})"));
    by_handle.cancel();
    sched.cancel("w");
    // "w" was dequeued on the spot; a handle-cancel leaves a finalised
    // record in place for the dispatcher to skip, so it still counts here.
    EXPECT_EQ(sched.stats().queue_depth, 2u);
    sched.set_paused(false);

    for (JobHandle* h : {&by_handle, &by_id}) {
        EXPECT_TRUE(drain(*h).empty());
        EXPECT_TRUE(h->cancelled_before_start());
        const JobOutcome out = h->outcome();
        EXPECT_EQ(out.state, JobState::cancelled);
        EXPECT_EQ(out.run_sequence, 0u); // the service never saw it
    }
    EXPECT_EQ(drain(keep).size(), 2u);
    EXPECT_EQ(keep.outcome().state, JobState::done);
    wait_for([&] {
        const auto s = sched.stats();
        return s.cancelled >= 2 && s.completed >= 1;
    });
    const auto stats = sched.stats();
    EXPECT_EQ(stats.cancelled, 2u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(JobScheduler, RunningJobCancelsCooperativelyKeepsOrder) {
    SweepService service(make_pipeline(), {.workers = 4, .shard_size = 4});
    JobScheduler::Options opts;
    opts.cache_capacity = 0;
    JobScheduler sched(service, opts);

    JobHandle h = sched.submit(wire_job(
        R"({"job":"deviations","id":"big","grid":{"from":-20,"to":20,"count":2000}})"));
    h.wait_until_started();
    // Cancel through the wire-level path after a few results have streamed.
    std::vector<SweepResult> got;
    SweepResult r;
    while (got.size() < 5 && h.next(r))
        got.push_back(r);
    sched.cancel("big");
    while (h.next(r))
        got.push_back(r);

    const JobOutcome out = h.outcome();
    EXPECT_EQ(out.state, JobState::cancelled);
    EXPECT_TRUE(out.summary.cancelled);
    EXPECT_GE(got.size(), 5u);
    EXPECT_LT(got.size(), 2000u); // dispatch really stopped
    for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_LT(got[i - 1].member_id, got[i].member_id);
    wait_for([&] { return sched.stats().cancelled >= 1; });
    EXPECT_EQ(sched.stats().cancelled, 1u);
    // A cancelled job never poisons the cache: resubmitting runs fresh.
    JobHandle again = sched.submit(wire_job(
        R"({"job":"deviations","id":"big2","grid":{"from":-20,"to":20,"count":2000}})"));
    EXPECT_FALSE(again.from_cache());
    again.cancel();
    (void)drain(again);
}

TEST(JobScheduler, FastMathJobsNeverShareCacheEntriesWithExact) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 4});
    JobScheduler sched(service, JobScheduler::Options{});

    // Exact job, then the identical universe under fast_math: the job
    // cache key embeds the effective mode, so the second submit must run
    // for real — serving it from the exact entry would hand a client
    // signatures from the wrong mode.
    const std::string exact_line =
        R"({"job":"deviations","grid":{"from":-10,"to":10,"count":9}})";
    const std::string fast_line =
        R"({"job":"deviations","grid":{"from":-10,"to":10,"count":9},"fast_math":true})";
    JobHandle exact = sched.submit(wire_job(exact_line));
    const std::vector<SweepResult> exact_ref = drain(exact);
    ASSERT_EQ(exact_ref.size(), 9u);

    JobHandle fast = sched.submit(wire_job(fast_line));
    EXPECT_FALSE(fast.from_cache());
    const std::vector<SweepResult> fast_ref = drain(fast);
    ASSERT_EQ(fast_ref.size(), 9u);
    EXPECT_EQ(fast.outcome().state, JobState::done);

    // Within one mode, replay works as usual — and each mode replays its
    // own stream bit for bit.
    JobHandle exact_again = sched.submit(wire_job(exact_line));
    EXPECT_TRUE(exact_again.from_cache());
    expect_same_stream(drain(exact_again), exact_ref, "exact replay");
    JobHandle fast_again = sched.submit(wire_job(fast_line));
    EXPECT_TRUE(fast_again.from_cache());
    expect_same_stream(drain(fast_again), fast_ref, "fast_math replay");

    wait_for([&] { return sched.stats().completed >= 4; });
    EXPECT_EQ(sched.stats().cache_hits, 2u);

    // Wire jobs always pin the mode, so an exact job queued behind the
    // fast_math one evaluates exact — the fast job's mode never leaks.
    JobHandle after = sched.submit(wire_job(
        R"({"job":"deviations","grid":{"from":-10,"to":10,"count":10}})"));
    EXPECT_FALSE(after.from_cache());
    EXPECT_EQ(drain(after).size(), 10u);
    EXPECT_FALSE(service.pipeline().options().fast_math);
}

TEST(JobScheduler, VerifySerialRunsOnTheDispatcherThread) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 4});
    JobScheduler sched(service, JobScheduler::Options{});
    JobHandle h = sched.submit(wire_job(
        R"({"job":"deviations","verify_serial":true,"grid":{"from":-10,"to":10,"count":16}})"));
    EXPECT_EQ(drain(h).size(), 16u);
    const JobOutcome out = h.outcome();
    EXPECT_EQ(out.state, JobState::done);
    EXPECT_TRUE(out.verify_ran);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.verify_members, 16u);
    // verify_serial is a test instrument: it must bypass the cache in both
    // directions, so a repeat verifies for real again.
    JobHandle repeat = sched.submit(wire_job(
        R"({"job":"deviations","verify_serial":true,"grid":{"from":-10,"to":10,"count":16}})"));
    EXPECT_EQ(drain(repeat).size(), 16u);
    EXPECT_FALSE(repeat.outcome().from_cache);
    EXPECT_TRUE(repeat.outcome().verify_ran);
    EXPECT_EQ(sched.stats().cache_hits, 0u);
}

TEST(JobScheduler, GoldenPrefetchOverlapsTheQueue) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    auto& golden_cache = core::GoldenSignatureCache::instance();
    golden_cache.clear();

    JobScheduler sched(service, JobScheduler::Options{});
    sched.set_paused(true); // dispatch held back; prefetch is not
    JobHandle h = sched.submit(
        wire_job(R"({"job":"deviations","deviations":[-5,5]})"));
    // The prefetch thread computes the golden while the queue is paused.
    for (int i = 0; i < 500 && sched.stats().goldens_prefetched == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(sched.stats().goldens_prefetched, 1u);
    EXPECT_EQ(golden_cache.misses(), 1u); // the prefetch compute itself
    const std::size_t hits_before = golden_cache.hits();

    sched.set_paused(false);
    EXPECT_EQ(drain(h).size(), 2u);
    EXPECT_EQ(h.outcome().state, JobState::done);
    // The dispatched job's own set_golden hit the warmed entry instead of
    // recomputing: overlap with zero effect on result bits.
    EXPECT_EQ(golden_cache.misses(), 1u);
    EXPECT_GE(golden_cache.hits(), hits_before + 1);
}

TEST(JobScheduler, DestructorCancelsBacklogAndHandlesStayValid) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    std::vector<JobHandle> handles;
    {
        JobScheduler::Options opts;
        opts.cache_capacity = 0;
        JobScheduler sched(service, opts);
        sched.set_paused(true);
        for (int i = 0; i < 3; ++i)
            handles.push_back(sched.submit(wire_job(
                R"({"job":"deviations","grid":{"from":-20,"to":20,"count":500}})")));
        // Destroyed with a full backlog: must not hang or leak threads.
    }
    for (JobHandle& h : handles) {
        EXPECT_TRUE(drain(h).empty());
        EXPECT_EQ(h.outcome().state, JobState::cancelled);
    }
    // The service survives its scheduler: direct runs still work.
    std::size_t delivered = 0;
    (void)service.run(
        SweepJob::deviation_grid(core::paper_biquad(), {-5.0, 5.0}),
        [&](const SweepResult&) { ++delivered; });
    EXPECT_EQ(delivered, 2u);
}

// The acceptance scenario, at the wire level: two clients submit
// interleaved jobs on one session — one an exact resubmit — and both
// receive ascending-order result streams bit-identical to serial run(),
// with the resubmit answered by the whole-job cache while the other job is
// still draining. Every emitted line must satisfy the protocol schema.
TEST(ServerSession, InterleavedClientsStreamBitIdenticalAndResubmitIsCached) {
    SweepService service(make_pipeline(), {.workers = 2, .shard_size = 8});
    const std::string small_universe =
        R"("grid":{"from":-10,"to":10,"count":9})";
    const std::string big_universe =
        R"("parameter":"q","grid":{"from":-20,"to":20,"count":300})";
    const std::vector<SweepResult> ref_small = serial_reference(
        service, wire_job(R"({"job":"deviations",)" + small_universe + "}"));
    const std::vector<SweepResult> ref_big = serial_reference(
        service, wire_job(R"({"job":"deviations",)" + big_universe + "}"));

    xysig::Mutex lines_mutex;
    std::vector<std::string> lines;
    {
        ServerSession session(service, [&](const std::string& l) {
            xysig::MutexLock g(lines_mutex);
            lines.push_back(l);
        });
        session.emit_ready(256);
        ASSERT_TRUE(session.handle_line(
            R"({"job":"deviations","id":"warm","client":"alice",)" +
            small_universe + "}"));
        session.drain(); // alice's first pass populates the whole-job cache
        ASSERT_TRUE(session.handle_line(
            R"({"job":"deviations","id":"big","client":"bob",)" +
            big_universe + "}"));
        ASSERT_TRUE(session.handle_line(
            R"({"job":"deviations","id":"re","client":"alice",)" +
            small_universe + "}"));
        ASSERT_TRUE(session.handle_line(R"({"cmd":"stats"})"));
        session.drain();
        EXPECT_TRUE(session.all_verified());
    }

    struct PerJob {
        std::vector<std::size_t> members;
        std::vector<std::string> ndf_hex;
        bool done = false;
        bool done_cached = false;
        bool queued_cached = false;
    };
    std::map<std::string, PerJob> jobs;
    std::uint64_t wire_cache_hits = 0;
    bool re_done_before_big = false;
    for (const std::string& l : lines) {
        EXPECT_NO_THROW(check_protocol_line(l)) << l;
        const JsonValue v = JsonValue::parse(l);
        if (!v.has("event"))
            continue;
        const std::string event = v.at("event").as_string();
        const std::string id = v.string_or("id", "");
        if (event == "queued") {
            jobs[id].queued_cached = v.at("cached").as_bool();
        } else if (event == "result") {
            jobs[id].members.push_back(
                static_cast<std::size_t>(v.at("member").as_number()));
            jobs[id].ndf_hex.push_back(v.at("ndf_hex").as_string());
        } else if (event == "job_done") {
            jobs[id].done = true;
            jobs[id].done_cached = v.bool_or("cached", false);
            if (id == "re" && !jobs["big"].done)
                re_done_before_big = true;
        } else if (event == "stats") {
            wire_cache_hits = static_cast<std::uint64_t>(
                v.at("scheduler").at("cache_hits").as_number());
        }
    }

    const auto check_stream = [&](const std::string& id,
                                  const std::vector<SweepResult>& ref) {
        const PerJob& j = jobs[id];
        EXPECT_TRUE(j.done) << id;
        ASSERT_EQ(j.members.size(), ref.size()) << id;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(j.members[i], i) << id; // ascending, gap-free
            EXPECT_EQ(j.ndf_hex[i], format_double_exact(ref[i].ndf))
                << id << " member " << i;
        }
    };
    check_stream("warm", ref_small);
    check_stream("big", ref_big);
    check_stream("re", ref_small);

    // The resubmit was answered by the whole-job cache (acknowledged as
    // cached, closed as cached, counted in the wire stats)...
    EXPECT_TRUE(jobs["re"].queued_cached);
    EXPECT_TRUE(jobs["re"].done_cached);
    EXPECT_FALSE(jobs["big"].done_cached);
    EXPECT_GE(wire_cache_hits, 1u);
    // ...and finished while bob's long job was still draining — the queue
    // really interleaves, with no head-of-line blocking.
    EXPECT_TRUE(re_done_before_big);
}

} // namespace
} // namespace xysig::server
