// Capture unit (Fig. 5) tests: quantisation, missed zones, counter overflow
// and signature reconstruction.

#include "capture/capture_unit.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace xysig::capture {
namespace {

/// 200 us period, 4 zone visits with dwell 50/100/30/20 us.
Chronogram reference() {
    return Chronogram(200e-6, 6,
                      {{0.0, 4u}, {50e-6, 5u}, {150e-6, 13u}, {180e-6, 12u}});
}

TEST(CaptureUnit, ExactCaptureAtHighClock) {
    const CaptureUnit unit({.f_clk = 10e6, .counter_bits = 16});
    const CaptureResult res = unit.capture(reference());
    EXPECT_EQ(res.overflow_events, 0);
    EXPECT_EQ(res.missed_zones, 0);
    ASSERT_EQ(res.signature.size(), 4u);
    // 10 MHz -> 0.1 us ticks: dwells 500/1000/300/200 ticks.
    EXPECT_EQ(res.signature.entries()[0].code, 4u);
    EXPECT_EQ(res.signature.entries()[0].ticks, 500u);
    EXPECT_EQ(res.signature.entries()[1].ticks, 1000u);
    EXPECT_EQ(res.signature.entries()[2].ticks, 300u);
    EXPECT_EQ(res.signature.entries()[3].ticks, 200u);
    EXPECT_EQ(res.signature.total_ticks(), 2000u);
}

TEST(CaptureUnit, SignatureRoundTripsToChronogram) {
    const CaptureUnit unit({.f_clk = 10e6, .counter_bits = 16});
    const CaptureResult res = unit.capture(reference());
    const Chronogram back = res.signature.to_chronogram();
    EXPECT_NEAR(back.period(), 200e-6, 1e-12);
    ASSERT_EQ(back.events().size(), 4u);
    EXPECT_EQ(back.code_at(10e-6), 4u);
    EXPECT_EQ(back.code_at(100e-6), 5u);
    EXPECT_EQ(back.code_at(170e-6), 13u);
    EXPECT_EQ(back.code_at(190e-6), 12u);
}

TEST(CaptureUnit, SlowClockMissesShortZone) {
    // The 20 us dwell [180, 200) us falls between the samples of a 50 us
    // tick clock (20 kHz: samples at 25/75/125/175 us).
    const CaptureUnit unit({.f_clk = 20e3, .counter_bits = 16});
    const CaptureResult res = unit.capture(reference());
    EXPECT_GT(res.missed_zones, 0);
    EXPECT_LT(res.signature.size(), 4u);
}

TEST(CaptureUnit, CounterOverflowWrapsAndIsReported) {
    // 1000-tick dwell with a 8-bit counter wraps (1000 mod 256 = 232).
    const CaptureUnit unit({.f_clk = 10e6, .counter_bits = 8});
    const CaptureResult res = unit.capture(reference());
    EXPECT_GT(res.overflow_events, 0);
    // Reconstruction must refuse corrupted time registers.
    EXPECT_THROW((void)res.signature.to_chronogram(), NumericError);
}

TEST(CaptureUnit, EntriesAlternateCodes) {
    const CaptureUnit unit({.f_clk = 2e6, .counter_bits = 16});
    const CaptureResult res = unit.capture(reference());
    for (std::size_t i = 1; i < res.signature.size(); ++i)
        EXPECT_NE(res.signature.entries()[i].code,
                  res.signature.entries()[i - 1].code);
}

TEST(CaptureUnit, DwellQuantisationErrorBoundedByOneTick) {
    const double f_clk = 1e6; // 1 us ticks
    const CaptureUnit unit({.f_clk = f_clk, .counter_bits = 16});
    const CaptureResult res = unit.capture(reference());
    const Chronogram ref = reference();
    ASSERT_EQ(res.signature.size(), ref.events().size());
    for (std::size_t i = 0; i < res.signature.size(); ++i) {
        const double captured =
            static_cast<double>(res.signature.entries()[i].ticks) / f_clk;
        EXPECT_NEAR(captured, ref.dwell(i), 1.0 / f_clk + 1e-12);
    }
}

TEST(CaptureUnit, RejectsInvalidOptions) {
    EXPECT_THROW(CaptureUnit({.f_clk = 0.0, .counter_bits = 16}), ContractError);
    EXPECT_THROW(CaptureUnit({.f_clk = 1e6, .counter_bits = 0}), ContractError);
}

TEST(Signature, ValidatesConstructionParameters) {
    EXPECT_THROW(Signature(0.0, 16, 6, {}, 100), ContractError);
    EXPECT_THROW(Signature(1e6, 16, 0, {}, 100), ContractError);
    EXPECT_THROW(Signature(1e6, 16, 6, {}, 0), ContractError);
}

} // namespace
} // namespace xysig::capture
