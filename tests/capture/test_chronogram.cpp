// Chronogram (piecewise-constant code function) tests.

#include "capture/chronogram.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "monitor/table1.h"

namespace xysig::capture {
namespace {

Chronogram simple() {
    // codes: 0 on [0,1), 3 on [1,2.5), 1 on [2.5,4); period 4.
    return Chronogram(4.0, 2, {{0.0, 0u}, {1.0, 3u}, {2.5, 1u}});
}

TEST(Chronogram, CodeAtLooksUpSegments) {
    const Chronogram ch = simple();
    EXPECT_EQ(ch.code_at(0.0), 0u);
    EXPECT_EQ(ch.code_at(0.99), 0u);
    EXPECT_EQ(ch.code_at(1.0), 3u);
    EXPECT_EQ(ch.code_at(2.49), 3u);
    EXPECT_EQ(ch.code_at(2.5), 1u);
    EXPECT_EQ(ch.code_at(3.999), 1u);
}

TEST(Chronogram, CodeAtWrapsPeriodically) {
    const Chronogram ch = simple();
    EXPECT_EQ(ch.code_at(4.0), 0u);
    EXPECT_EQ(ch.code_at(5.5), 3u);
    EXPECT_EQ(ch.code_at(-1.0), 1u); // t = 3 after folding
}

TEST(Chronogram, DwellTimesTileThePeriod) {
    const Chronogram ch = simple();
    EXPECT_DOUBLE_EQ(ch.dwell(0), 1.0);
    EXPECT_DOUBLE_EQ(ch.dwell(1), 1.5);
    EXPECT_DOUBLE_EQ(ch.dwell(2), 1.5);
    double total = 0.0;
    for (std::size_t i = 0; i < ch.events().size(); ++i)
        total += ch.dwell(i);
    EXPECT_DOUBLE_EQ(total, ch.period());
}

TEST(Chronogram, ValidationRejectsBadEventStreams) {
    // Not starting at 0.
    EXPECT_THROW(Chronogram(1.0, 2, {{0.5, 0u}}), ContractError);
    // Non-increasing times.
    EXPECT_THROW(Chronogram(1.0, 2, {{0.0, 0u}, {0.5, 1u}, {0.5, 2u}}),
                 ContractError);
    // Repeated code in consecutive events.
    EXPECT_THROW(Chronogram(1.0, 2, {{0.0, 1u}, {0.5, 1u}}), ContractError);
    // Event at/after period end.
    EXPECT_THROW(Chronogram(1.0, 2, {{0.0, 0u}, {1.0, 1u}}), ContractError);
    // Empty.
    EXPECT_THROW(Chronogram(1.0, 2, {}), ContractError);
}

TEST(Chronogram, FromTraceRunLengthEncodes) {
    // A trace crossing the diagonal monitor (Table I curve 6) twice.
    monitor::MonitorBank bank;
    bank.add(std::make_unique<monitor::MosCurrentBoundary>(
        monitor::table1_config(6)));
    // x ramps 0.2->0.8, y fixed 0.5: starts above diagonal (code 1), ends
    // below (code 0).
    const std::size_t n = 100;
    std::vector<double> xs(n), ys(n, 0.5);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = 0.2 + 0.6 * static_cast<double>(i) / n;
    const XyTrace tr(SampledSignal(0.0, 1e-6, std::move(xs)),
                     SampledSignal(0.0, 1e-6, std::move(ys)));
    const Chronogram ch = Chronogram::from_trace(tr, bank);
    ASSERT_EQ(ch.events().size(), 2u);
    EXPECT_EQ(ch.events()[0].code, 1u);
    EXPECT_EQ(ch.events()[1].code, 0u);
    // Crossing at x = 0.5: t = (0.5-0.2)/0.6 * 100us = 50us.
    EXPECT_NEAR(ch.events()[1].t, 50e-6, 2e-6);
}

TEST(Chronogram, FromTraceRequiresZeroStart) {
    monitor::MonitorBank bank;
    bank.add(std::make_unique<monitor::LinearBoundary>(1.0, 1.0, -1.0));
    const XyTrace tr(SampledSignal(1.0, 1e-6, {0.1, 0.2, 0.3}),
                     SampledSignal(1.0, 1e-6, {0.1, 0.2, 0.3}));
    EXPECT_THROW((void)Chronogram::from_trace(tr, bank), ContractError);
}

} // namespace
} // namespace xysig::capture
