// Property-based tests of the capture unit over random chronograms:
// reconstruction fidelity, tick accounting, and monotone behaviour in the
// hardware parameters.

#include <set>

#include <gtest/gtest.h>

#include "capture/capture_unit.h"
#include "common/rng.h"
#include "core/ndf.h"

namespace xysig::capture {
namespace {

/// Random 6-bit chronogram over 200 us with dwells >= min_dwell.
Chronogram random_chronogram(Rng& rng, double min_dwell) {
    const double period = 200e-6;
    std::set<double> times;
    times.insert(0.0);
    const auto target = static_cast<std::size_t>(rng.uniform_int(2, 14));
    while (times.size() < target) {
        const double t = rng.uniform(0.0, period * 0.995);
        bool ok = true;
        for (const double u : times)
            if (std::abs(u - t) < min_dwell)
                ok = false;
        if (period - t < min_dwell)
            ok = false;
        if (ok)
            times.insert(t);
    }
    std::vector<CodeEvent> events;
    unsigned prev = 64;
    for (const double t : times) {
        unsigned code = static_cast<unsigned>(rng.uniform_int(0, 63));
        if (code == prev)
            code = (code + 1) % 64;
        events.push_back({t, code});
        prev = code;
    }
    return Chronogram(period, 6, std::move(events));
}

class CaptureProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CaptureProperties, EntriesTileTheWindowExactly) {
    Rng rng(GetParam());
    const Chronogram ch = random_chronogram(rng, 2e-6);
    const CaptureUnit unit({.f_clk = 10e6, .counter_bits = 32});
    const CaptureResult res = unit.capture(ch);
    std::uint64_t sum = 0;
    for (const auto& e : res.signature.entries())
        sum += e.ticks;
    EXPECT_EQ(sum, res.signature.total_ticks());
    EXPECT_EQ(res.overflow_events, 0);
}

TEST_P(CaptureProperties, ReconstructionNdfBoundedByQuantisation) {
    // The captured chronogram differs from the ideal only inside +-1 tick
    // around each of the k transitions: NDF(ideal, captured) is bounded by
    // k * tick / T * max_dH.
    Rng rng(GetParam());
    const Chronogram ch = random_chronogram(rng, 2e-6);
    const double f_clk = 10e6;
    const CaptureUnit unit({.f_clk = f_clk, .counter_bits = 32});
    const Chronogram back = unit.capture(ch).signature.to_chronogram();
    const double bound = static_cast<double>(ch.zone_visits()) *
                         (1.0 / f_clk) / ch.period() * 6.0;
    EXPECT_LE(core::ndf(back, ch), bound + 1e-12);
}

TEST_P(CaptureProperties, FasterClockNeverCapturesFewerZones) {
    Rng rng(GetParam());
    const Chronogram ch = random_chronogram(rng, 2e-6);
    std::size_t prev_entries = 0;
    for (const double f : {0.2e6, 1e6, 5e6, 25e6}) {
        const CaptureUnit unit({.f_clk = f, .counter_bits = 32});
        const auto res = unit.capture(ch);
        EXPECT_GE(res.signature.size(), prev_entries) << "f_clk " << f;
        prev_entries = res.signature.size();
    }
}

TEST_P(CaptureProperties, CapturedCodesAreASubsequenceOfIdealVisits) {
    // Quantisation can drop zone visits but never invent or reorder them.
    Rng rng(GetParam());
    const Chronogram ch = random_chronogram(rng, 2e-6);
    const CaptureUnit unit({.f_clk = 1e6, .counter_bits = 32});
    const auto res = unit.capture(ch);

    std::size_t ideal_idx = 0;
    const auto& ideal = ch.events();
    for (const auto& entry : res.signature.entries()) {
        while (ideal_idx < ideal.size() && ideal[ideal_idx].code != entry.code)
            ++ideal_idx;
        ASSERT_LT(ideal_idx, ideal.size())
            << "captured code " << entry.code << " not found in order";
        ++ideal_idx;
    }
}

TEST_P(CaptureProperties, NarrowCounterOnlyWrapsNeverDrops) {
    // With a narrow counter the entry COUNT must equal the wide-counter
    // capture's; only the stored tick values differ (wrapped).
    Rng rng(GetParam());
    const Chronogram ch = random_chronogram(rng, 2e-6);
    const CaptureUnit wide({.f_clk = 10e6, .counter_bits = 32});
    const CaptureUnit narrow({.f_clk = 10e6, .counter_bits = 6});
    const auto rw = wide.capture(ch);
    const auto rn = narrow.capture(ch);
    ASSERT_EQ(rw.signature.size(), rn.signature.size());
    for (std::size_t i = 0; i < rw.signature.size(); ++i) {
        EXPECT_EQ(rw.signature.entries()[i].code, rn.signature.entries()[i].code);
        EXPECT_EQ(rn.signature.entries()[i].ticks,
                  rw.signature.entries()[i].ticks % 64u);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CaptureProperties,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u,
                                           707u, 808u));

} // namespace
} // namespace xysig::capture
