// Tester-hardware fault injection tests (extension): stuck and swapped
// monitor lines, and their effect on the NDF verdict.

#include "capture/fault_injection.h"

#include <gtest/gtest.h>

#include "core/ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "monitor/table1.h"

namespace xysig::capture {
namespace {

Chronogram sample() {
    // 6-bit codes over 1 s.
    return Chronogram(1.0, 6, {{0.0, 0b000100u}, {0.3, 0b000101u}, {0.7, 0b011101u}});
}

TEST(StuckBit, ForcesLineLow) {
    const Chronogram faulty = apply_stuck_bit(sample(), {.bit_index = 0,
                                                         .stuck_value = false});
    EXPECT_EQ(faulty.code_at(0.1), 0b000100u);
    EXPECT_EQ(faulty.code_at(0.5), 0b000100u); // bit 0 cleared
    EXPECT_EQ(faulty.code_at(0.8), 0b011100u);
}

TEST(StuckBit, ForcesLineHigh) {
    const Chronogram faulty = apply_stuck_bit(sample(), {.bit_index = 0,
                                                         .stuck_value = true});
    EXPECT_EQ(faulty.code_at(0.1), 0b000101u);
    EXPECT_EQ(faulty.code_at(0.5), 0b000101u);
}

TEST(StuckBit, MergesVanishedTransitions) {
    // Codes 4 and 5 differ only in bit 0: stuck-low merges them.
    const Chronogram faulty = apply_stuck_bit(sample(), {.bit_index = 0,
                                                         .stuck_value = false});
    EXPECT_EQ(faulty.events().size(), 2u);
}

TEST(StuckBit, OutOfRangeBitRejected) {
    EXPECT_THROW((void)apply_stuck_bit(sample(), {.bit_index = 6,
                                                  .stuck_value = false}),
                 ContractError);
}

TEST(SwappedBits, ExchangesLines) {
    const Chronogram faulty = apply_swapped_bits(sample(), 0, 2);
    // 000101 -> swap bits 0 and 2 -> 000101 unchanged? bit0=1, bit2=1: yes.
    EXPECT_EQ(faulty.code_at(0.5), 0b000101u);
    // 011101: bit0=1, bit2=1 -> unchanged too; use a code where they differ.
    const Chronogram ch(1.0, 6, {{0.0, 0b000001u}});
    EXPECT_EQ(apply_swapped_bits(ch, 0, 2).code_at(0.0), 0b000100u);
}

TEST(SwappedBits, SelfSwapRejected) {
    EXPECT_THROW((void)apply_swapped_bits(sample(), 1, 1), ContractError);
}

TEST(FaultInjection, StuckMonitorInflatesGoldenNdf) {
    // A tester with a stuck monitor line reports a large NDF even for a
    // perfect CUT -- the fault is detectable from the golden self-test.
    core::PipelineOptions opts;
    opts.samples_per_period = 2048;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const filter::BehaviouralCut golden(core::paper_biquad());
    const Chronogram healthy = pipe.chronogram(golden);

    for (unsigned bit = 0; bit < 6; ++bit) {
        const Chronogram faulty =
            apply_stuck_bit(healthy, {.bit_index = bit, .stuck_value = true});
        const double self_ndf = core::ndf(faulty, healthy);
        // The line is active somewhere in the period, so sticking it high
        // must show up (except if it was already 1 all period -- none is).
        EXPECT_GT(self_ndf, 0.0) << "bit " << bit;
    }
}

TEST(FaultInjection, SwappedLinesStillDetectDefects) {
    // A bus swap garbles codes but preserves information: the NDF between a
    // swapped-defective and swapped-golden chronogram equals the healthy
    // NDF (Hamming distance is permutation-invariant).
    core::PipelineOptions opts;
    opts.samples_per_period = 2048;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    const Chronogram g = pipe.chronogram(golden);
    const Chronogram d = pipe.chronogram(defective);
    const double healthy_ndf = core::ndf(d, g);
    const double swapped_ndf =
        core::ndf(apply_swapped_bits(d, 1, 4), apply_swapped_bits(g, 1, 4));
    EXPECT_NEAR(swapped_ndf, healthy_ndf, 1e-12);
}

} // namespace
} // namespace xysig::capture
