// Property-based tests of the monitor construction across process corners:
// the zone structure the paper relies on must be robust to the device
// template, not an artefact of one calibration point.

#include <gtest/gtest.h>

#include "monitor/table1.h"
#include "monitor/zone_map.h"

namespace xysig::monitor {
namespace {

struct Corner {
    const char* name;
    double vt0;
    double kp;
    double n_slope;
};

class MonitorCorners : public ::testing::TestWithParam<Corner> {
protected:
    Table1Options options() const {
        Table1Options opts = default_table1_options();
        opts.device.vt0 = GetParam().vt0;
        opts.device.kp = GetParam().kp;
        opts.device.n_slope = GetParam().n_slope;
        return opts;
    }
};

TEST_P(MonitorCorners, OriginZoneIsAllZeros) {
    const MonitorBank bank = build_table1_bank(options());
    EXPECT_EQ(bank.code(0.02, 0.005), 0u);
}

TEST_P(MonitorCorners, GrayPropertyHolds) {
    const MonitorBank bank = build_table1_bank(options());
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 128);
    EXPECT_LT(zm.gray_violation_fraction(), 0.03) << GetParam().name;
}

TEST_P(MonitorCorners, ZoneCountStaysNearSixteen) {
    // Corner shifts move the curves but must not collapse the partition.
    const MonitorBank bank = build_table1_bank(options());
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 128);
    EXPECT_GE(zm.zone_count(), 12u) << GetParam().name;
    EXPECT_LE(zm.zone_count(), 20u) << GetParam().name;
}

TEST_P(MonitorCorners, DiagonalMonitorStaysDiagonal) {
    // Curve 6 is set by symmetry, not by absolute device parameters.
    const MosCurrentBoundary b(table1_config(6, options()));
    for (double v : {0.2, 0.5, 0.8}) {
        EXPECT_TRUE(b.side(v - 0.05, v + 0.05)) << GetParam().name;
        EXPECT_FALSE(b.side(v + 0.05, v - 0.05)) << GetParam().name;
    }
}

TEST_P(MonitorCorners, BoundariesRespondMonotonicallyAlongY) {
    // For monitors with Y on the left branch, h grows with y at fixed x
    // (more left current): the zone bit can flip at most once along a
    // vertical line — required for the signature's run-length structure.
    const auto opts = options();
    for (int row : {1, 3, 4, 5}) {
        const MosCurrentBoundary b(table1_config(row, opts));
        for (double x : {0.1, 0.5, 0.9}) {
            double prev = b.h(x, 0.0);
            for (double y = 0.05; y <= 1.0; y += 0.05) {
                const double cur = b.h(x, y);
                EXPECT_GE(cur, prev - 1e-15)
                    << GetParam().name << " row " << row << " x " << x;
                prev = cur;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ProcessCorners, MonitorCorners,
    ::testing::Values(Corner{"nominal", 0.30, 250e-6, 1.35},
                      Corner{"slow_high_vt", 0.35, 220e-6, 1.40},
                      Corner{"fast_low_vt", 0.25, 280e-6, 1.30},
                      Corner{"low_gain", 0.30, 150e-6, 1.35},
                      Corner{"steep_subthreshold", 0.30, 250e-6, 1.15}),
    // `param_info`, not `info`: the INSTANTIATE_TEST_SUITE_P expansion already
    // has an `info` parameter in scope, and the hardening lane builds -Wshadow.
    [](const ::testing::TestParamInfo<Corner>& param_info) {
        return std::string(param_info.param.name);
    });

} // namespace
} // namespace xysig::monitor
