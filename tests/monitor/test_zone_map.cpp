// Zone map tests: the Table I bank must reproduce exactly the 16 zone codes
// the paper lists in Fig. 6, with Gray-coded adjacency.

#include "monitor/zone_map.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "monitor/table1.h"

namespace xysig::monitor {
namespace {

TEST(MonitorBank, CodeBitOrderMonitorOneIsMsb) {
    MonitorBank bank;
    bank.add(std::make_unique<LinearBoundary>(1.0, 0.0, -0.5)); // x > 0.5
    bank.add(std::make_unique<LinearBoundary>(0.0, 1.0, -0.5)); // y > 0.5
    EXPECT_EQ(bank.code(0.75, 0.25), 0b10u); // monitor 1 fires -> MSB
    EXPECT_EQ(bank.code(0.25, 0.75), 0b01u);
    EXPECT_EQ(bank.code(0.75, 0.75), 0b11u);
    EXPECT_EQ(bank.code(0.25, 0.25), 0b00u);
}

TEST(MonitorBank, CopyIsDeep) {
    MonitorBank bank;
    bank.add(std::make_unique<LinearBoundary>(1.0, 0.0, -0.5));
    MonitorBank copy = bank;
    EXPECT_EQ(copy.size(), 1u);
    EXPECT_EQ(copy.code(0.75, 0.0), bank.code(0.75, 0.0));
}

TEST(ZoneMap, Table1BankReproducesFig6CodeSet) {
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);

    // The exact 16 codes labelled in the paper's Fig. 6.
    const std::vector<unsigned> paper_codes = {0,  1,  4,  5,  12, 13, 20, 28,
                                               30, 37, 45, 47, 60, 61, 62, 63};
    EXPECT_EQ(zm.zone_count(), paper_codes.size());
    for (const unsigned code : paper_codes)
        EXPECT_TRUE(zm.has_zone(code)) << "missing zone " << code;
}

TEST(ZoneMap, AdjacentZonesDifferInOneBit) {
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);
    // Raster artefacts at curve intersections allow a small tolerance.
    EXPECT_LT(zm.gray_violation_fraction(), 0.02);
}

TEST(ZoneMap, OriginZoneIsAllZeros) {
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 128);
    EXPECT_EQ(zm.code_at(0.02, 0.005), 0u);
}

TEST(ZoneMap, TopRightIsAllOnes) {
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 128);
    EXPECT_EQ(zm.code_at(0.85, 0.95), 63u);
}

TEST(ZoneMap, MirrorSymmetryAcrossDiagonal) {
    // The bank's symmetric curves (3-5) plus paired curves (1,2) make the
    // zone structure mirror-symmetric: Fig. 6 shows e.g. 010100 (20) at
    // (0.63, 0.20) mirrored by 100101 (37) at (0.20, 0.63).
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);
    EXPECT_TRUE(zm.has_zone(20));
    EXPECT_TRUE(zm.has_zone(37));
    const Zone& z20 = zm.zone(20);
    const Zone& z37 = zm.zone(37);
    EXPECT_NEAR(z20.rep_x, z37.rep_y, 0.03);
    EXPECT_NEAR(z20.rep_y, z37.rep_x, 0.03);
}

TEST(ZoneMap, AdjacencyContainsOriginNeighbours) {
    const MonitorBank bank = build_table1_bank();
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);
    // Zone 0 borders zone 1 across curve 6 near the origin (Fig. 6).
    EXPECT_TRUE(zm.adjacency().contains({0u, 1u}));
    // Zone 0 borders zone 4 across curve 4.
    EXPECT_TRUE(zm.adjacency().contains({0u, 4u}));
}

TEST(ZoneMap, LinearBaselineBankProducesZones) {
    const MonitorBank bank = build_linear_approximation_bank();
    ASSERT_EQ(bank.size(), 6u);
    const ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 128);
    // Straight lines still partition the plane into a comparable zone count.
    EXPECT_GE(zm.zone_count(), 10u);
    EXPECT_LE(zm.zone_count(), 25u);
    EXPECT_LT(zm.gray_violation_fraction(), 0.05);
}

TEST(ZoneMap, RejectsDegenerateWindow) {
    const MonitorBank bank = build_table1_bank();
    EXPECT_THROW(ZoneMap(bank, 0.0, 0.0, 0.0, 1.0, 64), ContractError);
}

} // namespace
} // namespace xysig::monitor
