// Boundary orientation and curve tracing tests.

#include "monitor/boundary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace xysig::monitor {
namespace {

TEST(LinearBoundary, OriginSideIsNegative) {
    // Line x + y - 1 = 0; origin gives -1 -> kept as-is.
    const LinearBoundary b(1.0, 1.0, -1.0);
    EXPECT_LT(b.h(0.0, 0.0), 0.0);
    EXPECT_FALSE(b.side(0.2, 0.2));
    EXPECT_TRUE(b.side(0.8, 0.8));
}

TEST(LinearBoundary, FlipsWhenOriginEvaluatesPositive) {
    // Line -x - y + 1 = 0 evaluates +1 at origin -> constructor flips signs.
    const LinearBoundary b(-1.0, -1.0, 1.0);
    EXPECT_LT(b.h(0.0, 0.0), 0.0);
    EXPECT_TRUE(b.side(0.8, 0.8));
}

TEST(LinearBoundary, LineThroughOriginUsesReferencePoint) {
    // Diagonal y = x: reference point (0.05, 0) must be the "0" side.
    const LinearBoundary b(-1.0, 1.0, 0.0); // y - x
    EXPECT_FALSE(b.side(0.5, 0.3)); // below diagonal: origin side
    EXPECT_TRUE(b.side(0.3, 0.5));  // above diagonal
}

TEST(LinearBoundary, DegenerateLineRejected) {
    EXPECT_THROW(LinearBoundary(0.0, 0.0, 1.0), ContractError);
}

TEST(TraceBoundary, RecoversStraightLine) {
    const LinearBoundary b(1.0, 1.0, -1.0); // x + y = 1
    const auto pts = trace_boundary(b, 0.0, 1.0, 11, 0.0, 1.0);
    ASSERT_GE(pts.size(), 9u);
    for (const auto& p : pts)
        EXPECT_NEAR(p.x + p.y, 1.0, 1e-6);
}

TEST(TraceBoundary, FindsMultipleBranches) {
    // h = (y - 0.25)*(y - 0.75): two horizontal branches, origin side is
    // outside [0.25, 0.75]... h(0,0) = 0.1875 > 0 so flip orientation by
    // wrapping in a custom boundary.
    class TwoBranch final : public Boundary {
    public:
        double h(double, double y) const override {
            return -((y - 0.25) * (y - 0.75));
        }
        std::unique_ptr<Boundary> clone() const override {
            return std::make_unique<TwoBranch>(*this);
        }
    };
    const TwoBranch b;
    const auto pts = trace_boundary(b, 0.0, 1.0, 5, 0.0, 1.0);
    // Two roots per column.
    EXPECT_EQ(pts.size(), 10u);
    for (const auto& p : pts)
        EXPECT_TRUE(std::abs(p.y - 0.25) < 1e-6 || std::abs(p.y - 0.75) < 1e-6);
}

TEST(TraceBoundary, EmptyWhenNoCrossing) {
    const LinearBoundary b(1.0, 1.0, -10.0); // far outside the window
    const auto pts = trace_boundary(b, 0.0, 1.0, 5, 0.0, 1.0);
    EXPECT_TRUE(pts.empty());
}

TEST(TraceBoundary, RejectsBadWindow) {
    const LinearBoundary b(1.0, 1.0, -1.0);
    EXPECT_THROW((void)trace_boundary(b, 1.0, 0.0, 5, 0.0, 1.0), ContractError);
}

} // namespace
} // namespace xysig::monitor
