// Tests of the current-comparison monitor model: Table I curve shapes
// (paper Fig. 4), orientation, and Monte-Carlo perturbation.

#include "monitor/mos_boundary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "monitor/table1.h"

namespace xysig::monitor {
namespace {

TEST(MosCurrentBoundary, OriginSideIsZeroForAllTable1Curves) {
    for (int row = 1; row <= 6; ++row) {
        const MosCurrentBoundary b(table1_config(row));
        EXPECT_FALSE(b.side(0.01, 0.0)) << "curve " << row;
    }
}

TEST(MosCurrentBoundary, FarCornerIsOneForAllTable1Curves) {
    // (1, 1) drives the axis-connected devices hard; every Table I curve has
    // the top-right corner on the "1" side (see Fig. 6: code 111111).
    for (int row = 1; row <= 6; ++row) {
        const MosCurrentBoundary b(table1_config(row));
        EXPECT_TRUE(b.side(1.0, 1.0)) << "curve " << row;
    }
}

TEST(MosCurrentBoundary, Curve6IsTheDiagonal) {
    const MosCurrentBoundary b(table1_config(6));
    EXPECT_TRUE(b.side(0.3, 0.5));  // above y = x
    EXPECT_FALSE(b.side(0.5, 0.3)); // below
    // On-diagonal points are on the curve: |h| tiny relative to off-diagonal.
    const double on = std::abs(b.h(0.4, 0.4));
    const double off = std::abs(b.h(0.4, 0.6));
    EXPECT_LT(on, 1e-6 * off);
}

TEST(MosCurrentBoundary, Curve1IsPositiveSlopeSegment) {
    // Fig. 4: curve 1 sits near y ~ 0.6 at x = 0 and rises slowly.
    const MosCurrentBoundary b(table1_config(1));
    const auto pts = trace_boundary(b, 0.0, 1.0, 21, 0.0, 1.0);
    ASSERT_GE(pts.size(), 15u);
    EXPECT_NEAR(pts.front().y, 0.6, 0.05);
    // Monotone non-decreasing in x.
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_GE(pts[i].y, pts[i - 1].y - 1e-9);
    EXPECT_GT(pts.back().y, pts.front().y + 0.05);
}

TEST(MosCurrentBoundary, Curves3to5AreNegativeSlopeArcsOrderedByBias) {
    // Fig. 4: DC levels 0.3 / 0.55 / 0.75 give arcs at increasing distance
    // from the origin (curves 4, 3, 5 respectively).
    auto y_at_zero = [](int row) {
        const MosCurrentBoundary b(table1_config(row));
        const auto pts = trace_boundary(b, 0.0, 0.02, 2, 0.0, 1.0);
        EXPECT_FALSE(pts.empty()) << "curve " << row;
        return pts.empty() ? -1.0 : pts.front().y;
    };
    const double y4 = y_at_zero(4);
    const double y3 = y_at_zero(3);
    const double y5 = y_at_zero(5);
    EXPECT_LT(y4, y3);
    EXPECT_LT(y3, y5);

    // Negative slope: y(x) decreases along curve 3.
    const MosCurrentBoundary b3(table1_config(3));
    const auto pts = trace_boundary(b3, 0.3, 0.6, 7, 0.0, 1.0);
    ASSERT_GE(pts.size(), 5u);
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_LE(pts[i].y, pts[i - 1].y + 1e-9);
}

TEST(MosCurrentBoundary, SymmetricCurvesMirrorAcrossDiagonal) {
    // Curves 3-5 add X and Y symmetrically: h(x, y) == h(y, x).
    for (int row : {3, 4, 5}) {
        const MosCurrentBoundary b(table1_config(row));
        for (double x : {0.1, 0.35, 0.6})
            for (double y : {0.2, 0.5, 0.9})
                EXPECT_NEAR(b.h(x, y), b.h(y, x), 1e-18) << "curve " << row;
    }
}

TEST(MosCurrentBoundary, WidthRatioControlsCurvePosition) {
    // Doubling M4's width (DC leg at 0.6 V) pushes curve 1 upward: more
    // right-side current must be matched by a larger Y.
    MonitorConfig cfg = table1_config(1);
    const MosCurrentBoundary base(cfg);
    cfg.legs[3].width *= 2.0;
    const MosCurrentBoundary wider(cfg);
    const auto p_base = trace_boundary(base, 0.5, 0.52, 2, 0.0, 1.0);
    const auto p_wide = trace_boundary(wider, 0.5, 0.52, 2, 0.0, 1.0);
    ASSERT_FALSE(p_base.empty());
    ASSERT_FALSE(p_wide.empty());
    EXPECT_GT(p_wide.front().y, p_base.front().y + 0.02);
}

TEST(MosCurrentBoundary, CurrentDifferenceIsLeftMinusRight) {
    const MonitorConfig cfg = table1_config(6);
    const MosCurrentBoundary b(cfg);
    // At (0, 0.5): left legs (Y=0.5, dc 0) conduct more than right (X=0, 0).
    EXPECT_GT(b.current_difference(0.0, 0.5), 0.0);
    EXPECT_LT(b.current_difference(0.5, 0.0), 0.0);
}

TEST(PerturbMonitor, DeterministicPerSeed) {
    const MonitorConfig cfg = table1_config(3);
    const mc::PelgromModel pel;
    const mc::ProcessVariation pv;
    Rng a(42), b(42);
    const MonitorConfig pa = perturb_monitor(cfg, pel, pv, a);
    const MonitorConfig pb = perturb_monitor(cfg, pel, pv, b);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(pa.legs[i].vt0_delta, pb.legs[i].vt0_delta);
        EXPECT_DOUBLE_EQ(pa.legs[i].kp_scale, pb.legs[i].kp_scale);
    }
}

TEST(PerturbMonitor, ShiftsAreMismatchSized) {
    const MonitorConfig cfg = table1_config(3);
    const mc::PelgromModel pel;
    const mc::ProcessVariation pv;
    Rng rng(7);
    double max_vt = 0.0;
    for (int i = 0; i < 100; ++i) {
        const MonitorConfig p = perturb_monitor(cfg, pel, pv, rng);
        for (const auto& leg : p.legs)
            max_vt = std::max(max_vt, std::abs(leg.vt0_delta));
    }
    EXPECT_GT(max_vt, 0.005); // variation actually applied
    EXPECT_LT(max_vt, 0.15);  // but physically plausible
}

TEST(MosCurrentBoundary, OffsetCurrentDistortsSubthresholdRegion) {
    // The paper attributes the measured distortion of curve 6 at small input
    // voltages to subthreshold operation: a fixed comparator offset current
    // displaces the boundary strongly where the input currents are nA-scale
    // and negligibly where they are strong-inversion uA-scale.
    MonitorConfig cfg = table1_config(6);
    cfg.offset_current = 2e-9;
    const MosCurrentBoundary nominal(table1_config(6));
    const MosCurrentBoundary offset(cfg);
    auto y_at = [](const MosCurrentBoundary& b, double x) {
        const auto pts = trace_boundary(b, x, x + 1e-6, 2, 0.0, 1.0);
        return pts.empty() ? -1.0 : pts.front().y;
    };
    const double shift_low = std::abs(y_at(offset, 0.05) - y_at(nominal, 0.05));
    const double shift_high = std::abs(y_at(offset, 0.6) - y_at(nominal, 0.6));
    EXPECT_GT(shift_low, 5.0 * std::max(shift_high, 1e-6));
    EXPECT_LT(shift_high, 2e-3); // invisible in strong inversion
}

TEST(PerturbMonitor, SamplesOffsetCurrent) {
    const MonitorConfig cfg = table1_config(6);
    Rng rng(11);
    const MonitorConfig p = perturb_monitor(cfg, {}, {}, rng);
    EXPECT_NE(p.offset_current, 0.0);
    EXPECT_LT(std::abs(p.offset_current), 20e-9);
}

TEST(PerturbMonitor, MovesTheBoundary) {
    const MonitorConfig cfg = table1_config(3);
    Rng rng(3);
    const MonitorConfig p = perturb_monitor(cfg, {}, {}, rng);
    const MosCurrentBoundary nominal(cfg);
    const MosCurrentBoundary perturbed(p);
    const auto b0 = trace_boundary(nominal, 0.2, 0.22, 2, 0.0, 1.0);
    const auto b1 = trace_boundary(perturbed, 0.2, 0.22, 2, 0.0, 1.0);
    ASSERT_FALSE(b0.empty());
    ASSERT_FALSE(b1.empty());
    EXPECT_GT(std::abs(b0.front().y - b1.front().y), 1e-5);
}

} // namespace
} // namespace xysig::monitor
