// Transistor-level cross-validation: the Fig. 2 comparator netlist solved
// by the SPICE engine must agree with the closed-form boundary everywhere
// except in a thin band around the control curve.

#include "monitor/comparator_netlist.h"

#include <cmath>

#include <gtest/gtest.h>

#include "monitor/table1.h"
#include "spice/dc.h"

namespace xysig::monitor {
namespace {

TEST(Comparator, BuildsAndSolves) {
    ComparatorCircuit ckt = build_comparator(table1_config(3));
    EXPECT_NO_THROW((void)comparator_differential(ckt, 0.2, 0.2));
}

TEST(Comparator, DecisionMatchesClosedFormAwayFromBoundary) {
    for (int row : {1, 3, 6}) {
        const MonitorConfig cfg = table1_config(row);
        const MosCurrentBoundary closed_form(cfg);
        ComparatorCircuit ckt = build_comparator(cfg);

        int checked = 0;
        for (double x = 0.1; x <= 0.91; x += 0.2) {
            for (double y = 0.1; y <= 0.91; y += 0.2) {
                // Skip points close to the control curve, where finite gain
                // (and in silicon, offset) decides: compare only clear-cut
                // points, |dI| above 2% of the full-scale difference.
                const double di = closed_form.current_difference(x, y);
                const double scale =
                    std::abs(closed_form.current_difference(1.0, 0.0)) +
                    std::abs(closed_form.current_difference(0.0, 1.0));
                if (std::abs(di) < 0.02 * scale)
                    continue;
                ++checked;
                const bool expected = di > 0.0; // I_left > I_right
                EXPECT_EQ(comparator_decision(ckt, x, y), expected)
                    << "row " << row << " at (" << x << "," << y << ")";
            }
        }
        EXPECT_GE(checked, 10) << "row " << row;
    }
}

TEST(Comparator, DifferentialFlipsSignAcrossCurve6) {
    ComparatorCircuit ckt = build_comparator(table1_config(6));
    const double above = comparator_differential(ckt, 0.3, 0.6);
    const double below = comparator_differential(ckt, 0.6, 0.3);
    EXPECT_GT(above, 0.0);  // left current dominates -> out2 high
    EXPECT_LT(below, 0.0);
    // Symmetric configuration: symmetric swings.
    EXPECT_NEAR(above, -below, 0.05 * std::abs(above));
}

TEST(Comparator, GainGrowsWithOverdrive) {
    ComparatorCircuit ckt = build_comparator(table1_config(6));
    const double small = std::abs(comparator_differential(ckt, 0.45, 0.55));
    const double large = std::abs(comparator_differential(ckt, 0.2, 0.8));
    EXPECT_GT(large, small);
}

TEST(Comparator, FeedbackRatioAboveOneRejected) {
    ComparatorOptions opts;
    opts.feedback_ratio = 1.2; // regenerative: DC solution not unique
    EXPECT_THROW((void)build_comparator(table1_config(3), opts), ContractError);
}

void expect_outputs_inside_supply(ComparatorCircuit& ckt, double x, double y) {
    (void)comparator_differential(ckt, x, y);
    const auto op = spice::dc_operating_point(ckt.netlist);
    const double v1 = op.voltage(ckt.out_left);
    const double v2 = op.voltage(ckt.out_right);
    EXPECT_GE(v1, -1e-6);
    EXPECT_LE(v1, ckt.options.vdd + 1e-6);
    EXPECT_GE(v2, -1e-6);
    EXPECT_LE(v2, ckt.options.vdd + 1e-6);
}

TEST(Comparator, OutputsStayInsideSupply) {
    ComparatorCircuit ckt = build_comparator(table1_config(3));
    for (double x : {0.1, 0.5, 0.9})
        for (double y : {0.1, 0.5, 0.9})
            expect_outputs_inside_supply(ckt, x, y);
}

} // namespace
} // namespace xysig::monitor
