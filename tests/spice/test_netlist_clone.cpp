// Netlist::clone() deep-copy contract: structural equivalence, bit-identical
// transient behaviour, and complete isolation (no aliasing of devices,
// waveforms or node tables) — the re-entrancy primitive of the parallel
// SPICE backend.

#include "spice/netlist.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "filter/tow_thomas.h"
#include "signal/waveform.h"
#include "spice/elements.h"
#include "spice/transient.h"

namespace xysig::spice {
namespace {

/// RC low-pass driven by a sine — small but exercises sources, linear
/// elements and reactive transient state.
Netlist make_rc() {
    Netlist nl;
    const auto in = nl.node("in");
    const auto out = nl.node("out");
    nl.add<VoltageSource>("Vin", in, kGround, SineWaveform(0.0, 0.5, 10e3));
    nl.add<Resistor>("R1", in, out, 10e3);
    nl.add<Capacitor>("C1", out, kGround, 1.59e-9);
    return nl;
}

TransientResult run(const Netlist& nl) {
    TransientOptions opts;
    opts.t_stop = 3e-4;
    opts.dt = 1e-6;
    return run_transient(nl, opts);
}

TEST(NetlistClone, CopiesNodeTableAndDeviceRoster) {
    const Netlist original = make_rc();
    const Netlist copy = original.clone();

    ASSERT_EQ(copy.node_count(), original.node_count());
    for (NodeId id = 0; id < static_cast<NodeId>(original.node_count()); ++id)
        EXPECT_EQ(copy.node_name(id), original.node_name(id));
    EXPECT_EQ(copy.find_node("out"), original.find_node("out"));

    ASSERT_EQ(copy.devices().size(), original.devices().size());
    for (std::size_t i = 0; i < original.devices().size(); ++i) {
        EXPECT_EQ(copy.devices()[i]->name(), original.devices()[i]->name());
        // Deep copy: never the same object.
        EXPECT_NE(copy.devices()[i].get(), original.devices()[i].get());
    }
    EXPECT_DOUBLE_EQ(copy.get<Resistor>("R1").resistance(),
                     original.get<Resistor>("R1").resistance());
    EXPECT_DOUBLE_EQ(copy.get<Capacitor>("C1").capacitance(),
                     original.get<Capacitor>("C1").capacitance());
}

TEST(NetlistClone, TransientTraceIsBitIdentical) {
    const Netlist original = make_rc();
    const Netlist copy = original.clone();

    const auto ref = run(original);
    const auto dup = run(copy);
    ASSERT_EQ(dup.step_count(), ref.step_count());
    const NodeId out_o = original.find_node("out");
    const NodeId out_c = copy.find_node("out");
    for (std::size_t k = 0; k < ref.step_count(); ++k) {
        EXPECT_EQ(dup.time()[k], ref.time()[k]) << "step " << k;
        EXPECT_EQ(dup.voltage(out_c, k), ref.voltage(out_o, k)) << "step " << k;
    }
}

TEST(NetlistClone, TowThomasCloneMatchesOriginalExactly) {
    const filter::TowThomasCircuit ckt = filter::build_tow_thomas({});
    Netlist copy = ckt.netlist.clone();
    copy.get<VoltageSource>("Vin").set_waveform(SineWaveform(0.3, 0.2, 5e3));
    Netlist copy2 = copy.clone(); // clone of a clone, waveform included

    TransientOptions opts;
    opts.t_stop = 4e-4;
    opts.dt = 5e-7;
    const auto a = run_transient(copy, opts);
    const auto b = run_transient(copy2, opts);
    ASSERT_EQ(b.step_count(), a.step_count());
    const NodeId lp = copy.find_node("lp");
    for (std::size_t k = 0; k < a.step_count(); ++k)
        ASSERT_EQ(b.voltage(lp, k), a.voltage(lp, k)) << "step " << k;
}

TEST(NetlistClone, MutatingOriginalDoesNotAffectClone) {
    Netlist original = make_rc();
    const Netlist copy = original.clone();
    const auto before = run(copy);

    // Component change + drive change + a whole new device on the original.
    original.get<Resistor>("R1").set_resistance(1e3);
    original.get<VoltageSource>("Vin").set_waveform(DcWaveform(1.0));
    original.add<Resistor>("Rload", original.find_node("out"), kGround, 5e3);
    (void)run(original); // also advance the original's transient state

    const auto after = run(copy);
    ASSERT_EQ(after.step_count(), before.step_count());
    const NodeId out = copy.find_node("out");
    for (std::size_t k = 0; k < before.step_count(); ++k)
        ASSERT_EQ(after.voltage(out, k), before.voltage(out, k)) << "step " << k;
    // And the clone never grew the extra device.
    EXPECT_EQ(copy.devices().size(), 3u);
    EXPECT_EQ(copy.try_get<Resistor>("Rload"), nullptr);
}

TEST(NetlistClone, ClonePreservesMidRunTransientState) {
    // Clone taken after a run: device state (capacitor history) is copied,
    // but a fresh run re-initialises from the DC operating point, so both
    // circuits must still agree exactly.
    Netlist original = make_rc();
    (void)run(original);
    const Netlist copy = original.clone();
    const auto ref = run(original);
    const auto dup = run(copy);
    const NodeId out = original.find_node("out");
    ASSERT_EQ(dup.step_count(), ref.step_count());
    for (std::size_t k = 0; k < ref.step_count(); ++k)
        ASSERT_EQ(dup.voltage(out, k), ref.voltage(out, k));
}

TEST(RunTransientInto, ReusedResultIsBitIdenticalToFreshRuns) {
    const Netlist nl = make_rc();
    TransientOptions opts;
    opts.t_stop = 2e-4;
    opts.dt = 1e-6;

    const auto fresh = run_transient(nl, opts);
    TransientResult reused;
    run_transient_into(nl, opts, reused);
    const NodeId out = nl.find_node("out");
    ASSERT_EQ(reused.step_count(), fresh.step_count());
    for (std::size_t k = 0; k < fresh.step_count(); ++k)
        ASSERT_EQ(reused.voltage(out, k), fresh.voltage(out, k));

    // Second, shorter run into the same result: stale rows beyond the new
    // length must be invisible.
    opts.t_stop = 1e-4;
    run_transient_into(nl, opts, reused);
    const auto fresh_short = run_transient(nl, opts);
    ASSERT_EQ(reused.step_count(), fresh_short.step_count());
    for (std::size_t k = 0; k < fresh_short.step_count(); ++k)
        ASSERT_EQ(reused.voltage(out, k), fresh_short.voltage(out, k));
    EXPECT_EQ(reused.voltage_trace("out").size(), fresh_short.step_count());
}

} // namespace
} // namespace xysig::spice
