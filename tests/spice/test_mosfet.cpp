// MOSFET model tests: operating regions, derivative consistency (finite
// differences), pMOS mirroring, EKV vs Level-1 cross-checks.

#include "spice/mosfet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace xysig::spice {
namespace {

MosParams nominal_nmos() {
    MosParams p;
    p.w = 1.8e-6;
    p.l = 180e-9;
    p.vt0 = 0.30;
    p.kp = 250e-6;
    p.n_slope = 1.35;
    p.lambda = 0.1;
    return p;
}

TEST(MosEkv, CutOffCurrentIsTiny) {
    const auto e = mos_evaluate(nominal_nmos(), 0.0, 0.6);
    EXPECT_GT(e.id, 0.0); // subthreshold leakage, not exactly zero
    EXPECT_LT(e.id, 1e-8);
}

TEST(MosEkv, SubthresholdIsExponential) {
    // One decade of current per n*phi_t*ln(10) of VGS below threshold.
    const MosParams p = nominal_nmos();
    const double step = p.n_slope * kThermalVoltage300K * std::log(10.0);
    const double i1 = mos_evaluate(p, 0.05, 0.6).id;
    const double i2 = mos_evaluate(p, 0.05 + step, 0.6).id;
    // Moderate-inversion correction leaves ~6% deviation from the pure
    // exponential decade at this depth.
    EXPECT_NEAR(i2 / i1, 10.0, 0.7);
}

TEST(MosEkv, StrongInversionIsQuasiQuadratic) {
    // The paper's monitor relies on ID ~ (VGS - VT)^2 in saturation: doubling
    // the overdrive should quadruple the current (within CLM and moderate
    // inversion corrections).
    const MosParams p = nominal_nmos();
    const double i1 = mos_evaluate(p, p.vt0 + 0.2, 1.2).id;
    const double i2 = mos_evaluate(p, p.vt0 + 0.4, 1.2).id;
    EXPECT_NEAR(i2 / i1, 4.0, 0.45);
}

TEST(MosEkv, SaturationMatchesSquareLawScale) {
    // Analytic strong-inversion saturation: (kp/2n)(W/L)(VGS-VT)^2.
    const MosParams p = nominal_nmos();
    const double vov = 0.4;
    const double expected =
        p.kp / (2.0 * p.n_slope) * p.aspect_ratio() * vov * vov;
    const double id = mos_evaluate(p, p.vt0 + vov, 1.2).id;
    // CLM adds ~12%; allow 25%.
    EXPECT_NEAR(id, expected, 0.25 * expected);
}

TEST(MosEkv, CurrentScalesWithAspectRatio) {
    MosParams p = nominal_nmos();
    const double i1 = mos_evaluate(p, 0.7, 1.0).id;
    p.w *= 3.0;
    const double i3 = mos_evaluate(p, 0.7, 1.0).id;
    EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

TEST(MosEkv, ZeroVdsZeroCurrent) {
    const auto e = mos_evaluate(nominal_nmos(), 0.8, 0.0);
    EXPECT_NEAR(e.id, 0.0, 1e-15);
}

TEST(MosEkv, DrainSourceSymmetry) {
    // EKV is symmetric: reversing VDS with the gate referenced to the new
    // source mirrors the current.
    const MosParams p = nominal_nmos();
    const double vgs = 0.8, vds = 0.3;
    const double fwd = mos_evaluate(p, vgs, vds).id;
    // Swap roles: gate-new-source voltage = vgs - vds, vds negated.
    const double rev = mos_evaluate(p, vgs - vds, -vds).id;
    EXPECT_NEAR(fwd, -rev, 1e-9 * std::abs(fwd) + 1e-15);
}

class MosDerivatives : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MosDerivatives, EkvMatchesFiniteDifference) {
    const auto [vgs, vds] = GetParam();
    const MosParams p = nominal_nmos();
    const double h = 1e-7;
    const auto e = mos_evaluate(p, vgs, vds);
    const double gm_fd =
        (mos_evaluate(p, vgs + h, vds).id - mos_evaluate(p, vgs - h, vds).id) /
        (2.0 * h);
    const double gds_fd =
        (mos_evaluate(p, vgs, vds + h).id - mos_evaluate(p, vgs, vds - h).id) /
        (2.0 * h);
    const double scale_gm = std::max(1e-12, std::abs(gm_fd));
    const double scale_gds = std::max(1e-12, std::abs(gds_fd));
    EXPECT_NEAR(e.gm, gm_fd, 1e-5 * scale_gm + 1e-12);
    EXPECT_NEAR(e.gds, gds_fd, 1e-5 * scale_gds + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosDerivatives,
    ::testing::Values(std::make_tuple(0.1, 0.1), std::make_tuple(0.2, 0.6),
                      std::make_tuple(0.35, 0.05), std::make_tuple(0.5, 0.2),
                      std::make_tuple(0.7, 0.7), std::make_tuple(0.9, 1.1),
                      std::make_tuple(1.1, 0.4), std::make_tuple(0.6, 1.2)));

TEST(MosPmos, MirrorsNmosBehaviour) {
    MosParams pn = nominal_nmos();
    MosParams pp = pn;
    pp.type = MosType::pmos;
    // A conducting pMOS: vgs = -0.7, vds = -0.6.
    const auto en = mos_evaluate(pn, 0.7, 0.6);
    const auto ep = mos_evaluate(pp, -0.7, -0.6);
    EXPECT_NEAR(ep.id, -en.id, 1e-15 + 1e-12 * std::abs(en.id));
}

TEST(MosPmos, DerivativesMatchFiniteDifference) {
    MosParams p = nominal_nmos();
    p.type = MosType::pmos;
    const double vgs = -0.8, vds = -0.5, h = 1e-7;
    const auto e = mos_evaluate(p, vgs, vds);
    const double gm_fd =
        (mos_evaluate(p, vgs + h, vds).id - mos_evaluate(p, vgs - h, vds).id) /
        (2.0 * h);
    const double gds_fd =
        (mos_evaluate(p, vgs, vds + h).id - mos_evaluate(p, vgs, vds - h).id) /
        (2.0 * h);
    EXPECT_NEAR(e.gm, gm_fd, 1e-5 * std::abs(gm_fd) + 1e-12);
    EXPECT_NEAR(e.gds, gds_fd, 1e-5 * std::abs(gds_fd) + 1e-12);
}

TEST(MosLevel1, CutoffIsExactlyZero) {
    MosParams p = nominal_nmos();
    p.model = MosModel::level1;
    EXPECT_DOUBLE_EQ(mos_evaluate(p, 0.2, 0.6).id, 0.0);
}

TEST(MosLevel1, SaturationSquareLaw) {
    MosParams p = nominal_nmos();
    p.model = MosModel::level1;
    p.lambda = 0.0;
    const double vov = 0.3;
    const double expected = 0.5 * p.kp * p.aspect_ratio() * vov * vov;
    EXPECT_NEAR(mos_evaluate(p, p.vt0 + vov, 1.0).id, expected, 1e-12);
}

TEST(MosLevel1, TriodeLaw) {
    MosParams p = nominal_nmos();
    p.model = MosModel::level1;
    p.lambda = 0.0;
    const double vov = 0.5, vds = 0.2;
    const double expected = p.kp * p.aspect_ratio() * (vov * vds - 0.5 * vds * vds);
    EXPECT_NEAR(mos_evaluate(p, p.vt0 + vov, vds).id, expected, 1e-12);
}

TEST(MosLevel1, NegativeVdsSymmetry) {
    MosParams p = nominal_nmos();
    p.model = MosModel::level1;
    // id(vgs, -vds) = -id(vgs + vds, vds): gate referenced to the new source.
    const double fwd = mos_evaluate(p, 0.8 + 0.3, 0.3).id;
    const double rev = mos_evaluate(p, 0.8, -0.3).id;
    EXPECT_NEAR(rev, -fwd, 1e-15);
}

TEST(MosModels, EkvApproachesLevel1DeepInStrongInversion) {
    // With matched parameters and lambda = 0, deep strong inversion currents
    // agree within the moderate-inversion correction (~ up to 20%).
    MosParams ekv = nominal_nmos();
    ekv.lambda = 0.0;
    ekv.n_slope = 1.0;
    MosParams l1 = ekv;
    l1.model = MosModel::level1;
    const double i_ekv = mos_evaluate(ekv, 1.1, 1.2).id;
    const double i_l1 = mos_evaluate(l1, 1.1, 1.2).id;
    EXPECT_NEAR(i_ekv / i_l1, 1.0, 0.2);
}

TEST(MosParams, InvalidGeometryIsContractViolation) {
    MosParams p = nominal_nmos();
    p.w = 0.0;
    EXPECT_THROW((void)mos_evaluate(p, 0.5, 0.5), ContractError);
}

} // namespace
} // namespace xysig::spice
