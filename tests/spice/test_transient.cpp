// Transient analysis tests against closed-form step/sine responses.

#include "spice/transient.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "signal/fft.h"
#include "spice/elements.h"

namespace xysig::spice {
namespace {

/// RC low-pass driven by a step via PWL (starts at 0, steps to 1 V fast).
Netlist rc_step_circuit(double r, double c) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround,
                          PwlWaveform({{0.0, 0.0}, {1e-9, 1.0}}));
    nl.add<Resistor>("R1", in, out, r);
    nl.add<Capacitor>("C1", out, kGround, c);
    return nl;
}

TEST(Transient, RcStepResponseMatchesAnalytic) {
    const double r = 1e3, c = 1e-6; // tau = 1 ms
    Netlist nl = rc_step_circuit(r, c);
    TransientOptions opts;
    opts.t_stop = 5e-3;
    opts.dt = 1e-6;
    const auto res = run_transient(nl, opts);
    const double tau = r * c;
    for (double t : {0.5e-3, 1e-3, 2e-3, 4e-3}) {
        const std::size_t idx = static_cast<std::size_t>(t / opts.dt);
        const double expected = 1.0 - std::exp(-(t - 1e-9) / tau);
        EXPECT_NEAR(res.voltage(nl.find_node("out"), idx), expected, 2e-3)
            << "at t=" << t;
    }
}

TEST(Transient, BackwardEulerAlsoConverges) {
    Netlist nl = rc_step_circuit(1e3, 1e-6);
    TransientOptions opts;
    opts.t_stop = 3e-3;
    opts.dt = 5e-7;
    opts.integrator = Integrator::backward_euler;
    const auto res = run_transient(nl, opts);
    const double expected = 1.0 - std::exp(-3.0);
    EXPECT_NEAR(res.voltage(nl.find_node("out"), res.step_count() - 1), expected,
                5e-3);
}

TEST(Transient, RcSineSteadyStateGainAndPhase) {
    // First-order RC at f = fc: gain 1/sqrt(2), phase -45 deg.
    const double r = 1e3, c = 1e-9;
    const double fc = 1.0 / (kTwoPi * r * c); // ~159 kHz
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround, SineWaveform(0.0, 1.0, fc));
    nl.add<Resistor>("R1", in, out, r);
    nl.add<Capacitor>("C1", out, kGround, c);

    TransientOptions opts;
    const double period = 1.0 / fc;
    opts.t_stop = 20.0 * period;
    opts.dt = period / 400.0;
    const auto res = run_transient(nl, opts);

    // Analyse the last 8 periods.
    const auto sig = res.signal("out");
    const auto tail = sig.slice_time(12.0 * period, 20.0 * period);
    std::vector<double> samples(tail.samples().begin(), tail.samples().end());
    const auto comp = tone_component(samples, 1.0 / tail.dt(), fc);
    EXPECT_NEAR(std::abs(comp), 1.0 / std::sqrt(2.0), 5e-3);
}

TEST(Transient, LcTankOscillatesAtResonance) {
    // Ideal LC tank with an initial condition set by a brief current kick.
    const double l = 1e-3, c = 1e-9; // f0 ~ 159 kHz
    Netlist nl;
    const NodeId top = nl.node("top");
    nl.add<Inductor>("L1", top, kGround, l);
    nl.add<Capacitor>("C1", top, kGround, c);
    // Kick: 1 mA for the first 5 us, then zero.
    nl.add<CurrentSource>("I1", kGround, top,
                          PwlWaveform({{0.0, 1e-3}, {5e-6, 1e-3}, {5.1e-6, 0.0}}));
    nl.add<Resistor>("Rbig", top, kGround, 1e9); // numerical anchor

    const double f0 = 1.0 / (kTwoPi * std::sqrt(l * c));
    TransientOptions opts;
    opts.t_stop = 100e-6;
    opts.dt = 20e-9;
    const auto res = run_transient(nl, opts);

    // Measure dominant frequency over the free-running tail.
    const auto sig = res.signal("top");
    const auto tail = sig.slice_time(10e-6, 100e-6);
    std::vector<double> samples(tail.samples().begin(), tail.samples().end());
    const auto mags = magnitude_spectrum(samples);
    std::size_t peak = 1;
    for (std::size_t k = 2; k < mags.size(); ++k)
        if (mags[k] > mags[peak])
            peak = k;
    const double fs = 1.0 / tail.dt();
    const double n_fft = static_cast<double>(next_pow2(samples.size()));
    const double f_peak = static_cast<double>(peak) * fs / n_fft;
    EXPECT_NEAR(f_peak, f0, 0.05 * f0);
}

TEST(Transient, TrapezoidalPreservesLcAmplitudeBetterThanBe) {
    const double l = 1e-3, c = 1e-9;
    auto build = [&]() {
        Netlist nl;
        const NodeId top = nl.node("top");
        nl.add<Inductor>("L1", top, kGround, l);
        nl.add<Capacitor>("C1", top, kGround, c);
        nl.add<CurrentSource>("I1", kGround, top,
                              PwlWaveform({{0.0, 1e-3}, {5e-6, 1e-3}, {5.1e-6, 0.0}}));
        nl.add<Resistor>("Rbig", top, kGround, 1e9);
        return nl;
    };
    TransientOptions opts;
    opts.t_stop = 200e-6;
    opts.dt = 50e-9;

    Netlist nl_tr = build();
    opts.integrator = Integrator::trapezoidal;
    const auto res_tr = run_transient(nl_tr, opts);
    Netlist nl_be = build();
    opts.integrator = Integrator::backward_euler;
    const auto res_be = run_transient(nl_be, opts);

    auto late_amplitude = [&](const TransientResult& res, const Netlist& nl) {
        const NodeId top = nl.find_node("top");
        double amp = 0.0;
        for (std::size_t i = res.step_count() * 3 / 4; i < res.step_count(); ++i)
            amp = std::max(amp, std::abs(res.voltage(top, i)));
        return amp;
    };
    const double amp_tr = late_amplitude(res_tr, nl_tr);
    const double amp_be = late_amplitude(res_be, nl_be);
    // BE damps numerically; TRAP should retain clearly more energy.
    EXPECT_GT(amp_tr, 2.0 * amp_be);
}

TEST(Transient, InitialConditionIsOperatingPoint) {
    // A charged divider: transient must start from the DC solution, no jump.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add<VoltageSource>("V1", in, kGround, 2.0);
    nl.add<Resistor>("R1", in, mid, 1e3);
    nl.add<Resistor>("R2", mid, kGround, 1e3);
    nl.add<Capacitor>("C1", mid, kGround, 1e-9);
    TransientOptions opts;
    opts.t_stop = 10e-6;
    opts.dt = 1e-7;
    const auto res = run_transient(nl, opts);
    for (std::size_t i = 0; i < res.step_count(); ++i)
        EXPECT_NEAR(res.voltage(nl.find_node("mid"), i), 1.0, 1e-6);
}

TEST(Transient, AdaptiveMatchesFixedStepOnRc) {
    const double r = 1e3, c = 1e-6;
    Netlist nl_fixed = rc_step_circuit(r, c);
    Netlist nl_adapt = rc_step_circuit(r, c);

    TransientOptions fixed;
    fixed.t_stop = 3e-3;
    fixed.dt = 1e-7;
    const auto res_fixed = run_transient(nl_fixed, fixed);

    TransientOptions adapt = fixed;
    adapt.adaptive = true;
    adapt.dt = 1e-6;
    adapt.lte_tol = 1e-6;
    const auto res_adapt = run_transient(nl_adapt, adapt);

    const auto sig_a = res_adapt.sampled_voltage("out", 1e-5);
    const auto sig_f = res_fixed.sampled_voltage("out", 1e-5);
    for (std::size_t i = 0; i < std::min(sig_a.size(), sig_f.size()); ++i)
        EXPECT_NEAR(sig_a[i], sig_f[i], 1e-3);
}

TEST(Transient, AdaptiveRefinesAroundFastEdge) {
    // A sharp pulse through an RC: the adaptive run must spend more points
    // near the edges than a uniform spacing at its maximum dt would.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround,
                          PulseWaveform(0.0, 1.0, 100e-6, 1e-6, 1e-6, 100e-6, 400e-6));
    nl.add<Resistor>("R1", in, out, 1e3);
    nl.add<Capacitor>("C1", out, kGround, 10e-9); // tau = 10 us
    TransientOptions opts;
    opts.t_stop = 400e-6;
    opts.dt = 2e-6;
    opts.adaptive = true;
    opts.lte_tol = 1e-4;
    opts.dt_max = 50e-6;
    const auto res = run_transient(nl, opts);
    EXPECT_GT(res.step_count(), 30u);
    EXPECT_GT(res.rejected_steps, 0);
    // Final value: pulse off, output discharged.
    EXPECT_NEAR(res.voltage(nl.find_node("out"), res.step_count() - 1), 0.0, 0.05);
}

TEST(Transient, SampledVoltageResamplesUniformly) {
    Netlist nl = rc_step_circuit(1e3, 1e-6);
    TransientOptions opts;
    opts.t_stop = 1e-3;
    opts.dt = 1e-6;
    const auto res = run_transient(nl, opts);
    const auto sig = res.sampled_voltage("out", 1e-5);
    EXPECT_NEAR(sig.dt(), 1e-5, 1e-15);
    EXPECT_GE(sig.size(), 99u);
    // Spot check against the stored trajectory.
    EXPECT_NEAR(sig.value_at(5e-4), res.voltage(nl.find_node("out"), 500), 1e-6);
}

TEST(Transient, RejectsBadTimeWindow) {
    Netlist nl = rc_step_circuit(1e3, 1e-6);
    TransientOptions opts;
    opts.t_stop = 0.0;
    EXPECT_THROW((void)run_transient(nl, opts), ContractError);
}

} // namespace
} // namespace xysig::spice
