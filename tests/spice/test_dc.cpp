// DC analysis tests: every result is checked against hand circuit theory.

#include "spice/dc.h"

#include <gtest/gtest.h>

#include "spice/diode.h"
#include "spice/elements.h"
#include "spice/mosfet.h"

namespace xysig::spice {
namespace {

TEST(DcOp, ResistiveDivider) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add<VoltageSource>("V1", in, kGround, 10.0);
    nl.add<Resistor>("R1", in, mid, 3e3);
    nl.add<Resistor>("R2", mid, kGround, 7e3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("mid"), 7.0, 1e-6); // 1e-6 absorbs gmin loading
    EXPECT_NEAR(op.voltage("in"), 10.0, 1e-6);
}

TEST(DcOp, SourceBranchCurrentIsReported) {
    Netlist nl;
    const NodeId in = nl.node("in");
    auto& v1 = nl.add<VoltageSource>("V1", in, kGround, 10.0);
    nl.add<Resistor>("R1", in, kGround, 2e3);
    const auto op = dc_operating_point(nl);
    // 5 mA flows out of the + terminal: branch current (n+ -> n- internal)
    // is -5 mA by the MNA sign convention (current leaves at n+).
    EXPECT_NEAR(v1.current(op.unknowns()), -5e-3, 1e-9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
    Netlist nl;
    const NodeId out = nl.node("out");
    // 1 mA from ground into node out (I flows n+ -> n- through the source).
    nl.add<CurrentSource>("I1", kGround, out, 1e-3);
    nl.add<Resistor>("R1", out, kGround, 4e3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), 4.0, 1e-6);
}

TEST(DcOp, CapacitorIsOpenInDc) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add<VoltageSource>("V1", in, kGround, 5.0);
    nl.add<Resistor>("R1", in, mid, 1e3);
    nl.add<Capacitor>("C1", mid, kGround, 1e-9);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("mid"), 5.0, 1e-6); // no DC path: follows input
}

TEST(DcOp, InductorIsShortInDc) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add<VoltageSource>("V1", in, kGround, 5.0);
    nl.add<Resistor>("R1", in, mid, 1e3);
    nl.add<Inductor>("L1", mid, kGround, 1e-3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("mid"), 0.0, 1e-9);
}

TEST(DcOp, VcvsGain) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround, 0.5);
    nl.add<Vcvs>("E1", out, kGround, in, kGround, 4.0);
    nl.add<Resistor>("RL", out, kGround, 1e3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), 2.0, 1e-6);
}

TEST(DcOp, VccsTransconductance) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround, 1.0);
    // i = gm*v(in) = 2 mA flows out->gnd through the source; with the load
    // the node voltage becomes -2 V * ... check sign: current flows from out
    // node through source to ground, pulling out low: v(out) = -gm*v(in)*R.
    nl.add<Vccs>("G1", out, kGround, in, kGround, 2e-3);
    nl.add<Resistor>("RL", out, kGround, 1e3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), -2.0, 1e-6);
}

TEST(DcOp, IdealOpampBuffer) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround, 1.25);
    // Unity follower: inn tied to out.
    nl.add<IdealOpamp>("U1", in, out, out);
    nl.add<Resistor>("RL", out, kGround, 1e3);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), 1.25, 1e-9);
}

TEST(DcOp, IdealOpampInvertingAmplifier) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId vm = nl.node("vm");
    const NodeId out = nl.node("out");
    nl.add<VoltageSource>("V1", in, kGround, 0.3);
    nl.add<Resistor>("R1", in, vm, 1e3);
    nl.add<Resistor>("R2", vm, out, 3.3e3);
    nl.add<IdealOpamp>("U1", kGround, vm, out);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), -0.3 * 3.3, 1e-9);
    EXPECT_NEAR(op.voltage("vm"), 0.0, 1e-9); // virtual ground
}

TEST(DcOp, DiodeForwardDrop) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId a = nl.node("a");
    nl.add<VoltageSource>("V1", in, kGround, 5.0);
    nl.add<Resistor>("R1", in, a, 1e3);
    nl.add<Diode>("D1", a, kGround);
    const auto op = dc_operating_point(nl);
    const double vd = op.voltage("a");
    EXPECT_GT(vd, 0.4);
    EXPECT_LT(vd, 0.8);
    // KCL closure: resistor current equals diode current.
    const double ir = (5.0 - vd) / 1e3;
    const Diode& d = nl.get<Diode>("D1");
    EXPECT_NEAR(d.evaluate(vd).id, ir, 1e-9);
}

TEST(DcOp, DiodeReverseBlocks) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId a = nl.node("a");
    nl.add<VoltageSource>("V1", in, kGround, -5.0);
    nl.add<Resistor>("R1", in, a, 1e3);
    nl.add<Diode>("D1", a, kGround);
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("a"), -5.0, 1e-3); // only Is leaks
}

TEST(DcOp, NmosCommonSourceAmplifierBias) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId g = nl.node("g");
    const NodeId d = nl.node("d");
    nl.add<VoltageSource>("VDD", vdd, kGround, 1.2);
    nl.add<VoltageSource>("VG", g, kGround, 0.6);
    nl.add<Resistor>("RD", vdd, d, 10e3);
    MosParams p;
    p.w = 1.8e-6;
    p.l = 180e-9;
    nl.add<Mosfet>("M1", d, g, kGround, p);
    const auto op = dc_operating_point(nl);
    const double vd = op.voltage("d");
    EXPECT_GT(vd, 0.0);
    EXPECT_LT(vd, 1.2);
    // KCL closure through the drain resistor.
    const double ir = (1.2 - vd) / 10e3;
    const double id = mos_evaluate(p, 0.6, vd).id;
    EXPECT_NEAR(id, ir, 1e-8);
}

TEST(DcSweep, NmosInverterTransferIsMonotonicDecreasing) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId g = nl.node("g");
    const NodeId d = nl.node("d");
    nl.add<VoltageSource>("VDD", vdd, kGround, 1.2);
    nl.add<VoltageSource>("VG", g, kGround, 0.0);
    nl.add<Resistor>("RD", vdd, d, 20e3);
    MosParams p;
    p.w = 3e-6;
    p.l = 180e-9;
    nl.add<Mosfet>("M1", d, g, kGround, p);

    std::vector<double> levels;
    for (int i = 0; i <= 12; ++i)
        levels.push_back(0.1 * i);
    const auto vout = dc_sweep(nl, "VG", levels, "d");
    ASSERT_EQ(vout.size(), levels.size());
    EXPECT_NEAR(vout.front(), 1.2, 1e-3); // off: pulled to VDD
    EXPECT_LT(vout.back(), 0.3);          // on: pulled low
    for (std::size_t i = 1; i < vout.size(); ++i)
        EXPECT_LE(vout[i], vout[i - 1] + 1e-9);
}

TEST(DcOp, FailsCleanlyOnUnsolvableCircuit) {
    // Two ideal voltage sources in parallel with conflicting values has no
    // solution; the engine must throw NumericError, not hang or crash.
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add<VoltageSource>("V1", a, kGround, 1.0);
    nl.add<VoltageSource>("V2", a, kGround, 2.0);
    EXPECT_THROW((void)dc_operating_point(nl), NumericError);
}

} // namespace
} // namespace xysig::spice
