// AC analysis tests against first/second-order analytic responses.

#include "spice/ac.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/mosfet.h"

namespace xysig::spice {
namespace {

TEST(Ac, RcLowPassMagnitudeAndPhase) {
    const double r = 1e3, c = 1e-9;
    const double fc = 1.0 / (kTwoPi * r * c);
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    auto& v = nl.add<VoltageSource>("V1", in, kGround, 0.0);
    v.set_ac(1.0);
    nl.add<Resistor>("R1", in, out, r);
    nl.add<Capacitor>("C1", out, kGround, c);

    AcOptions opts;
    opts.f_start = fc / 100.0;
    opts.f_stop = fc * 100.0;
    opts.points_per_decade = 10;
    const auto res = run_ac(nl, opts);

    for (std::size_t i = 0; i < res.point_count(); ++i) {
        const double f = res.frequencies()[i];
        const std::complex<double> expected =
            1.0 / std::complex<double>(1.0, f / fc);
        const auto got = res.voltage("out", i);
        EXPECT_NEAR(std::abs(got), std::abs(expected), 1e-6);
        EXPECT_NEAR(std::arg(got), std::arg(expected), 1e-6);
    }
}

TEST(Ac, RlcSeriesResonancePeak) {
    const double r = 100.0, l = 1e-3, c = 1e-9; // Q = 10: wide enough to sample
    const double f0 = 1.0 / (kTwoPi * std::sqrt(l * c));
    const double q = std::sqrt(l / c) / r; // ~100
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId a = nl.node("a");
    const NodeId out = nl.node("out");
    auto& v = nl.add<VoltageSource>("V1", in, kGround, 0.0);
    v.set_ac(1.0);
    nl.add<Resistor>("R1", in, a, r);
    nl.add<Inductor>("L1", a, out, l);
    nl.add<Capacitor>("C1", out, kGround, c);

    AcOptions opts;
    opts.f_start = f0 * 0.5;
    opts.f_stop = f0 * 2.0;
    opts.points_per_decade = 400;
    const auto res = run_ac(nl, opts);

    // Capacitor voltage peaks near f0 with magnitude ~ Q.
    double peak = 0.0;
    double f_peak = 0.0;
    for (std::size_t i = 0; i < res.point_count(); ++i) {
        const double m = std::abs(res.voltage("out", i));
        if (m > peak) {
            peak = m;
            f_peak = res.frequencies()[i];
        }
    }
    EXPECT_NEAR(f_peak, f0, 0.02 * f0);
    EXPECT_NEAR(peak, q, 0.05 * q);
}

TEST(Ac, OpampInvertingAmpIsFlat) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId vm = nl.node("vm");
    const NodeId out = nl.node("out");
    auto& v = nl.add<VoltageSource>("V1", in, kGround, 0.0);
    v.set_ac(1.0);
    nl.add<Resistor>("R1", in, vm, 1e3);
    nl.add<Resistor>("R2", vm, out, 5e3);
    nl.add<IdealOpamp>("U1", kGround, vm, out);
    AcOptions opts;
    opts.f_start = 10.0;
    opts.f_stop = 1e6;
    opts.points_per_decade = 5;
    const auto res = run_ac(nl, opts);
    for (std::size_t i = 0; i < res.point_count(); ++i) {
        EXPECT_NEAR(std::abs(res.voltage("out", i)), 5.0, 1e-6);
        EXPECT_NEAR(std::abs(std::arg(res.voltage("out", i))), kPi, 1e-6);
    }
}

TEST(Ac, MosfetCommonSourceGainMatchesGmRd) {
    // Small-signal gain of a common-source stage: -gm*(RD || ro).
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId g = nl.node("g");
    const NodeId d = nl.node("d");
    nl.add<VoltageSource>("VDD", vdd, kGround, 1.2);
    auto& vg = nl.add<VoltageSource>("VG", g, kGround, 0.6);
    vg.set_ac(1.0);
    const double rd = 10e3;
    nl.add<Resistor>("RD", vdd, d, rd);
    MosParams p;
    p.w = 1.8e-6;
    p.l = 180e-9;
    nl.add<Mosfet>("M1", d, g, kGround, p);

    // Compute expected gain from the solved operating point.
    const auto op = dc_operating_point(nl);
    const auto e = mos_evaluate(p, 0.6, op.voltage("d"));
    const double expected = e.gm / (1.0 / rd + e.gds);

    AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 1000.0;
    opts.points_per_decade = 3;
    const auto res = run_ac(nl, opts);
    EXPECT_NEAR(std::abs(res.voltage("d", 0)), expected, 1e-6 * expected);
}

TEST(Ac, MagnitudePhaseHelpers) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    auto& v = nl.add<VoltageSource>("V1", in, kGround, 0.0);
    v.set_ac(2.0); // non-unit AC magnitude scales the response
    nl.add<Resistor>("R1", in, out, 1e3);
    nl.add<Resistor>("R2", out, kGround, 1e3);
    AcOptions opts;
    opts.f_start = 1e3;
    opts.f_stop = 1e4;
    opts.points_per_decade = 2;
    const auto res = run_ac(nl, opts);
    const auto mags = res.magnitude("out");
    const auto phases = res.phase("out");
    ASSERT_EQ(mags.size(), res.point_count());
    for (std::size_t i = 0; i < mags.size(); ++i) {
        EXPECT_NEAR(mags[i], 1.0, 1e-9); // divider halves the 2 V drive
        EXPECT_NEAR(phases[i], 0.0, 1e-9);
    }
}

TEST(Ac, RejectsBadFrequencyRange) {
    Netlist nl;
    const NodeId in = nl.node("in");
    nl.add<VoltageSource>("V1", in, kGround, 1.0);
    nl.add<Resistor>("R1", in, kGround, 1e3);
    AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 10.0;
    EXPECT_THROW((void)run_ac(nl, opts), ContractError);
}

} // namespace
} // namespace xysig::spice
