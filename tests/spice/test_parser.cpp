// SPICE-deck parser tests: every card type, engineering notation, error
// reporting, and an end-to-end parse -> solve check.

#include "spice/parser.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/diode.h"
#include "spice/elements.h"
#include "spice/mosfet.h"
#include "spice/transient.h"

namespace xysig::spice {
namespace {

TEST(Parser, ResistiveDividerSolves) {
    const auto nl = parse_deck(R"(divider test
V1 in 0 10
R1 in mid 3k
R2 mid 0 7k
.end
)");
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("mid"), 7.0, 1e-6);
}

TEST(Parser, EngineeringSuffixesAndComments) {
    const auto nl = parse_deck(R"(suffixes
* a comment line
V1 a 0 1.5
R1 a b 4.7k

C1 b 0 180n
)");
    EXPECT_DOUBLE_EQ(nl.get<Resistor>("R1").resistance(), 4700.0);
    EXPECT_DOUBLE_EQ(nl.get<Capacitor>("C1").capacitance(), 180e-9);
}

TEST(Parser, SinSourceWithPhase) {
    const auto nl = parse_deck(R"(sin
V1 in 0 SIN(0.5 0.3 5k 90)
R1 in 0 1k
)");
    const auto& v = nl.get<VoltageSource>("V1");
    // Phase 90 deg: value at t=0 is offset + amplitude.
    EXPECT_NEAR(v.waveform().value(0.0), 0.8, 1e-12);
    EXPECT_NEAR(v.waveform().period(), 1.0 / 5e3, 1e-15);
}

TEST(Parser, PulseAndPwlSources) {
    const auto nl = parse_deck(R"(pulse+pwl
V1 a 0 PULSE(0 1 1u 1u 1u 2u 10u)
V2 b 0 PWL(0 0 1m 2.0)
R1 a 0 1k
R2 b 0 1k
)");
    EXPECT_NEAR(nl.get<VoltageSource>("V1").waveform().value(3e-6), 1.0, 1e-12);
    EXPECT_NEAR(nl.get<VoltageSource>("V2").waveform().value(0.5e-3), 1.0, 1e-12);
}

TEST(Parser, AcSpecification) {
    const auto nl = parse_deck(R"(ac deck
V1 in 0 0 AC 1
R1 in out 1k
C1 out 0 1n
)");
    AcOptions opts;
    opts.f_start = 1.0;
    opts.f_stop = 10.0;
    opts.points_per_decade = 1;
    const auto res = run_ac(nl, opts);
    EXPECT_NEAR(std::abs(res.voltage("out", 0)), 1.0, 1e-3); // far below fc
}

TEST(Parser, ControlledSources) {
    const auto nl = parse_deck(R"(controlled
V1 in 0 0.5
E1 eo 0 in 0 4
G1 go 0 in 0 2m
RL1 eo 0 1k
RL2 go 0 1k
)");
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("eo"), 2.0, 1e-6);
    EXPECT_NEAR(op.voltage("go"), -1.0, 1e-6);
}

TEST(Parser, DiodeWithParameters) {
    const auto nl = parse_deck(R"(diode
V1 in 0 5
R1 in a 1k
D1 a 0 IS=1e-12 N=1.5
)");
    const auto op = dc_operating_point(nl);
    EXPECT_GT(op.voltage("a"), 0.3);
    EXPECT_LT(op.voltage("a"), 1.0);
}

TEST(Parser, MosfetWithModelCard) {
    const auto nl = parse_deck(R"(mos amp
.MODEL nch NMOS VTO=0.3 KP=250u LAMBDA=0.1 N=1.35 LEVEL=EKV
VDD vdd 0 1.2
VG g 0 0.6
RD vdd d 10k
M1 d g 0 nch W=1.8u L=180n
)");
    const auto& m = nl.get<Mosfet>("M1");
    EXPECT_DOUBLE_EQ(m.params().vt0, 0.3);
    EXPECT_DOUBLE_EQ(m.params().w, 1.8e-6);
    const auto op = dc_operating_point(nl);
    EXPECT_GT(op.voltage("d"), 0.0);
    EXPECT_LT(op.voltage("d"), 1.2);
}

TEST(Parser, ModelCardMayFollowDevice) {
    // Two-pass parsing: .MODEL after the M card must still resolve.
    const auto nl = parse_deck(R"(order
VDD vdd 0 1.2
M1 vdd g 0 nch W=1u L=180n
VG g 0 0.5
.MODEL nch NMOS VTO=0.3
)");
    EXPECT_NO_THROW((void)dc_operating_point(nl));
}

TEST(Parser, OpampExtension) {
    const auto nl = parse_deck(R"(follower
V1 in 0 1.25
U1 in out out
RL out 0 1k
)");
    const auto op = dc_operating_point(nl);
    EXPECT_NEAR(op.voltage("out"), 1.25, 1e-9);
}

TEST(Parser, TransientOfParsedRc) {
    const auto nl = parse_deck(R"(rc step
V1 in 0 PWL(0 0 1n 1)
R1 in out 1k
C1 out 0 1u
)");
    TransientOptions opts;
    opts.t_stop = 2e-3;
    opts.dt = 1e-6;
    const auto res = run_transient(nl, opts);
    const double expected = 1.0 - std::exp(-2.0);
    EXPECT_NEAR(res.voltage(nl.find_node("out"), res.step_count() - 1), expected,
                5e-3);
}

TEST(Parser, ErrorsCarryLineNumbers) {
    try {
        (void)parse_deck("title\nR1 a 0\n");
        FAIL() << "expected InvalidInput";
    } catch (const InvalidInput& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Parser, UnknownElementRejected) {
    EXPECT_THROW((void)parse_deck("t\nQ1 a b c model\n"), InvalidInput);
    EXPECT_THROW((void)parse_deck("t\n.tran 1u 1m\n"), InvalidInput);
    EXPECT_THROW((void)parse_deck("t\nM1 d g 0 nomodel W=1u\n"), InvalidInput);
}

TEST(Parser, EndTerminatesParsing) {
    const auto nl = parse_deck(R"(end test
V1 a 0 1
R1 a 0 1k
.END
garbage that must be ignored
)");
    EXPECT_NO_THROW(nl.validate());
}

} // namespace
} // namespace xysig::spice
