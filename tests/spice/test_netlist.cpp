// Unit tests for netlist construction and validation.

#include "spice/netlist.h"

#include <gtest/gtest.h>

#include "spice/elements.h"

namespace xysig::spice {
namespace {

TEST(Netlist, GroundAliases) {
    Netlist nl;
    EXPECT_EQ(nl.node("0"), kGround);
    EXPECT_EQ(nl.node("gnd"), kGround);
    EXPECT_EQ(nl.node("GND"), kGround);
}

TEST(Netlist, NodeNamesAreCaseInsensitiveAndStable) {
    Netlist nl;
    const NodeId a = nl.node("out");
    EXPECT_EQ(nl.node("OUT"), a);
    EXPECT_EQ(nl.node("Out"), a);
    const NodeId b = nl.node("in");
    EXPECT_NE(a, b);
    EXPECT_EQ(nl.node_count(), 3u); // ground + 2
}

TEST(Netlist, FindNodeThrowsOnUnknown) {
    Netlist nl;
    EXPECT_THROW((void)nl.find_node("nope"), InvalidInput);
}

TEST(Netlist, DuplicateDeviceNameRejected) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_THROW(nl.add<Resistor>("R1", a, kGround, 2e3), InvalidInput);
}

TEST(Netlist, GetByNameAndType) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_DOUBLE_EQ(nl.get<Resistor>("R1").resistance(), 1e3);
    EXPECT_THROW((void)nl.get<Capacitor>("R1"), InvalidInput);
    EXPECT_THROW((void)nl.get<Resistor>("Rx"), InvalidInput);
}

TEST(Netlist, ValidateCatchesDanglingNode) {
    Netlist nl;
    const NodeId a = nl.node("a");
    (void)nl.node("floating");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_THROW(nl.validate(), InvalidInput);
}

TEST(Netlist, ValidateRejectsEmptyCircuit) {
    Netlist nl;
    EXPECT_THROW(nl.validate(), InvalidInput);
}

TEST(Netlist, AssignUnknownsCountsExtras) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add<VoltageSource>("V1", a, kGround, 1.0); // +1 extra
    nl.add<Resistor>("R1", a, b, 1e3);
    nl.add<Inductor>("L1", b, kGround, 1e-3); // +1 extra
    // 2 node voltages + 2 branch currents.
    EXPECT_EQ(nl.assign_unknowns(), 4u);
}

// Regression guard for the only unordered_map iteration in src/ (the
// remove_device reindex loop, xylint D1-annotated): everything the rest of
// the system derives from a netlist — MNA assembly order, and through it
// every simulated bit that reaches fingerprints and wire output — flows
// from devices(), which must be pure insertion order regardless of the
// hash-table history of the name index. Build two netlists with identical
// final content but radically different unordered_map bucket histories
// (one churns through many transient insert/erase cycles, forcing rehashes)
// and pin that enumeration order and name lookups agree exactly.
TEST(Netlist, DeviceOrderIsInsertionOrderIndependentOfHashState) {
    const auto build = [](bool churn) {
        Netlist nl;
        const NodeId a = nl.node("a");
        const NodeId b = nl.node("b");
        if (churn) {
            // Grow and shrink the device index so its bucket count and
            // per-bucket chains differ from the pristine netlist's.
            for (int i = 0; i < 64; ++i)
                nl.add<Resistor>("Rtmp" + std::to_string(i), a, kGround, 1e3);
            for (int i = 63; i >= 0; --i)
                nl.remove_device("Rtmp" + std::to_string(i));
        }
        nl.add<VoltageSource>("V1", a, kGround, 1.0);
        nl.add<Resistor>("R1", a, b, 1e3);
        nl.add<Resistor>("R2", b, kGround, 2e3);
        nl.add<Capacitor>("C1", b, kGround, 1e-9);
        nl.remove_device("R1"); // exercises the reindex loop under test
        return nl;
    };
    const Netlist clean = build(false);
    const Netlist churned = build(true);

    const auto names = [](const Netlist& nl) {
        std::vector<std::string> out;
        for (const auto& dev : nl.devices())
            out.push_back(dev->name());
        return out;
    };
    const std::vector<std::string> expected{"V1", "R2", "C1"};
    EXPECT_EQ(names(clean), expected);
    EXPECT_EQ(names(churned), expected);

    // The post-removal name index must still resolve every survivor to the
    // same object that insertion-order enumeration sees.
    for (const Netlist* nl : {&clean, &churned}) {
        EXPECT_EQ(nl->get<Resistor>("R2").resistance(), 2e3);
        EXPECT_EQ(&nl->get<Capacitor>("C1"), nl->devices()[2].get());
        EXPECT_THROW((void)nl->get<Resistor>("R1"), InvalidInput);
    }
}

TEST(Netlist, DeviceNodeMustExist) {
    Netlist nl;
    (void)nl.node("a");
    // NodeId 99 was never created.
    EXPECT_THROW(nl.add<Resistor>("R1", 99, kGround, 1e3), ContractError);
}

} // namespace
} // namespace xysig::spice
