// Unit tests for netlist construction and validation.

#include "spice/netlist.h"

#include <gtest/gtest.h>

#include "spice/elements.h"

namespace xysig::spice {
namespace {

TEST(Netlist, GroundAliases) {
    Netlist nl;
    EXPECT_EQ(nl.node("0"), kGround);
    EXPECT_EQ(nl.node("gnd"), kGround);
    EXPECT_EQ(nl.node("GND"), kGround);
}

TEST(Netlist, NodeNamesAreCaseInsensitiveAndStable) {
    Netlist nl;
    const NodeId a = nl.node("out");
    EXPECT_EQ(nl.node("OUT"), a);
    EXPECT_EQ(nl.node("Out"), a);
    const NodeId b = nl.node("in");
    EXPECT_NE(a, b);
    EXPECT_EQ(nl.node_count(), 3u); // ground + 2
}

TEST(Netlist, FindNodeThrowsOnUnknown) {
    Netlist nl;
    EXPECT_THROW((void)nl.find_node("nope"), InvalidInput);
}

TEST(Netlist, DuplicateDeviceNameRejected) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_THROW(nl.add<Resistor>("R1", a, kGround, 2e3), InvalidInput);
}

TEST(Netlist, GetByNameAndType) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_DOUBLE_EQ(nl.get<Resistor>("R1").resistance(), 1e3);
    EXPECT_THROW((void)nl.get<Capacitor>("R1"), InvalidInput);
    EXPECT_THROW((void)nl.get<Resistor>("Rx"), InvalidInput);
}

TEST(Netlist, ValidateCatchesDanglingNode) {
    Netlist nl;
    const NodeId a = nl.node("a");
    (void)nl.node("floating");
    nl.add<Resistor>("R1", a, kGround, 1e3);
    EXPECT_THROW(nl.validate(), InvalidInput);
}

TEST(Netlist, ValidateRejectsEmptyCircuit) {
    Netlist nl;
    EXPECT_THROW(nl.validate(), InvalidInput);
}

TEST(Netlist, AssignUnknownsCountsExtras) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add<VoltageSource>("V1", a, kGround, 1.0); // +1 extra
    nl.add<Resistor>("R1", a, b, 1e3);
    nl.add<Inductor>("L1", b, kGround, 1e-3); // +1 extra
    // 2 node voltages + 2 branch currents.
    EXPECT_EQ(nl.assign_unknowns(), 4u);
}

TEST(Netlist, DeviceNodeMustExist) {
    Netlist nl;
    (void)nl.node("a");
    // NodeId 99 was never created.
    EXPECT_THROW(nl.add<Resistor>("R1", 99, kGround, 1e3), ContractError);
}

} // namespace
} // namespace xysig::spice
