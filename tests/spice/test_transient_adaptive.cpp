// Adaptive-transient edge cases around the step-size controller:
//  * a rejected FINAL CLAMPED attempt must not trip the dt_min underflow
//    abort when the controller's own (unclamped) step is healthy — the
//    clamp to the remaining time is a termination mechanism, not a
//    convergence failure;
//  * a genuinely unresolvable tolerance still aborts with NumericError;
//  * t_stop == 0 terminates (the loop epsilon used to degenerate to an
//    exact-equality bound for runs ending at the time origin);
//  * reject-then-accept state restoration is bit-stable: repeated runs of a
//    rejection-heavy circuit produce bit-identical trajectories, including
//    through the pooled snapshot buffers and reused row storage.

#include "spice/transient.h"

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "spice/elements.h"

namespace xysig::spice {
namespace {

/// RC low-pass driven by a pulse whose rising corner sits at `edge` —
/// everything before the corner is exactly flat (zero local error), so the
/// first rejection happens exactly where the corner first enters a step.
Netlist pulse_rc(double edge) {
    Netlist nl;
    const auto in = nl.node("in");
    const auto out = nl.node("out");
    nl.add<VoltageSource>("Vin", in, kGround,
                          PulseWaveform(0.0, 1.0, /*delay=*/edge,
                                        /*rise=*/0.05e-6, /*fall=*/0.05e-6,
                                        /*width=*/5e-6, /*period=*/50e-6));
    nl.add<Resistor>("R1", in, out, 10e3);
    nl.add<Capacitor>("C1", out, kGround, 1e-9);
    return nl;
}

TEST(AdaptiveTransient, RejectedFinalClampedStepDoesNotUnderflow) {
    // 10 healthy 1us steps, then 0.5us of span left with the pulse corner
    // inside it. The clamped 0.5us attempt is rejected; halving it gives
    // 0.25us < dt_min = 0.3us, which used to abort even though the
    // controller's step (1us) was fine. Now the rejection of a
    // clamp-limited attempt is exempt from the underflow check, the engine
    // retries smaller, and the run completes.
    Netlist nl = pulse_rc(10.4e-6);
    TransientOptions opts;
    opts.t_stop = 10.5e-6;
    opts.dt = 1e-6;
    opts.dt_max = 1e-6; // keep the pre-corner steps at exactly 1us
    opts.dt_min = 0.3e-6;
    opts.adaptive = true;
    opts.lte_tol = 2e-3;

    const TransientResult res = run_transient(nl, opts);
    EXPECT_GE(res.rejected_steps, 1);
    ASSERT_GE(res.step_count(), 2u);
    EXPECT_DOUBLE_EQ(res.time().back(), opts.t_stop);
    // The healthy region really did run at the controller's step size.
    EXPECT_DOUBLE_EQ(res.time()[1] - res.time()[0], 1e-6);
}

TEST(AdaptiveTransient, GenuineUnderflowStillAborts) {
    // Same circuit, but a tolerance the corner cannot satisfy with steps
    // >= dt_min: once the retries are no longer clamp-limited the dt_min
    // guard must still fire.
    Netlist nl = pulse_rc(10.4e-6);
    TransientOptions opts;
    opts.t_stop = 10.5e-6;
    opts.dt = 1e-6;
    opts.dt_max = 1e-6;
    opts.dt_min = 0.3e-6;
    opts.adaptive = true;
    opts.lte_tol = 1e-4;
    EXPECT_THROW((void)run_transient(nl, opts), NumericError);
}

TEST(AdaptiveTransient, TerminatesWhenTStopIsZero) {
    // A run ending at the time origin: the termination epsilon must be
    // relative to the span, not to |t_stop| (1e-15 * 0 == 0 demands exact
    // equality from accumulated floating-point sums).
    Netlist nl;
    const auto in = nl.node("in");
    const auto out = nl.node("out");
    nl.add<VoltageSource>("Vin", in, kGround, SineWaveform(0.5, 0.3, 5e3));
    nl.add<Resistor>("R1", in, out, 10e3);
    nl.add<Capacitor>("C1", out, kGround, 1e-9);
    TransientOptions opts;
    opts.t_start = -200e-6;
    opts.t_stop = 0.0;
    opts.dt = 1e-6;
    opts.adaptive = true;
    opts.lte_tol = 1e-5;

    const TransientResult res = run_transient(nl, opts);
    ASSERT_GE(res.step_count(), 2u);
    // Ends within the span-relative epsilon of t = 0.
    EXPECT_NEAR(res.time().back(), 0.0, 1e-15 * 200e-6);
    EXPECT_GE(res.time().back(), -1e-15 * 200e-6);
}

TEST(AdaptiveTransient, RejectThenAcceptTrajectoriesAreBitStable) {
    // A rejection-heavy run (the corner mid-span forces many
    // reject-then-accept cycles). Re-running on an identical clone — and
    // into a reused TransientResult — must reproduce every time point and
    // every unknown bit for bit: state save/restore around rejected
    // attempts may not leak one ULP.
    const Netlist nominal = pulse_rc(20e-6);
    TransientOptions opts;
    opts.t_stop = 100e-6;
    opts.dt = 1e-6;
    opts.adaptive = true;
    opts.lte_tol = 1e-6;

    Netlist first = nominal.clone();
    const TransientResult a = run_transient(first, opts);
    EXPECT_GE(a.rejected_steps, 10); // the scenario genuinely rejects a lot

    Netlist second = nominal.clone();
    TransientResult b;
    run_transient_into(second, opts, b);
    // And reuse b's row storage for a third run (the re-entrancy path the
    // sweep service workers rely on).
    Netlist third = nominal.clone();
    run_transient_into(third, opts, b);

    ASSERT_EQ(a.step_count(), b.step_count());
    EXPECT_EQ(a.rejected_steps, b.rejected_steps);
    const auto node_count = static_cast<NodeId>(3);
    for (std::size_t s = 0; s < a.step_count(); ++s) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.time()[s]),
                  std::bit_cast<std::uint64_t>(b.time()[s]))
            << "time diverged at step " << s;
        for (NodeId n = 1; n < node_count; ++n)
            EXPECT_EQ(std::bit_cast<std::uint64_t>(a.voltage(n, s)),
                      std::bit_cast<std::uint64_t>(b.voltage(n, s)))
                << "node " << n << " diverged at step " << s;
    }
}

} // namespace
} // namespace xysig::spice
