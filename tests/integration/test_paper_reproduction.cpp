// Integration tests asserting the paper's published anchors end to end.
// These are the claims EXPERIMENTS.md reports against.

#include <cmath>

#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/detectability.h"
#include "core/ndf.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"
#include "monitor/zone_map.h"

namespace xysig {
namespace {

TEST(PaperReproduction, LissajousPeriodIs200us) {
    EXPECT_NEAR(core::paper_stimulus().period(), 200e-6, 1e-12);
}

TEST(PaperReproduction, Fig6SixteenGrayCodedZones) {
    const monitor::MonitorBank bank = monitor::build_table1_bank();
    const monitor::ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);
    EXPECT_EQ(zm.zone_count(), 16u);
    EXPECT_LT(zm.gray_violation_fraction(), 0.02);
}

TEST(PaperReproduction, Fig7NdfAnchorAndHammingPeak) {
    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));

    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    const auto observed = pipe.chronogram(defective);
    const double v = core::ndf(observed, pipe.golden());
    // Paper: NDF = 0.1021.
    EXPECT_NEAR(v, 0.1021, 0.035);

    // Paper: the Hamming chronogram is mostly 0/1 with a short excursion
    // to 2 (the 111110-for-011110/011100/111100 episode).
    const auto profile = core::hamming_profile(observed, pipe.golden());
    unsigned max_d = 0;
    for (const auto& seg : profile)
        max_d = std::max(max_d, seg.distance);
    EXPECT_GE(max_d, 1u);
    EXPECT_LE(max_d, 3u);
}

TEST(PaperReproduction, Fig8LinearSymmetricSweep) {
    core::PipelineOptions opts;
    opts.samples_per_period = 4096;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    std::vector<double> devs;
    for (int d = -20; d <= 20; d += 2)
        devs.push_back(d);
    const auto sweep = core::deviation_sweep(pipe, core::paper_biquad(), devs);
    const auto shape = core::analyse_sweep(sweep);
    EXPECT_GT(shape.r_squared, 0.97);        // "almost linearly"
    EXPECT_LT(shape.asymmetry, 0.10);        // "quite symmetrically"
    EXPECT_GT(shape.max_ndf, 0.12);          // Fig. 8 reaches ~0.19 at 20%
    EXPECT_LT(shape.max_ndf, 0.30);
}

TEST(PaperReproduction, NoiseClaimOnePercentDetectable) {
    core::PipelineOptions opts;
    opts.samples_per_period = 4096;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    core::DetectabilityOptions dopts;
    dopts.trials = 12;
    dopts.periods_averaged = 16;
    dopts.noise_sigma = 0.005; // 3*sigma = 15 mV
    const std::vector<double> devs = {-1.0, 1.0};
    const auto study =
        core::noise_detectability(pipe, core::paper_biquad(), devs, dopts, 777);
    for (const auto& p : study.points)
        EXPECT_TRUE(p.detected) << p.deviation_percent << "%";
}

TEST(PaperReproduction, TowThomasCircuitGivesSameVerdictAsBehavioural) {
    // Run the full flow on the transistor-level... opamp-level Tow-Thomas
    // netlist with a +10% f0 defect injected into its capacitors and check
    // the NDF agrees with the behavioural prediction.
    core::PipelineOptions opts;
    opts.samples_per_period = 1024; // SPICE path is expensive
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));

    filter::TowThomasCircuit ckt = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    ckt.inject_f0_shift(0.10);
    filter::SpiceCut spice_cut(ckt.netlist, ckt.input_source, ckt.input_node,
                               ckt.lp_node, 10);
    const double ndf_spice = pipe.ndf_of(spice_cut);

    const filter::BehaviouralCut fast(core::paper_biquad().with_f0_shift(0.10));
    const double ndf_fast = pipe.ndf_of(fast);

    EXPECT_NEAR(ndf_spice, ndf_fast, 0.02);
    EXPECT_GT(ndf_spice, 0.05);
}

TEST(PaperReproduction, PassFailBandsWork) {
    core::PipelineOptions opts;
    opts.samples_per_period = 4096;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    std::vector<double> devs;
    for (int d = -20; d <= 20; d += 5)
        devs.push_back(d);
    const auto sweep = core::deviation_sweep(pipe, core::paper_biquad(), devs);
    const auto thr = core::NdfThreshold::from_sweep(sweep, 10.0);
    // Fig. 8's dashed band: a 10% tolerance threshold sits near NDF ~ 0.1.
    EXPECT_GT(thr.threshold(), 0.05);
    EXPECT_LT(thr.threshold(), 0.15);
}

} // namespace
} // namespace xysig
