// Figure emitter and paper-comparison table tests.

#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "report/figure.h"

namespace xysig::report {
namespace {

TEST(Figure, PrintsCsvBlocksPerSeries) {
    Figure fig("fig8", "NDF vs deviation", "dev%", "NDF");
    fig.add_series({"golden", {0.0, 10.0}, {0.0, 0.1}});
    fig.add_series({"noisy", {0.0, 10.0}, {0.002, 0.11}});
    std::ostringstream os;
    fig.print(os, /*with_ascii_plot=*/false);
    const std::string out = os.str();
    EXPECT_NE(out.find("[fig8]"), std::string::npos);
    EXPECT_NE(out.find("series: golden"), std::string::npos);
    EXPECT_NE(out.find("series: noisy"), std::string::npos);
    EXPECT_NE(out.find("dev%,NDF:golden"), std::string::npos);
    EXPECT_NE(out.find("10,0.1"), std::string::npos);
}

TEST(Figure, AsciiPlotListsGlyphLegend) {
    Figure fig("fig1", "Lissajous", "x", "y");
    fig.add_series({"golden", {0.0, 0.5, 1.0}, {0.0, 1.0, 0.0}});
    std::ostringstream os;
    fig.print(os, /*with_ascii_plot=*/true);
    EXPECT_NE(os.str().find("glyph '1' = golden"), std::string::npos);
}

TEST(Figure, RejectsMalformedSeries) {
    Figure fig("x", "t", "a", "b");
    EXPECT_THROW(fig.add_series({"bad", {0.0, 1.0}, {0.0}}), ContractError);
    EXPECT_THROW(fig.add_series({"empty", {}, {}}), ContractError);
}

TEST(PaperComparison, PrintsAlignedAnchors) {
    PaperComparison cmp("Fig. 7");
    cmp.add("NDF(+10% f0)", "0.1021", 0.095, "calibrated setup");
    cmp.add("zones", "16", "16", "");
    std::ostringstream os;
    cmp.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("paper vs measured"), std::string::npos);
    EXPECT_NE(out.find("0.1021"), std::string::npos);
    EXPECT_NE(out.find("0.095"), std::string::npos);
    EXPECT_NE(out.find("quantity"), std::string::npos);
}

} // namespace
} // namespace xysig::report
