// Unit tests for CSV emission, text tables and the ASCII plotting canvas.

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/ascii_plot.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/table.h"

namespace xysig {
namespace {

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, HeaderAndNumericRows) {
    std::ostringstream os;
    CsvWriter w(os);
    const std::vector<std::string> hdr = {"x", "y"};
    w.write_header(hdr);
    const std::vector<double> row = {1.0, 2.5};
    w.write_row(row);
    EXPECT_EQ(os.str(), "x,y\n1,2.5\n");
}

TEST(CsvWriter, SeriesHelper) {
    std::ostringstream os;
    const std::vector<double> xs = {0.0, 1.0};
    const std::vector<double> ys = {10.0, 20.0};
    CsvWriter::write_series(os, "t", xs, "v", ys);
    EXPECT_EQ(os.str(), "t,v\n0,10\n1,20\n");
}

TEST(CsvWriter, SeriesLengthMismatchIsContractViolation) {
    std::ostringstream os;
    const std::vector<double> xs = {0.0, 1.0};
    const std::vector<double> ys = {10.0};
    EXPECT_THROW(CsvWriter::write_series(os, "t", xs, "v", ys), ContractError);
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"name", "value"});
    t.add_row({"f0", "10000"});
    t.add_row({"Q", "1"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("f0"), std::string::npos);
    // Header underline present.
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RowArityEnforced) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(AsciiCanvas, PointLandsInGrid) {
    AsciiCanvas c(0.0, 1.0, 0.0, 1.0, 10, 5);
    c.point(0.0, 0.0, 'o');
    c.point(1.0, 1.0, 'x');
    std::ostringstream os;
    c.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(AsciiCanvas, OutOfWindowPointsClipped) {
    AsciiCanvas c(0.0, 1.0, 0.0, 1.0, 10, 5);
    c.point(5.0, 5.0, 'Z');
    std::ostringstream os;
    c.print(os);
    EXPECT_EQ(os.str().find('Z'), std::string::npos);
}

TEST(AsciiCanvas, NonFinitePointsIgnored) {
    AsciiCanvas c(0.0, 1.0, 0.0, 1.0, 10, 5);
    c.point(std::nan(""), 0.5, 'N');
    std::ostringstream os;
    c.print(os);
    EXPECT_EQ(os.str().find('N'), std::string::npos);
}

TEST(AsciiPlotSeries, RendersWithoutThrowing) {
    std::vector<double> xs, ys;
    for (int i = 0; i <= 100; ++i) {
        xs.push_back(static_cast<double>(i));
        ys.push_back(static_cast<double>(i * i));
    }
    std::ostringstream os;
    ascii_plot_series(os, xs, ys, "parabola");
    EXPECT_NE(os.str().find("parabola"), std::string::npos);
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlotSeries, FlatSeriesGetsWindow) {
    const std::vector<double> xs = {0.0, 1.0, 2.0};
    const std::vector<double> ys = {5.0, 5.0, 5.0};
    std::ostringstream os;
    EXPECT_NO_THROW(ascii_plot_series(os, xs, ys, "flat"));
}

} // namespace
} // namespace xysig
