// Unit tests for descriptive statistics used by Monte-Carlo and
// detectability analyses.

#include "common/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace xysig {
namespace {

TEST(Mean, SimpleAverage) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, EmptyIsContractViolation) {
    const std::vector<double> xs;
    EXPECT_THROW((void)mean(xs), ContractError);
}

TEST(Variance, KnownValue) {
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    // population variance 4, sample variance 4*8/7
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Percentile, MedianAndQuartiles) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
    const std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(MinMax, Basics) {
    const std::vector<double> xs = {3.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
    EXPECT_DOUBLE_EQ(max_value(xs), 3.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> up = {2.0, 4.0, 6.0};
    const std::vector<double> down = {6.0, 4.0, 2.0};
    EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsNanNotAbort) {
    // Regression: a flat column used to trip XYSIG_EXPECTS and kill the
    // whole sweep; the coefficient is undefined, so it must come back NaN.
    const std::vector<double> flat = {5.0, 5.0, 5.0};
    const std::vector<double> ramp = {1.0, 2.0, 3.0};
    EXPECT_TRUE(std::isnan(correlation(flat, ramp)));
    EXPECT_TRUE(std::isnan(correlation(ramp, flat)));
    EXPECT_TRUE(std::isnan(correlation(flat, flat)));
}

TEST(FitLine, ExactLine) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    const LineFit fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasGoodR2) {
    Rng rng(42);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = static_cast<double>(i) / 10.0;
        xs.push_back(x);
        ys.push_back(3.0 * x - 2.0 + rng.normal(0.0, 0.1));
    }
    const LineFit fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 0.05);
    EXPECT_NEAR(fit.intercept, -2.0, 0.2);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, ConstantXFallsBackToHorizontalMeanLine) {
    // Regression: degenerate x used to abort. Documented fallback: the
    // horizontal line through mean(y), explaining none of the y variance.
    const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    const LineFit fit = fit_line(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
    EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(FitLine, AllPointsIdenticalIsExactFit) {
    const std::vector<double> xs = {2.0, 2.0, 2.0};
    const std::vector<double> ys = {3.0, 3.0, 3.0};
    const LineFit fit = fit_line(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 3.0);
    EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitLine, ConstantYIsExactHorizontalFit) {
    const std::vector<double> xs = {0.0, 1.0, 2.0};
    const std::vector<double> ys = {4.0, 4.0, 4.0};
    const LineFit fit = fit_line(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
    EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(RunningStats, MatchesBatchComputation) {
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStats rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, VarianceRequiresTwoSamples) {
    RunningStats rs;
    rs.add(1.0);
    EXPECT_THROW((void)rs.variance(), ContractError);
}

} // namespace
} // namespace xysig
