// Unit tests for deterministic RNG streams.

#include "common/rng.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/statistics.h"

namespace xysig {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 16 && !any_diff; ++i)
        any_diff = a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
    Rng rng(99);
    std::vector<double> xs;
    xs.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(1.5, 2.0));
    EXPECT_NEAR(mean(xs), 1.5, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
    Rng rng(5);
    EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, NegativeSigmaIsContractViolation) {
    Rng rng(5);
    EXPECT_THROW((void)rng.normal(0.0, -1.0), ContractError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= (v == 0);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    Rng a(42);
    Rng b(42);
    Rng fa = a.fork();
    Rng fb = b.fork();
    // Deterministic: forks of identical parents are identical.
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
    // Parent stream continues independently of how much the fork consumed.
    Rng c(42);
    (void)c.fork();
    EXPECT_DOUBLE_EQ(a.uniform(), c.uniform());
}

TEST(Rng, SeedIsReported) {
    Rng rng(31337);
    EXPECT_EQ(rng.seed(), 31337u);
}

} // namespace
} // namespace xysig
