// Unit tests for the dense matrix and LU solver feeding the MNA engine.

#include "common/matrix.h"

#include <complex>

#include <gtest/gtest.h>

namespace xysig {
namespace {

TEST(Matrix, StoresAndRetrieves) {
    Matrix<double> m(2, 3);
    m(0, 0) = 1.0;
    m(1, 2) = -4.5;
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(1, 2), -4.5);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, OutOfRangeAccessIsContractViolation) {
    Matrix<double> m(2, 2);
    EXPECT_THROW((void)m(2, 0), ContractError);
    EXPECT_THROW((void)m(0, 2), ContractError);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
    Matrix<double> m(2, 2);
    m(0, 0) = 1.0;
    m(0, 1) = 2.0;
    m(1, 0) = 3.0;
    m(1, 1) = 4.0;
    const std::vector<double> x = {5.0, 6.0};
    const auto y = m.multiply(x);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 17.0);
    EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(LuSolver, SolvesIdentity) {
    Matrix<double> eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        eye(i, i) = 1.0;
    const std::vector<double> b = {1.0, 2.0, 3.0};
    const auto x = solve_linear_system(std::move(eye), b);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(LuSolver, SolvesGeneralSystem) {
    // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3
    Matrix<double> a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto x = solve_linear_system(std::move(a), {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolver, PivotingHandlesZeroDiagonal) {
    // Leading zero forces a row swap.
    Matrix<double> a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const auto x = solve_linear_system(std::move(a), {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolver, SingularMatrixThrows) {
    Matrix<double> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW((void)solve_linear_system(std::move(a), {1.0, 2.0}), NumericError);
}

TEST(LuSolver, FactorisesOnceSolvesMany) {
    Matrix<double> a(2, 2);
    a(0, 0) = 4.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const LuSolver<double> lu(std::move(a));
    const auto x1 = lu.solve({5.0, 4.0});
    const auto x2 = lu.solve({9.0, 7.0});
    EXPECT_NEAR(4.0 * x1[0] + x1[1], 5.0, 1e-12);
    EXPECT_NEAR(x1[0] + 3.0 * x1[1], 4.0, 1e-12);
    EXPECT_NEAR(4.0 * x2[0] + x2[1], 9.0, 1e-12);
    EXPECT_NEAR(x2[0] + 3.0 * x2[1], 7.0, 1e-12);
}

TEST(LuSolver, ComplexSystem) {
    using C = std::complex<double>;
    Matrix<C> a(2, 2);
    a(0, 0) = C(1.0, 1.0);
    a(0, 1) = C(0.0, 0.0);
    a(1, 0) = C(0.0, 0.0);
    a(1, 1) = C(0.0, 2.0);
    const auto x = solve_linear_system(std::move(a), std::vector<C>{C(2.0, 0.0), C(0.0, 4.0)});
    EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
    EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
    EXPECT_NEAR(x[1].imag(), 0.0, 1e-12);
}

TEST(LuSolver, ResidualSmallOnIllConditionedButSolvable) {
    // Hilbert 4x4: ill-conditioned; check the residual, not the solution.
    const std::size_t n = 4;
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = 1.0 / static_cast<double>(i + j + 1);
    Matrix<double> a_copy = a;
    const std::vector<double> b = {1.0, 0.0, 0.0, 1.0};
    const auto x = solve_linear_system(std::move(a), b);
    const auto r = a_copy.multiply(x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(r[i], b[i], 1e-8);
}

TEST(LeastSquares, RecoversLineCoefficients) {
    // y = 2x + 1 sampled exactly: LS must recover [2, 1].
    Matrix<double> a(4, 2);
    std::vector<double> b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const double x = static_cast<double>(i);
        a(i, 0) = x;
        a(i, 1) = 1.0;
        b[i] = 2.0 * x + 1.0;
    }
    const auto coef = solve_least_squares(a, b);
    EXPECT_NEAR(coef[0], 2.0, 1e-10);
    EXPECT_NEAR(coef[1], 1.0, 1e-10);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
    Matrix<double> a(3, 1);
    a(0, 0) = 1.0;
    a(1, 0) = 2.0;
    a(2, 0) = 3.0;
    const std::vector<double> b = {2.0, 4.0, 6.0};
    const auto plain = solve_least_squares(a, b);
    const auto ridged = solve_least_squares(a, b, 10.0);
    EXPECT_NEAR(plain[0], 2.0, 1e-10);
    EXPECT_LT(ridged[0], plain[0]);
    EXPECT_GT(ridged[0], 0.0);
}

} // namespace
} // namespace xysig
