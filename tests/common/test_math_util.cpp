// Unit tests for common/math_util: tolerant comparison, grids, root finding
// and the exact rational arithmetic behind Lissajous period computation.

#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace xysig {
namespace {

TEST(ApproxEqual, ExactValuesMatch) {
    EXPECT_TRUE(approx_equal(1.0, 1.0));
    EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(ApproxEqual, RelativeToleranceScalesWithMagnitude) {
    EXPECT_TRUE(approx_equal(1e9, 1e9 * (1 + 1e-10)));
    EXPECT_FALSE(approx_equal(1e9, 1e9 * (1 + 1e-6)));
}

TEST(ApproxEqual, AbsoluteToleranceNearZero) {
    EXPECT_TRUE(approx_equal(0.0, 1e-13));
    EXPECT_FALSE(approx_equal(0.0, 1e-3));
}

TEST(Linspace, EndpointsAndSpacing) {
    const auto g = linspace(0.0, 1.0, 5);
    ASSERT_EQ(g.size(), 5u);
    EXPECT_DOUBLE_EQ(g.front(), 0.0);
    EXPECT_DOUBLE_EQ(g.back(), 1.0);
    EXPECT_DOUBLE_EQ(g[1], 0.25);
    EXPECT_DOUBLE_EQ(g[2], 0.5);
}

TEST(Linspace, RejectsSinglePoint) {
    EXPECT_THROW((void)linspace(0.0, 1.0, 1), ContractError);
}

TEST(Clamp, InsideAndOutside) {
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(clamp(-2.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(7.0, 0.0, 1.0), 1.0);
}

TEST(Softplus, MatchesDirectFormulaInSafeRange) {
    for (double x : {-5.0, -1.0, 0.0, 0.7, 3.0, 20.0})
        EXPECT_NEAR(softplus(x), std::log1p(std::exp(x)), 1e-12);
}

TEST(Softplus, LargeArgumentIsLinearNoOverflow) {
    EXPECT_NEAR(softplus(500.0), 500.0, 1e-9);
    EXPECT_NEAR(softplus(-500.0), 0.0, 1e-12);
}

TEST(Logistic, SymmetryAndLimits) {
    EXPECT_DOUBLE_EQ(logistic(0.0), 0.5);
    EXPECT_NEAR(logistic(40.0), 1.0, 1e-12);
    EXPECT_NEAR(logistic(-40.0), 0.0, 1e-12);
    for (double x : {-3.0, -0.5, 0.2, 2.0})
        EXPECT_NEAR(logistic(x) + logistic(-x), 1.0, 1e-12);
}

TEST(Bisect, FindsRootOfCubic) {
    const auto f = [](double x) { return x * x * x - 2.0; };
    const double r = bisect(f, 0.0, 2.0);
    EXPECT_NEAR(r, std::cbrt(2.0), 1e-10);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
    const auto f = [](double x) { return x; };
    EXPECT_DOUBLE_EQ(bisect(f, 0.0, 1.0), 0.0);
}

TEST(Bisect, ThrowsWithoutSignChange) {
    const auto f = [](double x) { return x * x + 1.0; };
    EXPECT_THROW((void)bisect(f, -1.0, 1.0), NumericError);
}

TEST(GcdLcm, BasicIdentities) {
    EXPECT_EQ(gcd_i64(12, 18), 6);
    EXPECT_EQ(gcd_i64(-12, 18), 6);
    EXPECT_EQ(gcd_i64(0, 7), 7);
    EXPECT_EQ(gcd_i64(0, 0), 0);
    EXPECT_EQ(lcm_i64(4, 6), 12);
    EXPECT_EQ(lcm_i64(5, 7), 35);
    EXPECT_EQ(lcm_i64(0, 7), 0);
}

TEST(Rational, NormalisesSignAndGcd) {
    const Rational r(-6, -8);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 4);
    const Rational s(6, -8);
    EXPECT_EQ(s.num(), -3);
    EXPECT_EQ(s.den(), 4);
}

TEST(Rational, ArithmeticStaysReduced) {
    const Rational a(1, 6);
    const Rational b(1, 3);
    const Rational sum = a + b; // 1/2
    EXPECT_EQ(sum.num(), 1);
    EXPECT_EQ(sum.den(), 2);
    const Rational prod = a * b; // 1/18
    EXPECT_EQ(prod.num(), 1);
    EXPECT_EQ(prod.den(), 18);
}

TEST(Rational, ZeroDenominatorThrows) {
    EXPECT_THROW(Rational(1, 0), NumericError);
}

TEST(ToRational, RecoversExactRatios) {
    const Rational r = to_rational(0.75);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 4);
    const Rational t = to_rational(3.0);
    EXPECT_EQ(t.num(), 3);
    EXPECT_EQ(t.den(), 1);
}

TEST(ToRational, ApproximatesIrrationalWithinBound) {
    const Rational r = to_rational(kPi, 1000);
    EXPECT_LE(r.den(), 1000);
    EXPECT_NEAR(r.value(), kPi, 1e-6); // 355/113 territory
}

TEST(ToRational, HandlesNegativeValues) {
    const Rational r = to_rational(-1.5);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
}

} // namespace
} // namespace xysig
