// Runtime semantics of the annotated synchronisation wrappers: the
// thread-safety macros are compile-time only, so these tests pin the
// behaviour that must hold on every compiler — mutual exclusion, RAII
// release, the unlock-work-relock pattern, and CondVar wait/notify —
// independent of whether the Clang analysis is active.

#include "common/annotated_mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xysig {
namespace {

// Member-style guarded state, as every production use site has it
// (GUARDED_BY applies to data members, not locals).
struct Guarded {
    Mutex mutex;
    CondVar cv;
    long counter GUARDED_BY(mutex) = 0;
    bool ready GUARDED_BY(mutex) = false;
};

TEST(AnnotatedMutex, MutualExclusionUnderContention) {
    Guarded g;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                MutexLock lock(g.mutex);
                ++g.counter;
            }
        });
    for (std::thread& t : threads)
        t.join();
    MutexLock lock(g.mutex);
    EXPECT_EQ(g.counter, long{kThreads} * kIncrements);
}

TEST(AnnotatedMutex, MutexLockReleasesOnScopeExit) {
    Mutex mutex;
    {
        MutexLock lock(mutex);
        // Held: a second acquisition attempt from another thread must fail.
        bool acquired = true;
        std::thread prober([&] {
            acquired = mutex.try_lock();
            if (acquired)
                mutex.unlock();
        });
        prober.join();
        EXPECT_FALSE(acquired);
    }
    // Released: the same probe now succeeds.
    bool acquired = false;
    std::thread prober([&] {
        acquired = mutex.try_lock();
        if (acquired)
            mutex.unlock();
    });
    prober.join();
    EXPECT_TRUE(acquired);
}

TEST(AnnotatedMutex, UnlockWorkRelockPattern) {
    // The heartbeat/wait_idle idiom: drop the lock for side-effecting work,
    // retake it to keep reading guarded state.
    Guarded g;
    MutexLock lock(g.mutex);
    g.counter = 1;
    lock.Unlock();
    bool acquired = false;
    std::thread prober([&] {
        acquired = g.mutex.try_lock();
        if (acquired)
            g.mutex.unlock();
    });
    prober.join();
    EXPECT_TRUE(acquired); // genuinely released mid-scope
    lock.Lock();
    EXPECT_EQ(g.counter, 1);
    // Destructor releases the re-taken lock without double-unlocking.
}

TEST(AnnotatedMutex, AssertHeldIsARuntimeNoOp) {
    Mutex mutex;
    MutexLock lock(mutex);
    mutex.AssertHeld(); // documents + satisfies the analysis; no effect here
    SUCCEED();
}

TEST(AnnotatedCondVar, WaitWakesOnPredicate) {
    Guarded g;
    std::atomic<int> observed{0};
    std::thread waiter([&] {
        MutexLock lock(g.mutex);
        g.cv.wait(lock, [&]() REQUIRES(g.mutex) { return g.ready; });
        observed.store(1, std::memory_order_relaxed);
    });
    {
        MutexLock lock(g.mutex);
        g.ready = true;
        g.cv.notify_all();
    }
    waiter.join();
    EXPECT_EQ(observed.load(std::memory_order_relaxed), 1);
}

TEST(AnnotatedCondVar, WaitForTimesOutWhenPredicateStaysFalse) {
    Guarded g;
    MutexLock lock(g.mutex);
    const bool satisfied =
        g.cv.wait_for(lock, std::chrono::milliseconds(10),
                      [&]() REQUIRES(g.mutex) { return g.ready; });
    EXPECT_FALSE(satisfied);
}

TEST(AnnotatedCondVar, WaitForReturnsEarlyWhenNotified) {
    Guarded g;
    std::thread notifier([&] {
        MutexLock lock(g.mutex);
        g.ready = true;
        g.cv.notify_one();
    });
    bool satisfied = false;
    {
        MutexLock lock(g.mutex);
        satisfied = g.cv.wait_for(lock, std::chrono::seconds(30),
                                  [&]() REQUIRES(g.mutex) { return g.ready; });
    }
    notifier.join();
    EXPECT_TRUE(satisfied);
}

} // namespace
} // namespace xysig
