// Unit tests for text helpers, including the SPICE engineering-notation
// number parser and the Fig. 6 binary code formatter.

#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace xysig {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
    EXPECT_EQ(trim("  abc \t\n"), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Split, DropsEmptyTokens) {
    const auto toks = split("  a \t b   c ");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0], "a");
    EXPECT_EQ(toks[1], "b");
    EXPECT_EQ(toks[2], "c");
}

TEST(Split, CustomDelimiters) {
    const auto toks = split("a=b,c", "=,");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[2], "c");
}

TEST(ToLowerIequals, AsciiBehaviour) {
    EXPECT_EQ(to_lower("MixedCASE"), "mixedcase");
    EXPECT_TRUE(iequals("VDD", "vdd"));
    EXPECT_FALSE(iequals("VDD", "vd"));
}

TEST(StartsWith, PrefixLogic) {
    EXPECT_TRUE(starts_with("biquad", "bi"));
    EXPECT_FALSE(starts_with("bi", "biquad"));
}

TEST(ParseSpiceNumber, PlainNumbers) {
    EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("1e-9"), 1e-9);
}

TEST(ParseSpiceNumber, EngineeringSuffixes) {
    EXPECT_DOUBLE_EQ(parse_spice_number("4.7k"), 4700.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("180n"), 180e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("2meg"), 2e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(parse_spice_number("3p"), 3e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("5u"), 5e-6);
    EXPECT_DOUBLE_EQ(parse_spice_number("1f"), 1e-15);
    EXPECT_DOUBLE_EQ(parse_spice_number("2g"), 2e9);
    EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
}

TEST(ParseSpiceNumber, UnitAnnotationsIgnored) {
    EXPECT_DOUBLE_EQ(parse_spice_number("4.7kohm"), 4700.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("1.2v"), 1.2);
    EXPECT_DOUBLE_EQ(parse_spice_number("10khz"), 10e3);
}

TEST(ParseSpiceNumber, MalformedThrows) {
    EXPECT_THROW((void)parse_spice_number(""), InvalidInput);
    EXPECT_THROW((void)parse_spice_number("abc"), InvalidInput);
    EXPECT_THROW((void)parse_spice_number("1.2.3!"), InvalidInput);
}

TEST(FormatDouble, SignificantDigits) {
    EXPECT_EQ(format_double(3.14159265, 3), "3.14");
    EXPECT_EQ(format_double(0.000123456, 3), "0.000123");
}

TEST(FormatCodeBinary, MatchesPaperNotation) {
    // Fig. 6 lists e.g. 011110 (30) and 111100 (60) with MSB = monitor 1.
    EXPECT_EQ(format_code_binary(30, 6), "011110");
    EXPECT_EQ(format_code_binary(60, 6), "111100");
    EXPECT_EQ(format_code_binary(0, 6), "000000");
    EXPECT_EQ(format_code_binary(63, 6), "111111");
    EXPECT_EQ(format_code_binary(4, 6), "000100");
}

TEST(FormatCodeBinary, WidthBounds) {
    EXPECT_EQ(format_code_binary(1, 1), "1");
    EXPECT_THROW((void)format_code_binary(0, 0), ContractError);
    EXPECT_THROW((void)format_code_binary(0, 33), ContractError);
}

} // namespace
} // namespace xysig
