// Thread-pool subsystem tests: bounded-queue pool lifecycle and the
// parallel_for primitive (coverage, exception propagation, nesting).

#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xysig {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.thread_count(), 3u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        // No wait_idle: the destructor must finish the queue before joining.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThreadCountIsStableAcrossShutdown) {
    // Regression: thread_count() used to size the live worker vector, which
    // shutdown() swaps out under the pool mutex — a caller sizing work off
    // it concurrently with (or after) shutdown read a moving target. It now
    // reports the constructed size, always.
    ThreadPool pool(3);
    EXPECT_EQ(pool.thread_count(), 3u);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed))
            ASSERT_EQ(pool.thread_count(), 3u);
    });
    pool.shutdown();
    EXPECT_EQ(pool.thread_count(), 3u); // workers joined, count unchanged
    stop.store(true, std::memory_order_relaxed);
    reader.join();
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
    ThreadPool pool(2);
    pool.submit([] {});
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
    pool.shutdown(); // idempotent
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
    // Capacity 1: submissions beyond the running + one queued task must
    // block until space frees, and every task must still run exactly once.
    ThreadPool pool(1, 1);
    std::atomic<int> counter{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&counter] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++counter;
        });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
        std::vector<std::atomic<int>> hits(257);
        for (auto& h : hits)
            h = 0;
        parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
    int calls = 0;
    parallel_for(5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel_for(7, 8, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesFirstBodyException) {
    EXPECT_THROW(
        parallel_for(
            0, 1000,
            [](std::size_t i) {
                if (i == 137)
                    throw std::invalid_argument("body boom");
            },
            4),
        std::invalid_argument);
    // The engine stays usable after a failed loop.
    std::atomic<int> counter{0};
    parallel_for(0, 64, [&](std::size_t) { ++counter; }, 4);
    EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, NestedCallsDegradeToSerialWithoutDeadlock) {
    EXPECT_FALSE(in_parallel_region());
    std::vector<std::atomic<int>> hits(64 * 16);
    for (auto& h : hits)
        h = 0;
    parallel_for(
        0, 64,
        [&](std::size_t outer) {
            EXPECT_TRUE(in_parallel_region());
            parallel_for(0, 16, [&](std::size_t inner) {
                ++hits[outer * 16 + inner];
            });
        },
        4);
    EXPECT_FALSE(in_parallel_region());
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(ParallelFor, FromDirectPoolTasksDegradesToSerialWithoutDeadlock) {
    // Tasks submitted straight to a pool (not via parallel_for) that then
    // call parallel_for must not block waiting for helper tasks no worker
    // is free to run: inside any pool worker the loop runs serially.
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(4 * 64);
    for (auto& h : hits)
        h = 0;
    for (int task = 0; task < 4; ++task)
        pool.submit([&hits, task] {
            parallel_for(0, 64, [&](std::size_t i) {
                ++hits[static_cast<std::size_t>(task) * 64 + i];
            });
        });
    pool.wait_idle();
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
    std::atomic<int> counter{0};
    parallel_for(0, 3, [&](std::size_t) { ++counter; }, 64);
    EXPECT_EQ(counter.load(), 3);
}

} // namespace
} // namespace xysig
