#include "server/transport.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/contracts.h"
#include "server/fd_io.h"
#include "server/wire.h"

namespace xysig::server {

// ----------------------------------------------------------- ProcessTransport

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
    return std::string("transport: ") + what + " failed: " +
           std::strerror(errno);
}

} // namespace

ProcessTransport::ProcessTransport(std::vector<std::string> argv)
    : argv_(std::move(argv)) {
    XYSIG_EXPECTS(!argv_.empty());
    detail::ignore_sigpipe_once();

    // O_CLOEXEC on every pipe end: without it each child would inherit the
    // pipes of every OTHER live transport, and closing a worker's stdin
    // would no longer deliver EOF (a sibling still holds a duplicate write
    // end) — teardown would always eat the kill grace. dup2 clears the
    // flag on fds 0/1, so the child's own ends survive exec.
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe2(to_child, O_CLOEXEC) != 0)
        throw Error(errno_message("pipe2"));
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        throw Error(errno_message("pipe2"));
    }

    // Built BEFORE fork(): in a multithreaded parent another thread may
    // hold the allocator lock at fork time, so the child must not malloc
    // between fork and exec.
    std::vector<char*> cargv;
    cargv.reserve(argv_.size() + 1);
    for (std::string& arg : argv_)
        cargv.push_back(arg.data());
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (const int fd : {to_child[0], to_child[1], from_child[0],
                             from_child[1]})
            ::close(fd);
        throw Error(errno_message("fork"));
    }
    if (pid == 0) {
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::execvp(cargv[0], cargv.data());
        ::_exit(127); // exec failed; the parent sees EOF and reports closed
    }

    ::close(to_child[0]);
    ::close(from_child[1]);
    pid_ = pid;
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
}

ProcessTransport::~ProcessTransport() { shutdown(); }

bool ProcessTransport::send_line(const std::string& line) {
    // fd_write_all loops over short writes and EINTR — a partial write()
    // on a full pipe must never be treated as success (the child would
    // see a truncated line mid-JSON and the driver would kill it).
    if (stdin_fd_ < 0)
        return false;
    return detail::fd_write_line(stdin_fd_, line);
}

Transport::ReadStatus ProcessTransport::read_line(std::string& out,
                                                  double timeout_seconds) {
    return detail::fd_read_line(stdout_fd_, buffer_, out, timeout_seconds);
}

void ProcessTransport::shutdown() {
    if (stdin_fd_ >= 0) {
        ::close(stdin_fd_); // the server's request loop exits on stdin EOF
        stdin_fd_ = -1;
    }
    if (stdout_fd_ >= 0) {
        // Close the read side BEFORE reaping: a child mid-stream can be
        // blocked in write() on a full stdout pipe (nobody reads it once we
        // decided to tear the peer down); with the read end gone it dies on
        // EPIPE instead of eating the whole kill grace below.
        ::close(stdout_fd_);
        stdout_fd_ = -1;
    }
    if (pid_ > 0) {
        const pid_t pid = static_cast<pid_t>(pid_);
        bool reaped = false;
        // ~2 s of grace for a clean exit, then SIGKILL a wedged child — a
        // worker being torn down is by definition not trusted to cooperate.
        for (int i = 0; i < 200 && !reaped; ++i) {
            int status = 0;
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid || (r < 0 && errno != EINTR)) {
                reaped = true;
                break;
            }
            ::usleep(10'000);
        }
        if (!reaped) {
            ::kill(pid, SIGKILL);
            int status = 0;
            while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        pid_ = -1;
    }
}

std::string ProcessTransport::describe() const {
    return "process[" + (pid_ > 0 ? std::to_string(pid_) : "dead") + ", " +
           argv_.front() + "]";
}

// ---------------------------------------------------------- LoopbackTransport

LoopbackTransport::LoopbackTransport(Options options) : options_(options) {
    SweepServiceOptions sopts;
    sopts.workers = options_.workers;
    sopts.shard_size = options_.shard_size;
    service_ = std::make_unique<SweepService>(
        make_paper_pipeline(options_.samples_per_period), sopts);
    session_ = std::make_unique<ServerSession>(
        *service_, [this](const std::string& line) {
            MutexLock lock(mutex_);
            if (dead_)
                return; // a crashed process emits nothing further
            responses_.push_back(line);
            if (options_.die_after_results != 0 &&
                line.find("\"event\":\"result\"") != std::string::npos &&
                ++results_emitted_ >= options_.die_after_results) {
                // Simulated worker death: exactly die_after_results result
                // lines made it out, everything after is lost. Cancel the
                // in-flight job so the session thread winds down.
                dead_ = true;
                session_->cancel("");
            }
            response_cv_.notify_all();
        });
    thread_ = std::thread([this] { server_main(); });
}

LoopbackTransport::~LoopbackTransport() { shutdown(); }

void LoopbackTransport::server_main() {
    session_->emit_ready(options_.samples_per_period);
    while (true) {
        std::string line;
        {
            MutexLock lock(mutex_);
            request_cv_.wait(lock, [&]() REQUIRES(mutex_) {
                return stopping_ || !requests_.empty();
            });
            if (stopping_ || dead_)
                break;
            line = std::move(requests_.front());
            requests_.pop_front();
        }
        if (!session_->handle_line(line))
            break; // quit
        MutexLock lock(mutex_);
        if (stopping_ || dead_)
            break;
    }
    MutexLock lock(mutex_);
    dead_ = true;
    response_cv_.notify_all();
}

bool LoopbackTransport::send_line(const std::string& line) {
    // Cancel commands are applied on receipt, not queued: the session
    // thread is blocked inside the running job and would only pop the
    // queue after it finished — exactly when cancelling is pointless.
    // (sweep_server's stdin reader thread does the same interception.)
    if (line.find("\"cmd\":\"cancel\"") != std::string::npos) {
        try {
            const JsonValue v = JsonValue::parse(line);
            if (v.is_object() && v.string_or("cmd", "") == "cancel") {
                {
                    MutexLock lock(mutex_);
                    if (dead_ || stopping_)
                        return false;
                }
                session_->cancel(v.string_or("id", ""));
                return true;
            }
        } catch (const std::exception&) {
            // fall through: not actually a cancel command; queue it
        }
    }
    MutexLock lock(mutex_);
    if (dead_ || stopping_)
        return false;
    requests_.push_back(line);
    request_cv_.notify_all();
    return true;
}

Transport::ReadStatus LoopbackTransport::read_line(std::string& out,
                                                   double timeout_seconds) {
    MutexLock lock(mutex_);
    const auto readable = [&]() REQUIRES(mutex_) {
        return !responses_.empty() || dead_;
    };
    if (timeout_seconds <= 0.0) {
        response_cv_.wait(lock, readable);
    } else if (!response_cv_.wait_for(
                   lock, std::chrono::duration<double>(timeout_seconds),
                   readable)) {
        return ReadStatus::timeout;
    }
    if (!responses_.empty()) { // drain buffered lines before reporting death
        out = std::move(responses_.front());
        responses_.pop_front();
        return ReadStatus::line;
    }
    return ReadStatus::closed;
}

void LoopbackTransport::shutdown() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        request_cv_.notify_all();
    }
    if (session_ != nullptr)
        session_->cancel(""); // unblock an in-flight job promptly
    if (thread_.joinable())
        thread_.join();
    MutexLock lock(mutex_);
    dead_ = true;
    response_cv_.notify_all();
}

std::string LoopbackTransport::describe() const {
    return "loopback[workers=" + std::to_string(options_.workers) +
           ", shard=" + std::to_string(options_.shard_size) + "]";
}

} // namespace xysig::server
