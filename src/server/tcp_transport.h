#ifndef XYSIG_SERVER_TCP_TRANSPORT_H
#define XYSIG_SERVER_TCP_TRANSPORT_H

/// \file tcp_transport.h
/// Socket transport for the sweep fabric: the piece that lets
/// `FanoutDriver` spread partitions across hosts instead of across child
/// processes.
///
///  * TcpTransport — one NDJSON peer connection to a listening
///    `sweep_server --listen` (or in-process TcpListener). Connects with
///    bounded exponential-backoff retry (a worker that is still booting,
///    or a connection broken mid-job, is retried rather than failed on
///    the first ECONNREFUSED), then performs the protocol handshake on
///    the ready banner: the peer's `version` must be <= this build's
///    kProtocolVersion or the connection is rejected up front. The banner
///    itself is buffered and re-delivered by the first read_line(), so
///    the driver's own handshake logic is byte-for-byte the pipe path's.
///    Line framing is shared with ProcessTransport (fd_io.h) — one
///    '\n'-terminated JSON object per line, short writes and EINTR looped.
///
///  * TcpListener — the accept loop behind `sweep_server --listen`: binds
///    a port (0 = ephemeral; port() reports the bound one), accepts
///    connections, and serves each with its own ServerSession — by
///    default over its own SweepService (own worker pool, so N fan-out
///    partitions connecting to one host actually run concurrently), or
///    over one shared service (Options::share_service) when the host's
///    core budget must be pinned. Usable in-process (tests, bench) and
///    from the sweep_server binary; `run()` serves on the calling thread,
///    `start()`/`stop()` manage a background accept thread.
///
/// Thread-safety: TcpTransport follows the Transport contract (one
/// coordinator thread). TcpListener::start/stop may be called from one
/// controlling thread; each connection is served by its own thread and
/// every session's sink is internally serialised.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "server/transport.h"
#include "server/wire.h"

namespace xysig::server {

class SweepService;

struct TcpTransportOptions {
    /// Connection attempts before giving up (first attempt included).
    unsigned max_connect_attempts = 5;
    /// Backoff before retry k is initial * 2^(k-1), capped at max.
    double initial_backoff_seconds = 0.05;
    double max_backoff_seconds = 1.0;
    /// Total wall-clock budget across all connect attempts and backoffs.
    double connect_timeout_seconds = 10.0;
    /// Wait for the peer's ready banner and reject a peer whose protocol
    /// version is newer than this build (the banner is re-delivered by
    /// the first read_line, so the driver still sees it).
    bool handshake_ready_banner = true;
    double handshake_timeout_seconds = 10.0;
};

/// One NDJSON connection to a listening sweep server. The constructor
/// connects (with retry/backoff) and handshakes; it throws Error when the
/// peer cannot be reached within the budget or speaks an incompatible
/// protocol version — FanoutDriver treats a throwing factory as a failed
/// dispatch attempt.
class TcpTransport final : public Transport {
public:
    TcpTransport(std::string host, unsigned short port,
                 TcpTransportOptions options = {});
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    bool send_line(const std::string& line) override;
    ReadStatus read_line(std::string& out, double timeout_seconds) override;
    void shutdown() override;
    [[nodiscard]] std::string describe() const override;

    /// Connect attempts the constructor consumed (>= 1; exposed so tests
    /// can pin the backoff-retry path).
    [[nodiscard]] unsigned connect_attempts() const noexcept {
        return connect_attempts_;
    }

private:
    void connect(const TcpTransportOptions& options);
    void handshake(const TcpTransportOptions& options);

    std::string host_;
    unsigned short port_ = 0;
    int fd_ = -1;
    std::string buffer_; ///< partial-line carry between reads
    unsigned connect_attempts_ = 0;
};

/// Accept loop serving ServerSessions over TCP. One listener per
/// process/port; one session (and by default one SweepService) per
/// accepted connection.
class TcpListener {
public:
    struct Options {
        std::string bind_address = "0.0.0.0";
        unsigned short port = 0; ///< 0 = ephemeral; see port()
        /// Per-connection service configuration (as sweep_server's flags).
        unsigned workers = 0;
        std::size_t shard_size = 64;
        std::size_t samples_per_period = 512;
        SessionOptions session; ///< queue/cache/heartbeat knobs per session
        /// Serve every connection from ONE SweepService (jobs from
        /// concurrent connections serialise on its worker pool) instead of
        /// one service per connection.
        bool share_service = false;
        /// Test hook: advertise this protocol version in the ready banner
        /// instead of the real one (0 = real), so handshake rejection of
        /// newer-than-supported peers is testable against a live socket.
        int ready_version_override = 0;
    };

    explicit TcpListener(Options options); ///< binds + listens; throws Error
    ~TcpListener();                        ///< stop()

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// The bound port (resolves ephemeral port 0).
    [[nodiscard]] unsigned short port() const noexcept { return port_; }

    /// Accept-and-serve on a background thread / on the calling thread.
    void start();
    void run();

    /// Stops accepting, tears down live connections, joins every thread.
    /// Idempotent; unblocks a concurrent run().
    void stop();

    /// Connections accepted over the listener's lifetime.
    [[nodiscard]] std::size_t connections_accepted() const noexcept {
        return connections_accepted_.load(std::memory_order_relaxed);
    }

private:
    struct Connection;

    void accept_loop();
    void serve_connection(Connection& conn);
    void reap_finished_connections_locked() REQUIRES(connections_mutex_);

    Options options_;
    int listen_fd_ = -1;
    unsigned short port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> connections_accepted_{0};
    std::thread accept_thread_;
    std::shared_ptr<SweepService> shared_service_; ///< when share_service

    Mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_
        GUARDED_BY(connections_mutex_);
};

} // namespace xysig::server

#endif // XYSIG_SERVER_TCP_TRANSPORT_H
