#include "server/tcp_transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"
#include "server/fd_io.h"
#include "server/json.h"
#include "server/sweep_service.h"

namespace xysig::server {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
    return std::string("tcp: ") + what + " failed: " + std::strerror(errno);
}

/// getaddrinfo wrapper with RAII release; throws Error on resolver failure.
class AddrInfo {
public:
    AddrInfo(const std::string& host, unsigned short port, bool passive) {
        struct addrinfo hints {};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
        const std::string service = std::to_string(port);
        const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                     service.c_str(), &hints, &list_);
        if (rc != 0)
            throw Error("tcp: cannot resolve " + host + ":" + service + ": " +
                        ::gai_strerror(rc));
    }
    ~AddrInfo() {
        if (list_ != nullptr)
            ::freeaddrinfo(list_);
    }
    AddrInfo(const AddrInfo&) = delete;
    AddrInfo& operator=(const AddrInfo&) = delete;

    [[nodiscard]] const struct addrinfo* begin() const noexcept {
        return list_;
    }

private:
    struct addrinfo* list_ = nullptr;
};

void set_nodelay(int fd) {
    // Every protocol line is a small write that the peer acts on
    // immediately (job submit, cancel, heartbeat); Nagle would batch them
    // behind unacked data and inflate exactly the latencies the
    // inactivity timeout measures.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] double monotonic_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// --------------------------------------------------------------- TcpTransport

TcpTransport::TcpTransport(std::string host, unsigned short port,
                           TcpTransportOptions options)
    : host_(std::move(host)), port_(port) {
    detail::ignore_sigpipe_once();
    connect(options);
    try {
        if (options.handshake_ready_banner)
            handshake(options);
    } catch (...) {
        shutdown();
        throw;
    }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::connect(const TcpTransportOptions& options) {
    const double deadline =
        monotonic_seconds() + options.connect_timeout_seconds;
    std::string last_error = "no connect attempt made";
    double backoff = options.initial_backoff_seconds;

    const unsigned max_attempts =
        options.max_connect_attempts == 0 ? 1 : options.max_connect_attempts;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        connect_attempts_ = attempt;
        if (attempt > 1) {
            // Exponential backoff between attempts, clipped to both the
            // per-step cap and the remaining overall budget.
            double sleep_for = backoff;
            backoff = std::min(backoff * 2.0, options.max_backoff_seconds);
            const double remaining = deadline - monotonic_seconds();
            if (remaining <= 0.0)
                break;
            sleep_for = std::min(sleep_for, remaining);
            ::usleep(static_cast<useconds_t>(sleep_for * 1e6));
        }

        try {
            const AddrInfo addrs(host_, port_, /*passive=*/false);
            for (const struct addrinfo* ai = addrs.begin(); ai != nullptr;
                 ai = ai->ai_next) {
                const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                        ai->ai_protocol);
                if (fd < 0) {
                    last_error = errno_message("socket");
                    continue;
                }
                if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
                    set_nodelay(fd);
                    fd_ = fd;
                    return;
                }
                last_error = errno_message("connect");
                ::close(fd);
            }
        } catch (const Error& e) {
            last_error = e.what(); // resolver failure; retried like refused
        }
        if (monotonic_seconds() >= deadline)
            break;
    }
    throw Error("tcp: cannot connect to " + host_ + ":" +
                std::to_string(port_) + " after " +
                std::to_string(connect_attempts_) + " attempt(s): " +
                last_error);
}

void TcpTransport::handshake(const TcpTransportOptions& options) {
    // Read until the ready banner arrives, then put it BACK at the front
    // of the buffer: FanoutDriver (and any pipe-path consumer) does its
    // own handshake on the first line, and this transport must be a
    // drop-in for ProcessTransport. Pre-banner heartbeats are dropped —
    // they carry no state — but anything else unexpected is an error.
    const double deadline =
        monotonic_seconds() + options.handshake_timeout_seconds;
    for (int skipped = 0; skipped < 16;) {
        const double remaining = deadline - monotonic_seconds();
        if (remaining <= 0.0)
            throw Error("tcp: handshake with " + describe() +
                        " timed out waiting for ready banner");
        std::string line;
        const ReadStatus status = read_line(line, remaining);
        if (status == ReadStatus::timeout)
            continue;
        if (status == ReadStatus::closed)
            throw Error("tcp: peer " + describe() +
                        " closed the connection before the ready banner");

        JsonValue v;
        try {
            v = JsonValue::parse(line);
        } catch (const std::exception& e) {
            throw Error("tcp: malformed pre-ready line from " + describe() +
                        ": " + e.what());
        }
        const std::string event = v.string_or("event", "");
        if (event == "heartbeat" || event == "listening") {
            ++skipped;
            continue;
        }
        if (event != "ready")
            throw Error("tcp: expected ready banner from " + describe() +
                        ", got event \"" + event + "\"");

        const double version = v.number_or("version", 1.0);
        if (version > static_cast<double>(kProtocolVersion) ||
            version < 1.0) {
            throw Error("tcp: peer " + describe() + " speaks protocol version " +
                        std::to_string(static_cast<long long>(version)) +
                        "; this build supports <= " +
                        std::to_string(kProtocolVersion));
        }
        buffer_.insert(0, line + "\n"); // re-deliver on the first read_line
        return;
    }
    throw Error("tcp: peer " + describe() +
                " flooded the handshake with non-ready events");
}

bool TcpTransport::send_line(const std::string& line) {
    if (fd_ < 0)
        return false;
    return detail::fd_write_line(fd_, line);
}

Transport::ReadStatus TcpTransport::read_line(std::string& out,
                                              double timeout_seconds) {
    return detail::fd_read_line(fd_, buffer_, out, timeout_seconds);
}

void TcpTransport::shutdown() {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

std::string TcpTransport::describe() const {
    return "tcp[" + host_ + ":" + std::to_string(port_) +
           (fd_ >= 0 ? "" : ", closed") + "]";
}

// ---------------------------------------------------------------- TcpListener

struct TcpListener::Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
};

TcpListener::TcpListener(Options options) : options_(std::move(options)) {
    detail::ignore_sigpipe_once();

    const AddrInfo addrs(options_.bind_address, options_.port,
                         /*passive=*/true);
    std::string last_error = "no usable address";
    for (const struct addrinfo* ai = addrs.begin();
         ai != nullptr && listen_fd_ < 0; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = errno_message("socket");
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            last_error = errno_message("bind/listen");
            ::close(fd);
            continue;
        }
        listen_fd_ = fd;
    }
    if (listen_fd_ < 0)
        throw Error("tcp: cannot listen on " + options_.bind_address + ":" +
                    std::to_string(options_.port) + ": " + last_error);

    // Resolve the ephemeral port before anyone asks for it.
    struct sockaddr_storage addr {};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                      &len) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw Error(errno_message("getsockname"));
    }
    if (addr.ss_family == AF_INET)
        port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    else if (addr.ss_family == AF_INET6)
        port_ =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);

    if (options_.share_service) {
        SweepServiceOptions sopts;
        sopts.workers = options_.workers;
        sopts.shard_size = options_.shard_size;
        shared_service_ = std::make_shared<SweepService>(
            make_paper_pipeline(options_.samples_per_period), sopts);
    }
}

TcpListener::~TcpListener() { stop(); }

void TcpListener::start() {
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpListener::run() { accept_loop(); }

void TcpListener::accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed (stop()) or hard error
        }
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        set_nodelay(fd);
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        MutexLock lock(connections_mutex_);
        reap_finished_connections_locked();
        conn->thread = std::thread([this, raw] { serve_connection(*raw); });
        connections_.push_back(std::move(conn));
    }
}

void TcpListener::serve_connection(Connection& conn) {
    try {
        // One service per connection (unless shared): a fan-out driver
        // opening N connections to one host gets N independent worker
        // pools, mirroring the N-child process topology.
        std::shared_ptr<SweepService> service = shared_service_;
        if (service == nullptr) {
            SweepServiceOptions sopts;
            sopts.workers = options_.workers;
            sopts.shard_size = options_.shard_size;
            service = std::make_shared<SweepService>(
                make_paper_pipeline(options_.samples_per_period), sopts);
        }

        const int fd = conn.fd;
        ServerSession session(
            *service,
            [fd](const std::string& line) {
                // A dead peer surfaces as a failed write; the reader loop
                // below notices the close and tears the session down.
                detail::fd_write_line(fd, line);
            },
            options_.session);

        if (options_.ready_version_override != 0) {
            // Hand-rolled banner with a spoofed version (test hook): the
            // client's handshake must reject it before any job flows.
            JsonValue::Object o;
            o.emplace("event", std::string("ready"));
            o.emplace("version", options_.ready_version_override);
            o.emplace("samples_per_period", options_.samples_per_period);
            detail::fd_write_line(fd, JsonValue(o).dump());
        } else {
            session.emit_ready(options_.samples_per_period);
        }

        std::string buffer;
        std::string line;
        while (!stopping_.load(std::memory_order_acquire)) {
            // Finite poll slices so stop() is honoured even on an idle
            // connection that never sends another byte.
            const Transport::ReadStatus status =
                detail::fd_read_line(fd, buffer, line, 0.25);
            if (status == Transport::ReadStatus::timeout)
                continue;
            if (status == Transport::ReadStatus::closed)
                break;
            if (!session.handle_line(line))
                break; // quit (drained inside handle_line)
        }
        session.cancel(""); // stop() path: abandon in-flight work promptly
    } catch (const std::exception&) {
        // Per-connection failures (service construction, OOM) must not
        // take down the accept loop; the peer just sees its socket close.
    }
    // Send FIN but do NOT close: stop() may be poking this fd concurrently
    // to unblock us, so the close (which would free the fd number for
    // reuse) happens in exactly one place — after this thread is joined.
    ::shutdown(conn.fd, SHUT_RDWR);
    conn.finished.store(true, std::memory_order_release);
}

void TcpListener::reap_finished_connections_locked() {
    for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            if ((*it)->fd >= 0)
                ::close((*it)->fd);
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void TcpListener::stop() {
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    if (listen_fd_ >= 0) {
        // shutdown() unblocks a thread parked in accept(); close alone is
        // not guaranteed to on all kernels.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (accept_thread_.joinable())
        accept_thread_.join();

    std::vector<std::unique_ptr<Connection>> conns;
    {
        MutexLock lock(connections_mutex_);
        conns.swap(connections_);
    }
    for (auto& conn : conns) {
        if (conn->fd >= 0)
            ::shutdown(conn->fd, SHUT_RDWR); // unblock its reader poll
        if (conn->thread.joinable())
            conn->thread.join();
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
}

} // namespace xysig::server
