#ifndef XYSIG_SERVER_TRANSPORT_H
#define XYSIG_SERVER_TRANSPORT_H

/// \file transport.h
/// Line transports for the fan-out driver: one Transport == one worker
/// peer speaking the NDJSON protocol (docs/PROTOCOL.md).
///
///  * ProcessTransport launches a `sweep_server` child process and pipes
///    request lines to its stdin / event lines from its stdout — the
///    production multi-process path.
///  * LoopbackTransport runs a real ServerSession over in-process queues
///    on a private SweepService — byte-for-byte the same protocol with no
///    child processes, so fan-out tests are deterministic and fast, and
///    worker death is injectable (die_after_results).
///
/// Thread-safety: one transport is driven by one coordinator thread
/// (send_line / read_line are not required to be concurrently callable);
/// shutdown() may be called from that same thread only.

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace xysig::server {

/// One NDJSON peer connection.
class Transport {
public:
    enum class ReadStatus {
        line,    ///< a complete line was read into `out`
        timeout, ///< nothing arrived within the timeout; peer still alive
        closed,  ///< the peer is gone (process exit / injected death)
    };

    virtual ~Transport() = default;

    /// Sends one request line (without the trailing newline). Returns
    /// false when the peer is already gone.
    virtual bool send_line(const std::string& line) = 0;

    /// Blocks up to timeout_seconds for one event line (timeout <= 0
    /// waits indefinitely). Buffered lines are drained before a closed
    /// peer reports ReadStatus::closed.
    virtual ReadStatus read_line(std::string& out, double timeout_seconds) = 0;

    /// Tears the peer down (closes the child's stdin and reaps it / stops
    /// the loopback session thread). Idempotent.
    virtual void shutdown() = 0;

    /// Human-readable peer description for error messages and summaries.
    [[nodiscard]] virtual std::string describe() const = 0;
};

/// Spawns `argv` (argv[0] = the sweep_server binary) with stdin/stdout
/// pipes. read_line polls the pipe, so per-read timeouts work; shutdown
/// closes the child's stdin (the server's getline loop exits on EOF),
/// waits briefly, then SIGKILLs a wedged child.
class ProcessTransport final : public Transport {
public:
    explicit ProcessTransport(std::vector<std::string> argv);
    ~ProcessTransport() override;

    ProcessTransport(const ProcessTransport&) = delete;
    ProcessTransport& operator=(const ProcessTransport&) = delete;

    bool send_line(const std::string& line) override;
    ReadStatus read_line(std::string& out, double timeout_seconds) override;
    void shutdown() override;
    [[nodiscard]] std::string describe() const override;

private:
    std::vector<std::string> argv_;
    long pid_ = -1;     ///< child pid (long to keep <sys/types.h> out of here)
    int stdin_fd_ = -1; ///< write end of the child's stdin
    int stdout_fd_ = -1; ///< read end of the child's stdout
    std::string buffer_; ///< partial-line carry between reads
};

/// In-process peer: a real ServerSession on a private SweepService (the
/// paper pipeline, as in sweep_server), bridged through string queues.
class LoopbackTransport final : public Transport {
public:
    struct Options {
        unsigned workers = 2;
        std::size_t shard_size = 16;
        std::size_t samples_per_period = 256;
        /// Fault injection: after this many result lines the peer "dies" —
        /// emitted lines stop, reads drain then report closed, the
        /// in-flight job is cancelled. 0 = healthy peer.
        std::size_t die_after_results = 0;
    };

    // No `Options options = {}` default argument: NSDMIs of a nested class
    // are parsed only at the end of the outermost class, so the default
    // would not compile here (same gotcha as SweepJob's universe structs).
    LoopbackTransport() : LoopbackTransport(Options{}) {}
    explicit LoopbackTransport(Options options);
    ~LoopbackTransport() override;

    LoopbackTransport(const LoopbackTransport&) = delete;
    LoopbackTransport& operator=(const LoopbackTransport&) = delete;

    bool send_line(const std::string& line) override;
    ReadStatus read_line(std::string& out, double timeout_seconds) override;
    void shutdown() override;
    [[nodiscard]] std::string describe() const override;

private:
    void server_main() EXCLUDES(mutex_);

    Options options_;

    Mutex mutex_;
    CondVar request_cv_;
    CondVar response_cv_;
    std::deque<std::string> requests_ GUARDED_BY(mutex_);
    std::deque<std::string> responses_ GUARDED_BY(mutex_);
    bool stopping_ GUARDED_BY(mutex_) = false; ///< shutdown requested;
                                               ///< session thread must exit
    bool dead_ GUARDED_BY(mutex_) = false;     ///< peer gone (injected death
                                               ///< or session exit)
    std::size_t results_emitted_ GUARDED_BY(mutex_) = 0;

    // Owned service/session; pointers so the header stays light.
    std::unique_ptr<class SweepService> service_;
    std::unique_ptr<class ServerSession> session_;
    std::thread thread_;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_TRANSPORT_H
