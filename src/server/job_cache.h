#ifndef XYSIG_SERVER_JOB_CACHE_H
#define XYSIG_SERVER_JOB_CACHE_H

/// \file job_cache.h
/// Content-addressed whole-job result cache for the scheduler: the
/// core::GoldenSignatureCache exact-hexfloat fingerprint scheme generalised
/// from one golden chronogram to an entire job's result stream.
///
/// A cache key is `pipeline_fingerprint(pipe) + "job{" + universe_key + "}"`
/// — every float that feeds the evaluation appears in exact hexfloat form
/// (bank fingerprint, stimulus tones, samples_per_period, kernel flag,
/// deviation values / fault-universe options), so a hit is bit-identical to
/// recomputation by construction. The member RANGE is deliberately not part
/// of the key: entries store results under GLOBAL member ids, and a lookup
/// for [first, first+count) is served by any entry whose stored range covers
/// it — a fan-out slice of a previously completed full job streams from the
/// cache without touching a worker.
///
/// LRU-bounded like the golden cache: a long-lived multi-tenant server sees
/// an unbounded stream of distinct jobs, so entries beyond capacity() are
/// evicted least-recently-used. Thread-safe; shared_ptr payloads keep
/// results alive for streams still draining an evicted entry.

#include <cstddef>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "core/pipeline.h"
#include "server/sweep_service.h"

namespace xysig::server {

/// Exact fingerprint of everything a pipeline contributes to result bits:
/// bank fingerprint, stimulus (offset + tones, hexfloat), samples per
/// period, compiled-kernel flag. Empty when the pipeline is not exactly
/// fingerprintable (custom bank monitor, noise, quantisation) — an empty
/// fingerprint disables job caching for that pipeline, it never aliases.
[[nodiscard]] std::string
pipeline_fingerprint(const core::SignaturePipeline& pipe);

/// Thread-safe LRU map from exact job keys to complete result ranges.
class JobResultCache {
public:
    /// Whole-job payloads (members × chronograms) are much heavier than
    /// goldens, so the default bound is smaller than the golden cache's.
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit JobResultCache(std::size_t capacity = kDefaultCapacity);

    /// One cache hit: `results` holds GLOBAL-id members, ascending and
    /// contiguous from `first`; the requested range is a sub-span of it.
    struct Hit {
        std::shared_ptr<const std::vector<SweepResult>> results;
        std::size_t first = 0; ///< global member id of results->front()
    };

    /// Covering lookup: returns an entry for `key` whose stored range
    /// contains [first, first+count), preferring an exact range match.
    /// Refreshes recency on hit; counts a miss otherwise.
    [[nodiscard]] std::optional<Hit>
    lookup(const std::string& key, std::size_t first, std::size_t count);

    /// Stores a COMPLETE contiguous result range: results[i].member_id must
    /// equal first + i (global ids). Never call with a cancelled or partial
    /// stream. Entries whose range is contained in the new one are dropped
    /// (the superset serves their lookups); an entry already covering the
    /// new range makes the insert a no-op.
    void insert(const std::string& key, std::size_t first,
                std::vector<SweepResult> results);

    /// Maximum number of retained entries (>= 1). Shrinking below the
    /// current size evicts LRU entries immediately.
    void set_capacity(std::size_t capacity);
    [[nodiscard]] std::size_t capacity() const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t hits() const;
    [[nodiscard]] std::size_t misses() const;
    [[nodiscard]] std::size_t evictions() const;

    /// Drops every entry and resets the counters (test isolation); the
    /// configured capacity is kept.
    void clear();

private:
    struct Entry {
        std::string key; ///< pipeline + universe key (range excluded)
        std::size_t first = 0;
        std::size_t count = 0;
        std::shared_ptr<const std::vector<SweepResult>> results;
    };
    /// MRU-first recency list; the (multi)map points into it — one key may
    /// hold several disjoint ranges.
    using LruList = std::list<Entry>;

    void evict_to_capacity_locked() REQUIRES(mutex_);
    void erase_locked(LruList::iterator it) REQUIRES(mutex_);

    mutable Mutex mutex_;
    LruList lru_ GUARDED_BY(mutex_);
    std::unordered_multimap<std::string, LruList::iterator> map_ GUARDED_BY(mutex_);
    std::size_t capacity_ GUARDED_BY(mutex_);
    std::size_t hits_ GUARDED_BY(mutex_) = 0;
    std::size_t misses_ GUARDED_BY(mutex_) = 0;
    std::size_t evictions_ GUARDED_BY(mutex_) = 0;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_JOB_CACHE_H
