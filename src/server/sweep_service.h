#ifndef XYSIG_SERVER_SWEEP_SERVICE_H
#define XYSIG_SERVER_SWEEP_SERVICE_H

/// \file sweep_service.h
/// Long-lived sharded sweep service: the scale-out layer above
/// core::BatchNdfEvaluator.
///
/// A sweep job is one member universe — a SPICE fault universe, a
/// behavioural deviation grid, or an explicit CUT list — screened against
/// the pipeline's golden signature. The service shards the universe into
/// contiguous work units, schedules units across a persistent worker pool,
/// and streams (member_id, ndf, signature) results incrementally through a
/// callback, in member order, instead of materialising one giant result
/// vector.
///
/// Guarantees (pinned by tests/server and bench_sweep_service):
///  * NDF values are bit-identical to the serial BatchNdfEvaluator /
///    SignaturePipeline::ndf_of path at ANY shard size and worker count;
///  * SPICE universes are evaluated with ONE netlist clone per worker, not
///    one per fault: each worker deep-clones the nominal circuit once, then
///    injects and repairs faults in place between units
///    (capture::inject_fault / repair_fault — bit-identical to simulating a
///    fresh fault-injected clone, because every transient run restarts from
///    the DC operating point);
///  * goldens are served from the process-wide core::GoldenSignatureCache,
///    so repeated jobs over the same (cut, bank, stimulus) fingerprint
///    compute the golden once per fingerprint, not once per job;
///  * non-convergent members stream as quiet-NaN NDFs with no signature
///    (the BatchNdfOptions::nan_on_numeric_error policy, always on here —
///    catastrophic universes legitimately contain unsolvable members).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "capture/fault_injection.h"
#include "common/annotated_mutex.h"
#include "core/batch_ndf.h"
#include "core/pipeline.h"
#include "core/sweep.h"

namespace xysig::server {

struct SweepServiceOptions {
    /// Persistent worker threads; 0 = default_thread_count().
    unsigned workers = 0;
    /// Default members per work unit when a job does not set its own. Small
    /// shards load-balance ragged universes (SPICE members vary wildly in
    /// Newton cost); large shards amortise scheduling. Results never depend
    /// on the choice.
    std::size_t shard_size = 64;
};

/// One streamed member result.
struct SweepResult {
    std::size_t member_id = 0;
    /// NDF against the golden; quiet NaN when the member's simulation had no
    /// stable solution.
    double ndf = 0.0;
    /// Stable member label ("dev(f0,-10%)", "bridge(bp,lp,100)", ...).
    std::string label;
    /// The observed chronogram the NDF was computed against (the member's
    /// digital signature); absent for NaN members.
    std::optional<capture::Chronogram> signature;
};

/// Wall-clock accounting of one completed work unit.
struct ShardTiming {
    std::size_t shard = 0;        ///< shard index (member range start / size)
    std::size_t first_member = 0;
    std::size_t member_count = 0; ///< members actually evaluated (cancellation
                                  ///< may cut a shard short)
    unsigned worker = 0;          ///< worker slot that ran the unit
    double seconds = 0.0;
};

/// What run() reports when a job finishes, is cancelled, or fails.
struct JobSummary {
    std::size_t members_total = 0;
    std::size_t members_done = 0;
    std::size_t shards_total = 0;
    std::size_t shards_done = 0;
    bool cancelled = false;
    double seconds = 0.0;
    /// Netlist deep-clones made by workers for this job: at most one per
    /// participating worker (the clone-per-worker contract), 0 for
    /// behavioural jobs.
    std::uint64_t netlist_clones = 0;
    std::vector<ShardTiming> shard_timings; ///< sorted by shard index
};

/// Cooperative cancellation handle: share one token between run() and any
/// other thread (or the result callback itself) and call cancel(). Workers
/// stop claiming work and finish the member in flight; already-evaluated
/// results still stream out in ascending member order (gaps allowed).
class SweepCancelToken {
public:
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<bool> cancelled_{false};
};

/// One sweep universe plus its golden. Build with the named factories; a
/// default-constructed job is an empty CUT list (size 0, no golden) that
/// run() rejects — it exists so wire decoders can declare-then-assign.
class SweepJob {
public:
    SweepJob() = default;

    /// Explicit CUT list. The pointed-to cuts must satisfy the Cut
    /// thread-safety contract (distinct instances share no mutable state),
    /// outlive the run, and `golden` must stay valid for the run as well.
    [[nodiscard]] static SweepJob from_cuts(std::vector<const filter::Cut*> cuts,
                                            const filter::Cut* golden);

    /// Behavioural deviation grid: one BehaviouralCut per deviation of the
    /// nominal Biquad (the Fig. 8 universe shape); golden = the nominal.
    [[nodiscard]] static SweepJob deviation_grid(
        filter::Biquad nominal, std::vector<double> deviations_percent,
        core::SweptParameter parameter = core::SweptParameter::f0);

    /// SPICE fault universe over a nominal netlist; golden = the fault-free
    /// netlist. The job shares ownership of the nominal so decoded wire jobs
    /// need no external keep-alive.
    [[nodiscard]] static SweepJob fault_universe(
        std::shared_ptr<const spice::Netlist> nominal,
        std::vector<capture::NetlistFault> faults,
        core::SpiceObservation observation);

    /// Universe member count.
    [[nodiscard]] std::size_t size() const noexcept;

    /// Members per work unit for this job; 0 = the service default.
    std::size_t shard_size = 0;

    /// Per-job sampling mode: set to pin the pipeline's fast_math flag for
    /// this job (run() applies it before resolving the golden, so the
    /// golden and every member evaluate under one mode); nullopt inherits
    /// whatever mode the service's pipeline is currently configured with.
    /// Wire jobs always pin it — the `fast_math` job field defaults to
    /// false under the tolerant-reader rule — so a queued mixed-mode
    /// workload can never leak one job's mode into the next.
    std::optional<bool> fast_math;

private:
    friend class SweepService;

    // No default member initialisers here: NSDMIs of a nested class are
    // parsed only at the end of the outermost class, which would make these
    // look non-default-constructible to the std::variant member below. The
    // factories set every field.
    struct CutListUniverse {
        std::vector<const filter::Cut*> cuts;
        const filter::Cut* golden;
    };
    struct DeviationUniverse {
        filter::Biquad nominal;
        std::vector<double> deviations_percent;
        core::SweptParameter parameter;
    };
    struct FaultUniverse {
        std::shared_ptr<const spice::Netlist> nominal;
        std::vector<capture::NetlistFault> faults;
        core::SpiceObservation observation;
    };

    std::variant<CutListUniverse, DeviationUniverse, FaultUniverse> universe_;
};

/// The service. Owns the pipeline (set_golden mutates it per job) and a
/// persistent pool of worker threads that live across jobs; run() is the
/// blocking submit-and-stream entry point and may be called repeatedly.
/// One job runs at a time (concurrent run() calls serialise); results
/// within a job are produced concurrently but delivered from the run()
/// caller's thread.
class SweepService {
public:
    using ResultCallback = std::function<void(const SweepResult&)>;

    explicit SweepService(core::SignaturePipeline pipeline,
                          SweepServiceOptions options = {});
    ~SweepService();

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /// Evaluates every member of the job, invoking on_result once per
    /// evaluated member in ascending member_id order (contiguous from 0
    /// unless cancelled). Blocks until the job completes, is cancelled, or a
    /// worker fails with a non-member error (InvalidInput etc.), which is
    /// rethrown here after in-flight units drain. The callback runs on the
    /// caller's thread, so it may cancel, aggregate, or write to a stream
    /// without synchronisation.
    JobSummary run(const SweepJob& job, const ResultCallback& on_result,
                   SweepCancelToken* cancel = nullptr);

    [[nodiscard]] const core::SignaturePipeline& pipeline() const noexcept {
        return pipeline_;
    }
    [[nodiscard]] unsigned worker_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }
    /// Members per work unit for jobs that do not set their own.
    [[nodiscard]] std::size_t default_shard_size() const noexcept {
        return options_.shard_size;
    }

    /// Lifetime totals across jobs.
    struct ServiceStats {
        std::uint64_t jobs = 0;
        std::uint64_t members = 0;
        std::uint64_t shards = 0;
        std::uint64_t netlist_clones = 0;
    };
    [[nodiscard]] ServiceStats stats() const;

private:
    struct JobContext;

    void worker_loop(unsigned worker_index) EXCLUDES(dispatch_mutex_);
    void run_shards(JobContext& ctx, unsigned worker_index);

    core::SignaturePipeline pipeline_;
    SweepServiceOptions options_;

    /// Filled in the constructor, joined in the destructor, otherwise
    /// immutable — needs no guard (unlike ThreadPool, nothing ever swaps
    /// the handles out mid-life).
    std::vector<std::thread> workers_;
    Mutex job_mutex_;     ///< serialises run() callers; guards no fields
    Mutex dispatch_mutex_;
    CondVar dispatch_cv_;
    JobContext* current_job_ GUARDED_BY(dispatch_mutex_) = nullptr;
    std::uint64_t job_generation_ GUARDED_BY(dispatch_mutex_) = 0;
    bool stopping_ GUARDED_BY(dispatch_mutex_) = false;

    mutable Mutex stats_mutex_;
    ServiceStats stats_ GUARDED_BY(stats_mutex_);
};

} // namespace xysig::server

#endif // XYSIG_SERVER_SWEEP_SERVICE_H
