#ifndef XYSIG_SERVER_SCHEDULER_H
#define XYSIG_SERVER_SCHEDULER_H

/// \file scheduler.h
/// Queued multi-tenant job scheduler over one SweepService: the layer that
/// turns the blocking one-job-at-a-time `run()` call into a submit API.
///
///  * submit() returns immediately with a JobHandle; job N+1 is accepted
///    (and queued, prefetched, or served from cache) while job N is still
///    draining — per-job result queues decouple producers from consumers.
///  * Dispatch order is priority-descending, then fair-share round-robin
///    across client ids (the least-recently-served client wins a tie), then
///    FIFO within a client — a flood from one client cannot starve another
///    at equal priority, and a high-priority job can never be passed over
///    in favour of a lower-priority one (no priority inversion).
///  * Golden-signature computation for queued behavioural jobs overlaps the
///    current drain: a prefetch thread warms the process-wide
///    core::GoldenSignatureCache through a private pipeline copy, so the
///    service's own set_golden hits the cache (bit-identically — the cache
///    key scheme guarantees it) instead of paying the golden on the
///    critical path.
///  * A content-addressed JobResultCache (see job_cache.h) short-circuits
///    whole jobs: an exact resubmit — or a member-range slice covered by a
///    cached superset — streams results without touching a worker.
///
/// Bit-identity contract: at ANY queue depth × worker count, every job's
/// result stream is in ascending member order and bit-identical to a serial
/// SweepService::run() of the same job (cache hits included: keys are exact
/// hexfloat fingerprints, so a hit replays the identical bits).
///
/// Thread-safety: submit()/cancel()/stats() are concurrently callable from
/// any thread; each JobHandle is drained by one consumer thread at a time.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "server/job_cache.h"
#include "server/sweep_service.h"
#include "server/wire.h"

namespace xysig::server {

class JobScheduler;

/// Terminal state of a scheduled job.
enum class JobState {
    queued,    ///< waiting for dispatch
    running,   ///< the service (or the cache streamer) is producing results
    done,      ///< completed; every member streamed
    failed,    ///< decoding/evaluation error; see JobOutcome::error
    cancelled, ///< cancelled while queued or running (partial stream)
};

/// What a drained job reports (valid once next() has returned false).
struct JobOutcome {
    JobState state = JobState::queued;
    bool from_cache = false; ///< served by the whole-job cache, no workers
    JobSummary summary;      ///< zeroed shards/clones for cache hits
    std::string error;       ///< non-empty iff state == failed
    /// verify_serial accounting (run on the dispatcher thread while the
    /// job's golden is still installed in the service pipeline).
    bool verify_ran = false;
    bool verified = true;
    bool verify_skipped_cancelled = false;
    std::size_t verify_members = 0;
    /// 1-based order in which the service actually ran jobs (0 = never ran:
    /// cache hit or cancelled while queued) — the fair-share/priority tests
    /// assert on this.
    std::uint64_t run_sequence = 0;
    double queue_seconds = 0.0; ///< submit -> first dispatch/cache-serve
};

/// One submitted job: a handle to its private result queue.
class JobHandle {
public:
    /// Blocking pop of the next result (ascending member order, local ids).
    /// Returns false once the stream is complete — then outcome() is final.
    bool next(SweepResult& out);

    /// Blocks until the job leaves the queued state (dispatch, cache serve,
    /// cancel or failure).
    void wait_until_started();

    /// Cooperative cancel: dequeues the job if still queued (it then
    /// finishes as cancelled without running), pokes its cancel token if
    /// running.
    void cancel();

    /// Final report; call after next() returned false (asserts otherwise).
    [[nodiscard]] JobOutcome outcome() const;

    /// True once the job is known to be served by the whole-job cache
    /// (immediately for submit-time hits); false while undecided.
    [[nodiscard]] bool from_cache() const;

    /// True iff the job was cancelled while still queued — it produced no
    /// results and the service never saw it (no job_start on the wire).
    [[nodiscard]] bool cancelled_before_start() const;

    /// The decoded job this handle tracks.
    [[nodiscard]] const WireJob& wire() const;

private:
    friend class JobScheduler;
    struct Record;
    explicit JobHandle(std::shared_ptr<Record> record)
        : record_(std::move(record)) {}

    std::shared_ptr<Record> record_;
};

/// The scheduler. Owns the dispatcher and prefetch threads and the job
/// cache; borrows the SweepService (whose run() it is the only caller of).
class JobScheduler {
public:
    struct Options {
        /// Queued-job bound; submit() blocks once this many jobs wait
        /// (backpressure towards the wire reader).
        std::size_t max_pending = 1024;
        /// Whole-job result cache entries; 0 disables job caching.
        std::size_t cache_capacity = JobResultCache::kDefaultCapacity;
        /// Warm the golden cache for queued jobs on a prefetch thread.
        bool prefetch_goldens = true;
    };

    struct SubmitOptions {
        int priority = 0;   ///< higher runs first
        std::string client; ///< fair-share identity ("" = anonymous client)
    };

    /// Lifetime totals (all fields monotone except queue_depth).
    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t cache_hits = 0; ///< jobs served without a worker
        std::uint64_t goldens_prefetched = 0;
        std::size_t queue_depth = 0; ///< currently queued (excl. running)
    };

    // No `Options options = {}` default argument: NSDMIs of a nested class
    // are parsed only at the end of the outermost class, so the default
    // would not compile here (same gotcha as SweepJob's universe structs).
    explicit JobScheduler(SweepService& service)
        : JobScheduler(service, Options{}) {}
    JobScheduler(SweepService& service, Options options);
    ~JobScheduler(); ///< cancels queued+running jobs, joins threads

    JobScheduler(const JobScheduler&) = delete;
    JobScheduler& operator=(const JobScheduler&) = delete;

    /// Enqueues one decoded job and returns its handle immediately (blocks
    /// only on a full queue). Jobs carrying the verify_serial/cancel_after
    /// test instruments bypass the cache in both directions.
    [[nodiscard]] JobHandle submit(WireJob wire) {
        return submit(std::move(wire), SubmitOptions{});
    }
    [[nodiscard]] JobHandle submit(WireJob wire, SubmitOptions opts);

    /// Wire-level cancel: a non-empty id cancels every queued AND the
    /// running job whose wire id matches; an empty id cancels only the
    /// running job (the legacy single-job semantics the fan-out driver
    /// relies on).
    void cancel(const std::string& wire_id);

    /// Pauses/resumes dispatch (queued jobs accumulate; the running job is
    /// unaffected). Deterministic-ordering tests and drain-for-maintenance
    /// both need this.
    void set_paused(bool paused);

    [[nodiscard]] Stats stats() const;
    [[nodiscard]] JobResultCache& cache() noexcept { return cache_; }
    [[nodiscard]] const JobResultCache& cache() const noexcept {
        return cache_;
    }

private:
    using RecordPtr = std::shared_ptr<JobHandle::Record>;

    void dispatcher_main() EXCLUDES(mutex_);
    void prefetch_main() EXCLUDES(mutex_);
    void execute(const RecordPtr& rec) EXCLUDES(mutex_);
    void serve_from_cache(const RecordPtr& rec,
                          const JobResultCache::Hit& hit);
    /// Counts a closed record's terminal state into stats_ exactly once.
    /// Caller holds mutex_; takes the record's own lock (mutex_ -> rec->m
    /// is the one sanctioned lock order).
    void account_terminal_locked(const RecordPtr& rec) REQUIRES(mutex_);
    [[nodiscard]] RecordPtr pick_next_locked() REQUIRES(mutex_);
    [[nodiscard]] std::string job_cache_key(const WireJob& wire) const;

    SweepService& service_;
    Options options_;
    JobResultCache cache_;
    /// Private pipeline copy made at construction (before any job mutates
    /// the service pipeline's golden) — the prefetch thread's workbench.
    std::optional<core::SignaturePipeline> prefetch_pipeline_;
    std::string pipeline_fp_; ///< empty = job caching off for this pipeline
    /// The service pipeline's fast_math flag at construction: the mode a
    /// job that does not pin one (SweepJob::fast_math == nullopt) runs
    /// under. Folded into job_cache_key so per-job pinned modes never
    /// alias, and applied to the prefetch pipeline so warmed goldens land
    /// under the key the job will actually look up.
    bool base_fast_math_ = false;

    mutable Mutex mutex_; ///< queue + stats state below
    CondVar dispatch_cv_;
    CondVar space_cv_;
    /// Per-client queues, each kept sorted (priority desc, submit order).
    std::map<std::string, std::deque<RecordPtr>> queues_ GUARDED_BY(mutex_);
    std::map<std::string, std::uint64_t> last_served_ GUARDED_BY(mutex_);
    std::deque<RecordPtr> prefetch_queue_ GUARDED_BY(mutex_);
    RecordPtr running_ GUARDED_BY(mutex_);
    std::size_t pending_ GUARDED_BY(mutex_) = 0;
    bool paused_ GUARDED_BY(mutex_) = false;
    bool stopping_ GUARDED_BY(mutex_) = false;
    std::uint64_t next_submit_seq_ GUARDED_BY(mutex_) = 1;
    std::uint64_t serve_counter_ GUARDED_BY(mutex_) = 1;
    std::uint64_t run_counter_ GUARDED_BY(mutex_) = 1;
    Stats stats_ GUARDED_BY(mutex_);

    std::thread prefetch_thread_;
    std::thread dispatcher_thread_;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_SCHEDULER_H
