#ifndef XYSIG_SERVER_WIRE_H
#define XYSIG_SERVER_WIRE_H

/// \file wire.h
/// The NDJSON wire protocol spoken by `sweep_server` and the fan-out
/// driver: one JSON request (job or command) per line in, one JSON event
/// per line out. docs/PROTOCOL.md is the normative field-by-field spec;
/// this header is its implementation surface:
///
///  * parse_wire_job — decodes a job line into a runnable server::SweepJob
///    plus everything a serial re-verification needs (protocol version
///    check, unknown-field-tolerant, member-range slicing for fan-out
///    partitions);
///  * ServerSession — runs decoded requests against a SweepService and
///    emits the event stream through a line sink; one instance per
///    protocol peer (stdin/stdout in sweep_server, an in-process queue
///    pair in LoopbackTransport);
///  * check_protocol_line — strict schema validation of any protocol line
///    (request or event), used by `sweep_server --check` so CI can replay
///    the PROTOCOL.md examples against the real parser.
///
/// Versioning: requests may carry `"version"` (integer). Absent means
/// version 1 — every PR-4 job line is a valid version-1 job. A version
/// above kProtocolVersion is rejected with an error event. Both sides
/// must ignore unknown fields, so minor additions never break old peers.
///
/// Version 2: the session schedules jobs asynchronously through
/// server::JobScheduler — a job line is ACCEPTED (acknowledged with a
/// `queued` event) instead of run inline, multiple jobs interleave on one
/// connection, requests may carry `priority`/`client`, `job_done` reports
/// `cached`/`queue_seconds`, and `{"cmd":"cancel"}` with an id also
/// cancels still-queued jobs. Every version-1 request line is a valid
/// version-2 request line.
///
/// Version 3 (this build): liveness. The session can emit a periodic
/// `heartbeat` event (SessionOptions::heartbeat_seconds) so a coordinator
/// can keep a tight inactivity timeout that kills genuinely dead peers
/// without shooting slow-but-alive ones, and answers `{"cmd":"ping"}`
/// with a `pong` event. A `listening` control event announces a TCP
/// accept loop's bound port. Purely additive: consumers MUST ignore
/// event kinds they do not know (tolerant-reader rule), so every
/// version-2 reader consumes a version-3 stream correctly.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

#include "server/json.h"
#include "server/sweep_service.h"

namespace xysig::server {

class JobScheduler;
class JobHandle;

/// Protocol version this build speaks (echoed on ready/job_start events).
inline constexpr int kProtocolVersion = 3;

/// The pipeline every wire peer runs: the paper's Table-I monitor bank
/// over the paper stimulus. Fan-out bit-identity relies on coordinator
/// and workers building this identically, so it lives here, not in the
/// example binaries.
[[nodiscard]] core::SignaturePipeline
make_paper_pipeline(std::size_t samples_per_period);

/// Compact exact signature string: "code@t;code@t;..." with hexfloat
/// times, so two strings compare equal iff the chronograms are
/// bit-identical.
[[nodiscard]] std::string signature_string(const capture::Chronogram& ch);

/// Non-negative integer out of a wire JSON number, bounded at 2^53 (above
/// that a double cannot represent every integer, and an unchecked cast to
/// size_t would be UB on untrusted input). Throws InvalidInput; `what`
/// names the field in the message. Shared by the job decoder and the
/// fan-out driver's event reader — both parse untrusted peers.
[[nodiscard]] std::size_t index_field(const JsonValue& v, const char* what);

/// One decoded job line: the runnable SweepJob plus the universe pieces a
/// serial re-verification needs, plus the per-job wire options.
struct WireJob {
    SweepJob job;

    /// Universe members before any "members" range slicing.
    std::size_t universe_members = 0;
    /// Global member id of this job's local member 0 ("members".first).
    std::size_t member_offset = 0;

    // Universe pieces (already sliced to the member range).
    std::vector<double> deviations; ///< deviation jobs
    core::SweptParameter parameter = core::SweptParameter::f0;
    bool is_spice = false;
    std::vector<capture::NetlistFault> faults; ///< spice jobs
    std::shared_ptr<const spice::Netlist> nominal;
    core::SpiceObservation observation{};

    // Wire options.
    int version = 1;
    std::string id;
    std::size_t progress_every = 0;
    std::size_t cancel_after = 0;
    bool emit_signatures = true;
    bool verify_serial = false;

    // Scheduling options (version 2).
    int priority = 0;   ///< higher dispatches first
    std::string client; ///< fair-share identity; "" = anonymous

    /// Exact content fingerprint of the FULL universe spec (hexfloat
    /// values, built before member-range slicing, range excluded) — the
    /// job half of the scheduler's whole-job cache key. Empty only for
    /// universe kinds the cache does not cover.
    std::string universe_key;
};

/// Decodes one job object (already JSON-parsed). Throws InvalidInput on a
/// schema violation or an unsupported protocol version; ignores unknown
/// fields. Deviation grids are materialised over the FULL universe before
/// the member range is sliced out, so a member's deviation value is a
/// function of its global id only — that is what keeps fan-out partitions
/// bit-identical to the unpartitioned job.
[[nodiscard]] WireJob parse_wire_job(const JsonValue& v);

/// Serial reference evaluation of the (sliced) universe — clone per fault
/// for SPICE jobs, i.e. the independent check of the service's
/// clone-reuse scheme.
[[nodiscard]] std::vector<double>
wire_serial_reference(const WireJob& job, const core::SignaturePipeline& pipe);

/// Validates one protocol line — request (job/cmd) or event — against the
/// schema in docs/PROTOCOL.md: required fields present with the right
/// JSON types, event/cmd names known. Unknown extra fields are tolerated
/// (the version rule). Throws InvalidInput with a reason on violation.
void check_protocol_line(const std::string& line);

/// Scheduler knobs a session forwards to its JobScheduler (mirrored here
/// so wire.h need not include scheduler.h — scheduler.h includes wire.h).
struct SessionOptions {
    std::size_t max_pending = 1024; ///< queued-job bound (submit backpressure)
    std::size_t cache_capacity = 64; ///< whole-job cache entries; 0 = off
    bool prefetch_goldens = true;
    /// Emit a `heartbeat` event every this-many seconds (0 = off). The
    /// liveness signal for coordinators with inactivity timeouts: a busy
    /// worker whose results are slow still proves it is alive between
    /// result lines (protocol v3).
    double heartbeat_seconds = 0.0;
};

/// Runs wire requests against a SweepService through a JobScheduler and
/// emits NDJSON event lines through the sink. handle_line() is the
/// non-blocking per-request entry point: a job line is decoded, submitted
/// and acknowledged with a `queued` event, then its whole event stream
/// (job_start/result/progress/job_done/verify or error) is emitted by a
/// per-job emitter thread — so multiple in-flight jobs interleave on one
/// connection while each job's own events stay in order. {"cmd":"quit"}
/// drains every in-flight job before handle_line returns false, so no
/// event line is ever lost to an exiting peer.
///
/// Thread-safety: handle_line()/drain() are driven by ONE reader thread;
/// cancel() may be called concurrently from any thread (the fan-out
/// coordinator via LoopbackTransport, a signal handler thread); the sink
/// is invoked under an internal lock, one complete line at a time.
class ServerSession {
public:
    using LineSink = std::function<void(const std::string& line)>;

    ServerSession(SweepService& service, LineSink sink,
                  SessionOptions options = {});
    ~ServerSession(); ///< cancels in-flight jobs and joins emitters

    ServerSession(const ServerSession&) = delete;
    ServerSession& operator=(const ServerSession&) = delete;

    /// Emits the ready banner (version, workers, shard_size, spp).
    void emit_ready(std::size_t samples_per_period);

    /// Processes one request line. Returns false when the request was
    /// {"cmd":"quit"} (after draining); protocol errors are reported as
    /// error events (and keep the session alive), they are not thrown.
    bool handle_line(const std::string& line);

    /// Cooperative cancel: a non-empty id cancels the matching queued or
    /// running jobs; an empty id cancels whatever is running right now.
    void cancel(const std::string& id);

    /// Blocks until every submitted job has finished emitting (the EOF
    /// path of sweep_server; quit calls this internally).
    void drain();

    /// False once any verify_serial check has failed (sweep_server exits
    /// non-zero on this).
    [[nodiscard]] bool all_verified() const noexcept {
        return all_verified_.load(std::memory_order_acquire);
    }

private:
    struct Emitter; ///< one per-job event-stream thread

    void emit(const JsonValue::Object& obj) EXCLUDES(sink_mutex_);
    void emit_error(const std::string& id, const std::string& message);
    void submit_job(const JsonValue& v);
    void emit_job_events(JobHandle handle);
    void emit_stats();
    void reap_finished_emitters_locked() REQUIRES(emitters_mutex_);

    SweepService& service_;
    /// Immutable after construction; sink_mutex_ serialises *invocations*
    /// (whole emitted lines), not the function object itself.
    LineSink sink_;
    Mutex sink_mutex_;
    std::atomic<bool> all_verified_{true};
    std::unique_ptr<JobScheduler> scheduler_;

    // Heartbeat thread (protocol v3 liveness; only when
    // SessionOptions::heartbeat_seconds > 0).
    std::thread heartbeat_thread_;
    Mutex heartbeat_mutex_;
    CondVar heartbeat_cv_;
    bool heartbeat_stop_ GUARDED_BY(heartbeat_mutex_) = false;

    Mutex emitters_mutex_;
    std::vector<std::unique_ptr<Emitter>> emitters_ GUARDED_BY(emitters_mutex_);

    /// Pre-submit cancel window: SPICE decode takes milliseconds, and a
    /// concurrent cancel() for the job being decoded must not be dropped
    /// (the fan-out driver sends its cancel exactly once).
    Mutex precancel_mutex_;
    std::string decoding_id_ GUARDED_BY(precancel_mutex_);
    bool decoding_active_ GUARDED_BY(precancel_mutex_) = false;
    bool decoding_cancelled_ GUARDED_BY(precancel_mutex_) = false;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_WIRE_H
