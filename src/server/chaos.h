#ifndef XYSIG_SERVER_CHAOS_H
#define XYSIG_SERVER_CHAOS_H

/// \file chaos.h
/// Deterministic fault injection for the sweep fabric.
///
/// ChaosTransport decorates any Transport with a seeded fault plan so the
/// fan-out driver's recovery machinery — re-dispatch from the first
/// unreceived member, inactivity timeouts, malformed-line peer death —
/// can be exercised on demand instead of waiting for a real worker to
/// crash. Every fault is deterministic: the same plan over the same
/// event stream fires at the same line with the same bytes, which is what
/// lets the chaos test matrix assert bit-identical merged output.
///
/// Fault modes (all read-side; the coordinator's view of a sick peer):
///  * disconnect — after N delivered lines the connection closes (EOF),
///    as if the worker process died;
///  * stall — after N lines the peer goes silent WITHOUT closing for
///    stall_seconds (0 = forever): the inactivity-timeout path. Lines
///    are not lost, only withheld;
///  * truncate — line N+1 is cut mid-JSON and the connection closes: a
///    peer that died mid-write;
///  * garbage — line N+1 is replaced by seeded binary-ish junk: a
///    corrupted stream (the real line is lost, so recovery must
///    re-dispatch, not just skip);
///  * delay — every line after the Nth is delivered delay_seconds late:
///    a straggling-but-correct peer (work-stealing bait; nothing is
///    lost, merged output must still be bit-identical with zero retries).
///
/// chaos_factory() wraps a FanoutDriver transport factory so only the
/// first `faulty_transports` transports it creates are chaotic — the
/// re-dispatch replacement comes up clean and the job completes.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "server/fanout.h"
#include "server/transport.h"

namespace xysig::server {

enum class ChaosMode {
    none,       ///< pass-through (a plan's default)
    disconnect, ///< close after `after_lines` delivered lines
    stall,      ///< silence (no close) after `after_lines` lines
    truncate,   ///< cut line `after_lines`+1 mid-JSON, then close
    garbage,    ///< replace line `after_lines`+1 with seeded junk
    delay,      ///< deliver every line after the Nth `delay_seconds` late
};

[[nodiscard]] const char* chaos_mode_name(ChaosMode mode) noexcept;

struct ChaosPlan {
    ChaosMode mode = ChaosMode::none;
    /// Lines delivered cleanly before the fault arms. For disconnect /
    /// stall the fault fires INSTEAD of delivering line after_lines+1
    /// (that line is withheld, not consumed); truncate / garbage corrupt
    /// line after_lines+1 itself; delay slows every later line.
    std::size_t after_lines = 0;
    /// stall only: how long the silence lasts (0 = never recovers).
    double stall_seconds = 0.0;
    /// delay only: per-line delivery lag.
    double delay_seconds = 0.0;
    /// Seeds the garbage bytes and the truncate cut point.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Transport decorator applying one ChaosPlan to the read side. Writes
/// pass through untouched (until a disconnect-style fault closes the
/// peer, after which send_line reports failure like any dead transport).
class ChaosTransport final : public Transport {
public:
    ChaosTransport(std::unique_ptr<Transport> base, ChaosPlan plan);
    ~ChaosTransport() override;

    bool send_line(const std::string& line) override;
    ReadStatus read_line(std::string& out, double timeout_seconds) override;
    void shutdown() override;
    [[nodiscard]] std::string describe() const override;

private:
    ReadStatus fault_read(std::string& out, double timeout_seconds);

    std::unique_ptr<Transport> base_;
    ChaosPlan plan_;
    std::size_t delivered_ = 0; ///< clean lines handed to the caller
    bool fault_spent_ = false;  ///< one-shot faults already fired
    bool closed_ = false;
    double stall_until_ = 0.0; ///< monotonic deadline; <0 = stalled forever
};

/// Wraps a fan-out transport factory so the first `faulty_transports`
/// transports it creates carry `plan` and every later one (the
/// re-dispatch replacements, the other partitions beyond first_n) is
/// clean. The count is per returned factory, so two drivers never share
/// fault budgets.
[[nodiscard]] FanoutDriver::TransportFactory
chaos_factory(FanoutDriver::TransportFactory base, ChaosPlan plan,
              std::size_t faulty_transports = 1);

} // namespace xysig::server

#endif // XYSIG_SERVER_CHAOS_H
