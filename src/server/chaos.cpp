#include "server/chaos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

namespace xysig::server {

namespace {

[[nodiscard]] double monotonic_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void sleep_seconds(double seconds) {
    if (seconds > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Seeded junk that can never parse: opens an object, opens a number
/// value, then runs letters into it with no closing brace anywhere.
[[nodiscard]] std::string garbage_line(std::uint64_t seed) {
    static constexpr char kCharset[] = "abcdefghjkmnpqrstuvwxyz0123456789#%";
    std::string line = "{\"event\":\"result\",\"member\":";
    std::uint64_t state = seed;
    for (int i = 0; i < 24; ++i)
        line.push_back(
            kCharset[splitmix64(state) % (sizeof(kCharset) - 1)]);
    return line;
}

} // namespace

const char* chaos_mode_name(ChaosMode mode) noexcept {
    switch (mode) {
    case ChaosMode::none:
        return "none";
    case ChaosMode::disconnect:
        return "disconnect";
    case ChaosMode::stall:
        return "stall";
    case ChaosMode::truncate:
        return "truncate";
    case ChaosMode::garbage:
        return "garbage";
    case ChaosMode::delay:
        return "delay";
    }
    return "unknown";
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> base, ChaosPlan plan)
    : base_(std::move(base)), plan_(plan) {}

ChaosTransport::~ChaosTransport() = default;

bool ChaosTransport::send_line(const std::string& line) {
    if (closed_)
        return false;
    return base_->send_line(line);
}

Transport::ReadStatus ChaosTransport::read_line(std::string& out,
                                                double timeout_seconds) {
    if (closed_)
        return ReadStatus::closed;
    const bool armed = !fault_spent_ && plan_.mode != ChaosMode::none &&
                       delivered_ >= plan_.after_lines;
    if (armed)
        return fault_read(out, timeout_seconds);
    const ReadStatus status = base_->read_line(out, timeout_seconds);
    if (status == ReadStatus::line)
        ++delivered_;
    return status;
}

Transport::ReadStatus ChaosTransport::fault_read(std::string& out,
                                                 double timeout_seconds) {
    switch (plan_.mode) {
    case ChaosMode::disconnect: {
        // The worker "dies": EOF with everything after line N lost.
        closed_ = true;
        base_->shutdown();
        return ReadStatus::closed;
    }

    case ChaosMode::stall: {
        // Silence without close. Lines are withheld, not consumed, so a
        // finite stall resumes the stream with nothing lost.
        const double now = monotonic_seconds();
        // xylint: exact-compare(0.0 is the stall-not-started sentinel, assigned verbatim)
        if (stall_until_ == 0.0)
            stall_until_ = plan_.stall_seconds > 0.0
                               ? now + plan_.stall_seconds
                               : -1.0;
        if (stall_until_ < 0.0) {
            // Permanent: consume the caller's patience and report timeout
            // (with an infinite caller timeout, pretend in 1 s slices —
            // the driver's inactivity clock is what should fire, and a
            // hard hang would make a misconfigured test undebuggable).
            sleep_seconds(timeout_seconds > 0.0 ? timeout_seconds : 1.0);
            return ReadStatus::timeout;
        }
        const double remaining = stall_until_ - now;
        if (remaining > 0.0 && timeout_seconds > 0.0 &&
            timeout_seconds <= remaining) {
            sleep_seconds(timeout_seconds);
            return ReadStatus::timeout;
        }
        sleep_seconds(remaining);
        fault_spent_ = true; // silence over; stream resumes
        const ReadStatus status = base_->read_line(out, timeout_seconds);
        if (status == ReadStatus::line)
            ++delivered_;
        return status;
    }

    case ChaosMode::truncate: {
        const ReadStatus status = base_->read_line(out, timeout_seconds);
        if (status != ReadStatus::line)
            return status;
        // Cut mid-JSON at a seeded point and drop the connection: a peer
        // that died inside write(). The cut line IS lost — recovery must
        // re-dispatch from the first unreceived member.
        if (out.size() > 1) {
            std::uint64_t state = plan_.seed;
            const std::size_t cut =
                out.size() / 2 + splitmix64(state) % (out.size() / 4 + 1);
            out.erase(std::min(cut, out.size() - 1));
        }
        fault_spent_ = true;
        closed_ = true; // every later read reports closed
        base_->shutdown();
        return ReadStatus::line;
    }

    case ChaosMode::garbage: {
        // Swallow the real line and hand the caller seeded junk instead:
        // a corrupted stream whose payload is unrecoverable.
        const ReadStatus status = base_->read_line(out, timeout_seconds);
        if (status != ReadStatus::line)
            return status;
        out = garbage_line(plan_.seed);
        fault_spent_ = true;
        return ReadStatus::line;
    }

    case ChaosMode::delay: {
        // A straggler, not a failure: every line still arrives, late.
        const ReadStatus status = base_->read_line(out, timeout_seconds);
        if (status != ReadStatus::line)
            return status;
        sleep_seconds(plan_.delay_seconds);
        ++delivered_;
        return status;
    }

    case ChaosMode::none:
        break;
    }
    const ReadStatus status = base_->read_line(out, timeout_seconds);
    if (status == ReadStatus::line)
        ++delivered_;
    return status;
}

void ChaosTransport::shutdown() {
    closed_ = true;
    base_->shutdown();
}

std::string ChaosTransport::describe() const {
    return std::string("chaos[") + chaos_mode_name(plan_.mode) + "@" +
           std::to_string(plan_.after_lines) + ", " + base_->describe() + "]";
}

FanoutDriver::TransportFactory
chaos_factory(FanoutDriver::TransportFactory base, ChaosPlan plan,
              std::size_t faulty_transports) {
    auto created = std::make_shared<std::atomic<std::size_t>>(0);
    return [base = std::move(base), plan, faulty_transports,
            created]() -> std::unique_ptr<Transport> {
        std::unique_ptr<Transport> transport = base();
        const std::size_t index =
            created->fetch_add(1, std::memory_order_relaxed);
        if (index < faulty_transports && plan.mode != ChaosMode::none)
            return std::make_unique<ChaosTransport>(std::move(transport),
                                                    plan);
        return transport;
    };
}

} // namespace xysig::server
