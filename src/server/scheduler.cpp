#include "server/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/contracts.h"
#include "common/strings.h"
#include "core/paper_setup.h"
#include "filter/cut.h"

namespace xysig::server {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

/// Shared job state: the scheduler produces into it, one consumer drains
/// it. `m` guards everything below it; the WireJob and submit metadata are
/// immutable after submit() and need no lock.
struct JobHandle::Record {
    WireJob wire;
    JobScheduler::SubmitOptions opts;
    std::string cache_key; ///< "" = cache bypassed for this job
    std::uint64_t submit_seq = 0;
    Clock::time_point submitted_at;

    Mutex m;
    CondVar cv;
    JobOutcome out GUARDED_BY(m);
    std::deque<SweepResult> results GUARDED_BY(m);
    bool closed GUARDED_BY(m) = false;    ///< no further results; final `out`
    bool accounted GUARDED_BY(m) = false; ///< terminal state counted once
    SweepCancelToken token; ///< internally atomic; poked from any thread
};

// ------------------------------------------------------------------ handle

bool JobHandle::next(SweepResult& out) {
    Record& r = *record_;
    MutexLock lock(r.m);
    r.cv.wait(lock, [&]() REQUIRES(r.m) { return !r.results.empty() || r.closed; });
    if (r.results.empty())
        return false;
    out = std::move(r.results.front());
    r.results.pop_front();
    return true;
}

void JobHandle::wait_until_started() {
    Record& r = *record_;
    MutexLock lock(r.m);
    r.cv.wait(lock,
              [&]() REQUIRES(r.m) { return r.out.state != JobState::queued; });
}

void JobHandle::cancel() {
    Record& r = *record_;
    MutexLock lock(r.m);
    if (r.out.state == JobState::queued) {
        // Finalise in place; the dispatcher skips (and accounts) the
        // record when it eventually pops it.
        r.out.state = JobState::cancelled;
        r.closed = true;
        r.cv.notify_all();
    } else if (r.out.state == JobState::running) {
        r.token.cancel();
    }
}

JobOutcome JobHandle::outcome() const {
    Record& r = *record_;
    MutexLock lock(r.m);
    XYSIG_EXPECTS(r.closed);
    return r.out;
}

bool JobHandle::from_cache() const {
    Record& r = *record_;
    MutexLock lock(r.m);
    return r.out.from_cache;
}

bool JobHandle::cancelled_before_start() const {
    Record& r = *record_;
    MutexLock lock(r.m);
    return r.closed && r.out.state == JobState::cancelled &&
           r.out.run_sequence == 0 && !r.out.from_cache && r.results.empty();
}

const WireJob& JobHandle::wire() const { return record_->wire; }

// --------------------------------------------------------------- scheduler

JobScheduler::JobScheduler(SweepService& service, Options options)
    : service_(service), options_(options),
      cache_(std::max<std::size_t>(1, options.cache_capacity)),
      pipeline_fp_(options.cache_capacity == 0
                       ? std::string()
                       : pipeline_fingerprint(service.pipeline())),
      base_fast_math_(service.pipeline().options().fast_math) {
    // The prefetch pipeline is copied BEFORE any job runs: set_golden
    // mutates the service pipeline per job, and copying a pipeline that a
    // worker is mutating would race. A construction-time copy shares the
    // exact bank/stimulus/options, so its golden-cache keys are identical
    // to the service's — that identity is what makes prefetch hits
    // bit-identical.
    if (options_.prefetch_goldens)
        prefetch_pipeline_.emplace(service_.pipeline());
    dispatcher_thread_ = std::thread([this] { dispatcher_main(); });
    prefetch_thread_ = std::thread([this] { prefetch_main(); });
}

JobScheduler::~JobScheduler() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        for (auto& [client, queue] : queues_) {
            for (const RecordPtr& rec : queue) {
                {
                    MutexLock rlock(rec->m);
                    if (rec->out.state == JobState::queued) {
                        rec->out.state = JobState::cancelled;
                        rec->closed = true;
                        rec->cv.notify_all();
                    }
                }
                account_terminal_locked(rec);
            }
        }
        queues_.clear();
        prefetch_queue_.clear();
        pending_ = 0;
        if (running_ != nullptr)
            running_->token.cancel();
        dispatch_cv_.notify_all();
        space_cv_.notify_all();
    }
    dispatcher_thread_.join();
    prefetch_thread_.join();
}

std::string JobScheduler::job_cache_key(const WireJob& wire) const {
    if (pipeline_fp_.empty() || wire.universe_key.empty())
        return {};
    if (wire.job.size() == 0)
        return {}; // nothing to serve; plan probes always hit the service
    if (wire.verify_serial || wire.cancel_after != 0)
        return {}; // test instruments must exercise the real engine
    // Key the EFFECTIVE sampling mode (the job's pinned flag, falling back
    // to the service pipeline's construction-time mode): pipeline_fp_ only
    // carries the base flag, and serving an exact job from a fast_math
    // job's results (or vice versa) would hand out values that differ
    // within the ULP tolerance.
    std::string key = pipeline_fp_;
    key += "|jfm=";
    key += wire.job.fast_math.value_or(base_fast_math_) ? '1' : '0';
    key += "|job{";
    key += wire.universe_key;
    key += '}';
    return key;
}

JobHandle JobScheduler::submit(WireJob wire, SubmitOptions opts) {
    auto rec = std::make_shared<JobHandle::Record>();
    rec->wire = std::move(wire);
    rec->opts = std::move(opts);
    rec->submitted_at = Clock::now();
    rec->cache_key = job_cache_key(rec->wire);

    // Submit-time cache hit: stream without ever entering the queue, so a
    // resubmitted job interleaves with (and never waits behind) a draining
    // one.
    if (!rec->cache_key.empty()) {
        if (auto hit = cache_.lookup(rec->cache_key, rec->wire.member_offset,
                                     rec->wire.job.size())) {
            {
                MutexLock lock(mutex_);
                ++stats_.submitted;
            }
            serve_from_cache(rec, *hit);
            {
                MutexLock lock(mutex_);
                account_terminal_locked(rec);
            }
            return JobHandle(rec);
        }
    }

    MutexLock lock(mutex_);
    space_cv_.wait(lock, [&]() REQUIRES(mutex_) {
        return stopping_ || pending_ < options_.max_pending;
    });
    ++stats_.submitted;
    if (stopping_) {
        {
            MutexLock rlock(rec->m);
            rec->out.state = JobState::cancelled;
            rec->closed = true;
            rec->cv.notify_all();
        }
        account_terminal_locked(rec);
        return JobHandle(rec);
    }
    rec->submit_seq = next_submit_seq_++;
    // Per-client queue kept sorted: priority descending, submit order
    // within a priority — inserting before the first strictly-lower
    // priority preserves FIFO among equals.
    std::deque<RecordPtr>& queue = queues_[rec->opts.client];
    const auto pos = std::find_if(queue.begin(), queue.end(),
                                  [&](const RecordPtr& other) {
                                      return other->opts.priority <
                                             rec->opts.priority;
                                  });
    queue.insert(pos, rec);
    ++pending_;
    if (prefetch_pipeline_.has_value() && !rec->wire.is_spice)
        prefetch_queue_.push_back(rec);
    dispatch_cv_.notify_all();
    return JobHandle(rec);
}

void JobScheduler::cancel(const std::string& wire_id) {
    MutexLock lock(mutex_);
    if (!wire_id.empty()) {
        for (auto it = queues_.begin(); it != queues_.end();) {
            std::deque<RecordPtr>& queue = it->second;
            for (auto qi = queue.begin(); qi != queue.end();) {
                if ((*qi)->wire.id != wire_id) {
                    ++qi;
                    continue;
                }
                const RecordPtr rec = *qi;
                {
                    MutexLock rlock(rec->m);
                    if (rec->out.state == JobState::queued) {
                        rec->out.state = JobState::cancelled;
                        rec->closed = true;
                        rec->cv.notify_all();
                    }
                }
                account_terminal_locked(rec);
                qi = queue.erase(qi);
                --pending_;
            }
            it = queue.empty() ? queues_.erase(it) : std::next(it);
        }
        space_cv_.notify_all();
    }
    if (running_ != nullptr &&
        (wire_id.empty() || running_->wire.id == wire_id))
        running_->token.cancel();
}

void JobScheduler::set_paused(bool paused) {
    MutexLock lock(mutex_);
    paused_ = paused;
    dispatch_cv_.notify_all();
}

JobScheduler::Stats JobScheduler::stats() const {
    MutexLock lock(mutex_);
    Stats s = stats_;
    s.queue_depth = pending_;
    return s;
}

void JobScheduler::account_terminal_locked(const RecordPtr& rec) {
    MutexLock rlock(rec->m);
    if (rec->accounted || !rec->closed)
        return;
    rec->accounted = true;
    switch (rec->out.state) {
    case JobState::done:
        ++stats_.completed;
        if (rec->out.from_cache)
            ++stats_.cache_hits;
        break;
    case JobState::failed:
        ++stats_.failed;
        break;
    case JobState::cancelled:
        ++stats_.cancelled;
        break;
    case JobState::queued:
    case JobState::running:
        break; // unreachable: closed implies a terminal state
    }
}

JobScheduler::RecordPtr JobScheduler::pick_next_locked() {
    // Highest priority wins; ties go to the least-recently-served client
    // (fair share), then to submit order. Client queues are individually
    // sorted, so each front() is its client's best candidate.
    auto best_queue = queues_.end();
    std::uint64_t best_served = 0;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
        if (it->second.empty())
            continue;
        const RecordPtr& cand = it->second.front();
        const auto served_it = last_served_.find(it->first);
        const std::uint64_t served =
            served_it == last_served_.end() ? 0 : served_it->second;
        if (best_queue == queues_.end()) {
            best_queue = it;
            best_served = served;
            continue;
        }
        const RecordPtr& best = best_queue->second.front();
        const int cp = cand->opts.priority;
        const int bp = best->opts.priority;
        if (cp > bp || (cp == bp && (served < best_served ||
                                     (served == best_served &&
                                      cand->submit_seq < best->submit_seq)))) {
            best_queue = it;
            best_served = served;
        }
    }
    XYSIG_EXPECTS(best_queue != queues_.end());
    RecordPtr rec = best_queue->second.front();
    best_queue->second.pop_front();
    // Bound the fairness bookkeeping: a stream of one-shot client ids must
    // not grow the map forever (resetting just forgets who was served).
    if (last_served_.size() > 4096)
        last_served_.clear();
    last_served_[best_queue->first] = serve_counter_++;
    if (best_queue->second.empty())
        queues_.erase(best_queue);
    --pending_;
    space_cv_.notify_all();
    return rec;
}

void JobScheduler::dispatcher_main() {
    while (true) {
        RecordPtr rec;
        {
            MutexLock lock(mutex_);
            dispatch_cv_.wait(lock, [&]() REQUIRES(mutex_) {
                return stopping_ || (!paused_ && pending_ > 0);
            });
            if (stopping_)
                return;
            rec = pick_next_locked();
            running_ = rec;
        }
        execute(rec);
        {
            MutexLock lock(mutex_);
            running_ = nullptr;
            account_terminal_locked(rec);
        }
    }
}

void JobScheduler::execute(const RecordPtr& rec) {
    {
        MutexLock lock(rec->m);
        if (rec->closed)
            return; // cancelled through its handle while queued
    }
    // Dispatch-time cache re-check: an identical job completed since this
    // one was queued (cold duplicates queued back-to-back).
    if (!rec->cache_key.empty()) {
        if (auto hit = cache_.lookup(rec->cache_key, rec->wire.member_offset,
                                     rec->wire.job.size())) {
            serve_from_cache(rec, *hit);
            return;
        }
    }

    // run_counter_ is mutex_ state; fetch the sequence number BEFORE taking
    // rec->m. Taking mutex_ while holding rec->m would invert the one
    // sanctioned lock order (mutex_ -> rec->m, see account_terminal_locked)
    // and could deadlock against the dispatcher/cancel paths.
    std::uint64_t run_seq = 0;
    {
        MutexLock lock(mutex_);
        run_seq = run_counter_++;
    }
    {
        MutexLock lock(rec->m);
        rec->out.state = JobState::running;
        rec->out.queue_seconds = seconds_since(rec->submitted_at);
        rec->out.run_sequence = run_seq;
        rec->cv.notify_all();
    }

    const bool collect = !rec->cache_key.empty();
    std::vector<SweepResult> collected;
    std::vector<double> streamed;
    if (collect)
        collected.reserve(rec->wire.job.size());
    if (rec->wire.verify_serial)
        streamed.reserve(rec->wire.job.size());
    std::size_t delivered = 0;

    try {
        const JobSummary summary = service_.run(
            rec->wire.job,
            [&](const SweepResult& r) {
                if (collect) {
                    SweepResult global = r;
                    global.member_id += rec->wire.member_offset;
                    collected.push_back(std::move(global));
                }
                if (rec->wire.verify_serial)
                    streamed.push_back(r.ndf);
                {
                    MutexLock lock(rec->m);
                    rec->results.push_back(r);
                    rec->cv.notify_all();
                }
                ++delivered;
                if (rec->wire.cancel_after != 0 &&
                    delivered >= rec->wire.cancel_after)
                    rec->token.cancel();
            },
            &rec->token);

        // verify_serial runs HERE, on the dispatcher thread, while the
        // job's own golden is still installed in the service pipeline —
        // the next dispatch replaces it.
        bool verify_ran = false, verified = true, skipped = false;
        std::size_t verify_members = 0;
        if (rec->wire.verify_serial) {
            if (summary.cancelled) {
                skipped = true;
            } else {
                const std::vector<double> reference =
                    wire_serial_reference(rec->wire, service_.pipeline());
                verify_ran = true;
                verify_members = reference.size();
                verified = streamed.size() == reference.size();
                if (verified)
                    for (std::size_t i = 0; i < reference.size(); ++i)
                        verified = verified &&
                                   format_double_exact(streamed[i]) ==
                                       format_double_exact(reference[i]);
            }
        }

        if (collect && !summary.cancelled &&
            collected.size() == rec->wire.job.size())
            cache_.insert(rec->cache_key, rec->wire.member_offset,
                          std::move(collected));

        MutexLock lock(rec->m);
        rec->out.summary = summary;
        rec->out.verify_ran = verify_ran;
        rec->out.verified = verified;
        rec->out.verify_skipped_cancelled = skipped;
        rec->out.verify_members = verify_members;
        rec->out.state =
            summary.cancelled ? JobState::cancelled : JobState::done;
        rec->closed = true;
        rec->cv.notify_all();
    } catch (const std::exception& e) {
        MutexLock lock(rec->m);
        rec->out.error = e.what();
        rec->out.state = JobState::failed;
        rec->closed = true;
        rec->cv.notify_all();
    }
}

void JobScheduler::serve_from_cache(const RecordPtr& rec,
                                    const JobResultCache::Hit& hit) {
    const auto t0 = Clock::now();
    {
        MutexLock lock(rec->m);
        if (rec->closed)
            return; // cancelled in the submit/dispatch window
        rec->out.state = JobState::running;
        rec->out.from_cache = true;
        rec->out.queue_seconds = seconds_since(rec->submitted_at);
        rec->cv.notify_all();
    }
    const std::vector<SweepResult>& all = *hit.results;
    const std::size_t base = rec->wire.member_offset - hit.first;
    const std::size_t count = rec->wire.job.size();
    JobSummary summary;
    summary.members_total = count;
    summary.members_done = count;
    MutexLock lock(rec->m);
    for (std::size_t i = 0; i < count; ++i) {
        SweepResult local = all[base + i]; // stored under global ids
        local.member_id = i;
        rec->results.push_back(std::move(local));
    }
    summary.seconds = seconds_since(t0);
    rec->out.summary = summary;
    rec->out.state = JobState::done;
    rec->closed = true;
    rec->cv.notify_all();
}

void JobScheduler::prefetch_main() {
    while (true) {
        RecordPtr rec;
        {
            MutexLock lock(mutex_);
            dispatch_cv_.wait(lock, [&]() REQUIRES(mutex_) {
                return stopping_ || !prefetch_queue_.empty();
            });
            if (stopping_)
                return;
            rec = prefetch_queue_.front();
            prefetch_queue_.pop_front();
        }
        // Behavioural jobs share the paper-nominal golden; warming it
        // through the private pipeline copy inserts the exact key the
        // service's own set_golden will look up — overlap with zero effect
        // on result bits. (SPICE goldens have no cache key, so there is
        // nothing to warm; those records are filtered at submit.)
        try {
            // Match the job's effective sampling mode first: golden-cache
            // keys embed the fast_math flag, so warming under the wrong
            // mode would insert a key nobody looks up.
            prefetch_pipeline_->set_fast_math(
                rec->wire.job.fast_math.value_or(base_fast_math_));
            prefetch_pipeline_->set_golden(
                filter::BehaviouralCut(core::paper_biquad()));
            MutexLock lock(mutex_);
            ++stats_.goldens_prefetched;
        } catch (const std::exception&) {
            // A golden the prefetcher cannot compute is the dispatcher's
            // problem to report; prefetch is best-effort by design.
        }
    }
}

} // namespace xysig::server
