#include "server/sweep_service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>

#include "common/contracts.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace xysig::server {

namespace {

[[nodiscard]] double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

[[nodiscard]] std::string deviation_label(core::SweptParameter parameter,
                                          double percent) {
    return std::string("dev(") +
           (parameter == core::SweptParameter::f0 ? "f0" : "q") + "," +
           format_double(percent, 6) + "%)";
}

} // namespace

// ----------------------------------------------------------------- SweepJob

SweepJob SweepJob::from_cuts(std::vector<const filter::Cut*> cuts,
                             const filter::Cut* golden) {
    XYSIG_EXPECTS(golden != nullptr);
    for (const filter::Cut* cut : cuts)
        XYSIG_EXPECTS(cut != nullptr);
    SweepJob job;
    job.universe_ = CutListUniverse{std::move(cuts), golden};
    return job;
}

SweepJob SweepJob::deviation_grid(filter::Biquad nominal,
                                  std::vector<double> deviations_percent,
                                  core::SweptParameter parameter) {
    SweepJob job;
    job.universe_ = DeviationUniverse{std::move(nominal),
                                      std::move(deviations_percent), parameter};
    return job;
}

SweepJob SweepJob::fault_universe(std::shared_ptr<const spice::Netlist> nominal,
                                  std::vector<capture::NetlistFault> faults,
                                  core::SpiceObservation observation) {
    XYSIG_EXPECTS(nominal != nullptr);
    SweepJob job;
    job.universe_ = FaultUniverse{std::move(nominal), std::move(faults),
                                  std::move(observation)};
    return job;
}

std::size_t SweepJob::size() const noexcept {
    if (const auto* cl = std::get_if<CutListUniverse>(&universe_))
        return cl->cuts.size();
    if (const auto* dv = std::get_if<DeviationUniverse>(&universe_))
        return dv->deviations_percent.size();
    return std::get<FaultUniverse>(universe_).faults.size();
}

// ----------------------------------------------------------------- contexts

namespace {

/// Per-worker, per-job state: the scratch buffers and — for SPICE jobs —
/// THE one netlist clone this worker reuses across every fault it is
/// handed (inject/repair between members, never clone-per-fault).
struct WorkerState {
    core::NdfScratch scratch;
    std::optional<spice::Netlist> netlist;
    std::optional<filter::SpiceCut> cut; ///< bound to *netlist
};

} // namespace

/// Everything the workers share while one job is in flight.
struct SweepService::JobContext {
    const core::SignaturePipeline* pipeline = nullptr;

    // Exactly one of these three views is active (see resolve in run()).
    const SweepJob::CutListUniverse* cut_list = nullptr;
    const SweepJob::DeviationUniverse* deviation = nullptr;
    const SweepJob::FaultUniverse* faults = nullptr;
    /// Materialised deviation members (one BehaviouralCut per grid point;
    /// construction matches BatchNdfEvaluator::evaluate_deviations exactly,
    /// which is what keeps the two paths bit-identical).
    std::vector<filter::BehaviouralCut> behavioural;

    std::size_t members_total = 0;
    std::size_t shard_size = 1;
    std::size_t shards_total = 0;
    SweepCancelToken* cancel = nullptr;

    std::atomic<std::size_t> next_shard{0};
    std::atomic<std::size_t> members_done{0};
    std::atomic<std::size_t> shards_done{0};
    std::atomic<std::uint64_t> clones{0};
    std::atomic<bool> failed{false};

    Mutex mutex;
    CondVar cv; ///< signalled on new results & worker exits
    std::map<std::size_t, SweepResult> ready GUARDED_BY(mutex); ///< completed,
                                                  ///< not yet delivered
    std::vector<ShardTiming> timings GUARDED_BY(mutex);
    std::size_t active_workers GUARDED_BY(mutex) = 0;
    std::exception_ptr first_error GUARDED_BY(mutex);

    [[nodiscard]] bool aborted() const noexcept {
        return failed.load(std::memory_order_relaxed) ||
               (cancel != nullptr && cancel->cancelled());
    }

    [[nodiscard]] SweepResult evaluate_one(core::NdfScratch& scratch,
                                           std::size_t member_id,
                                           const filter::Cut& cut,
                                           std::string label) const {
        SweepResult result;
        result.member_id = member_id;
        result.label = std::move(label);
        try {
            auto evaluation = pipeline->evaluate(cut, scratch);
            result.ndf = evaluation.ndf;
            result.signature = std::move(evaluation.observed);
        } catch (const NumericError&) {
            // Same policy (and same NaN bit pattern) as the batch engine: a
            // member with no stable solution must not abort the universe.
            result.ndf = std::numeric_limits<double>::quiet_NaN();
        }
        return result;
    }

    [[nodiscard]] SweepResult evaluate_member(WorkerState& ws,
                                              std::size_t member_id) {
        if (cut_list != nullptr) {
            const filter::Cut& cut = *cut_list->cuts[member_id];
            return evaluate_one(ws.scratch, member_id, cut, cut.description());
        }
        if (deviation != nullptr) {
            return evaluate_one(
                ws.scratch, member_id, behavioural[member_id],
                deviation_label(deviation->parameter,
                                deviation->deviations_percent[member_id]));
        }
        // SPICE fault universe: lazily make this worker's single clone, then
        // inject/repair around the evaluation (RAII so a NumericError mid-run
        // still hands the next fault a pristine circuit).
        if (!ws.netlist.has_value()) {
            ws.netlist.emplace(faults->nominal->clone());
            clones.fetch_add(1, std::memory_order_relaxed);
            const core::SpiceObservation& obs = faults->observation;
            ws.cut.emplace(*ws.netlist, obs.input_source, obs.x_node,
                           obs.y_node, obs.settle_periods);
        }
        const capture::NetlistFault& fault = faults->faults[member_id];
        const capture::ScopedFaultInjection injection(*ws.netlist, fault);
        return evaluate_one(ws.scratch, member_id, *ws.cut,
                            fault.description());
    }
};

// -------------------------------------------------------------- SweepService

SweepService::SweepService(core::SignaturePipeline pipeline,
                           SweepServiceOptions options)
    : pipeline_(std::move(pipeline)), options_(options) {
    XYSIG_EXPECTS(options_.shard_size >= 1);
    const unsigned n =
        options_.workers == 0 ? default_thread_count() : options_.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

SweepService::~SweepService() {
    {
        MutexLock lock(dispatch_mutex_);
        stopping_ = true;
    }
    dispatch_cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void SweepService::worker_loop(unsigned worker_index) {
    std::uint64_t seen_generation = 0;
    while (true) {
        JobContext* ctx = nullptr;
        {
            MutexLock lock(dispatch_mutex_);
            dispatch_cv_.wait(lock, [&]() REQUIRES(dispatch_mutex_) {
                return stopping_ || (current_job_ != nullptr &&
                                     job_generation_ != seen_generation);
            });
            if (stopping_)
                return;
            seen_generation = job_generation_;
            ctx = current_job_;
        }
        run_shards(*ctx, worker_index);
        {
            // Decrement-and-notify under the lock: run() may destroy the
            // JobContext the moment it observes active_workers == 0, so the
            // broadcast must complete before this worker releases the mutex
            // (a notify after unlocking would race the cv's destruction).
            MutexLock lock(ctx->mutex);
            --ctx->active_workers;
            ctx->cv.notify_all();
        }
    }
}

void SweepService::run_shards(JobContext& ctx, unsigned worker_index) {
    WorkerState ws;
    while (!ctx.aborted()) {
        const std::size_t shard =
            ctx.next_shard.fetch_add(1, std::memory_order_relaxed);
        if (shard >= ctx.shards_total)
            return;
        const std::size_t first = shard * ctx.shard_size;
        const std::size_t last =
            std::min(first + ctx.shard_size, ctx.members_total);
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t evaluated = 0;
        bool completed = true;
        for (std::size_t i = first; i < last; ++i) {
            if (ctx.aborted()) {
                completed = false;
                break;
            }
            SweepResult result;
            try {
                result = ctx.evaluate_member(ws, i);
            } catch (...) {
                // Non-member failure (bad node name, contract violation):
                // park it for run() to rethrow and stop the whole job.
                {
                    MutexLock lock(ctx.mutex);
                    if (!ctx.first_error)
                        ctx.first_error = std::current_exception();
                }
                ctx.failed.store(true, std::memory_order_relaxed);
                ctx.cv.notify_all();
                completed = false;
                break;
            }
            ++evaluated;
            ctx.members_done.fetch_add(1, std::memory_order_relaxed);
            {
                MutexLock lock(ctx.mutex);
                ctx.ready.emplace(i, std::move(result));
            }
            ctx.cv.notify_all();
        }
        {
            MutexLock lock(ctx.mutex);
            ctx.timings.push_back(
                {shard, first, evaluated, worker_index, seconds_since(t0)});
        }
        if (completed)
            ctx.shards_done.fetch_add(1, std::memory_order_relaxed);
    }
}

JobSummary SweepService::run(const SweepJob& job,
                             const ResultCallback& on_result,
                             SweepCancelToken* cancel) {
    XYSIG_EXPECTS(on_result != nullptr);
    MutexLock job_lock(job_mutex_); // one job at a time

    JobContext ctx;
    ctx.pipeline = &pipeline_;
    ctx.cancel = cancel;

    // Pin the sampling mode before the golden is resolved so the golden
    // and every member of this job evaluate under the same mode (the
    // golden cache and the shared stimulus trace are both keyed on it).
    if (job.fast_math.has_value())
        pipeline_.set_fast_math(*job.fast_math);

    // Resolve the universe view and the golden CUT. The goldens built here
    // go through SignaturePipeline::set_golden, i.e. through the process-wide
    // GoldenSignatureCache: repeat jobs over the same fingerprint reuse one
    // golden computation (SPICE goldens have no exact fingerprint and are
    // recomputed per job, as in PR 3).
    std::optional<filter::BehaviouralCut> behavioural_golden;
    std::optional<filter::SpiceCut> spice_golden;
    const filter::Cut* golden = nullptr;
    if (const auto* cl = std::get_if<SweepJob::CutListUniverse>(&job.universe_)) {
        XYSIG_EXPECTS(cl->cuts.empty() || cl->golden != nullptr);
        ctx.cut_list = cl;
        ctx.members_total = cl->cuts.size();
        golden = cl->golden;
    } else if (const auto* dv =
                   std::get_if<SweepJob::DeviationUniverse>(&job.universe_)) {
        ctx.deviation = dv;
        ctx.members_total = dv->deviations_percent.size();
        ctx.behavioural.reserve(ctx.members_total);
        for (const double dev : dv->deviations_percent) {
            const double frac = dev / 100.0;
            ctx.behavioural.emplace_back(
                dv->parameter == core::SweptParameter::f0
                    ? dv->nominal.with_f0_shift(frac)
                    : dv->nominal.with_q_shift(frac));
        }
        behavioural_golden.emplace(dv->nominal);
        golden = &*behavioural_golden;
    } else {
        const auto& fu = std::get<SweepJob::FaultUniverse>(job.universe_);
        ctx.faults = &fu;
        ctx.members_total = fu.faults.size();
        spice_golden.emplace(
            std::make_unique<spice::Netlist>(fu.nominal->clone()),
            fu.observation.input_source, fu.observation.x_node,
            fu.observation.y_node, fu.observation.settle_periods);
        golden = &*spice_golden;
    }
    if (golden != nullptr)
        pipeline_.set_golden(*golden); // null only for the empty default job

    ctx.shard_size = job.shard_size != 0 ? job.shard_size : options_.shard_size;
    XYSIG_EXPECTS(ctx.shard_size >= 1);
    ctx.shards_total =
        (ctx.members_total + ctx.shard_size - 1) / ctx.shard_size;

    JobSummary summary;
    summary.members_total = ctx.members_total;
    summary.shards_total = ctx.shards_total;

    const auto t0 = std::chrono::steady_clock::now();
    if (ctx.members_total > 0) {
        {
            // active_workers belongs to ctx.mutex, not dispatch_mutex_:
            // workers can only reach the context after current_job_ is
            // published below, so this runs race-free, but under its own
            // lock so the guard discipline holds.
            MutexLock lock(ctx.mutex);
            ctx.active_workers = workers_.size();
        }
        {
            MutexLock lock(dispatch_mutex_);
            current_job_ = &ctx;
            ++job_generation_;
        }
        dispatch_cv_.notify_all();

        // Deliver results on this thread, in ascending member order:
        // contiguous from 0 while workers are live, then (after
        // cancellation/failure) whatever stragglers completed, still
        // ascending but with gaps. The whole delivery loop is guarded: a
        // throwing result callback must stop the workers and wait for them
        // to release the stack-allocated JobContext before run() unwinds —
        // otherwise they would keep dereferencing a destroyed context.
        try {
            std::size_t next_expected = 0;
            std::vector<SweepResult> batch;
            bool finished = false;
            while (!finished) {
                {
                    MutexLock lock(ctx.mutex);
                    ctx.cv.wait(lock, [&]() REQUIRES(ctx.mutex) {
                        return ctx.active_workers == 0 ||
                               (!ctx.ready.empty() &&
                                ctx.ready.begin()->first == next_expected);
                    });
                    batch.clear();
                    while (!ctx.ready.empty() &&
                           ctx.ready.begin()->first == next_expected) {
                        batch.push_back(std::move(ctx.ready.begin()->second));
                        ctx.ready.erase(ctx.ready.begin());
                        ++next_expected;
                    }
                    finished = ctx.active_workers == 0;
                    if (finished) {
                        // Gap case: keys ascend and all exceed next_expected.
                        for (auto& entry : ctx.ready)
                            batch.push_back(std::move(entry.second));
                        ctx.ready.clear();
                    }
                }
                for (const SweepResult& result : batch)
                    on_result(result);
            }
        } catch (...) {
            ctx.failed.store(true, std::memory_order_relaxed);
            {
                MutexLock lock(ctx.mutex);
                ctx.cv.wait(lock, [&]() REQUIRES(ctx.mutex) {
                    return ctx.active_workers == 0;
                });
            }
            {
                MutexLock lock(dispatch_mutex_);
                current_job_ = nullptr;
            }
            throw;
        }
        {
            MutexLock lock(dispatch_mutex_);
            current_job_ = nullptr;
        }
        {
            // Workers are done (active_workers hit 0 under ctx.mutex), but
            // the guard discipline still applies to the finalisation reads.
            MutexLock lock(ctx.mutex);
            if (ctx.first_error)
                std::rethrow_exception(ctx.first_error);
        }
    }

    summary.seconds = seconds_since(t0);
    summary.members_done = ctx.members_done.load(std::memory_order_relaxed);
    summary.shards_done = ctx.shards_done.load(std::memory_order_relaxed);
    summary.cancelled = cancel != nullptr && cancel->cancelled();
    summary.netlist_clones = ctx.clones.load(std::memory_order_relaxed);
    {
        MutexLock lock(ctx.mutex);
        summary.shard_timings = std::move(ctx.timings);
    }
    std::sort(summary.shard_timings.begin(), summary.shard_timings.end(),
              [](const ShardTiming& a, const ShardTiming& b) {
                  return a.shard < b.shard;
              });

    {
        MutexLock lock(stats_mutex_);
        ++stats_.jobs;
        stats_.members += summary.members_done;
        stats_.shards += summary.shards_done;
        stats_.netlist_clones += summary.netlist_clones;
    }
    return summary;
}

SweepService::ServiceStats SweepService::stats() const {
    MutexLock lock(stats_mutex_);
    return stats_;
}

} // namespace xysig::server
