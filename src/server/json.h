#ifndef XYSIG_SERVER_JSON_H
#define XYSIG_SERVER_JSON_H

/// \file json.h
/// Minimal JSON value type for the sweep server's newline-delimited wire
/// format (one job or result object per line). Deliberately tiny: the only
/// JSON the server speaks is flat-ish objects of numbers, strings, bools and
/// small arrays, so this supports exactly RFC 8259 values with no streaming,
/// no comments and no external dependency (the container image bakes in no
/// JSON library). Objects keep sorted key order (std::map) so serialised
/// output is deterministic — CI diffs NDJSON lines textually.

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace xysig::server {

/// Parser hardening knobs. The depth cap is always enforced (the parser is
/// recursive-descent, so a hostile line of ~100k '[' would otherwise
/// overflow the network-facing sweep_server's stack); duplicate-key
/// rejection is opt-in because RFC 8259 leaves duplicate handling to the
/// application — the wire layer's strict mode rejects them so a job line
/// with conflicting fields fails loudly instead of silently picking one.
struct JsonParseOptions {
    std::size_t max_depth = 64;
    bool reject_duplicate_keys = false;
};

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default; ///< null
    JsonValue(bool b) : kind_(Kind::boolean), bool_(b) {}
    JsonValue(double n) : kind_(Kind::number), number_(n) {}
    JsonValue(int n) : kind_(Kind::number), number_(n) {}
    JsonValue(std::size_t n)
        : kind_(Kind::number), number_(static_cast<double>(n)) {}
    JsonValue(const char* s) : kind_(Kind::string), string_(s) {}
    JsonValue(std::string s) : kind_(Kind::string), string_(std::move(s)) {}
    JsonValue(Array a) : kind_(Kind::array), array_(std::move(a)) {}
    JsonValue(Object o) : kind_(Kind::object), object_(std::move(o)) {}

    /// Parses one JSON document (the whole string must be consumed, apart
    /// from trailing whitespace). Throws InvalidInput with an offset on
    /// malformed text. Numbers must match the RFC 8259 grammar exactly:
    /// strtod-isms accepted by std::from_chars — "inf"/"nan" (reachable
    /// through a leading '-'), leading-zero integers like "01", and
    /// trailing-/leading-dot forms — are rejected.
    [[nodiscard]] static JsonValue parse(const std::string& text);
    [[nodiscard]] static JsonValue parse(const std::string& text,
                                         const JsonParseOptions& options);

    /// parse() with duplicate object keys rejected — the wire layer's
    /// request/validation entry points use this.
    [[nodiscard]] static JsonValue parse_strict(const std::string& text);

    /// Compact single-line serialisation (no spaces, sorted object keys).
    /// Numbers use the shortest round-trippable decimal form.
    [[nodiscard]] std::string dump() const;

    [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::null; }
    [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::number; }
    [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::string; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::array; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::object; }

    /// Checked accessors; throw InvalidInput on a kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;

    /// Object conveniences for the job schema: value of `key`, or the
    /// fallback when the key is absent (kind-mismatched values throw).
    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    [[nodiscard]] double number_or(const std::string& key, double fallback) const;
    [[nodiscard]] std::string string_or(const std::string& key,
                                        std::string fallback) const;
    [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

private:
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind_ = Kind::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_JSON_H
