#include "server/wire.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "core/golden_cache.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"
#include "server/scheduler.h"

namespace xysig::server {

std::size_t index_field(const JsonValue& v, const char* what) {
    constexpr double kMaxExactInteger = 9007199254740992.0; // 2^53
    const double n = v.as_number();
    // xylint: exact-compare(x==floor(x) is the exact is-integer test; doubles below 2^53 are exact)
    if (!(n >= 0.0) || n != std::floor(n) || n > kMaxExactInteger)
        throw InvalidInput(std::string("wire: ") + what +
                           " must be a non-negative integer (<= 2^53)");
    return static_cast<std::size_t>(n);
}

namespace {

[[nodiscard]] std::size_t index_or(const JsonValue& obj, const char* key,
                                   std::size_t fallback) {
    return obj.has(key) ? index_field(obj.at(key), key) : fallback;
}

} // namespace

core::SignaturePipeline make_paper_pipeline(std::size_t samples_per_period) {
    core::PipelineOptions opts;
    opts.samples_per_period = samples_per_period;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

std::string signature_string(const capture::Chronogram& ch) {
    std::string out;
    for (const auto& ev : ch.events()) {
        if (!out.empty())
            out.push_back(';');
        out += std::to_string(ev.code);
        out.push_back('@');
        out += format_double_exact(ev.t);
    }
    return out;
}

// ------------------------------------------------------------ job decoding

WireJob parse_wire_job(const JsonValue& v) {
    WireJob wire;
    if (v.has("version")) {
        const double ver = v.at("version").as_number();
        // xylint: exact-compare(x==floor(x) is the exact is-integer test)
        if (ver != std::floor(ver) || ver < 1)
            throw InvalidInput("wire: version must be a positive integer");
        if (ver > kProtocolVersion)
            throw InvalidInput(
                "wire: unsupported protocol version " +
                std::to_string(static_cast<long long>(ver)) + " (this build speaks " +
                std::to_string(kProtocolVersion) + ")");
        wire.version = static_cast<int>(ver);
    }
    wire.id = v.string_or("id", "");

    const std::string kind = v.at("job").as_string();
    if (kind == "deviations") {
        const std::string param = v.string_or("parameter", "f0");
        if (param != "f0" && param != "q")
            throw InvalidInput("wire: parameter must be 'f0' or 'q'");
        wire.parameter = param == "f0" ? core::SweptParameter::f0
                                       : core::SweptParameter::q;
        if (v.has("deviations")) {
            for (const JsonValue& d : v.at("deviations").as_array())
                wire.deviations.push_back(d.as_number());
        } else {
            const JsonValue& grid = v.at("grid");
            const double from = grid.at("from").as_number();
            const double to = grid.at("to").as_number();
            const std::size_t count = index_field(grid.at("count"), "grid.count");
            if (count < 2)
                throw InvalidInput("wire: grid.count must be >= 2");
            for (std::size_t i = 0; i < count; ++i)
                wire.deviations.push_back(from + (to - from) *
                                                     static_cast<double>(i) /
                                                     static_cast<double>(count - 1));
        }
        // Content-addressed universe key over the MATERIALISED full grid:
        // an explicit list and a grid spelling the same values share one
        // key, and exact hexfloats make a hit bit-identical by definition.
        wire.universe_key = "dev|p=" + param + "|v=";
        for (std::size_t i = 0; i < wire.deviations.size(); ++i) {
            if (i > 0)
                wire.universe_key.push_back(',');
            wire.universe_key += format_double_exact(wire.deviations[i]);
        }
    } else if (kind == "spice_faults") {
        auto circuit = filter::build_tow_thomas(filter::TowThomasDesign::from_biquad(
            core::paper_biquad().design(), 10e3));
        capture::FaultUniverseOptions fopts;
        fopts.bridge_resistance = v.number_or("bridge_resistance", 100.0);
        fopts.open_factor = v.number_or("open_factor", 1e6);
        fopts.bridge_to_ground = v.bool_or("bridge_to_ground", false);
        const std::string universe = v.string_or("universe", "bridging+open");
        if (universe.find("bridging") != std::string::npos)
            wire.faults =
                capture::enumerate_bridging_faults(circuit.netlist, fopts);
        if (universe.find("open") != std::string::npos) {
            const auto opens =
                capture::enumerate_open_faults(circuit.netlist, fopts);
            wire.faults.insert(wire.faults.end(), opens.begin(), opens.end());
        }
        if (wire.faults.empty())
            throw InvalidInput(
                "wire: universe must name 'bridging' and/or 'open'");
        const std::size_t settle = index_or(v, "settle_periods", 2);
        // The fault universe is a deterministic function of these options
        // over the built-in circuit (bridging always enumerated before
        // open), so normalised flags — not the raw universe string — key
        // the cache: "open+bridging" and "bridging+open" are one job.
        wire.universe_key =
            std::string("spice|b=") +
            (universe.find("bridging") != std::string::npos ? '1' : '0') +
            "|o=" + (universe.find("open") != std::string::npos ? '1' : '0') +
            "|br=" + format_double_exact(fopts.bridge_resistance) +
            "|of=" + format_double_exact(fopts.open_factor) +
            "|gnd=" + (fopts.bridge_to_ground ? '1' : '0') +
            "|settle=" + std::to_string(settle);
        wire.observation = {circuit.input_source, circuit.input_node,
                            circuit.lp_node, static_cast<int>(settle)};
        wire.nominal =
            std::make_shared<spice::Netlist>(std::move(circuit.netlist));
        wire.is_spice = true;
    } else {
        throw InvalidInput("wire: unknown job kind '" + kind + "'");
    }

    // Member-range slicing (the fan-out seam). The full universe above was
    // built from global ids, so slicing here cannot change any member's
    // value — partition bit-identity is by construction.
    wire.universe_members =
        wire.is_spice ? wire.faults.size() : wire.deviations.size();
    std::size_t first = 0;
    std::size_t count = wire.universe_members;
    if (v.has("members")) {
        const JsonValue& m = v.at("members");
        first = index_field(m.at("first"), "members.first");
        if (first > wire.universe_members)
            throw InvalidInput("wire: members.first is past the universe end");
        count = index_or(m, "count", wire.universe_members - first);
        if (first + count > wire.universe_members)
            throw InvalidInput("wire: members range is past the universe end");
    }
    wire.member_offset = first;
    if (wire.is_spice) {
        wire.faults = std::vector<capture::NetlistFault>(
            wire.faults.begin() + static_cast<std::ptrdiff_t>(first),
            wire.faults.begin() + static_cast<std::ptrdiff_t>(first + count));
        wire.job = SweepJob::fault_universe(wire.nominal, wire.faults,
                                            wire.observation);
    } else {
        wire.deviations = std::vector<double>(
            wire.deviations.begin() + static_cast<std::ptrdiff_t>(first),
            wire.deviations.begin() + static_cast<std::ptrdiff_t>(first + count));
        wire.job = SweepJob::deviation_grid(core::paper_biquad(),
                                            wire.deviations, wire.parameter);
    }

    wire.job.shard_size = index_or(v, "shard_size", 0);
    wire.progress_every = index_or(v, "progress_every", 0);
    wire.cancel_after = index_or(v, "cancel_after", 0);
    wire.emit_signatures = v.bool_or("emit_signatures", true);
    wire.verify_serial = v.bool_or("verify_serial", false);
    // Tolerant-reader default: absent means exact mode. Always pinned (not
    // inherit-from-service) so one client's fast_math job can never change
    // the mode a later exact job evaluates under.
    wire.job.fast_math = v.bool_or("fast_math", false);
    if (v.has("priority")) {
        // Signed, unlike index_field: low-priority background jobs are
        // spelled with negative numbers.
        const double p = v.at("priority").as_number();
        // xylint: exact-compare(x==floor(x) is the exact is-integer test)
        if (p != std::floor(p) || std::abs(p) > 1e9)
            throw InvalidInput(
                "wire: priority must be an integer in [-1e9, 1e9]");
        wire.priority = static_cast<int>(p);
    }
    wire.client = v.string_or("client", "");
    return wire;
}

std::vector<double> wire_serial_reference(const WireJob& job,
                                          const core::SignaturePipeline& pipe) {
    std::vector<double> out;
    core::NdfScratch scratch;
    if (job.is_spice) {
        const auto universe = core::BatchNdfEvaluator::build_fault_universe(
            *job.nominal, job.faults, job.observation);
        out.reserve(universe.size());
        for (const auto& cut : universe) {
            try {
                out.push_back(pipe.ndf_of(*cut, scratch));
            } catch (const NumericError&) {
                out.push_back(std::numeric_limits<double>::quiet_NaN());
            }
        }
        return out;
    }
    const filter::Biquad nominal = core::paper_biquad();
    out.reserve(job.deviations.size());
    for (const double dev : job.deviations) {
        const double frac = dev / 100.0;
        const filter::BehaviouralCut cut(job.parameter == core::SweptParameter::f0
                                             ? nominal.with_f0_shift(frac)
                                             : nominal.with_q_shift(frac));
        try {
            out.push_back(pipe.ndf_of(cut, scratch));
        } catch (const NumericError&) {
            out.push_back(std::numeric_limits<double>::quiet_NaN());
        }
    }
    return out;
}

// ------------------------------------------------------- schema validation

namespace {

enum class FieldKind { number, string, boolean, object, number_or_null };

struct FieldSpec {
    const char* key;
    FieldKind kind;
    bool required;
};

void check_fields(const JsonValue& v, const std::string& what,
                  std::initializer_list<FieldSpec> specs) {
    for (const FieldSpec& spec : specs) {
        if (!v.has(spec.key)) {
            if (spec.required)
                throw InvalidInput("wire: " + what + " is missing required field '" +
                                   spec.key + "'");
            continue;
        }
        const JsonValue& field = v.at(spec.key);
        const bool ok = [&] {
            switch (spec.kind) {
            case FieldKind::number: return field.is_number();
            case FieldKind::string: return field.is_string();
            case FieldKind::boolean: return field.is_bool();
            case FieldKind::object: return field.is_object();
            case FieldKind::number_or_null:
                return field.is_number() || field.is_null();
            }
            return false;
        }();
        if (!ok)
            throw InvalidInput("wire: " + what + " field '" + spec.key +
                               "' has the wrong JSON type");
    }
}

void check_event(const JsonValue& v) {
    const std::string event = v.at("event").as_string();
    const FieldSpec id_opt{"id", FieldKind::string, false};
    if (event == "ready") {
        check_fields(v, "ready event",
                     {{"version", FieldKind::number, true},
                      {"workers", FieldKind::number, true},
                      {"shard_size", FieldKind::number, true},
                      {"samples_per_period", FieldKind::number, true}});
    } else if (event == "job_start") {
        check_fields(v, "job_start event",
                     {id_opt,
                      {"version", FieldKind::number, true},
                      {"members", FieldKind::number, true},
                      {"first_member", FieldKind::number, true},
                      {"universe_members", FieldKind::number, true},
                      {"workers", FieldKind::number, true}});
    } else if (event == "result") {
        check_fields(v, "result event",
                     {id_opt,
                      {"member", FieldKind::number, true},
                      {"ndf", FieldKind::number_or_null, true},
                      {"ndf_hex", FieldKind::string, true},
                      {"label", FieldKind::string, true},
                      {"signature", FieldKind::string, false},
                      {"zone_visits", FieldKind::number, false}});
    } else if (event == "progress") {
        check_fields(v, "progress event",
                     {id_opt,
                      {"done", FieldKind::number, true},
                      {"total", FieldKind::number, true}});
    } else if (event == "queued") {
        check_fields(v, "queued event",
                     {id_opt,
                      {"position", FieldKind::number, true},
                      {"priority", FieldKind::number, true},
                      {"client", FieldKind::string, false},
                      {"cached", FieldKind::boolean, true}});
    } else if (event == "job_done") {
        check_fields(v, "job_done event",
                     {id_opt,
                      {"members_total", FieldKind::number, true},
                      {"members_done", FieldKind::number, true},
                      {"shards_total", FieldKind::number, true},
                      {"shards_done", FieldKind::number, true},
                      {"cancelled", FieldKind::boolean, true},
                      {"seconds", FieldKind::number, true},
                      {"netlist_clones", FieldKind::number, true},
                      {"shard_seconds_min", FieldKind::number, true},
                      {"shard_seconds_max", FieldKind::number, true},
                      {"shard_seconds_mean", FieldKind::number, true},
                      // Version-2 additions (optional: v1 job_done lines
                      // stay valid under the tolerant-reader rule).
                      {"cached", FieldKind::boolean, false},
                      {"queue_seconds", FieldKind::number, false}});
    } else if (event == "verify") {
        if (v.has("skipped_cancelled")) {
            check_fields(v, "verify event",
                         {id_opt, {"skipped_cancelled", FieldKind::boolean, true}});
        } else {
            check_fields(v, "verify event",
                         {id_opt,
                          {"bit_identical", FieldKind::boolean, true},
                          {"members", FieldKind::number, true}});
        }
    } else if (event == "stats") {
        check_fields(v, "stats event",
                     {{"jobs", FieldKind::number, true},
                      {"members", FieldKind::number, true},
                      {"shards", FieldKind::number, true},
                      {"netlist_clones", FieldKind::number, true},
                      {"workers", FieldKind::number, true},
                      {"golden_cache", FieldKind::object, true},
                      // Version-2 additions.
                      {"scheduler", FieldKind::object, false},
                      {"job_cache", FieldKind::object, false}});
    } else if (event == "error") {
        check_fields(v, "error event",
                     {id_opt, {"message", FieldKind::string, true}});
    } else if (event == "heartbeat") {
        // Version-3 liveness beacon.
        check_fields(v, "heartbeat event", {{"seq", FieldKind::number, true}});
    } else if (event == "pong") {
        // Version-3 reply to {"cmd":"ping"}.
        check_fields(v, "pong event", {id_opt});
    } else if (event == "listening") {
        // Version-3 control line announcing a TCP accept loop's bound port
        // (emitted on sweep_server's stdout in --listen mode, not on the
        // per-connection session streams).
        check_fields(v, "listening event",
                     {{"port", FieldKind::number, true},
                      {"address", FieldKind::string, false}});
    } else {
        throw InvalidInput("wire: unknown event '" + event + "'");
    }
}

void check_command(const JsonValue& v) {
    const std::string cmd = v.at("cmd").as_string();
    if (cmd != "stats" && cmd != "quit" && cmd != "cancel" && cmd != "ping")
        throw InvalidInput("wire: unknown cmd '" + cmd + "'");
    check_fields(v, "'" + cmd + "' command", {{"id", FieldKind::string, false}});
}

} // namespace

void check_protocol_line(const std::string& line) {
    // Strict parse: a job line with duplicate keys carries conflicting
    // fields — reject it loudly instead of silently picking one (the
    // tolerant parser's last-wins is fine for EVENTS we merely relay, but
    // --check validates lines someone intends to submit).
    const JsonValue v = JsonValue::parse_strict(line);
    if (!v.is_object())
        throw InvalidInput("wire: a protocol line must be a JSON object");
    if (v.has("event")) {
        check_event(v);
    } else if (v.has("cmd")) {
        check_command(v);
    } else if (v.has("job")) {
        (void)parse_wire_job(v); // full decode, universe enumeration included
    } else {
        throw InvalidInput(
            "wire: line is neither an event, a command, nor a job");
    }
}

// ------------------------------------------------------------ ServerSession

/// One per-job emitter thread plus its completion flag (reaped lazily on
/// later submits; drain() joins whatever is left).
struct ServerSession::Emitter {
    std::thread thread;
    std::atomic<bool> finished{false};
};

ServerSession::ServerSession(SweepService& service, LineSink sink,
                             SessionOptions options)
    : service_(service), sink_(std::move(sink)) {
    XYSIG_EXPECTS(sink_ != nullptr);
    JobScheduler::Options sched;
    sched.max_pending = options.max_pending;
    sched.cache_capacity = options.cache_capacity;
    sched.prefetch_goldens = options.prefetch_goldens;
    scheduler_ = std::make_unique<JobScheduler>(service_, sched);
    if (options.heartbeat_seconds > 0.0) {
        // Liveness beacon (protocol v3): one line every interval, whether
        // or not a job is draining — between result lines it is the only
        // proof a slow worker is alive, and emit() serialises it against
        // the emitter threads so it never splices into another line.
        heartbeat_thread_ = std::thread([this,
                                         interval = options.heartbeat_seconds] {
            std::uint64_t seq = 0;
            MutexLock lock(heartbeat_mutex_);
            while (!heartbeat_cv_.wait_for(
                lock, std::chrono::duration<double>(interval),
                [this]() REQUIRES(heartbeat_mutex_) { return heartbeat_stop_; })) {
                // Emit outside the lock: emit() takes sink_mutex_ and a
                // sink may block (full pipe); holding heartbeat_mutex_
                // across it would stall the destructor's stop handshake.
                lock.Unlock();
                JsonValue::Object o;
                o.emplace("event", "heartbeat");
                o.emplace("seq", static_cast<std::size_t>(++seq));
                emit(o);
                lock.Lock();
            }
        });
    }
}

ServerSession::~ServerSession() {
    // Stop the heartbeat first so no beacon fires into a sink that is
    // being torn down behind it.
    if (heartbeat_thread_.joinable()) {
        {
            MutexLock lock(heartbeat_mutex_);
            heartbeat_stop_ = true;
        }
        heartbeat_cv_.notify_all();
        heartbeat_thread_.join();
    }
    // Tear down the scheduler next: it cancels queued + running jobs and
    // closes every record, so the emitters below wind down promptly
    // instead of draining the whole backlog.
    scheduler_.reset();
    drain();
}

void ServerSession::emit(const JsonValue::Object& obj) {
    const std::string line = JsonValue(obj).dump();
    MutexLock lock(sink_mutex_);
    sink_(line);
}

void ServerSession::emit_error(const std::string& id,
                               const std::string& message) {
    JsonValue::Object o;
    o.emplace("event", "error");
    if (!id.empty())
        o.emplace("id", id);
    o.emplace("message", message);
    emit(o);
}

void ServerSession::emit_ready(std::size_t samples_per_period) {
    JsonValue::Object o;
    o.emplace("event", "ready");
    o.emplace("version", kProtocolVersion);
    o.emplace("workers", static_cast<std::size_t>(service_.worker_count()));
    o.emplace("shard_size", service_.default_shard_size());
    o.emplace("samples_per_period", samples_per_period);
    emit(o);
}

void ServerSession::cancel(const std::string& id) {
    {
        // A cancel landing while handle_line is still DECODING its job
        // (SPICE universe enumeration takes milliseconds) must stick: mark
        // it here, submit_job applies it right after the submit.
        MutexLock lock(precancel_mutex_);
        if (decoding_active_ && (id.empty() || id == decoding_id_))
            decoding_cancelled_ = true;
    }
    scheduler_->cancel(id);
}

void ServerSession::drain() {
    while (true) {
        std::vector<std::unique_ptr<Emitter>> finished;
        {
            MutexLock lock(emitters_mutex_);
            finished.swap(emitters_);
        }
        if (finished.empty())
            return;
        for (const auto& emitter : finished)
            if (emitter->thread.joinable())
                emitter->thread.join();
    }
}

void ServerSession::reap_finished_emitters_locked() {
    auto alive = emitters_.begin();
    for (auto it = emitters_.begin(); it != emitters_.end(); ++it) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
            (*it)->thread.join();
        } else {
            *alive++ = std::move(*it);
        }
    }
    emitters_.erase(alive, emitters_.end());
}

bool ServerSession::handle_line(const std::string& line) {
    std::string id;
    try {
        // Strict parse: requests with duplicate keys carry conflicting
        // fields and are rejected with an error event.
        const JsonValue v = JsonValue::parse_strict(line);
        id = v.string_or("id", "");
        if (v.has("cmd")) {
            const std::string cmd = v.at("cmd").as_string();
            if (cmd == "quit") {
                drain(); // no event line is lost to an exiting peer
                return false;
            }
            if (cmd == "stats") {
                emit_stats();
                return true;
            }
            if (cmd == "cancel") {
                cancel(id);
                return true;
            }
            if (cmd == "ping") {
                // v3 liveness probe: answered immediately on the reader
                // thread (handle_line never blocks on jobs since v2), so a
                // pong round-trip bounds the peer's request-loop latency.
                JsonValue::Object o;
                o.emplace("event", "pong");
                if (!id.empty())
                    o.emplace("id", id);
                emit(o);
                return true;
            }
            throw InvalidInput("wire: unknown cmd '" + cmd + "'");
        }
        submit_job(v);
    } catch (const std::exception& e) {
        emit_error(id, e.what());
    }
    return true;
}

void ServerSession::submit_job(const JsonValue& v) {
    {
        MutexLock lock(precancel_mutex_);
        decoding_active_ = true;
        decoding_id_ = v.is_object() ? v.string_or("id", "") : std::string();
        decoding_cancelled_ = false;
    }
    struct ClearDecoding {
        ServerSession* self;
        ~ClearDecoding() {
            MutexLock lock(self->precancel_mutex_);
            self->decoding_active_ = false;
            self->decoding_id_.clear();
        }
    } clear_decoding{this};

    WireJob wire = parse_wire_job(v);
    const std::string id = wire.id;
    const int priority = wire.priority;
    const std::string client = wire.client;
    JobScheduler::SubmitOptions sopts;
    sopts.priority = priority;
    sopts.client = client;
    const std::size_t position = scheduler_->stats().queue_depth;
    JobHandle handle = scheduler_->submit(std::move(wire), std::move(sopts));
    {
        MutexLock lock(precancel_mutex_);
        if (decoding_cancelled_)
            handle.cancel();
    }

    // Acknowledge BEFORE spawning the emitter, so `queued` always precedes
    // the job's own event stream.
    const bool cached = handle.from_cache();
    {
        JsonValue::Object o;
        o.emplace("event", "queued");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("position", cached ? std::size_t{0} : position);
        o.emplace("priority", priority);
        if (!client.empty())
            o.emplace("client", client);
        o.emplace("cached", cached);
        emit(o);
    }

    auto emitter = std::make_unique<Emitter>();
    Emitter* raw = emitter.get();
    emitter->thread =
        std::thread([this, raw, h = std::move(handle)]() mutable {
            emit_job_events(std::move(h));
            raw->finished.store(true, std::memory_order_release);
        });
    MutexLock lock(emitters_mutex_);
    reap_finished_emitters_locked();
    emitters_.push_back(std::move(emitter));
}

void ServerSession::emit_job_events(JobHandle handle) {
    handle.wait_until_started();
    const WireJob& wire = handle.wire();
    const std::string& id = wire.id;

    if (handle.cancelled_before_start()) {
        // Dequeued by a cancel before the service ever saw it: close the
        // job on the wire (cancelled, zero members) without a job_start.
        const JobOutcome out = handle.outcome();
        JsonValue::Object o;
        o.emplace("event", "job_done");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("members_total", wire.job.size());
        o.emplace("members_done", std::size_t{0});
        o.emplace("shards_total", std::size_t{0});
        o.emplace("shards_done", std::size_t{0});
        o.emplace("cancelled", true);
        o.emplace("seconds", 0.0);
        o.emplace("netlist_clones", std::size_t{0});
        o.emplace("shard_seconds_min", 0.0);
        o.emplace("shard_seconds_max", 0.0);
        o.emplace("shard_seconds_mean", 0.0);
        o.emplace("cached", false);
        o.emplace("queue_seconds", out.queue_seconds);
        emit(o);
        return;
    }

    {
        JsonValue::Object o;
        o.emplace("event", "job_start");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("version", kProtocolVersion);
        o.emplace("members", wire.job.size());
        o.emplace("first_member", wire.member_offset);
        o.emplace("universe_members", wire.universe_members);
        o.emplace("workers", static_cast<std::size_t>(service_.worker_count()));
        emit(o);
    }

    std::size_t delivered = 0;
    SweepResult r;
    while (handle.next(r)) {
        ++delivered;
        JsonValue::Object o;
        o.emplace("event", "result");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("member", wire.member_offset + r.member_id);
        o.emplace("ndf", r.ndf);
        o.emplace("ndf_hex", format_double_exact(r.ndf));
        o.emplace("label", r.label);
        if (wire.emit_signatures && r.signature.has_value()) {
            o.emplace("signature", signature_string(*r.signature));
            o.emplace("zone_visits", r.signature->zone_visits());
        }
        emit(o);
        if (wire.progress_every != 0 && delivered % wire.progress_every == 0) {
            JsonValue::Object p;
            p.emplace("event", "progress");
            if (!id.empty())
                p.emplace("id", id);
            p.emplace("done", delivered);
            p.emplace("total", wire.job.size());
            emit(p);
        }
    }

    const JobOutcome out = handle.outcome();
    if (out.state == JobState::failed) {
        emit_error(id, out.error);
        return;
    }

    {
        const JobSummary& summary = out.summary;
        double shard_min = 0.0, shard_max = 0.0, shard_sum = 0.0;
        for (const auto& st : summary.shard_timings) {
            // xylint: exact-compare(0.0 is the no-shard-seen-yet sentinel, assigned verbatim above)
            shard_min = (shard_min == 0.0 || st.seconds < shard_min)
                            ? st.seconds
                            : shard_min;
            shard_max = std::max(shard_max, st.seconds);
            shard_sum += st.seconds;
        }
        JsonValue::Object o;
        o.emplace("event", "job_done");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("members_total", summary.members_total);
        o.emplace("members_done", summary.members_done);
        o.emplace("shards_total", summary.shards_total);
        o.emplace("shards_done", summary.shards_done);
        o.emplace("cancelled", out.state == JobState::cancelled);
        o.emplace("seconds", summary.seconds);
        o.emplace("netlist_clones", summary.netlist_clones);
        o.emplace("shard_seconds_min", shard_min);
        o.emplace("shard_seconds_max", shard_max);
        o.emplace("shard_seconds_mean",
                  summary.shard_timings.empty()
                      ? 0.0
                      : shard_sum / static_cast<double>(
                                        summary.shard_timings.size()));
        o.emplace("cached", out.from_cache);
        o.emplace("queue_seconds", out.queue_seconds);
        emit(o);
    }

    if (wire.verify_serial && out.verify_skipped_cancelled) {
        // A cancelled job has a legitimately incomplete stream; that is not
        // a verification failure, there is just nothing to compare against.
        JsonValue::Object o;
        o.emplace("event", "verify");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("skipped_cancelled", true);
        emit(o);
    } else if (wire.verify_serial && out.verify_ran) {
        if (!out.verified)
            all_verified_.store(false, std::memory_order_release);
        JsonValue::Object o;
        o.emplace("event", "verify");
        if (!id.empty())
            o.emplace("id", id);
        o.emplace("bit_identical", out.verified);
        o.emplace("members", out.verify_members);
        emit(o);
    }
}

void ServerSession::emit_stats() {
    const auto stats = service_.stats();
    const auto& cache = core::GoldenSignatureCache::instance();
    JsonValue::Object cache_obj;
    cache_obj.emplace("hits", cache.hits());
    cache_obj.emplace("misses", cache.misses());
    cache_obj.emplace("size", cache.size());
    cache_obj.emplace("evictions", cache.evictions());
    cache_obj.emplace("capacity", cache.capacity());
    const JobScheduler::Stats sched = scheduler_->stats();
    JsonValue::Object sched_obj;
    sched_obj.emplace("submitted", sched.submitted);
    sched_obj.emplace("completed", sched.completed);
    sched_obj.emplace("failed", sched.failed);
    sched_obj.emplace("cancelled", sched.cancelled);
    sched_obj.emplace("cache_hits", sched.cache_hits);
    sched_obj.emplace("goldens_prefetched", sched.goldens_prefetched);
    sched_obj.emplace("queue_depth", sched.queue_depth);
    const JobResultCache& job_cache = scheduler_->cache();
    JsonValue::Object jc_obj;
    jc_obj.emplace("hits", job_cache.hits());
    jc_obj.emplace("misses", job_cache.misses());
    jc_obj.emplace("size", job_cache.size());
    jc_obj.emplace("evictions", job_cache.evictions());
    jc_obj.emplace("capacity", job_cache.capacity());
    JsonValue::Object o;
    o.emplace("event", "stats");
    o.emplace("jobs", stats.jobs);
    o.emplace("members", stats.members);
    o.emplace("shards", stats.shards);
    o.emplace("netlist_clones", stats.netlist_clones);
    o.emplace("workers", static_cast<std::size_t>(service_.worker_count()));
    o.emplace("golden_cache", std::move(cache_obj));
    o.emplace("scheduler", std::move(sched_obj));
    o.emplace("job_cache", std::move(jc_obj));
    emit(o);
}

} // namespace xysig::server
