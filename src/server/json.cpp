#include "server/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace xysig::server {

namespace {

/// Recursive-descent parser over a flat character range.
class Parser {
public:
    Parser(const std::string& text, const JsonParseOptions& options)
        : text_(text), options_(options) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw InvalidInput("json: " + why + " at offset " +
                           std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t i = 0;
        while (lit[i] != '\0') {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i])
                return false;
            ++i;
        }
        pos_ += i;
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
        case '{':
        case '[': {
            // Depth cap: the parser recurses once per nested container, so
            // untrusted input must not control the stack depth.
            if (depth_ >= options_.max_depth)
                fail("nesting depth exceeds " +
                     std::to_string(options_.max_depth));
            ++depth_;
            JsonValue v = c == '{' ? parse_object() : parse_array();
            --depth_;
            return v;
        }
        case '"':
            return JsonValue(parse_string());
        case 't':
            if (consume_literal("true"))
                return JsonValue(true);
            fail("invalid literal");
        case 'f':
            if (consume_literal("false"))
                return JsonValue(false);
            fail("invalid literal");
        case 'n':
            if (consume_literal("null"))
                return JsonValue();
            fail("invalid literal");
        default:
            return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue::Object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(obj));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            if (options_.reject_duplicate_keys && obj.count(key) != 0)
                fail("duplicate object key \"" + key + "\"");
            obj.insert_or_assign(std::move(key), parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return JsonValue(std::move(obj));
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue::Array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return JsonValue(std::move(arr));
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size())
                        fail("truncated \\u escape");
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are not
                // needed by the job schema; reject them explicitly).
                if (code >= 0xD800 && code <= 0xDFFF)
                    fail("surrogate \\u escapes are not supported");
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("invalid escape");
            }
        }
    }

    JsonValue parse_number() {
        // Pre-validate against the RFC 8259 grammar
        //     -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        // before handing anything to std::from_chars: its default
        // (strtod-style) format also accepts "inf"/"nan" (reachable here
        // through the '-' dispatch), leading-zero integers and bare-dot
        // forms, none of which are JSON.
        const std::size_t start = pos_;
        std::size_t p = pos_;
        const auto digit_at = [&](std::size_t i) {
            return i < text_.size() && text_[i] >= '0' && text_[i] <= '9';
        };
        if (p < text_.size() && text_[p] == '-')
            ++p;
        if (!digit_at(p))
            fail("invalid number");
        if (text_[p] == '0')
            ++p; // a leading zero must stand alone ("01" is not a number)
        else
            while (digit_at(p))
                ++p;
        if (p < text_.size() && text_[p] == '.') {
            ++p;
            if (!digit_at(p))
                fail("invalid number"); // "1." has no fraction digits
            while (digit_at(p))
                ++p;
        }
        if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
            ++p;
            if (p < text_.size() && (text_[p] == '+' || text_[p] == '-'))
                ++p;
            if (!digit_at(p))
                fail("invalid number"); // "1e" / "1e+" have no exponent
            while (digit_at(p))
                ++p;
        }
        const char* begin = text_.data() + start;
        const char* end = text_.data() + p;
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc() || ptr != end)
            fail("invalid number");
        pos_ = p;
        return JsonValue(value);
    }

    const std::string& text_;
    JsonParseOptions options_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out.push_back(hex[(c >> 4) & 0xF]);
                out.push_back(hex[c & 0xF]);
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void dump_number(double v, std::string& out) {
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; the wire format uses null (the sweep server
        // additionally carries the exact bits in an "_hex" sibling field).
        out += "null";
        return;
    }
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, static_cast<std::size_t>(ptr - buf));
}

} // namespace

JsonValue JsonValue::parse(const std::string& text) {
    return parse(text, JsonParseOptions{});
}

JsonValue JsonValue::parse(const std::string& text,
                           const JsonParseOptions& options) {
    Parser p(text, options);
    return p.parse_document();
}

JsonValue JsonValue::parse_strict(const std::string& text) {
    JsonParseOptions options;
    options.reject_duplicate_keys = true;
    return parse(text, options);
}

std::string JsonValue::dump() const {
    std::string out;
    switch (kind_) {
    case Kind::null:
        out = "null";
        break;
    case Kind::boolean:
        out = bool_ ? "true" : "false";
        break;
    case Kind::number:
        dump_number(number_, out);
        break;
    case Kind::string:
        dump_string(string_, out);
        break;
    case Kind::array: {
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            out += array_[i].dump();
        }
        out.push_back(']');
        break;
    }
    case Kind::object: {
        out.push_back('{');
        bool first = true;
        for (const auto& [key, value] : object_) {
            if (!first)
                out.push_back(',');
            first = false;
            dump_string(key, out);
            out.push_back(':');
            out += value.dump();
        }
        out.push_back('}');
        break;
    }
    }
    return out;
}

bool JsonValue::as_bool() const {
    if (!is_bool())
        throw InvalidInput("json: value is not a boolean");
    return bool_;
}

double JsonValue::as_number() const {
    if (!is_number())
        throw InvalidInput("json: value is not a number");
    return number_;
}

const std::string& JsonValue::as_string() const {
    if (!is_string())
        throw InvalidInput("json: value is not a string");
    return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
    if (!is_array())
        throw InvalidInput("json: value is not an array");
    return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
    if (!is_object())
        throw InvalidInput("json: value is not an object");
    return object_;
}

bool JsonValue::has(const std::string& key) const {
    return as_object().count(key) != 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end())
        throw InvalidInput("json: missing key '" + key + "'");
    return it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second.as_number();
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second.as_string();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second.as_bool();
}

} // namespace xysig::server
