#include "server/fanout.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/contracts.h"
#include "common/strings.h"
#include "server/wire.h"

namespace xysig::server {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(const Clock::time_point& t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Read-poll slice: short enough that cancellation fan-out and abort are
/// prompt, long enough not to spin.
constexpr double kPollSliceSeconds = 0.05;

/// Bounded integer field of a peer event (wire::index_field — peer stdout
/// is as untrusted as peer stdin).
[[nodiscard]] std::size_t size_field(const JsonValue& v, const char* key) {
    return index_field(v.at(key), key);
}

} // namespace

/// Everything the partition threads and the merging run() caller share.
struct FanoutDriver::Shared {
    JsonValue::Object base_job; ///< the job object, cloned per partition
    std::string base_id;
    SweepCancelToken* cancel = nullptr;
    std::atomic<bool> abort{false}; ///< failure or callback exception

    [[nodiscard]] bool stop_requested() const noexcept {
        return abort.load(std::memory_order_relaxed) ||
               (cancel != nullptr && cancel->cancelled());
    }

    std::mutex factory_mutex; ///< serialises TransportFactory invocations

    std::mutex mutex; ///< guards everything below
    std::condition_variable cv;
    std::map<std::size_t, FanoutRecord> ready; ///< merged, not yet delivered
    std::size_t active = 0; ///< partition threads still running
    bool failed = false;
    std::string failure;
    std::size_t samples_per_period = 0; ///< from the first ready banner
    std::vector<PartitionOutcome> outcomes;

    void fail(const std::string& why) {
        abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex);
        if (!failed) {
            failed = true;
            failure = why;
        }
        cv.notify_all();
    }
};

FanoutDriver::FanoutDriver(TransportFactory factory, FanoutOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
    XYSIG_EXPECTS(factory_ != nullptr);
    XYSIG_EXPECTS(options_.partitions >= 1 || !options_.partition_starts.empty());
    XYSIG_EXPECTS(options_.max_attempts >= 1);
}

void FanoutDriver::partition_main(Shared& shared, std::size_t partition) {
    PartitionOutcome& out = shared.outcomes[partition];
    const std::size_t end = out.first_member + out.member_count;
    std::size_t next_needed = out.first_member;
    const auto t0 = Clock::now();
    bool done = false;

    while (!done) {
        if (shared.stop_requested()) {
            out.cancelled = true;
            break;
        }
        if (out.attempts >= options_.max_attempts) {
            shared.fail("fanout: partition " + std::to_string(partition) +
                        " exhausted " + std::to_string(options_.max_attempts) +
                        " dispatch attempts");
            break;
        }
        ++out.attempts;
        std::unique_ptr<Transport> transport;
        {
            std::lock_guard<std::mutex> lock(shared.factory_mutex);
            transport = factory_();
        }

        // Handshake: wait for the ready banner (and pin the peers to one
        // samples_per_period — the verify gate depends on it).
        bool handshaken = false;
        {
            const auto h0 = Clock::now();
            std::string line;
            while (seconds_since(h0) < options_.handshake_timeout_seconds) {
                const auto status =
                    transport->read_line(line, kPollSliceSeconds);
                if (status == Transport::ReadStatus::closed)
                    break;
                if (status == Transport::ReadStatus::timeout) {
                    if (shared.stop_requested())
                        break;
                    continue;
                }
                try {
                    const JsonValue v = JsonValue::parse(line);
                    if (v.is_object() && v.string_or("event", "") == "ready") {
                        const std::size_t spp =
                            size_field(v, "samples_per_period");
                        bool mismatch = false;
                        {
                            std::lock_guard<std::mutex> lock(shared.mutex);
                            if (shared.samples_per_period == 0)
                                shared.samples_per_period = spp;
                            else
                                mismatch = shared.samples_per_period != spp;
                        }
                        if (mismatch) {
                            shared.fail(
                                "fanout: workers disagree on "
                                "samples_per_period — results would not be "
                                "comparable");
                            break;
                        }
                        handshaken = true;
                        break;
                    }
                } catch (const std::exception&) {
                    break; // garbage banner: treat the peer as dead
                }
            }
        }
        if (!handshaken) {
            transport->shutdown();
            continue; // costs one attempt
        }

        // Dispatch the (remaining) member range. Driver-owned concerns are
        // stripped: progress/cancel_after/verify_serial belong to direct
        // sweep_server consumers, not to partitions.
        {
            JsonValue::Object job = shared.base_job;
            JsonValue::Object members;
            members.emplace("first", next_needed);
            members.emplace("count", end - next_needed);
            job.insert_or_assign("members", JsonValue(std::move(members)));
            job.insert_or_assign("id", shared.base_id + "#p" +
                                           std::to_string(partition) + "a" +
                                           std::to_string(out.attempts));
            job.insert_or_assign("version", JsonValue(kProtocolVersion));
            job.insert_or_assign("progress_every", JsonValue(0));
            job.insert_or_assign("cancel_after", JsonValue(0));
            job.insert_or_assign("verify_serial", JsonValue(false));
            if (!transport->send_line(JsonValue(std::move(job)).dump())) {
                transport->shutdown();
                continue;
            }
        }

        // Event loop: stream results into the merge map until job_done,
        // peer death, or inactivity timeout.
        bool cancel_sent = false;
        bool peer_dead = false;
        auto last_activity = Clock::now();
        std::string line;
        while (!done && !peer_dead) {
            if (shared.stop_requested() && !cancel_sent) {
                // Cooperative cancellation fan-out: ask, don't kill — the
                // peer finishes members in flight and reports a cancelled
                // job_done, so nothing evaluated is lost.
                (void)transport->send_line(R"({"cmd":"cancel"})");
                cancel_sent = true;
            }
            const auto status = transport->read_line(line, kPollSliceSeconds);
            if (status == Transport::ReadStatus::closed) {
                peer_dead = true;
                break;
            }
            if (status == Transport::ReadStatus::timeout) {
                if (options_.read_timeout_seconds > 0.0 &&
                    seconds_since(last_activity) >
                        options_.read_timeout_seconds)
                    peer_dead = true;
                continue;
            }
            last_activity = Clock::now();

            // Any malformed event — unparseable line, wrong field types,
            // out-of-range counts or members — marks the peer dead (and
            // re-dispatches the remainder) rather than unwinding the
            // partition thread or corrupting the merge.
            try {
                const JsonValue event = JsonValue::parse(line);
                if (!event.is_object())
                    throw InvalidInput("fanout: event line is not an object");
                const std::string kind = event.string_or("event", "");
                if (kind == "result") {
                    FanoutRecord record;
                    record.member = size_field(event, "member");
                    if (record.member < next_needed || record.member >= end)
                        throw InvalidInput(
                            "fanout: result member outside the dispatched "
                            "range");
                    record.ndf_hex = event.at("ndf_hex").as_string();
                    record.ndf = std::strtod(record.ndf_hex.c_str(), nullptr);
                    record.label = event.string_or("label", "");
                    if (event.has("signature"))
                        record.signature = event.at("signature").as_string();
                    next_needed = record.member + 1;
                    ++out.members_done;
                    {
                        std::lock_guard<std::mutex> lock(shared.mutex);
                        shared.ready.emplace(record.member, std::move(record));
                    }
                    shared.cv.notify_all();
                } else if (kind == "job_done") {
                    out.netlist_clones += size_field(event, "netlist_clones");
                    const bool job_cancelled = event.at("cancelled").as_bool();
                    if (job_cancelled) {
                        out.cancelled = true;
                        done = true;
                    } else if (next_needed == end) {
                        done = true;
                    } else {
                        // A healthy, uncancelled peer must cover its whole
                        // range — a short stream is a protocol violation,
                        // and deterministic, so re-dispatching would loop.
                        shared.fail("fanout: partition " +
                                    std::to_string(partition) +
                                    " completed without covering its member "
                                    "range");
                        done = true;
                    }
                    (void)transport->send_line(R"({"cmd":"quit"})");
                } else if (kind == "error") {
                    // Job rejection is deterministic (schema/version/
                    // universe errors): retrying cannot help.
                    shared.fail("fanout: partition " +
                                std::to_string(partition) + " rejected by " +
                                transport->describe() + ": " +
                                event.string_or("message", "unknown error"));
                    done = true;
                }
                // ready / progress / stats / verify: ignored.
            } catch (const std::exception&) {
                peer_dead = true; // a peer emitting garbage is a dead peer
            }
        }
        transport->shutdown();

        if (!done && peer_dead) {
            if (shared.stop_requested()) {
                // Don't re-dispatch work the caller no longer wants.
                out.cancelled = true;
                done = true;
            }
            // else: loop re-dispatches [next_needed, end) — the received
            // prefix is contiguous, so nothing is recomputed or duplicated.
        }
    }

    out.seconds = seconds_since(t0);
    {
        std::lock_guard<std::mutex> lock(shared.mutex);
        --shared.active;
    }
    shared.cv.notify_all();
}

FanoutSummary FanoutDriver::run(const std::string& job_line,
                                const ResultCallback& on_result,
                                SweepCancelToken* cancel) {
    return run(JsonValue::parse(job_line), on_result, cancel);
}

FanoutSummary FanoutDriver::run(const JsonValue& job,
                                const ResultCallback& on_result,
                                SweepCancelToken* cancel) {
    XYSIG_EXPECTS(on_result != nullptr);
    if (!job.is_object() || !job.has("job"))
        throw InvalidInput("fanout: expected a job object");
    if (job.has("members"))
        throw InvalidInput(
            "fanout: the driver owns member-range partitioning; a job with "
            "an explicit \"members\" range cannot be fanned out");

    // Decode the whole universe locally: validates the job up front and
    // yields the member count to partition over (plus the SweepJob the
    // verify gate re-runs).
    WireJob whole = parse_wire_job(job);
    const std::size_t total = whole.universe_members;

    // Resolve partition boundaries into [start, next_start) ranges.
    std::vector<std::size_t> starts = options_.partition_starts;
    if (starts.empty()) {
        const std::size_t p = std::max<unsigned>(options_.partitions, 1);
        const std::size_t base = total / p;
        const std::size_t remainder = total % p;
        std::size_t at = 0;
        for (std::size_t i = 0; i < p; ++i) {
            starts.push_back(at);
            at += base + (i < remainder ? 1 : 0);
        }
    } else {
        if (starts.front() != 0)
            throw InvalidInput("fanout: partition_starts must begin at 0");
        for (std::size_t i = 0; i < starts.size(); ++i) {
            if (starts[i] > total)
                throw InvalidInput(
                    "fanout: partition start past the universe end");
            if (i > 0 && starts[i] < starts[i - 1])
                throw InvalidInput("fanout: partition_starts must ascend");
        }
    }

    Shared shared;
    shared.base_job = job.as_object();
    shared.base_id = whole.id.empty() ? "fanout" : whole.id;
    shared.cancel = cancel;
    shared.outcomes.resize(starts.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
        PartitionOutcome& out = shared.outcomes[i];
        out.partition = i;
        out.first_member = starts[i];
        out.member_count =
            (i + 1 < starts.size() ? starts[i + 1] : total) - starts[i];
    }

    FanoutSummary summary;
    summary.members_total = total;

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(shared.mutex);
        for (const PartitionOutcome& out : shared.outcomes)
            if (out.member_count > 0)
                ++shared.active;
    }
    for (std::size_t i = 0; i < shared.outcomes.size(); ++i)
        if (shared.outcomes[i].member_count > 0)
            threads.emplace_back(
                [this, &shared, i] { partition_main(shared, i); });

    // Merge/delivery on this thread, ascending global member order:
    // contiguous from 0 while everything is healthy, then (after
    // cancellation) whatever stragglers completed, still ascending with
    // gaps — the same contract as SweepService::run.
    std::vector<FanoutRecord> merged; // kept for the verify gate
    std::size_t delivered = 0;
    try {
        std::size_t next_expected = 0;
        std::vector<FanoutRecord> batch;
        bool finished = false;
        while (!finished) {
            {
                std::unique_lock<std::mutex> lock(shared.mutex);
                shared.cv.wait(lock, [&] {
                    return shared.active == 0 ||
                           (!shared.failed && !shared.ready.empty() &&
                            shared.ready.begin()->first == next_expected);
                });
                batch.clear();
                if (!shared.failed) {
                    while (!shared.ready.empty() &&
                           shared.ready.begin()->first == next_expected) {
                        batch.push_back(std::move(shared.ready.begin()->second));
                        shared.ready.erase(shared.ready.begin());
                        ++next_expected;
                    }
                    if (shared.active == 0) {
                        for (auto& entry : shared.ready)
                            batch.push_back(std::move(entry.second));
                        shared.ready.clear();
                    }
                }
                finished = shared.active == 0;
            }
            for (FanoutRecord& record : batch) {
                on_result(record);
                ++delivered;
                if (options_.verify_single_process)
                    merged.push_back(std::move(record));
            }
        }
    } catch (...) {
        shared.abort.store(true, std::memory_order_relaxed);
        {
            std::unique_lock<std::mutex> lock(shared.mutex);
            shared.cv.wait(lock, [&] { return shared.active == 0; });
        }
        for (std::thread& t : threads)
            t.join();
        throw;
    }
    for (std::thread& t : threads)
        t.join();

    {
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (shared.failed)
            throw Error(shared.failure);
        summary.samples_per_period = shared.samples_per_period;
    }

    summary.seconds = seconds_since(t0);
    summary.members_done = delivered;
    summary.cancelled = cancel != nullptr && cancel->cancelled();
    summary.partitions = std::move(shared.outcomes);
    double sum = 0.0;
    std::size_t busy = 0;
    for (const PartitionOutcome& out : summary.partitions) {
        summary.netlist_clones += out.netlist_clones;
        summary.redispatches += out.attempts > 0 ? out.attempts - 1 : 0;
        if (out.member_count == 0)
            continue;
        ++busy;
        sum += out.seconds;
        summary.partition_seconds_min =
            (busy == 1) ? out.seconds
                        : std::min(summary.partition_seconds_min, out.seconds);
        summary.partition_seconds_max =
            std::max(summary.partition_seconds_max, out.seconds);
    }
    summary.partition_seconds_mean =
        busy == 0 ? 0.0 : sum / static_cast<double>(busy);

    // verify_single_process: the merged multi-process stream must be
    // bit-identical — exact hexfloat NDFs, exact signature strings — to one
    // in-process SweepService::run over the same universe.
    if (options_.verify_single_process && !summary.cancelled) {
        summary.verify_ran = true;
        SweepServiceOptions sopts;
        sopts.workers = options_.verify_workers;
        SweepService reference(
            make_paper_pipeline(summary.samples_per_period != 0
                                    ? summary.samples_per_period
                                    : 512),
            sopts);
        bool identical = merged.size() == total;
        std::size_t i = 0;
        (void)reference.run(whole.job, [&](const SweepResult& r) {
            if (i < merged.size()) {
                const FanoutRecord& record = merged[i];
                identical =
                    identical && record.member == r.member_id &&
                    record.ndf_hex == format_double_exact(r.ndf) &&
                    (!whole.emit_signatures ||
                     (record.signature.has_value() ==
                          r.signature.has_value() &&
                      (!record.signature.has_value() ||
                       *record.signature == signature_string(*r.signature))));
            } else {
                identical = false;
            }
            ++i;
        });
        summary.verify_identical = identical && i == merged.size();
    }
    return summary;
}

} // namespace xysig::server
