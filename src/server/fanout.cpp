#include "server/fanout.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <thread>

#include "common/annotated_mutex.h"
#include "common/contracts.h"
#include "common/strings.h"
#include "server/wire.h"

namespace xysig::server {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(const Clock::time_point& t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Read-poll slice: short enough that cancellation fan-out and abort are
/// prompt, long enough not to spin.
constexpr double kPollSliceSeconds = 0.05;

/// Bounded integer field of a peer event (wire::index_field — peer stdout
/// is as untrusted as peer stdin).
[[nodiscard]] std::size_t size_field(const JsonValue& v, const char* key) {
    return index_field(v.at(key), key);
}

} // namespace

/// Everything the partition threads and the merging run() caller share.
struct FanoutDriver::Shared {
    JsonValue::Object base_job; ///< the job object, cloned per partition
    std::string base_id;
    SweepCancelToken* cancel = nullptr;
    std::atomic<bool> abort{false}; ///< failure or callback exception
    std::atomic<std::size_t> heartbeats{0}; ///< v3 liveness events seen

    [[nodiscard]] bool stop_requested() const noexcept {
        return abort.load(std::memory_order_relaxed) ||
               (cancel != nullptr && cancel->cancelled());
    }

    Mutex factory_mutex; ///< serialises TransportFactory invocations

    /// One dispatchable member range. Initially one per partition; work
    /// stealing appends more (a stolen tail is a new segment attributed
    /// to the victim partition). `end` only ever SHRINKS (when stolen
    /// from) and `next_needed` only ever grows, both under `mutex` —
    /// that monotonicity is what makes the steal split exact.
    struct Segment {
        std::size_t next_needed = 0;
        std::size_t end = 0;
        std::size_t partition = 0; ///< outcome this segment accounts to
        bool running = false;      ///< a thread is (or will be) serving it
    };

    Mutex mutex; ///< guards everything below
    CondVar cv;
    /// Merged, not yet delivered.
    std::map<std::size_t, FanoutRecord> ready GUARDED_BY(mutex);
    std::size_t active GUARDED_BY(mutex) = 0; ///< threads still running
    bool failed GUARDED_BY(mutex) = false;
    std::string failure GUARDED_BY(mutex);
    /// From the first ready banner.
    std::size_t samples_per_period GUARDED_BY(mutex) = 0;
    std::vector<PartitionOutcome> outcomes GUARDED_BY(mutex);
    /// deque: steals append, references live.
    std::deque<Segment> segments GUARDED_BY(mutex);
    unsigned steals GUARDED_BY(mutex) = 0;

    void fail(const std::string& why) EXCLUDES(mutex) {
        abort.store(true, std::memory_order_relaxed);
        MutexLock lock(mutex);
        if (!failed) {
            failed = true;
            failure = why;
        }
        cv.notify_all();
    }

    /// Picks the slowest running range with a stealable tail, halves it,
    /// and appends the top half as a new running segment. Returns its
    /// index, or npos when nothing is worth stealing. Caller holds mutex.
    [[nodiscard]] std::size_t try_steal_locked(std::size_t threshold)
        REQUIRES(mutex) {
        // A 1-member tail cannot be split so that both sides keep work.
        const std::size_t min_tail = std::max<std::size_t>(threshold, 2);
        std::size_t victim = npos;
        std::size_t victim_tail = 0;
        for (std::size_t i = 0; i < segments.size(); ++i) {
            const Segment& s = segments[i];
            if (!s.running)
                continue;
            const std::size_t tail = s.end - s.next_needed;
            if (tail >= min_tail && tail > victim_tail) {
                victim = i;
                victim_tail = tail;
            }
        }
        if (victim == npos)
            return npos;
        Segment& v = segments[victim];
        const std::size_t mid = v.next_needed + (v.end - v.next_needed) / 2;
        Segment stolen;
        stolen.next_needed = mid;
        stolen.end = v.end;
        stolen.partition = v.partition;
        stolen.running = true;
        v.end = mid; // the victim stops at its first result >= mid
        segments.push_back(stolen);
        ++steals;
        ++outcomes[v.partition].steals;
        return segments.size() - 1;
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

FanoutDriver::FanoutDriver(TransportFactory factory, FanoutOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
    XYSIG_EXPECTS(factory_ != nullptr);
    XYSIG_EXPECTS(options_.partitions >= 1 || !options_.partition_starts.empty());
    XYSIG_EXPECTS(options_.max_attempts >= 1);
}

void FanoutDriver::partition_main(Shared& shared, std::size_t first_segment) {
    const auto t0 = Clock::now();
    std::size_t segment = first_segment;
    while (segment != Shared::npos) {
        serve_segment(shared, segment);
        MutexLock lock(shared.mutex);
        shared.segments[segment].running = false;
        segment = Shared::npos;
        if (options_.steal_threshold > 0 && !shared.stop_requested() &&
            !shared.failed)
            segment = shared.try_steal_locked(options_.steal_threshold);
    }

    {
        MutexLock lock(shared.mutex);
        // Wall-clock attributed to the thread's home partition: with
        // stealing on it includes time spent rescuing stragglers, which is
        // exactly the idle time stealing reclaims. Written under the lock:
        // run() reads outcomes while other partition threads are still
        // live, so an unguarded write here would race the merge loop.
        shared.outcomes[first_segment].seconds = seconds_since(t0);
        --shared.active;
    }
    shared.cv.notify_all();
}

void FanoutDriver::serve_segment(Shared& shared, std::size_t segment_index) {
    std::size_t partition = 0;
    std::size_t next_needed = 0;
    std::size_t end = 0;
    {
        MutexLock lock(shared.mutex);
        const Shared::Segment& seg = shared.segments[segment_index];
        partition = seg.partition;
        next_needed = seg.next_needed;
        end = seg.end;
    }
    // No cached reference into shared.outcomes here: the accounting entry
    // is shared with the merge loop and sibling threads, so every access
    // goes through shared.outcomes[partition] under shared.mutex.
    unsigned attempts = 0; ///< this segment's own dispatch budget
    bool done = next_needed >= end; // a tail stolen down to nothing

    while (!done) {
        if (shared.stop_requested()) {
            MutexLock lock(shared.mutex);
            shared.outcomes[partition].cancelled = true;
            break;
        }
        if (attempts >= options_.max_attempts) {
            shared.fail("fanout: partition " + std::to_string(partition) +
                        " exhausted " + std::to_string(options_.max_attempts) +
                        " dispatch attempts");
            break;
        }
        ++attempts;
        {
            MutexLock lock(shared.mutex);
            ++shared.outcomes[partition].attempts;
        }
        std::unique_ptr<Transport> transport;
        try {
            MutexLock lock(shared.factory_mutex);
            transport = factory_();
        } catch (const std::exception&) {
            // A factory that cannot produce a peer right now (connect
            // refused, resources) costs one attempt, like a peer that
            // died during handshake — it must not unwind this thread.
            continue;
        }

        // Handshake: wait for the ready banner (and pin the peers to one
        // samples_per_period — the verify gate depends on it).
        bool handshaken = false;
        {
            const auto h0 = Clock::now();
            std::string line;
            while (seconds_since(h0) < options_.handshake_timeout_seconds) {
                const auto status =
                    transport->read_line(line, kPollSliceSeconds);
                if (status == Transport::ReadStatus::closed)
                    break;
                if (status == Transport::ReadStatus::timeout) {
                    if (shared.stop_requested())
                        break;
                    continue;
                }
                try {
                    const JsonValue v = JsonValue::parse(line);
                    if (v.is_object() && v.string_or("event", "") == "ready") {
                        const std::size_t spp =
                            size_field(v, "samples_per_period");
                        bool mismatch = false;
                        {
                            MutexLock lock(shared.mutex);
                            if (shared.samples_per_period == 0)
                                shared.samples_per_period = spp;
                            else
                                mismatch = shared.samples_per_period != spp;
                        }
                        if (mismatch) {
                            shared.fail(
                                "fanout: workers disagree on "
                                "samples_per_period — results would not be "
                                "comparable");
                            break;
                        }
                        handshaken = true;
                        break;
                    }
                } catch (const std::exception&) {
                    break; // garbage banner: treat the peer as dead
                }
            }
        }
        if (!handshaken) {
            transport->shutdown();
            continue; // costs one attempt
        }

        // Dispatch the (remaining) member range. Driver-owned concerns are
        // stripped: progress/cancel_after/verify_serial belong to direct
        // sweep_server consumers, not to partitions. The range is re-read
        // under the lock: a steal may have shrunk the end since the last
        // attempt, and dispatching members another thread now owns would
        // compute them twice.
        std::size_t dispatch_end = 0;
        {
            MutexLock lock(shared.mutex);
            const Shared::Segment& seg = shared.segments[segment_index];
            next_needed = seg.next_needed;
            dispatch_end = seg.end;
        }
        if (next_needed >= dispatch_end) {
            done = true;
            transport->shutdown();
            break;
        }
        {
            JsonValue::Object job = shared.base_job;
            JsonValue::Object members;
            members.emplace("first", next_needed);
            members.emplace("count", dispatch_end - next_needed);
            job.insert_or_assign("members", JsonValue(std::move(members)));
            job.insert_or_assign("id", shared.base_id + "#p" +
                                           std::to_string(segment_index) +
                                           "a" + std::to_string(attempts));
            job.insert_or_assign("version", JsonValue(kProtocolVersion));
            job.insert_or_assign("progress_every", JsonValue(0));
            job.insert_or_assign("cancel_after", JsonValue(0));
            job.insert_or_assign("verify_serial", JsonValue(false));
            if (!transport->send_line(JsonValue(std::move(job)).dump())) {
                transport->shutdown();
                continue;
            }
        }

        // Event loop: stream results into the merge map until job_done,
        // peer death, or inactivity timeout.
        bool cancel_sent = false;
        bool peer_dead = false;
        auto last_activity = Clock::now();
        std::string line;
        while (!done && !peer_dead) {
            if (shared.stop_requested() && !cancel_sent) {
                // Cooperative cancellation fan-out: ask, don't kill — the
                // peer finishes members in flight and reports a cancelled
                // job_done, so nothing evaluated is lost.
                (void)transport->send_line(R"({"cmd":"cancel"})");
                cancel_sent = true;
            }
            const auto status = transport->read_line(line, kPollSliceSeconds);
            if (status == Transport::ReadStatus::closed) {
                peer_dead = true;
                break;
            }
            if (status == Transport::ReadStatus::timeout) {
                if (options_.read_timeout_seconds > 0.0 &&
                    seconds_since(last_activity) >
                        options_.read_timeout_seconds)
                    peer_dead = true;
                continue;
            }
            last_activity = Clock::now();

            // Any malformed event — unparseable line, wrong field types,
            // out-of-range counts or members — marks the peer dead (and
            // re-dispatches the remainder) rather than unwinding the
            // partition thread or corrupting the merge.
            try {
                const JsonValue event = JsonValue::parse(line);
                if (!event.is_object())
                    throw InvalidInput("fanout: event line is not an object");
                const std::string kind = event.string_or("event", "");
                if (kind == "result") {
                    FanoutRecord record;
                    record.member = size_field(event, "member");
                    if (record.member < next_needed ||
                        record.member >= dispatch_end)
                        throw InvalidInput(
                            "fanout: result member outside the dispatched "
                            "range");
                    record.ndf_hex = event.at("ndf_hex").as_string();
                    record.ndf = std::strtod(record.ndf_hex.c_str(), nullptr);
                    record.label = event.string_or("label", "");
                    if (event.has("signature"))
                        record.signature = event.at("signature").as_string();
                    bool range_complete = false;
                    {
                        MutexLock lock(shared.mutex);
                        Shared::Segment& seg = shared.segments[segment_index];
                        if (record.member >= seg.end) {
                            // The tail from seg.end on was stolen while the
                            // peer was still computing it; every member this
                            // segment still owns has been delivered. The
                            // record is dropped, not merged — the thief owns
                            // it now, and merging both would double-deliver.
                            seg.next_needed = seg.end;
                            range_complete = true;
                        } else {
                            next_needed = record.member + 1;
                            seg.next_needed = next_needed;
                            ++shared.outcomes[partition].members_done;
                            shared.ready.emplace(record.member,
                                                 std::move(record));
                        }
                    }
                    shared.cv.notify_all();
                    if (range_complete) {
                        // Stop the peer from burning CPU on stolen members.
                        (void)transport->send_line(R"({"cmd":"cancel"})");
                        (void)transport->send_line(R"({"cmd":"quit"})");
                        done = true;
                    }
                } else if (kind == "heartbeat") {
                    // v3 liveness: receiving it already refreshed
                    // last_activity (that is its whole job); counted so
                    // tests can assert the channel was actually exercised.
                    shared.heartbeats.fetch_add(1, std::memory_order_relaxed);
                } else if (kind == "job_done") {
                    const bool job_cancelled = event.at("cancelled").as_bool();
                    std::size_t current_end = 0;
                    {
                        MutexLock lock(shared.mutex);
                        shared.outcomes[partition].netlist_clones +=
                            size_field(event, "netlist_clones");
                        current_end = shared.segments[segment_index].end;
                    }
                    if (job_cancelled) {
                        MutexLock lock(shared.mutex);
                        shared.outcomes[partition].cancelled = true;
                        done = true;
                    } else if (next_needed >= current_end) {
                        // >= not ==: a steal may have shrunk the end below
                        // the range this peer was dispatched.
                        done = true;
                    } else {
                        // A healthy, uncancelled peer must cover its whole
                        // range — a short stream is a protocol violation,
                        // and deterministic, so re-dispatching would loop.
                        shared.fail("fanout: partition " +
                                    std::to_string(partition) +
                                    " completed without covering its member "
                                    "range");
                        done = true;
                    }
                    (void)transport->send_line(R"({"cmd":"quit"})");
                } else if (kind == "error") {
                    // Job rejection is deterministic (schema/version/
                    // universe errors): retrying cannot help.
                    shared.fail("fanout: partition " +
                                std::to_string(partition) + " rejected by " +
                                transport->describe() + ": " +
                                event.string_or("message", "unknown error"));
                    done = true;
                }
                // ready / progress / stats / verify / pong: ignored.
            } catch (const std::exception&) {
                peer_dead = true; // a peer emitting garbage is a dead peer
            }
        }
        transport->shutdown();

        if (!done && peer_dead) {
            if (shared.stop_requested()) {
                // Don't re-dispatch work the caller no longer wants.
                MutexLock lock(shared.mutex);
                shared.outcomes[partition].cancelled = true;
                done = true;
            }
            // else: loop re-dispatches [next_needed, end) — the received
            // prefix is contiguous, so nothing is recomputed or duplicated.
        }
    }
}

FanoutSummary FanoutDriver::run(const std::string& job_line,
                                const ResultCallback& on_result,
                                SweepCancelToken* cancel) {
    return run(JsonValue::parse(job_line), on_result, cancel);
}

FanoutSummary FanoutDriver::run(const JsonValue& job,
                                const ResultCallback& on_result,
                                SweepCancelToken* cancel) {
    XYSIG_EXPECTS(on_result != nullptr);
    if (!job.is_object() || !job.has("job"))
        throw InvalidInput("fanout: expected a job object");
    if (job.has("members"))
        throw InvalidInput(
            "fanout: the driver owns member-range partitioning; a job with "
            "an explicit \"members\" range cannot be fanned out");

    // Decode the whole universe locally: validates the job up front and
    // yields the member count to partition over (plus the SweepJob the
    // verify gate re-runs).
    WireJob whole = parse_wire_job(job);
    const std::size_t total = whole.universe_members;

    // Resolve partition boundaries into [start, next_start) ranges.
    std::vector<std::size_t> starts = options_.partition_starts;
    if (starts.empty()) {
        const std::size_t p = std::max<unsigned>(options_.partitions, 1);
        const std::size_t base = total / p;
        const std::size_t remainder = total % p;
        std::size_t at = 0;
        for (std::size_t i = 0; i < p; ++i) {
            starts.push_back(at);
            at += base + (i < remainder ? 1 : 0);
        }
    } else {
        if (starts.front() != 0)
            throw InvalidInput("fanout: partition_starts must begin at 0");
        for (std::size_t i = 0; i < starts.size(); ++i) {
            if (starts[i] > total)
                throw InvalidInput(
                    "fanout: partition start past the universe end");
            if (i > 0 && starts[i] < starts[i - 1])
                throw InvalidInput("fanout: partition_starts must ascend");
        }
    }

    Shared shared;
    shared.base_job = job.as_object();
    shared.base_id = whole.id.empty() ? "fanout" : whole.id;
    shared.cancel = cancel;
    // Copied out of the guarded outcomes so the thread-spawn loop below
    // can size itself without the lock while partition threads run.
    std::vector<std::size_t> member_counts(starts.size(), 0);
    {
        MutexLock lock(shared.mutex);
        shared.outcomes.resize(starts.size());
        for (std::size_t i = 0; i < starts.size(); ++i) {
            PartitionOutcome& out = shared.outcomes[i];
            out.partition = i;
            out.first_member = starts[i];
            out.member_count =
                (i + 1 < starts.size() ? starts[i + 1] : total) - starts[i];
            member_counts[i] = out.member_count;

            Shared::Segment seg;
            seg.next_needed = out.first_member;
            seg.end = out.first_member + out.member_count;
            seg.partition = i;
            seg.running = out.member_count > 0;
            shared.segments.push_back(seg);
        }
        for (const std::size_t count : member_counts)
            if (count > 0)
                ++shared.active;
    }

    FanoutSummary summary;
    summary.members_total = total;
    if (options_.read_timeout_seconds <= 0.0)
        summary.warnings.push_back(
            "read_timeout_seconds is 0: a worker that wedges without closing "
            "its pipe or socket will hang the run forever — set an "
            "inactivity timeout (server heartbeats keep slow-but-alive "
            "workers from being shot)");

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < member_counts.size(); ++i)
        if (member_counts[i] > 0)
            threads.emplace_back(
                [this, &shared, i] { partition_main(shared, i); });

    // Merge/delivery on this thread, ascending global member order:
    // contiguous from 0 while everything is healthy, then (after
    // cancellation) whatever stragglers completed, still ascending with
    // gaps — the same contract as SweepService::run.
    std::vector<FanoutRecord> merged; // kept for the verify gate
    std::size_t delivered = 0;
    try {
        std::size_t next_expected = 0;
        std::vector<FanoutRecord> batch;
        bool finished = false;
        while (!finished) {
            {
                MutexLock lock(shared.mutex);
                shared.cv.wait(lock, [&]() REQUIRES(shared.mutex) {
                    return shared.active == 0 ||
                           (!shared.failed && !shared.ready.empty() &&
                            shared.ready.begin()->first == next_expected);
                });
                batch.clear();
                if (!shared.failed) {
                    while (!shared.ready.empty() &&
                           shared.ready.begin()->first == next_expected) {
                        batch.push_back(std::move(shared.ready.begin()->second));
                        shared.ready.erase(shared.ready.begin());
                        ++next_expected;
                    }
                    if (shared.active == 0) {
                        for (auto& entry : shared.ready)
                            batch.push_back(std::move(entry.second));
                        shared.ready.clear();
                    }
                }
                finished = shared.active == 0;
            }
            for (FanoutRecord& record : batch) {
                on_result(record);
                ++delivered;
                if (options_.verify_single_process)
                    merged.push_back(std::move(record));
            }
        }
    } catch (...) {
        shared.abort.store(true, std::memory_order_relaxed);
        {
            MutexLock lock(shared.mutex);
            shared.cv.wait(lock, [&]() REQUIRES(shared.mutex) {
                return shared.active == 0;
            });
        }
        for (std::thread& t : threads)
            t.join();
        throw;
    }
    for (std::thread& t : threads)
        t.join();

    {
        // Every partition thread is joined, but steals/outcomes are still
        // guarded state — read them under the same lock that wrote them
        // (also the memory fence the join already provides, made explicit).
        MutexLock lock(shared.mutex);
        if (shared.failed)
            throw Error(shared.failure);
        summary.samples_per_period = shared.samples_per_period;
        summary.steals = shared.steals;
        summary.partitions = std::move(shared.outcomes);
    }

    summary.seconds = seconds_since(t0);
    summary.members_done = delivered;
    summary.cancelled = cancel != nullptr && cancel->cancelled();
    summary.heartbeats = shared.heartbeats.load(std::memory_order_relaxed);
    double sum = 0.0;
    std::size_t busy = 0;
    for (const PartitionOutcome& out : summary.partitions) {
        summary.netlist_clones += out.netlist_clones;
        // Every dispatched segment (the original range plus one per steal)
        // legitimately consumes one attempt; anything beyond that was a
        // death/timeout recovery.
        const unsigned expected =
            out.member_count > 0 ? 1 + out.steals : 0;
        summary.redispatches +=
            out.attempts > expected ? out.attempts - expected : 0;
        if (out.member_count == 0)
            continue;
        ++busy;
        sum += out.seconds;
        summary.partition_seconds_min =
            (busy == 1) ? out.seconds
                        : std::min(summary.partition_seconds_min, out.seconds);
        summary.partition_seconds_max =
            std::max(summary.partition_seconds_max, out.seconds);
    }
    summary.partition_seconds_mean =
        busy == 0 ? 0.0 : sum / static_cast<double>(busy);

    // verify_single_process: the merged multi-process stream must be
    // bit-identical — exact hexfloat NDFs, exact signature strings — to one
    // in-process SweepService::run over the same universe.
    if (options_.verify_single_process && !summary.cancelled) {
        summary.verify_ran = true;
        SweepServiceOptions sopts;
        sopts.workers = options_.verify_workers;
        SweepService reference(
            make_paper_pipeline(summary.samples_per_period != 0
                                    ? summary.samples_per_period
                                    : 512),
            sopts);
        bool identical = merged.size() == total;
        std::size_t i = 0;
        (void)reference.run(whole.job, [&](const SweepResult& r) {
            if (i < merged.size()) {
                const FanoutRecord& record = merged[i];
                identical =
                    identical && record.member == r.member_id &&
                    record.ndf_hex == format_double_exact(r.ndf) &&
                    (!whole.emit_signatures ||
                     (record.signature.has_value() ==
                          r.signature.has_value() &&
                      (!record.signature.has_value() ||
                       *record.signature == signature_string(*r.signature))));
            } else {
                identical = false;
            }
            ++i;
        });
        summary.verify_identical = identical && i == merged.size();
    }
    return summary;
}

} // namespace xysig::server
