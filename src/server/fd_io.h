#ifndef XYSIG_SERVER_FD_IO_H
#define XYSIG_SERVER_FD_IO_H

/// \file fd_io.h
/// Shared file-descriptor line framing for the NDJSON transports.
///
/// ProcessTransport (pipes) and TcpTransport (sockets) speak the exact
/// same framing — one '\n'-terminated JSON object per line — so the write
/// and poll-read loops live here once. Both loops are hardened against
/// the partial-I/O realities the fan-out fabric depends on:
///
///  * fd_write_all loops until every byte is written, retrying EINTR —
///    a short write() on a full pipe or socket buffer is progress, not
///    success, and treating it as success would truncate a request line
///    mid-JSON (the peer would see garbage and kill the connection).
///  * fd_read_line polls with a timeout, carries partial lines across
///    calls in the caller's buffer, and flushes a trailing unterminated
///    line at EOF (a crashing peer's last gasp is still delivered so the
///    driver can log it, then the transport reports closed).

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <mutex>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "server/transport.h"

namespace xysig::server::detail {

/// A peer dying between our poll and our write must surface as
/// send_line() == false, not kill the coordinator with SIGPIPE. Called by
/// every transport that writes to a pipe or socket; idempotent.
inline void ignore_sigpipe_once() {
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

/// Writes the whole buffer, looping over short writes and EINTR. Returns
/// false on any hard error (EPIPE, ECONNRESET, ...) — the peer is gone.
inline bool fd_write_all(int fd, const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::write(fd, data + written, size - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/// Frames `line` with a trailing '\n' and writes it whole.
inline bool fd_write_line(int fd, const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    return fd_write_all(fd, framed.data(), framed.size());
}

/// Reads one '\n'-terminated line from `fd` into `out` (newline stripped),
/// carrying partial data across calls in `buffer`. timeout_seconds <= 0
/// waits indefinitely. At EOF a trailing unterminated line is flushed
/// first; after that (or on a hard error) the status is `closed`.
inline Transport::ReadStatus fd_read_line(int fd, std::string& buffer,
                                          std::string& out,
                                          double timeout_seconds) {
    while (true) {
        const std::size_t pos = buffer.find('\n');
        if (pos != std::string::npos) {
            out = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            return Transport::ReadStatus::line;
        }
        if (fd < 0)
            return Transport::ReadStatus::closed;

        struct pollfd pfd {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int timeout_ms =
            timeout_seconds <= 0.0
                ? -1
                : static_cast<int>(timeout_seconds * 1000.0) + 1;
        const int polled = ::poll(&pfd, 1, timeout_ms);
        if (polled == 0)
            return Transport::ReadStatus::timeout;
        if (polled < 0) {
            if (errno == EINTR)
                continue;
            return Transport::ReadStatus::closed;
        }

        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Transport::ReadStatus::closed;
        }
        if (n == 0) { // EOF; flush a trailing unterminated line if any
            if (!buffer.empty()) {
                out = std::move(buffer);
                buffer.clear();
                return Transport::ReadStatus::line;
            }
            return Transport::ReadStatus::closed;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace xysig::server::detail

#endif // XYSIG_SERVER_FD_IO_H
