#include "server/job_cache.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig::server {

std::string pipeline_fingerprint(const core::SignaturePipeline& pipe) {
    const std::string bank_fp = pipe.bank().fingerprint();
    if (bank_fp.empty())
        return {}; // a custom monitor without a fingerprint is uncacheable
    const core::PipelineOptions& opts = pipe.options();
    // xylint: exact-compare(sigma=0 is the exact no-noise switch; any other value disables caching)
    if (opts.noise_sigma != 0.0 || opts.quantise)
        return {}; // noise draws / capture options are not in the key scheme
    // Discrete appends, not a `"x" + std::string&&` chain: that pattern hits
    // GCC's -Wrestrict false positive at -O3 under the -Werror hardening lane.
    std::string fp = "bank{";
    fp += bank_fp;
    fp += "}|stim{";
    fp += format_double_exact(pipe.stimulus().offset());
    for (const Tone& tone : pipe.stimulus().tones()) {
        fp += ';';
        fp += format_double_exact(tone.amplitude);
        fp += ',';
        fp += format_double_exact(tone.frequency_hz);
        fp += ',';
        fp += format_double_exact(tone.phase_rad);
    }
    fp += "}|spp=" + std::to_string(opts.samples_per_period);
    fp += "|ck=";
    fp += opts.compiled_kernels ? '1' : '0';
    // Results from different sampling modes differ within the fast-math
    // ULP tolerance; they must never be served for each other.
    fp += "|fm=";
    fp += opts.fast_math ? '1' : '0';
    return fp;
}

JobResultCache::JobResultCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::optional<JobResultCache::Hit>
JobResultCache::lookup(const std::string& key, std::size_t first,
                       std::size_t count) {
    MutexLock lock(mutex_);
    const auto [lo, hi] = map_.equal_range(key);
    auto best = map_.end();
    for (auto it = lo; it != hi; ++it) {
        const Entry& e = *it->second;
        if (first < e.first || first + count > e.first + e.count)
            continue; // does not cover the request
        if (best == map_.end() || e.count < best->second->count)
            best = it; // prefer the tightest covering range
    }
    if (best == map_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, best->second); // refresh recency
    return Hit{best->second->results, best->second->first};
}

void JobResultCache::insert(const std::string& key, std::size_t first,
                            std::vector<SweepResult> results) {
    XYSIG_EXPECTS(!key.empty());
    const std::size_t count = results.size();
    MutexLock lock(mutex_);
    const auto [lo, hi] = map_.equal_range(key);
    std::vector<LruList::iterator> contained;
    for (auto it = lo; it != hi; ++it) {
        const Entry& e = *it->second;
        if (e.first <= first && first + count <= e.first + e.count)
            return; // an existing entry already covers the new range
        if (first <= e.first && e.first + e.count <= first + count)
            contained.push_back(it->second);
    }
    // The new range supersedes strictly contained ones: dropping them is
    // not an eviction (their members live on inside the superset).
    for (const auto it : contained)
        erase_locked(it);
    lru_.push_front(Entry{
        key, first, count,
        std::make_shared<const std::vector<SweepResult>>(std::move(results))});
    map_.emplace(key, lru_.begin());
    evict_to_capacity_locked();
}

void JobResultCache::erase_locked(LruList::iterator it) {
    const auto [lo, hi] = map_.equal_range(it->key);
    for (auto m = lo; m != hi; ++m) {
        if (m->second == it) {
            map_.erase(m);
            break;
        }
    }
    lru_.erase(it);
}

void JobResultCache::evict_to_capacity_locked() {
    while (lru_.size() > capacity_) {
        erase_locked(std::prev(lru_.end()));
        ++evictions_;
    }
}

void JobResultCache::set_capacity(std::size_t capacity) {
    MutexLock lock(mutex_);
    capacity_ = std::max<std::size_t>(1, capacity);
    evict_to_capacity_locked();
}

std::size_t JobResultCache::capacity() const {
    MutexLock lock(mutex_);
    return capacity_;
}

std::size_t JobResultCache::size() const {
    MutexLock lock(mutex_);
    return lru_.size();
}

std::size_t JobResultCache::hits() const {
    MutexLock lock(mutex_);
    return hits_;
}

std::size_t JobResultCache::misses() const {
    MutexLock lock(mutex_);
    return misses_;
}

std::size_t JobResultCache::evictions() const {
    MutexLock lock(mutex_);
    return evictions_;
}

void JobResultCache::clear() {
    MutexLock lock(mutex_);
    lru_.clear();
    map_.clear();
    hits_ = misses_ = evictions_ = 0;
}

} // namespace xysig::server
