#ifndef XYSIG_SERVER_FANOUT_H
#define XYSIG_SERVER_FANOUT_H

/// \file fanout.h
/// Multi-process sweep fan-out: server::FanoutDriver splits one NDJSON
/// sweep job into contiguous member-range partitions, dispatches each
/// partition to its own `sweep_server` peer over a Transport
/// (ProcessTransport = child processes, LoopbackTransport = in-process
/// deterministic tests), and merges the per-partition result streams back
/// into one stream in ascending global member order.
///
/// Determinism: members are independent and every member's value is a
/// function of its global id only (parse_wire_job materialises grids over
/// the full universe before slicing), so the merged stream is bit-identical
/// to a single-process SweepService::run over the same universe — at any
/// partition count, and across worker death and re-dispatch. The
/// verify_single_process gate re-runs the whole universe in-process and
/// compares exact hexfloat NDFs (and signature strings) member by member.
///
/// Fault handling: a partition whose peer dies (pipe EOF, injected death)
/// or goes silent past read_timeout_seconds is re-dispatched on a fresh
/// transport, resuming at the first member not yet received — the
/// in-partition stream is contiguous, so the received prefix is exact and
/// nothing is delivered twice. A job the peer *rejects* (error event) is
/// deterministic and fails the whole run instead of being retried.
/// Cancellation fans out as `{"cmd":"cancel"}` to every live peer;
/// everything already evaluated still streams out in ascending order
/// (gaps allowed), exactly like SweepService cancellation.
///
/// Straggler recovery (FanoutOptions::steal_threshold): a partition
/// thread that finishes early steals the top half of the slowest
/// still-running range onto a fresh transport. The victim's range end
/// shrinks under the driver lock; the victim stops at the first result
/// at-or-past its new end, so every member is delivered exactly once and
/// the merged stream stays bit-identical — stealing changes who computes
/// a member, never what it computes.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "server/json.h"
#include "server/sweep_service.h"
#include "server/transport.h"

namespace xysig::server {

struct FanoutOptions {
    /// Number of contiguous member-range partitions (ignored when
    /// partition_starts is set). Partitions may be empty when there are
    /// more partitions than members.
    unsigned partitions = 2;
    /// Explicit partition start members (ascending, first element 0,
    /// values <= universe size; repeated values make empty partitions).
    /// Empty = even split into `partitions` ranges. Exposed so tests can
    /// pin boundaries (e.g. straddling a NaN member).
    std::vector<std::size_t> partition_starts;
    /// Per-partition inactivity timeout: a peer that emits nothing for
    /// this long is declared dead and its remaining range re-dispatched.
    /// 0 = wait forever.
    double read_timeout_seconds = 0.0;
    /// Deadline for a fresh peer's ready banner.
    double handshake_timeout_seconds = 30.0;
    /// Dispatch attempts per dispatched range (first dispatch included)
    /// before the whole run fails. A stolen tail is its own range with
    /// its own attempt budget.
    unsigned max_attempts = 3;
    /// Work-stealing straggler recovery: a partition thread that finishes
    /// its own range looks for the slowest still-running range and, when
    /// its unreceived tail has at least this many members, takes the top
    /// half onto a fresh transport (the victim's range shrinks; the
    /// contiguous-prefix invariant keeps the split exact, so the merged
    /// stream is unchanged). 0 = stealing disabled (the default).
    std::size_t steal_threshold = 0;
    /// After the merge, re-run the whole universe through one in-process
    /// SweepService and gate on exact per-member identity with the merged
    /// stream (the fan-out analogue of sweep_server's verify_serial).
    bool verify_single_process = false;
    /// Worker threads for the verify service (bit-identity of the
    /// reference does not depend on this — PR-4's gate).
    unsigned verify_workers = 2;
};

/// One merged result record (the wire result event, decoded).
struct FanoutRecord {
    std::size_t member = 0;
    /// Exact bits recovered from ndf_hex (hexfloat round-trip).
    double ndf = 0.0;
    std::string ndf_hex;
    std::string label;
    std::optional<std::string> signature; ///< exact "code@t;..." string
};

/// Per-partition accounting.
struct PartitionOutcome {
    std::size_t partition = 0;
    std::size_t first_member = 0;
    std::size_t member_count = 0;
    std::size_t members_done = 0;
    unsigned attempts = 0; ///< transports consumed (attempts - 1 re-dispatches)
    double seconds = 0.0;  ///< wall-clock incl. re-dispatch
    std::uint64_t netlist_clones = 0; ///< summed over this partition's attempts
    unsigned steals = 0; ///< times an idle thread stole this partition's tail
    bool cancelled = false;
};

struct FanoutSummary {
    std::size_t members_total = 0;
    std::size_t members_done = 0; ///< results delivered to the callback
    bool cancelled = false;
    double seconds = 0.0;
    std::uint64_t netlist_clones = 0;
    unsigned redispatches = 0; ///< worker deaths / timeouts recovered from
    unsigned steals = 0; ///< straggler tails moved to idle threads
    std::size_t heartbeats = 0; ///< v3 liveness events seen across peers
    /// Configuration smells that did not stop the run — e.g.
    /// read_timeout_seconds == 0 (a wedged worker would hang forever).
    std::vector<std::string> warnings;
    std::size_t samples_per_period = 0; ///< from the peers' ready banners
    /// Straggler stats over non-empty partitions' wall-clocks.
    double partition_seconds_min = 0.0;
    double partition_seconds_max = 0.0;
    double partition_seconds_mean = 0.0;
    std::vector<PartitionOutcome> partitions; ///< by partition index
    bool verify_ran = false;
    bool verify_identical = false;
};

/// The coordinator. One instance may run() repeatedly; each run spawns
/// one thread per non-empty partition plus transports from the factory.
class FanoutDriver {
public:
    /// Makes one fresh worker peer; called once per dispatch attempt. The
    /// driver serialises invocations (partition threads never call it
    /// concurrently), so stateful factories — e.g. a test handing out one
    /// faulty transport then healthy ones — need no locking of their own.
    using TransportFactory = std::function<std::unique_ptr<Transport>()>;
    using ResultCallback = std::function<void(const FanoutRecord&)>;

    FanoutDriver(TransportFactory factory, FanoutOptions options = {});

    /// Fans the job (one NDJSON job object — same schema sweep_server
    /// accepts, but without "members": the driver owns partitioning) out
    /// over the partitions and invokes on_result once per member in
    /// ascending global member order (contiguous from 0 unless
    /// cancelled), from the caller's thread. Blocks until done. Throws
    /// Error when a partition exhausts max_attempts, a peer rejects its
    /// job, or the callback throws (after the remaining partitions wind
    /// down). `cancel` works exactly like SweepService::run's token and
    /// may be triggered from the callback.
    FanoutSummary run(const JsonValue& job, const ResultCallback& on_result,
                      SweepCancelToken* cancel = nullptr);
    FanoutSummary run(const std::string& job_line,
                      const ResultCallback& on_result,
                      SweepCancelToken* cancel = nullptr);

private:
    struct Shared;

    /// Serves shared.segments[first_segment], then (steal_threshold > 0)
    /// keeps stealing straggler tails until nothing is worth taking.
    void partition_main(Shared& shared, std::size_t first_segment);
    /// One dispatch/stream/re-dispatch lifecycle for one segment.
    void serve_segment(Shared& shared, std::size_t segment_index);

    TransportFactory factory_;
    FanoutOptions options_;
};

} // namespace xysig::server

#endif // XYSIG_SERVER_FANOUT_H
