#ifndef XYSIG_MONITOR_ZONE_MAP_H
#define XYSIG_MONITOR_ZONE_MAP_H

/// \file zone_map.h
/// Enumeration of the zones a monitor bank induces on a plane window, with
/// the adjacency structure between zones. Reproduces Fig. 6's codified map
/// and checks the paper's claim that neighbouring zones differ in exactly
/// one bit (each generic boundary crossing flips one monitor).

#include <map>
#include <set>
#include <vector>

#include "monitor/monitor_bank.h"

namespace xysig::monitor {

/// One zone: its code and a summary of the cells that map to it.
struct Zone {
    unsigned code = 0;
    std::size_t cell_count = 0; ///< grid cells carrying this code
    double rep_x = 0.0;         ///< centroid of those cells
    double rep_y = 0.0;
};

/// Rasterised zone map over a rectangular window.
class ZoneMap {
public:
    /// Samples the bank on a resolution x resolution grid of cell centres.
    ZoneMap(const MonitorBank& bank, double x_lo, double x_hi, double y_lo,
            double y_hi, std::size_t resolution = 256);

    /// Zones sorted by code.
    [[nodiscard]] const std::vector<Zone>& zones() const noexcept { return zones_; }
    [[nodiscard]] std::size_t zone_count() const noexcept { return zones_.size(); }
    [[nodiscard]] bool has_zone(unsigned code) const;
    [[nodiscard]] const Zone& zone(unsigned code) const;

    /// Pairs of codes that share at least one grid edge (a < b order).
    [[nodiscard]] const std::set<std::pair<unsigned, unsigned>>& adjacency() const
        noexcept {
        return adjacency_;
    }

    /// Fraction of adjacent grid-cell pairs with different codes whose codes
    /// differ in more than one bit. Exactly 0 in the ideal continuum; on a
    /// raster a tiny fraction can appear where a cell edge jumps across a
    /// curve intersection, so tests assert "< epsilon" rather than zero.
    [[nodiscard]] double gray_violation_fraction() const noexcept {
        return gray_violation_fraction_;
    }

    /// Zone code of the cell containing (x, y).
    [[nodiscard]] unsigned code_at(double x, double y) const;

private:
    double x_lo_, x_hi_, y_lo_, y_hi_;
    std::size_t resolution_;
    std::vector<unsigned> grid_; // row-major, row = y index
    std::vector<Zone> zones_;
    std::set<std::pair<unsigned, unsigned>> adjacency_;
    double gray_violation_fraction_ = 0.0;
};

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_ZONE_MAP_H
