#ifndef XYSIG_MONITOR_MOS_BOUNDARY_H
#define XYSIG_MONITOR_MOS_BOUNDARY_H

/// \file mos_boundary.h
/// The paper's monitor (Fig. 2): a four-input CMOS current comparator whose
/// decision boundary is the locus where the summed drain currents of the
/// left pair (M1, M2) equal those of the right pair (M3, M4). Inputs are the
/// observed signals (X or Y axis) or DC bias levels; curve shape and
/// location are set by the input assignment and the transistor widths
/// (Table I).
///
/// The boundary function is evaluated in closed form from the shared MOSFET
/// model (drains held at a saturation bias, matched loads), which the
/// transistor-level netlist of comparator_netlist.h cross-validates.

#include <array>
#include <string>

#include "common/rng.h"
#include "mc/mismatch.h"
#include "monitor/boundary.h"
#include "spice/mosfet.h"

namespace xysig::monitor {

/// What a monitor input transistor's gate is connected to.
enum class MonitorInput { x_axis, y_axis, dc };

/// One input transistor (one of M1..M4).
struct MonitorLeg {
    MonitorInput input = MonitorInput::dc;
    double dc_level = 0.0; ///< used when input == dc (volts)
    double width = 1.8e-6; ///< channel width (m)
    /// Monte-Carlo perturbations (identity by default).
    double vt0_delta = 0.0;
    double kp_scale = 1.0;
};

/// Full configuration of one monitor.
struct MonitorConfig {
    std::string name = "monitor";
    /// legs[0..1] = M1, M2 (left pair); legs[2..3] = M3, M4 (right pair).
    std::array<MonitorLeg, 4> legs{};
    /// Device template: vt0/kp/n/lambda and L are taken from here; W comes
    /// from each leg.
    spice::MosParams device{};
    /// Drain bias at which leg currents are evaluated (the matched-load
    /// comparator holds both sides near this in the decision region).
    double vds_eval = 0.6;
    /// Comparator offset referred to the current comparison (A): load
    /// mismatch and junction leakage add a constant to I_left - I_right.
    /// Negligible against strong-inversion input currents but dominant when
    /// all inputs sit below threshold — the physical origin of the paper's
    /// observed curve distortion at small input voltages (Fig. 4, curve 6).
    double offset_current = 0.0;

    /// Gate voltage of a leg for a plane point.
    [[nodiscard]] double leg_gate_voltage(std::size_t leg, double x, double y) const;
    /// Drain current of a leg for a plane point.
    [[nodiscard]] double leg_current(std::size_t leg, double x, double y) const;
};

/// Current-comparison boundary: h ~ (I1 + I2) - (I3 + I4), sign-normalised
/// so the origin side is negative.
class MosCurrentBoundary final : public Boundary {
public:
    explicit MosCurrentBoundary(MonitorConfig config);

    [[nodiscard]] double h(double x, double y) const override;
    [[nodiscard]] std::unique_ptr<Boundary> clone() const override {
        return std::make_unique<MosCurrentBoundary>(*this);
    }
    [[nodiscard]] std::string fingerprint() const override;

    /// Unoriented current difference (I_left - I_right) in amperes.
    [[nodiscard]] double current_difference(double x, double y) const;
    /// +1 when h = current_difference, -1 when flipped at construction.
    [[nodiscard]] double orientation() const noexcept { return orientation_; }
    [[nodiscard]] const MonitorConfig& config() const noexcept { return config_; }

private:
    MonitorConfig config_;
    double orientation_;
};

/// Applies one Monte-Carlo draw of global process variation plus per-leg
/// Pelgrom mismatch to a monitor configuration.
[[nodiscard]] MonitorConfig perturb_monitor(const MonitorConfig& config,
                                            const mc::PelgromModel& mismatch,
                                            const mc::ProcessVariation& process,
                                            Rng& rng);

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_MOS_BOUNDARY_H
