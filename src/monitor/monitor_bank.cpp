#include "monitor/monitor_bank.h"

#include "common/contracts.h"

namespace xysig::monitor {

void MonitorBank::add(std::unique_ptr<Boundary> boundary) {
    XYSIG_EXPECTS(boundary != nullptr);
    XYSIG_EXPECTS(monitors_.size() < 32);
    monitors_.push_back(std::move(boundary));
}

MonitorBank::MonitorBank(const MonitorBank& other) {
    monitors_.reserve(other.monitors_.size());
    for (const auto& m : other.monitors_)
        monitors_.push_back(m->clone());
}

MonitorBank& MonitorBank::operator=(const MonitorBank& other) {
    if (this != &other) {
        MonitorBank tmp(other);
        monitors_ = std::move(tmp.monitors_);
    }
    return *this;
}

const Boundary& MonitorBank::monitor(std::size_t i) const {
    XYSIG_EXPECTS(i < monitors_.size());
    return *monitors_[i];
}

std::string MonitorBank::fingerprint() const {
    std::string fp;
    for (const auto& m : monitors_) {
        const std::string part = m->fingerprint();
        if (part.empty())
            return {}; // one opaque monitor poisons the whole bank
        fp += part + "/";
    }
    return fp;
}

unsigned MonitorBank::code(double x, double y) const {
    XYSIG_EXPECTS(!monitors_.empty());
    unsigned c = 0;
    const std::size_t n = monitors_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (monitors_[i]->side(x, y))
            c |= 1u << (n - 1 - i); // monitor 0 = MSB (paper's Fig. 6 order)
    }
    return c;
}

} // namespace xysig::monitor
