#include "monitor/table1.h"

#include <cmath>

#include "common/contracts.h"
#include "common/statistics.h"

namespace xysig::monitor {

Table1Options default_table1_options() {
    Table1Options opts;
    opts.device.type = spice::MosType::nmos;
    opts.device.model = spice::MosModel::ekv;
    opts.device.l = 180e-9;
    opts.device.vt0 = 0.30;
    opts.device.kp = 250e-6;
    opts.device.n_slope = 1.35;
    opts.device.lambda = 0.1;
    opts.vds_eval = 0.6;
    return opts;
}

namespace {

MonitorLeg leg_axis(MonitorInput axis, double width_nm) {
    MonitorLeg l;
    l.input = axis;
    l.width = width_nm * 1e-9;
    return l;
}

MonitorLeg leg_dc(double level, double width_nm) {
    MonitorLeg l;
    l.input = MonitorInput::dc;
    l.dc_level = level;
    l.width = width_nm * 1e-9;
    return l;
}

} // namespace

MonitorConfig table1_config(int row, const Table1Options& opts) {
    XYSIG_EXPECTS(row >= 1 && row <= 6);
    MonitorConfig cfg;
    cfg.device = opts.device;
    cfg.vds_eval = opts.vds_eval;
    cfg.name = "table1-curve-" + std::to_string(row);
    using MI = MonitorInput;
    switch (row) {
    case 1:
        cfg.legs = {leg_axis(MI::y_axis, 3000), leg_dc(0.2, 600),
                    leg_axis(MI::x_axis, 600), leg_dc(0.6, 3000)};
        break;
    case 2:
        cfg.legs = {leg_dc(0.6, 3000), leg_axis(MI::y_axis, 600),
                    leg_dc(0.2, 600), leg_axis(MI::x_axis, 3000)};
        break;
    case 3:
        cfg.legs = {leg_axis(MI::y_axis, 1800), leg_axis(MI::x_axis, 1800),
                    leg_dc(0.55, 1800), leg_dc(0.55, 1800)};
        break;
    case 4:
        cfg.legs = {leg_axis(MI::y_axis, 1800), leg_axis(MI::x_axis, 1800),
                    leg_dc(0.3, 1800), leg_dc(0.3, 1800)};
        break;
    case 5:
        cfg.legs = {leg_axis(MI::y_axis, 1800), leg_axis(MI::x_axis, 1800),
                    leg_dc(0.75, 1800), leg_dc(0.75, 1800)};
        break;
    case 6:
        cfg.legs = {leg_axis(MI::y_axis, 1800), leg_dc(0.0, 1800),
                    leg_axis(MI::x_axis, 1800), leg_dc(0.0, 1800)};
        break;
    default:
        break; // unreachable (precondition)
    }
    return cfg;
}

std::vector<MonitorConfig> table1_configs(const Table1Options& opts) {
    std::vector<MonitorConfig> out;
    out.reserve(6);
    for (int row = 1; row <= 6; ++row)
        out.push_back(table1_config(row, opts));
    return out;
}

MonitorBank build_table1_bank(const Table1Options& opts) {
    MonitorBank bank;
    for (auto& cfg : table1_configs(opts))
        bank.add(std::make_unique<MosCurrentBoundary>(std::move(cfg)));
    return bank;
}

MonitorConfig table1_config(int row) {
    return table1_config(row, default_table1_options());
}
std::vector<MonitorConfig> table1_configs() {
    return table1_configs(default_table1_options());
}
MonitorBank build_table1_bank() {
    return build_table1_bank(default_table1_options());
}

MonitorBank build_linear_approximation_bank(const Table1Options& opts) {
    MonitorBank bank;
    for (int row = 1; row <= 6; ++row) {
        const MosCurrentBoundary nonlinear(table1_config(row, opts));
        const auto pts = trace_boundary(nonlinear, 0.0, 1.0, 64, 0.0, 1.0);
        XYSIG_ASSERT(pts.size() >= 2);
        std::vector<double> xs, ys;
        xs.reserve(pts.size());
        ys.reserve(pts.size());
        for (const auto& p : pts) {
            xs.push_back(p.x);
            ys.push_back(p.y);
        }
        // Fit y = m x + b when the curve is a function of x; if the curve is
        // near-vertical (x spread tiny), fit x = m' y + b' instead.
        const double x_spread = max_value(xs) - min_value(xs);
        const double y_spread = max_value(ys) - min_value(ys);
        if (x_spread >= 0.25 * y_spread) {
            const LineFit fit = fit_line(xs, ys);
            // y - m x - b = 0  ->  a = -m, b = 1, c = -intercept.
            bank.add(std::make_unique<LinearBoundary>(-fit.slope, 1.0, -fit.intercept));
        } else {
            const LineFit fit = fit_line(ys, xs);
            // x - m y - b = 0.
            bank.add(std::make_unique<LinearBoundary>(1.0, -fit.slope, -fit.intercept));
        }
    }
    return bank;
}

MonitorBank build_linear_approximation_bank() {
    return build_linear_approximation_bank(default_table1_options());
}

} // namespace xysig::monitor
