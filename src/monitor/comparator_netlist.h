#ifndef XYSIG_MONITOR_COMPARATOR_NETLIST_H
#define XYSIG_MONITOR_COMPARATOR_NETLIST_H

/// \file comparator_netlist.h
/// Transistor-level netlist of the paper's Fig. 2 monitor: four nMOS input
/// devices (M1, M2 | M3, M4, source-grounded), pMOS active loads (M5, M8)
/// and a cross-coupled pMOS pair (M6, M7) boosting the gain. Used to
/// cross-validate the closed-form MosCurrentBoundary: away from the control
/// curve, sign(v(out2) - v(out1)) of the solved circuit must equal the
/// boundary's current-difference sign.
///
/// The cross-coupled pair is sized at feedback_ratio * load width. The
/// paper's silicon uses equal sizes (regenerative limit) plus a high-gain
/// output stage; simulations default to 0.8 so the DC solution stays unique
/// (see DESIGN.md).

#include <string>

#include "monitor/mos_boundary.h"
#include "spice/netlist.h"

namespace xysig::monitor {

/// Electrical choices for the comparator build.
struct ComparatorOptions {
    double vdd = 1.2;
    double load_width = 2e-6;    ///< W of M5/M8
    double feedback_ratio = 0.8; ///< W(M6,M7) / W(M5,M8)
    double load_vt0 = 0.30;      ///< |Vt| of the pMOS devices
    double load_kp = 100e-6;     ///< pMOS kp (lower hole mobility)
};

/// A built comparator with the handles needed to drive and read it.
struct ComparatorCircuit {
    spice::Netlist netlist;
    std::string v_inputs[4] = {"V1", "V2", "V3", "V4"};
    std::string out_left = "vout1";  ///< drains of M1, M2
    std::string out_right = "vout2"; ///< drains of M3, M4
    MonitorConfig config;
    ComparatorOptions options;
};

/// Builds the Fig. 2 circuit for a monitor configuration. The four input
/// sources are created at 0 V; drive them per plane point before solving.
[[nodiscard]] ComparatorCircuit build_comparator(const MonitorConfig& config,
                                                 const ComparatorOptions& options = {});

/// Solves the comparator DC point with the inputs set for (x, y) and
/// returns the raw decision: true when v(out2) > v(out1), which corresponds
/// to I_left > I_right (more left current pulls out1 low). Compare with
/// MosCurrentBoundary::current_difference's sign.
[[nodiscard]] bool comparator_decision(ComparatorCircuit& ckt, double x, double y);

/// Differential output voltage v(out2) - v(out1) at (x, y).
[[nodiscard]] double comparator_differential(ComparatorCircuit& ckt, double x,
                                             double y);

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_COMPARATOR_NETLIST_H
