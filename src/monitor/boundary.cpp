#include "monitor/boundary.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace xysig::monitor {

namespace {
/// Orientation reference for boundaries passing exactly through the origin:
/// a point just off the origin, below the diagonal (see DESIGN.md).
constexpr double kRefX = 0.05;
constexpr double kRefY = 0.0;
} // namespace

LinearBoundary::LinearBoundary(double a, double b, double c) : a_(a), b_(b), c_(c) {
    // xylint: exact-compare(a degenerate all-zero line is a caller bug; only exact zeros are invalid)
    XYSIG_EXPECTS(a != 0.0 || b != 0.0);
    double at_origin = c_;
    // xylint: exact-compare(c=0 means the line passes exactly through the origin; probe the reference point instead)
    if (at_origin == 0.0)
        at_origin = a_ * kRefX + b_ * kRefY + c_;
    // xylint: exact-compare(orientation needs a strictly signed probe; exact zero is the only invalid value)
    XYSIG_EXPECTS(at_origin != 0.0); // line through the reference point too
    if (at_origin > 0.0) {
        a_ = -a_;
        b_ = -b_;
        c_ = -c_;
    }
}

double LinearBoundary::h(double x, double y) const { return a_ * x + b_ * y + c_; }

std::string LinearBoundary::fingerprint() const {
    // Post-normalisation coefficients, exact: equal fingerprints <=>
    // bit-identical h() everywhere.
    return "lin{" + format_double_exact(a_) + "," + format_double_exact(b_) +
           "," + format_double_exact(c_) + "}";
}

std::vector<CurvePoint> trace_boundary(const Boundary& boundary, double x_lo,
                                       double x_hi, std::size_t n_x, double y_lo,
                                       double y_hi, std::size_t y_scan) {
    XYSIG_EXPECTS(x_hi > x_lo && y_hi > y_lo);
    XYSIG_EXPECTS(n_x >= 2 && y_scan >= 8);

    std::vector<CurvePoint> points;
    const auto xs = linspace(x_lo, x_hi, n_x);
    const auto ys = linspace(y_lo, y_hi, y_scan);
    for (const double x : xs) {
        double prev = boundary.h(x, ys[0]);
        for (std::size_t j = 1; j < ys.size(); ++j) {
            const double cur = boundary.h(x, ys[j]);
            // xylint: exact-compare(a sample exactly on the boundary IS the curve point; no bisection needed)
            if (prev == 0.0) {
                points.push_back({x, ys[j - 1]});
            } else if ((prev < 0.0) != (cur < 0.0)) {
                const double root = bisect(
                    [&](double y) { return boundary.h(x, y); }, ys[j - 1], ys[j]);
                points.push_back({x, root});
            }
            prev = cur;
        }
        // xylint: exact-compare(final sample exactly on the boundary is a curve point)
        if (prev == 0.0)
            points.push_back({x, ys.back()});
    }
    return points;
}

} // namespace xysig::monitor
