#include "monitor/zone_map.h"

#include <algorithm>
#include <bit>

#include "common/contracts.h"
#include "common/math_util.h"

namespace xysig::monitor {

ZoneMap::ZoneMap(const MonitorBank& bank, double x_lo, double x_hi, double y_lo,
                 double y_hi, std::size_t resolution)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi), resolution_(resolution) {
    XYSIG_EXPECTS(x_hi > x_lo && y_hi > y_lo);
    XYSIG_EXPECTS(resolution >= 8);

    const double dx = (x_hi_ - x_lo_) / static_cast<double>(resolution_);
    const double dy = (y_hi_ - y_lo_) / static_cast<double>(resolution_);
    grid_.resize(resolution_ * resolution_);

    struct Acc {
        std::size_t count = 0;
        double sum_x = 0.0;
        double sum_y = 0.0;
    };
    std::map<unsigned, Acc> acc;

    for (std::size_t j = 0; j < resolution_; ++j) {
        const double y = y_lo_ + (static_cast<double>(j) + 0.5) * dy;
        for (std::size_t i = 0; i < resolution_; ++i) {
            const double x = x_lo_ + (static_cast<double>(i) + 0.5) * dx;
            const unsigned code = bank.code(x, y);
            grid_[j * resolution_ + i] = code;
            Acc& a = acc[code];
            ++a.count;
            a.sum_x += x;
            a.sum_y += y;
        }
    }

    zones_.reserve(acc.size());
    for (const auto& [code, a] : acc) {
        Zone z;
        z.code = code;
        z.cell_count = a.count;
        z.rep_x = a.sum_x / static_cast<double>(a.count);
        z.rep_y = a.sum_y / static_cast<double>(a.count);
        zones_.push_back(z);
    }

    // Adjacency + Gray property over horizontal and vertical cell edges.
    std::size_t boundary_edges = 0;
    std::size_t violations = 0;
    auto visit_edge = [&](unsigned a, unsigned b) {
        if (a == b)
            return;
        ++boundary_edges;
        adjacency_.insert({std::min(a, b), std::max(a, b)});
        if (std::popcount(a ^ b) > 1)
            ++violations;
    };
    for (std::size_t j = 0; j < resolution_; ++j) {
        for (std::size_t i = 0; i + 1 < resolution_; ++i)
            visit_edge(grid_[j * resolution_ + i], grid_[j * resolution_ + i + 1]);
    }
    for (std::size_t j = 0; j + 1 < resolution_; ++j) {
        for (std::size_t i = 0; i < resolution_; ++i)
            visit_edge(grid_[j * resolution_ + i], grid_[(j + 1) * resolution_ + i]);
    }
    gray_violation_fraction_ =
        boundary_edges == 0
            ? 0.0
            : static_cast<double>(violations) / static_cast<double>(boundary_edges);
}

bool ZoneMap::has_zone(unsigned code) const {
    return std::any_of(zones_.begin(), zones_.end(),
                       [&](const Zone& z) { return z.code == code; });
}

const Zone& ZoneMap::zone(unsigned code) const {
    const auto it = std::find_if(zones_.begin(), zones_.end(),
                                 [&](const Zone& z) { return z.code == code; });
    XYSIG_EXPECTS(it != zones_.end());
    return *it;
}

unsigned ZoneMap::code_at(double x, double y) const {
    const double fx = (x - x_lo_) / (x_hi_ - x_lo_);
    const double fy = (y - y_lo_) / (y_hi_ - y_lo_);
    XYSIG_EXPECTS(fx >= 0.0 && fx <= 1.0 && fy >= 0.0 && fy <= 1.0);
    const auto i = std::min(resolution_ - 1,
                            static_cast<std::size_t>(fx * static_cast<double>(resolution_)));
    const auto j = std::min(resolution_ - 1,
                            static_cast<std::size_t>(fy * static_cast<double>(resolution_)));
    return grid_[j * resolution_ + i];
}

} // namespace xysig::monitor
