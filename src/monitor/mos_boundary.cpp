#include "monitor/mos_boundary.h"

#include <cmath>

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig::monitor {

double MonitorConfig::leg_gate_voltage(std::size_t leg, double x, double y) const {
    XYSIG_EXPECTS(leg < legs.size());
    switch (legs[leg].input) {
    case MonitorInput::x_axis:
        return x;
    case MonitorInput::y_axis:
        return y;
    case MonitorInput::dc:
        return legs[leg].dc_level;
    }
    return 0.0; // unreachable
}

double MonitorConfig::leg_current(std::size_t leg, double x, double y) const {
    XYSIG_EXPECTS(leg < legs.size());
    const MonitorLeg& l = legs[leg];
    spice::MosParams p = device;
    p.w = l.width;
    p.vt0 = device.vt0 + l.vt0_delta;
    p.kp = device.kp * l.kp_scale;
    const double vgs = leg_gate_voltage(leg, x, y);
    return spice::mos_evaluate(p, vgs, vds_eval).id;
}

namespace {
constexpr double kRefX = 0.05; // orientation fallback (see DESIGN.md)
constexpr double kRefY = 0.0;
} // namespace

MosCurrentBoundary::MosCurrentBoundary(MonitorConfig config)
    : config_(std::move(config)), orientation_(1.0) {
    XYSIG_EXPECTS(config_.vds_eval > 0.0);
    for (const auto& leg : config_.legs)
        XYSIG_EXPECTS(leg.width > 0.0);

    double at_origin = current_difference(0.0, 0.0);
    // Subthreshold leakage never cancels exactly unless the configuration is
    // symmetric (e.g. Table I curve 6); treat tiny values as "on the curve".
    const double scale = std::abs(current_difference(0.5, 0.5)) + 1e-12;
    if (std::abs(at_origin) < 1e-9 * scale)
        at_origin = current_difference(kRefX, kRefY);
    // xylint: exact-compare(orientation needs a strictly signed probe; exact zero is the only invalid value)
    XYSIG_EXPECTS(at_origin != 0.0);
    orientation_ = (at_origin > 0.0) ? -1.0 : 1.0;
}

double MosCurrentBoundary::current_difference(double x, double y) const {
    return config_.leg_current(0, x, y) + config_.leg_current(1, x, y) -
           config_.leg_current(2, x, y) - config_.leg_current(3, x, y) +
           config_.offset_current;
}

std::string MosCurrentBoundary::fingerprint() const {
    // Every value h() depends on, exact; the display name is deliberately
    // excluded (renaming a monitor does not change its boundary). The
    // asserts trip when a field is added to MosParams or MonitorLeg so the
    // new field cannot be silently dropped from the cache key (a collision
    // would serve a stale golden with no error).
    static_assert(sizeof(spice::MosParams) ==
                      2 * sizeof(spice::MosType) + 6 * sizeof(double),
                  "MosParams changed: extend fingerprint() below");
    static_assert(sizeof(MonitorLeg) ==
                      sizeof(MonitorInput) + 4 * sizeof(double) + 4 /*pad*/,
                  "MonitorLeg changed: extend fingerprint() below");
    std::string fp = "mos{";
    for (const auto& leg : config_.legs) {
        fp += std::to_string(static_cast<int>(leg.input)) + ":" +
              format_double_exact(leg.dc_level) + ":" +
              format_double_exact(leg.width) + ":" +
              format_double_exact(leg.vt0_delta) + ":" +
              format_double_exact(leg.kp_scale) + ";";
    }
    const spice::MosParams& d = config_.device;
    fp += "dev:" + std::to_string(static_cast<int>(d.type)) + ":" +
          std::to_string(static_cast<int>(d.model)) + ":" +
          format_double_exact(d.w) + ":" + format_double_exact(d.l) + ":" +
          format_double_exact(d.vt0) + ":" + format_double_exact(d.kp) + ":" +
          format_double_exact(d.n_slope) + ":" + format_double_exact(d.lambda);
    fp += "|vds=" + format_double_exact(config_.vds_eval);
    fp += "|ioff=" + format_double_exact(config_.offset_current);
    fp += "|or=" + format_double_exact(orientation_);
    return fp + "}";
}

double MosCurrentBoundary::h(double x, double y) const {
    return orientation_ * current_difference(x, y);
}

MonitorConfig perturb_monitor(const MonitorConfig& config,
                              const mc::PelgromModel& mismatch,
                              const mc::ProcessVariation& process, Rng& rng) {
    MonitorConfig out = config;
    const mc::ProcessSample ps = mc::sample_process(process, rng);
    for (auto& leg : out.legs) {
        const double sigma_vt = mismatch.sigma_vt(leg.width, config.device.l);
        const double sigma_beta = mismatch.sigma_beta_rel(leg.width, config.device.l);
        leg.vt0_delta += ps.delta_vt0 + rng.normal(0.0, sigma_vt);
        leg.kp_scale *= ps.kp_scale * (1.0 + rng.normal(0.0, sigma_beta));
    }
    out.offset_current += rng.normal(0.0, process.sigma_offset_current);
    return out;
}

} // namespace xysig::monitor
