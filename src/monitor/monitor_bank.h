#ifndef XYSIG_MONITOR_MONITOR_BANK_H
#define XYSIG_MONITOR_MONITOR_BANK_H

/// \file monitor_bank.h
/// A bank of n monitors producing the n-bit zone code for every analog
/// (x, y) location. Bit ordering follows the paper's Fig. 6 notation:
/// monitor 1 is the most significant bit, so code 011110 (decimal 30) means
/// monitors 2..5 read "1".

#include <memory>
#include <vector>

#include "monitor/boundary.h"

namespace xysig::monitor {

class MonitorBank {
public:
    MonitorBank() = default;

    /// Monitors are indexed in insertion order; monitor 0 is the MSB.
    void add(std::unique_ptr<Boundary> boundary);

    MonitorBank(const MonitorBank& other);
    MonitorBank& operator=(const MonitorBank& other);
    MonitorBank(MonitorBank&&) noexcept = default;
    MonitorBank& operator=(MonitorBank&&) noexcept = default;

    [[nodiscard]] std::size_t size() const noexcept { return monitors_.size(); }
    [[nodiscard]] const Boundary& monitor(std::size_t i) const;

    /// Zone code of a plane point. At most 32 monitors.
    [[nodiscard]] unsigned code(double x, double y) const;

    /// Maximum representable code + 1 (2^size).
    [[nodiscard]] unsigned code_space() const noexcept {
        return 1u << monitors_.size();
    }

    /// Exact identity of the whole bank (ordered concatenation of monitor
    /// fingerprints): two banks with equal non-empty fingerprints produce
    /// identical zone codes everywhere. Empty when any monitor is of a
    /// non-cacheable boundary type — callers must then skip caching.
    [[nodiscard]] std::string fingerprint() const;

private:
    std::vector<std::unique_ptr<Boundary>> monitors_;
};

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_MONITOR_BANK_H
