#ifndef XYSIG_MONITOR_BOUNDARY_H
#define XYSIG_MONITOR_BOUNDARY_H

/// \file boundary.h
/// Oriented zone boundaries in the X-Y plane.
///
/// Each monitor contributes one bit of the zone code: "0" on the side of its
/// control curve that contains the origin, "1" on the other side (paper
/// Section IV-A). A Boundary is therefore a signed function h(x, y) whose
/// zero locus is the control curve, normalised so that h <= 0 on the origin
/// side.

#include <memory>
#include <string>
#include <vector>

namespace xysig::monitor {

/// A point of a traced control curve.
struct CurvePoint {
    double x;
    double y;
};

/// Signed, origin-oriented plane divider.
class Boundary {
public:
    virtual ~Boundary() = default;

    /// Signed boundary function; h = 0 on the control curve, h <= 0 on the
    /// region containing the origin.
    [[nodiscard]] virtual double h(double x, double y) const = 0;

    /// Monitor output bit at (x, y): true ("1") away from the origin side.
    [[nodiscard]] bool side(double x, double y) const { return h(x, y) > 0.0; }

    [[nodiscard]] virtual std::unique_ptr<Boundary> clone() const = 0;

    /// Exact identity for caching: two boundaries with equal non-empty
    /// fingerprints must classify every (x, y) identically. The default
    /// (empty) marks a boundary type as non-cacheable, which simply opts
    /// pipelines using it out of the golden-signature cache.
    [[nodiscard]] virtual std::string fingerprint() const { return {}; }

protected:
    Boundary() = default;
    Boundary(const Boundary&) = default;
    Boundary& operator=(const Boundary&) = default;
};

/// Straight-line boundary a*x + b*y + c = 0 — the classic X-Y zoning
/// baseline ([12],[13]: weighted adders + comparators). Orientation is
/// normalised at construction: if the origin evaluates positive the
/// coefficients are flipped; a line through the origin is oriented by the
/// reference point (0.05, 0) (matches the nonlinear monitors' convention).
class LinearBoundary final : public Boundary {
public:
    LinearBoundary(double a, double b, double c);

    [[nodiscard]] double h(double x, double y) const override;
    [[nodiscard]] std::unique_ptr<Boundary> clone() const override {
        return std::make_unique<LinearBoundary>(*this);
    }
    [[nodiscard]] std::string fingerprint() const override;

    [[nodiscard]] double a() const noexcept { return a_; }
    [[nodiscard]] double b() const noexcept { return b_; }
    [[nodiscard]] double c() const noexcept { return c_; }

private:
    double a_, b_, c_;
};

/// Traces the control curve of a boundary inside a window: for each of n_x
/// columns, every y root of h(x, .) found by sign-scan + bisection is
/// returned. Multi-branch curves simply produce several points per column.
[[nodiscard]] std::vector<CurvePoint> trace_boundary(const Boundary& boundary,
                                                     double x_lo, double x_hi,
                                                     std::size_t n_x, double y_lo,
                                                     double y_hi,
                                                     std::size_t y_scan = 256);

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_BOUNDARY_H
