#include "monitor/comparator_netlist.h"

#include "common/contracts.h"
#include "spice/dc.h"
#include "spice/elements.h"

namespace xysig::monitor {

ComparatorCircuit build_comparator(const MonitorConfig& config,
                                   const ComparatorOptions& options) {
    XYSIG_EXPECTS(options.vdd > 0.0);
    XYSIG_EXPECTS(options.feedback_ratio > 0.0 && options.feedback_ratio <= 1.0);

    ComparatorCircuit ckt;
    ckt.config = config;
    ckt.options = options;
    spice::Netlist& nl = ckt.netlist;

    const auto vdd = nl.node("vdd");
    const auto out1 = nl.node("vout1");
    const auto out2 = nl.node("vout2");

    nl.add<spice::VoltageSource>("VDD", vdd, spice::kGround, options.vdd);

    // Input devices: gates driven by dedicated sources (set per plane point).
    for (int i = 0; i < 4; ++i) {
        // `"g" + std::to_string(...)` (char* + string&&) trips GCC's
        // -Wrestrict false positive at -O3; append onto an lvalue instead.
        std::string suffix = std::to_string(i + 1);
        std::string gate_name = "g";
        gate_name += suffix;
        const auto gate = nl.node(gate_name);
        nl.add<spice::VoltageSource>(ckt.v_inputs[i], gate, spice::kGround, 0.0);
        spice::MosParams p = config.device;
        p.w = config.legs[static_cast<std::size_t>(i)].width;
        p.vt0 = config.device.vt0 +
                config.legs[static_cast<std::size_t>(i)].vt0_delta;
        p.kp = config.device.kp * config.legs[static_cast<std::size_t>(i)].kp_scale;
        const auto drain = (i < 2) ? out1 : out2;
        std::string mos_name = "M";
        mos_name += suffix;
        nl.add<spice::Mosfet>(mos_name, drain, gate, spice::kGround, p);
    }

    // pMOS loads: M5/M8 diode-connected, M6/M7 cross-coupled.
    spice::MosParams load;
    load.type = spice::MosType::pmos;
    load.model = config.device.model;
    load.l = config.device.l;
    load.vt0 = options.load_vt0;
    load.kp = options.load_kp;
    load.n_slope = config.device.n_slope;
    load.lambda = config.device.lambda;

    load.w = options.load_width;
    nl.add<spice::Mosfet>("M5", out1, out1, vdd, load); // diode load, left
    nl.add<spice::Mosfet>("M8", out2, out2, vdd, load); // diode load, right
    load.w = options.load_width * options.feedback_ratio;
    nl.add<spice::Mosfet>("M6", out1, out2, vdd, load); // cross feedback
    nl.add<spice::Mosfet>("M7", out2, out1, vdd, load);

    return ckt;
}

namespace {
void drive_inputs(ComparatorCircuit& ckt, double x, double y) {
    for (std::size_t i = 0; i < 4; ++i) {
        auto& src = ckt.netlist.get<spice::VoltageSource>(ckt.v_inputs[i]);
        src.set_waveform(DcWaveform(ckt.config.leg_gate_voltage(i, x, y)));
    }
}
} // namespace

double comparator_differential(ComparatorCircuit& ckt, double x, double y) {
    drive_inputs(ckt, x, y);
    const auto op = spice::dc_operating_point(ckt.netlist);
    return op.voltage(ckt.out_right) - op.voltage(ckt.out_left);
}

bool comparator_decision(ComparatorCircuit& ckt, double x, double y) {
    return comparator_differential(ckt, x, y) > 0.0;
}

} // namespace xysig::monitor
