#ifndef XYSIG_MONITOR_TABLE1_H
#define XYSIG_MONITOR_TABLE1_H

/// \file table1.h
/// The paper's TABLE I: the six monitor input configurations whose control
/// curves are shown in Fig. 4 and whose bank generates the Fig. 6 zone map.
///
///   #   M1      M2      M3      M4      V1      V2      V3      V4
///   1   3000    600     600     3000    Y       0.2     X       0.6
///   2   3000    600     600     3000    0.6     Y       0.2     X
///   3   1800    1800    1800    1800    Y       X       0.55    0.55
///   4   1800    1800    1800    1800    Y       X       0.3     0.3
///   5   1800    1800    1800    1800    Y       X       0.75    0.75
///   6   1800    1800    1800    1800    Y       0       X       0
///
/// (widths in nm, L = 180 nm, bias voltages in volts)

#include <vector>

#include "monitor/monitor_bank.h"
#include "monitor/mos_boundary.h"

namespace xysig::monitor {

/// Process choices shared by all Table I monitors.
struct Table1Options {
    spice::MosParams device{}; ///< vt0/kp/n/lambda + L (w is per leg)
    double vds_eval = 0.6;
};

/// Returns the default 65 nm-flavoured device template used throughout the
/// reproduction (vt0 = 0.30 V, kp = 250 uA/V^2, n = 1.35, L = 180 nm).
[[nodiscard]] Table1Options default_table1_options();

/// Configuration of one Table I row; row in [1, 6].
[[nodiscard]] MonitorConfig table1_config(int row, const Table1Options& opts);

/// All six configurations in row order.
[[nodiscard]] std::vector<MonitorConfig> table1_configs(const Table1Options& opts);

/// The full six-monitor bank (monitor i = Table I row i+1 = bit i from MSB).
[[nodiscard]] MonitorBank build_table1_bank(const Table1Options& opts);

/// Convenience overloads with the default options.
[[nodiscard]] MonitorConfig table1_config(int row);
[[nodiscard]] std::vector<MonitorConfig> table1_configs();
[[nodiscard]] MonitorBank build_table1_bank();

/// Straight-line baseline bank ([12],[13]): six lines approximating the
/// Table I curves (least-squares fit of each traced control curve inside
/// the unit window), used by the linear-vs-nonlinear ablation.
[[nodiscard]] MonitorBank build_linear_approximation_bank(const Table1Options& opts);
[[nodiscard]] MonitorBank build_linear_approximation_bank();

} // namespace xysig::monitor

#endif // XYSIG_MONITOR_TABLE1_H
