#include "core/detectability.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/statistics.h"
#include "mc/monte_carlo.h"

namespace xysig::core {

double DetectabilityStudy::minimum_detectable() const {
    double best = 0.0;
    for (const auto& p : points) {
        if (!p.detected)
            continue;
        const double mag = std::abs(p.deviation_percent);
        // xylint: exact-compare(0.0 is the nothing-detected-yet sentinel, assigned verbatim above)
        if (best == 0.0 || mag < best)
            best = mag;
    }
    return best;
}

DetectabilityStudy noise_detectability(SignaturePipeline& pipeline,
                                       const filter::Biquad& nominal,
                                       std::span<const double> deviations_percent,
                                       const DetectabilityOptions& options,
                                       std::uint64_t seed) {
    XYSIG_EXPECTS(options.trials >= 2);
    XYSIG_EXPECTS(options.noise_sigma > 0.0);
    XYSIG_EXPECTS(options.periods_averaged >= 1);
    XYSIG_EXPECTS(!deviations_percent.empty());

    // Configure noise and the golden reference (noise-free by definition).
    PipelineOptions popts = pipeline.options();
    popts.noise_sigma = options.noise_sigma;
    SignaturePipeline noisy(pipeline.bank(), pipeline.stimulus(), popts);
    noisy.set_golden(filter::BehaviouralCut(nominal));

    DetectabilityStudy study;

    // One trial = the mean NDF over periods_averaged independently noisy
    // captured periods (a multi-period production capture). Trials run
    // concurrently on pre-forked streams; the scratch buffers are reused
    // across every trial a worker thread executes.
    const auto trial_ndf = [&](const filter::Cut& cut, Rng& rng) {
        thread_local NdfScratch scratch;
        double acc = 0.0;
        for (int p = 0; p < options.periods_averaged; ++p)
            acc += noisy.ndf_of(cut, scratch, &rng);
        return acc / options.periods_averaged;
    };

    // Noise floor: NDF of the noisy golden circuit itself.
    const int floor_trials =
        options.floor_trials > 0 ? options.floor_trials : 2 * options.trials;
    const filter::BehaviouralCut golden_cut(nominal);
    const auto floor_samples = mc::run_monte_carlo_parallel(
        floor_trials, seed, [&](Rng& rng) { return trial_ndf(golden_cut, rng); },
        options.threads);
    study.noise_floor_mean = mean(floor_samples);
    study.threshold = percentile(floor_samples, options.threshold_percentile);

    for (const double dev : deviations_percent) {
        const filter::Biquad deviated = nominal.with_f0_shift(dev / 100.0);
        const filter::BehaviouralCut cut(deviated);
        const auto samples = mc::run_monte_carlo_parallel(
            options.trials, seed + 0x9E3779B9u + static_cast<std::uint64_t>(
                std::llround(std::abs(dev) * 1000.0) + (dev < 0 ? 1 : 0)),
            [&](Rng& rng) { return trial_ndf(cut, rng); }, options.threads);

        DetectabilityPoint point;
        point.deviation_percent = dev;
        point.ndf_mean = mean(samples);
        point.ndf_min = min_value(samples);
        point.ndf_max = max_value(samples);
        std::size_t above = 0;
        for (const double s : samples)
            if (s > study.threshold)
                ++above;
        point.detection_rate =
            static_cast<double>(above) / static_cast<double>(samples.size());
        point.detected = point.detection_rate >= options.required_rate;
        study.points.push_back(point);
    }
    return study;
}

} // namespace xysig::core
