#include "core/trace_cache.h"

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig::core {

std::string stimulus_trace_key(const MultitoneWaveform& stimulus,
                               std::size_t samples_per_period,
                               SampleMode mode) {
    // Same exact stimulus fingerprint SignaturePipeline::golden_cache_key
    // embeds (hexfloat values; discrete appends for the GCC -Wrestrict
    // false positive — see that function).
    std::string key = "stim{";
    key += format_double_exact(stimulus.offset());
    for (const Tone& tone : stimulus.tones()) {
        key += ';';
        key += format_double_exact(tone.amplitude);
        key += ',';
        key += format_double_exact(tone.frequency_hz);
        key += ',';
        key += format_double_exact(tone.phase_rad);
    }
    key += "}|spp=" + std::to_string(samples_per_period);
    key += "|fm=";
    key += mode == SampleMode::fast_math ? '1' : '0';
    return key;
}

StimulusTraceCache& StimulusTraceCache::instance() {
    static StimulusTraceCache cache;
    return cache;
}

std::shared_ptr<const std::vector<double>> StimulusTraceCache::find_or_compute(
    const std::string& key,
    const std::function<std::vector<double>()>& compute) {
    {
        MutexLock lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
            return it->second->second;
        }
    }
    auto computed = std::make_shared<const std::vector<double>>(compute());
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
        // Lost a benign race; the first insertion is authoritative.
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second;
    }
    ++misses_;
    lru_.emplace_front(key, std::move(computed));
    map_.emplace(key, lru_.begin());
    evict_to_capacity_locked();
    return lru_.front().second;
}

void StimulusTraceCache::evict_to_capacity_locked() {
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void StimulusTraceCache::set_capacity(std::size_t capacity) {
    XYSIG_EXPECTS(capacity >= 1);
    MutexLock lock(mutex_);
    capacity_ = capacity;
    evict_to_capacity_locked();
}

std::size_t StimulusTraceCache::capacity() const {
    MutexLock lock(mutex_);
    return capacity_;
}

std::size_t StimulusTraceCache::size() const {
    MutexLock lock(mutex_);
    return map_.size();
}

std::size_t StimulusTraceCache::hits() const {
    MutexLock lock(mutex_);
    return hits_;
}

std::size_t StimulusTraceCache::misses() const {
    MutexLock lock(mutex_);
    return misses_;
}

std::size_t StimulusTraceCache::evictions() const {
    MutexLock lock(mutex_);
    return evictions_;
}

void StimulusTraceCache::clear() {
    MutexLock lock(mutex_);
    map_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace xysig::core
