#include "core/ndf.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.h"

namespace xysig::core {

unsigned hamming_distance(unsigned a, unsigned b) noexcept {
    return static_cast<unsigned>(std::popcount(a ^ b));
}

std::vector<HammingSegment> hamming_profile(const capture::Chronogram& observed,
                                            const capture::Chronogram& golden) {
    const double t_obs = observed.period();
    const double t_gold = golden.period();
    XYSIG_EXPECTS(std::abs(t_obs - t_gold) <= 1e-3 * std::max(t_obs, t_gold));
    const double period = std::min(t_obs, t_gold);

    // Merge both event time sets (within the integration window).
    std::vector<double> cuts;
    cuts.reserve(observed.events().size() + golden.events().size() + 1);
    for (const auto& e : observed.events())
        if (e.t < period)
            cuts.push_back(e.t);
    for (const auto& e : golden.events())
        if (e.t < period)
            cuts.push_back(e.t);
    cuts.push_back(0.0);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<HammingSegment> profile;
    profile.reserve(cuts.size());
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        const double t0 = cuts[i];
        const double t1 = (i + 1 < cuts.size()) ? cuts[i + 1] : period;
        if (t1 <= t0)
            continue;
        const unsigned d =
            hamming_distance(observed.code_at(t0), golden.code_at(t0));
        // Merge with the previous segment when the distance is unchanged so
        // the profile is minimal (nicer chronogram plots).
        if (!profile.empty() && profile.back().distance == d &&
            // xylint: exact-compare(abutting segments carry the same double boundary value verbatim)
            profile.back().t_end == t0) {
            profile.back().t_end = t1;
        } else {
            profile.push_back({t0, t1, d});
        }
    }
    return profile;
}

double ndf(const capture::Chronogram& observed, const capture::Chronogram& golden) {
    const auto profile = hamming_profile(observed, golden);
    XYSIG_ASSERT(!profile.empty());
    const double period = profile.back().t_end;
    double acc = 0.0;
    for (const auto& seg : profile)
        acc += static_cast<double>(seg.distance) * (seg.t_end - seg.t_begin);
    return acc / period;
}

double ndf_sampled(const capture::Chronogram& observed,
                   const capture::Chronogram& golden, std::size_t n) {
    XYSIG_EXPECTS(n >= 2);
    const double period = std::min(observed.period(), golden.period());
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t =
            (static_cast<double>(i) + 0.5) / static_cast<double>(n) * period;
        acc += hamming_distance(observed.code_at(t), golden.code_at(t));
    }
    return acc / static_cast<double>(n);
}

} // namespace xysig::core
