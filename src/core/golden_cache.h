#ifndef XYSIG_CORE_GOLDEN_CACHE_H
#define XYSIG_CORE_GOLDEN_CACHE_H

/// \file golden_cache.h
/// Process-wide cache of golden (ideal, unquantised) chronograms.
///
/// Sweep drivers rebuild a SignaturePipeline per grid point — the capture
/// ablation rebuilds one per (f_clk, counter_bits) cell — and every rebuild
/// used to recompute the golden signature from scratch even though the
/// (bank, stimulus, sampling options, golden CUT) tuple is unchanged. The
/// cache stores the expensive pre-quantisation chronogram under an exact
/// string key assembled from those four fingerprints (see
/// SignaturePipeline::golden_cache_key), so capture-option grids share one
/// golden computation. Quantisation, which does depend on the capture
/// options, is applied per pipeline after lookup.
///
/// Keys are exact (hexfloat-formatted values): a cache hit is bit-identical
/// to recomputing. The cache is bounded: a long-lived sweep service sees an
/// unbounded stream of distinct fingerprints (every job may carry a new
/// golden CUT), so entries beyond `capacity` are evicted least-recently-used
/// — an eviction only costs one recomputation if the key ever returns.

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "capture/chronogram.h"
#include "common/annotated_mutex.h"

namespace xysig::core {

/// Thread-safe, LRU-bounded find-or-compute map from exact keys to golden
/// chronograms.
class GoldenSignatureCache {
public:
    /// Default entry bound: goldens are tiny (tens of events), so this is
    /// sized for "every concurrently useful experimental setup" rather than
    /// for memory pressure.
    static constexpr std::size_t kDefaultCapacity = 1024;

    /// The process-wide instance used by SignaturePipeline::set_golden.
    [[nodiscard]] static GoldenSignatureCache& instance();

    /// Returns the chronogram cached under `key`, computing and inserting it
    /// on a miss. `compute` runs outside the lock (golden computation can be
    /// slow); if two threads race on the same missing key both compute, the
    /// first insertion wins and both return the same stored object — with
    /// exact keys the duplicates are bit-identical anyway. An insertion that
    /// grows the cache past capacity() evicts the least-recently-used entry
    /// (hits refresh recency); returned shared_ptrs keep evicted chronograms
    /// alive for callers that still hold them.
    [[nodiscard]] std::shared_ptr<const capture::Chronogram> find_or_compute(
        const std::string& key,
        const std::function<capture::Chronogram()>& compute);

    /// Maximum number of retained entries (>= 1). Shrinking below the
    /// current size evicts LRU entries immediately.
    void set_capacity(std::size_t capacity);
    [[nodiscard]] std::size_t capacity() const;

    /// Cache statistics (for tests, the sweep service's stats report, and
    /// capacity tuning).
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t hits() const;
    [[nodiscard]] std::size_t misses() const;
    [[nodiscard]] std::size_t evictions() const;

    /// Drops every entry and resets the counters (test isolation). The
    /// configured capacity is kept.
    void clear();

private:
    /// MRU-first recency list; the map points into it.
    using LruList =
        std::list<std::pair<std::string,
                            std::shared_ptr<const capture::Chronogram>>>;

    void evict_to_capacity_locked() REQUIRES(mutex_);

    mutable Mutex mutex_;
    LruList lru_ GUARDED_BY(mutex_);
    std::unordered_map<std::string, LruList::iterator> map_ GUARDED_BY(mutex_);
    std::size_t capacity_ GUARDED_BY(mutex_) = kDefaultCapacity;
    std::size_t hits_ GUARDED_BY(mutex_) = 0;
    std::size_t misses_ GUARDED_BY(mutex_) = 0;
    std::size_t evictions_ GUARDED_BY(mutex_) = 0;
};

} // namespace xysig::core

#endif // XYSIG_CORE_GOLDEN_CACHE_H
