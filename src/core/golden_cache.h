#ifndef XYSIG_CORE_GOLDEN_CACHE_H
#define XYSIG_CORE_GOLDEN_CACHE_H

/// \file golden_cache.h
/// Process-wide cache of golden (ideal, unquantised) chronograms.
///
/// Sweep drivers rebuild a SignaturePipeline per grid point — the capture
/// ablation rebuilds one per (f_clk, counter_bits) cell — and every rebuild
/// used to recompute the golden signature from scratch even though the
/// (bank, stimulus, sampling options, golden CUT) tuple is unchanged. The
/// cache stores the expensive pre-quantisation chronogram under an exact
/// string key assembled from those four fingerprints (see
/// SignaturePipeline::golden_cache_key), so capture-option grids share one
/// golden computation. Quantisation, which does depend on the capture
/// options, is applied per pipeline after lookup.
///
/// Keys are exact (hexfloat-formatted values): a cache hit is bit-identical
/// to recomputing. Entries are never evicted — goldens are tiny (tens of
/// events) and the universe of distinct keys in one process is bounded by
/// the distinct experimental setups, not by sweep size.

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "capture/chronogram.h"

namespace xysig::core {

/// Thread-safe find-or-compute map from exact keys to golden chronograms.
class GoldenSignatureCache {
public:
    /// The process-wide instance used by SignaturePipeline::set_golden.
    [[nodiscard]] static GoldenSignatureCache& instance();

    /// Returns the chronogram cached under `key`, computing and inserting it
    /// on a miss. `compute` runs outside the lock (golden computation can be
    /// slow); if two threads race on the same missing key both compute, the
    /// first insertion wins and both return the same stored object — with
    /// exact keys the duplicates are bit-identical anyway.
    [[nodiscard]] std::shared_ptr<const capture::Chronogram> find_or_compute(
        const std::string& key,
        const std::function<capture::Chronogram()>& compute);

    /// Cache statistics (for tests and capacity reports).
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t hits() const;
    [[nodiscard]] std::size_t misses() const;

    /// Drops every entry and resets the counters (test isolation).
    void clear();

private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const capture::Chronogram>>
        map_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace xysig::core

#endif // XYSIG_CORE_GOLDEN_CACHE_H
