#ifndef XYSIG_CORE_DECISION_H
#define XYSIG_CORE_DECISION_H

/// \file decision.h
/// The paper's test decision (Section IV-C / Fig. 8): fix the tolerated
/// parameter deviation, map it through the NDF-vs-deviation curve to an NDF
/// threshold, then PASS circuits below the threshold and FAIL those above.

#include <span>

#include "core/sweep.h"

namespace xysig::core {

enum class TestOutcome { pass, fail };

/// PASS/FAIL band derived from a calibration sweep.
class NdfThreshold {
public:
    /// Calibrates the threshold for a tolerance of +/- tolerance_percent:
    /// the NDF at +tol and -tol is interpolated from the sweep and the
    /// smaller of the two is used (conservative: no out-of-band deviation
    /// can pass). The sweep must bracket both +tol and -tol.
    static NdfThreshold from_sweep(std::span<const SweepPoint> sweep,
                                   double tolerance_percent);

    /// Direct threshold (e.g. from a noise study).
    explicit NdfThreshold(double threshold);

    [[nodiscard]] double threshold() const noexcept { return threshold_; }
    [[nodiscard]] TestOutcome classify(double ndf_value) const noexcept {
        return ndf_value <= threshold_ ? TestOutcome::pass : TestOutcome::fail;
    }

private:
    double threshold_;
};

} // namespace xysig::core

#endif // XYSIG_CORE_DECISION_H
