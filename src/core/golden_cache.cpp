#include "core/golden_cache.h"

namespace xysig::core {

GoldenSignatureCache& GoldenSignatureCache::instance() {
    static GoldenSignatureCache cache;
    return cache;
}

std::shared_ptr<const capture::Chronogram> GoldenSignatureCache::find_or_compute(
    const std::string& key,
    const std::function<capture::Chronogram()>& compute) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
    }
    auto computed = std::make_shared<const capture::Chronogram>(compute());
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = map_.try_emplace(key, std::move(computed));
    if (inserted)
        ++misses_;
    else
        ++hits_; // lost a benign race; the first insertion is authoritative
    return it->second;
}

std::size_t GoldenSignatureCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t GoldenSignatureCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t GoldenSignatureCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void GoldenSignatureCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace xysig::core
