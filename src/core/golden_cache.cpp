#include "core/golden_cache.h"

#include "common/contracts.h"

namespace xysig::core {

GoldenSignatureCache& GoldenSignatureCache::instance() {
    static GoldenSignatureCache cache;
    return cache;
}

std::shared_ptr<const capture::Chronogram> GoldenSignatureCache::find_or_compute(
    const std::string& key,
    const std::function<capture::Chronogram()>& compute) {
    {
        MutexLock lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
            return it->second->second;
        }
    }
    auto computed = std::make_shared<const capture::Chronogram>(compute());
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
        // Lost a benign race; the first insertion is authoritative.
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second;
    }
    ++misses_;
    lru_.emplace_front(key, std::move(computed));
    map_.emplace(key, lru_.begin());
    evict_to_capacity_locked();
    return lru_.front().second;
}

void GoldenSignatureCache::evict_to_capacity_locked() {
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void GoldenSignatureCache::set_capacity(std::size_t capacity) {
    XYSIG_EXPECTS(capacity >= 1);
    MutexLock lock(mutex_);
    capacity_ = capacity;
    evict_to_capacity_locked();
}

std::size_t GoldenSignatureCache::capacity() const {
    MutexLock lock(mutex_);
    return capacity_;
}

std::size_t GoldenSignatureCache::size() const {
    MutexLock lock(mutex_);
    return map_.size();
}

std::size_t GoldenSignatureCache::hits() const {
    MutexLock lock(mutex_);
    return hits_;
}

std::size_t GoldenSignatureCache::misses() const {
    MutexLock lock(mutex_);
    return misses_;
}

std::size_t GoldenSignatureCache::evictions() const {
    MutexLock lock(mutex_);
    return evictions_;
}

void GoldenSignatureCache::clear() {
    MutexLock lock(mutex_);
    map_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace xysig::core
