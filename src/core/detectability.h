#ifndef XYSIG_CORE_DETECTABILITY_H
#define XYSIG_CORE_DETECTABILITY_H

/// \file detectability.h
/// The paper's noise robustness study (Section IV-C): with null-mean white
/// noise of 3*sigma = 15 mV on the observed signals, deviations as low as
/// 1% in f0 are detected. We quantify this as a hypothesis test: the
/// detection threshold is a high percentile of the NDF distribution of the
/// noisy *golden* circuit, and a deviation is detectable when nearly all
/// noisy deviated trials exceed it.

#include <cstdint>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "filter/biquad.h"

namespace xysig::core {

struct DetectabilityOptions {
    int trials = 50;              ///< noisy repetitions per deviation point
    double noise_sigma = 0.005;   ///< 3*sigma = 15 mV (paper's value)
    double threshold_percentile = 99.0; ///< of the golden noise-floor NDF
    double required_rate = 0.90;  ///< detection rate to call it "detected"
    /// Trials used to estimate the noise-floor threshold; the percentile of
    /// a small sample is itself noisy, so this defaults to more repetitions
    /// than the per-deviation trials. 0 means 2 * trials.
    int floor_trials = 0;
    /// Lissajous periods captured and NDF-averaged per trial. Independent
    /// noise per period shrinks the noise-floor spread by sqrt(M): the
    /// production-test interpretation under which the paper's "1% under
    /// 3*sigma = 15 mV noise" claim holds (a 16-period capture is 3.2 ms).
    int periods_averaged = 16;
    /// Worker threads for the Monte-Carlo trials (0 = default_thread_count()).
    /// Results are bit-identical whatever the thread count: every trial
    /// draws from its own pre-forked RNG stream.
    unsigned threads = 0;
};

struct DetectabilityPoint {
    double deviation_percent = 0.0;
    double ndf_mean = 0.0;
    double ndf_min = 0.0;
    double ndf_max = 0.0;
    double detection_rate = 0.0; ///< fraction of trials above the threshold
    bool detected = false;
};

struct DetectabilityStudy {
    double threshold = 0.0;          ///< NDF decision level (noise floor)
    double noise_floor_mean = 0.0;   ///< mean NDF of the noisy golden
    std::vector<DetectabilityPoint> points;

    /// Smallest |deviation| in the study that was detected (0 if none).
    [[nodiscard]] double minimum_detectable() const;
};

/// Runs the study. The pipeline's noise_sigma is overridden per options;
/// its golden signature is reset to the nominal filter (noise-free).
[[nodiscard]] DetectabilityStudy noise_detectability(
    SignaturePipeline& pipeline, const filter::Biquad& nominal,
    std::span<const double> deviations_percent, const DetectabilityOptions& options,
    std::uint64_t seed);

} // namespace xysig::core

#endif // XYSIG_CORE_DETECTABILITY_H
