#include "core/batch_ndf.h"

#include <limits>

#include "common/contracts.h"
#include "common/parallel.h"

namespace xysig::core {

BatchNdfEvaluator::BatchNdfEvaluator(const SignaturePipeline& pipeline,
                                     Options options)
    : pipeline_(&pipeline), options_(options) {}

std::vector<double> BatchNdfEvaluator::evaluate(
    std::span<const filter::Cut* const> cuts) const {
    XYSIG_EXPECTS(pipeline_->has_golden());
    std::vector<double> out(cuts.size());
    parallel_for(
        0, cuts.size(),
        [&](std::size_t i) {
            XYSIG_EXPECTS(cuts[i] != nullptr);
            // One scratch per worker thread, reused across the whole batch
            // (and across batches on pool threads).
            thread_local NdfScratch scratch;
            if (options_.nan_on_numeric_error) {
                try {
                    out[i] = pipeline_->ndf_of(*cuts[i], scratch);
                } catch (const NumericError&) {
                    out[i] = std::numeric_limits<double>::quiet_NaN();
                }
            } else {
                out[i] = pipeline_->ndf_of(*cuts[i], scratch);
            }
        },
        options_.threads);
    return out;
}

std::vector<double> BatchNdfEvaluator::evaluate(
    const std::vector<std::unique_ptr<filter::Cut>>& cuts) const {
    std::vector<const filter::Cut*> raw;
    raw.reserve(cuts.size());
    for (const auto& c : cuts)
        raw.push_back(c.get());
    return evaluate(raw);
}

std::vector<std::unique_ptr<filter::Cut>> BatchNdfEvaluator::build_fault_universe(
    const spice::Netlist& nominal, std::span<const capture::NetlistFault> faults,
    const SpiceObservation& observation) {
    std::vector<std::unique_ptr<filter::Cut>> universe;
    universe.reserve(faults.size());
    for (const auto& fault : faults) {
        auto faulty = std::make_unique<spice::Netlist>(
            capture::apply_fault(nominal, fault));
        universe.push_back(std::make_unique<filter::SpiceCut>(
            std::move(faulty), observation.input_source, observation.x_node,
            observation.y_node, observation.settle_periods));
    }
    return universe;
}

std::vector<double> BatchNdfEvaluator::evaluate_netlist_faults(
    const spice::Netlist& nominal, std::span<const capture::NetlistFault> faults,
    const SpiceObservation& observation) const {
    Options opts = options_;
    opts.nan_on_numeric_error = true; // see BatchNdfOptions: universes may
                                      // contain unsolvable members
    const BatchNdfEvaluator tolerant(*pipeline_, opts);
    return tolerant.evaluate(build_fault_universe(nominal, faults, observation));
}

std::vector<double> BatchNdfEvaluator::evaluate_deviations(
    const filter::Biquad& nominal, std::span<const double> deviations_percent,
    SweptParameter parameter) const {
    std::vector<filter::BehaviouralCut> universe;
    universe.reserve(deviations_percent.size());
    for (const double dev : deviations_percent) {
        const double frac = dev / 100.0;
        universe.emplace_back(parameter == SweptParameter::f0
                                  ? nominal.with_f0_shift(frac)
                                  : nominal.with_q_shift(frac));
    }
    std::vector<const filter::Cut*> raw;
    raw.reserve(universe.size());
    for (const auto& c : universe)
        raw.push_back(&c);
    return evaluate(raw);
}

} // namespace xysig::core
