#ifndef XYSIG_CORE_TRACE_CACHE_H
#define XYSIG_CORE_TRACE_CACHE_H

/// \file trace_cache.h
/// Process-wide cache of sampled stimulus traces.
///
/// For behavioural universes the x channel of every member is the
/// stimulus itself (Cut::x_is_stimulus), yet the batch engine used to
/// re-sample the identical trace once per member per job — members ×
/// samples_per_period redundant sine evaluations. This cache stores one
/// immutable trace per (stimulus fingerprint, samples_per_period,
/// sample mode) key; SignaturePipeline fetches it once and every worker
/// thread reads the same shared buffer, so a whole job costs exactly one
/// stimulus sampling (the miss — the `misses()` counter doubles as the
/// sampling-count probe in tests and bench gates).
///
/// Keys are exact (hexfloat tone fingerprints): two stimuli differing in
/// one phase bit never alias, and a hit is bit-identical to resampling.
/// Thread-safety: same Mutex + LRU find-or-compute discipline as
/// GoldenSignatureCache — compute runs outside the lock; a racing
/// duplicate compute is benign because exact keys make the results
/// bit-identical, and the first insertion wins.

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "signal/sample_mode.h"
#include "signal/waveform.h"

namespace xysig::core {

/// Exact cache key for one sampled stimulus trace:
/// "stim{...}|spp=N|fm=0|1" with hexfloat tone values — the same stimulus
/// fingerprint format SignaturePipeline::golden_cache_key embeds. The
/// sample mode is part of the key because exact and fast_math traces
/// legitimately differ within the ULP tolerance and must never alias.
[[nodiscard]] std::string stimulus_trace_key(const MultitoneWaveform& stimulus,
                                             std::size_t samples_per_period,
                                             SampleMode mode);

/// Thread-safe, LRU-bounded find-or-compute map from exact keys to
/// immutable sampled traces.
class StimulusTraceCache {
public:
    /// Traces are samples_per_period doubles (64 KiB at the paper's 8192),
    /// so the default bound is far smaller than the golden cache's: a
    /// process rarely juggles more than a handful of (stimulus, spp, mode)
    /// setups at once.
    static constexpr std::size_t kDefaultCapacity = 64;

    /// The process-wide instance used by SignaturePipeline.
    [[nodiscard]] static StimulusTraceCache& instance();

    /// Returns the trace cached under `key`, computing and inserting it on
    /// a miss. `compute` runs outside the lock; racing computes are benign
    /// (first insertion wins, duplicates are bit-identical under exact
    /// keys). Returned shared_ptrs keep evicted traces alive for holders.
    [[nodiscard]] std::shared_ptr<const std::vector<double>> find_or_compute(
        const std::string& key,
        const std::function<std::vector<double>()>& compute);

    /// Maximum number of retained entries (>= 1). Shrinking below the
    /// current size evicts LRU entries immediately.
    void set_capacity(std::size_t capacity);
    [[nodiscard]] std::size_t capacity() const;

    /// Statistics. misses() counts actual stimulus samplings performed
    /// through the cache — the probe the trace-cache tests and the
    /// bench_kernels gate assert on.
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t hits() const;
    [[nodiscard]] std::size_t misses() const;
    [[nodiscard]] std::size_t evictions() const;

    /// Drops every entry and resets the counters (test isolation). The
    /// configured capacity is kept.
    void clear();

private:
    /// MRU-first recency list; the map points into it.
    using LruList = std::list<
        std::pair<std::string, std::shared_ptr<const std::vector<double>>>>;

    void evict_to_capacity_locked() REQUIRES(mutex_);

    mutable Mutex mutex_;
    LruList lru_ GUARDED_BY(mutex_);
    std::unordered_map<std::string, LruList::iterator> map_ GUARDED_BY(mutex_);
    std::size_t capacity_ GUARDED_BY(mutex_) = kDefaultCapacity;
    std::size_t hits_ GUARDED_BY(mutex_) = 0;
    std::size_t misses_ GUARDED_BY(mutex_) = 0;
    std::size_t evictions_ GUARDED_BY(mutex_) = 0;
};

} // namespace xysig::core

#endif // XYSIG_CORE_TRACE_CACHE_H
