#include "core/pipeline.h"

#include <utility>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/golden_cache.h"

namespace xysig::core {

SignaturePipeline::SignaturePipeline(monitor::MonitorBank bank,
                                     MultitoneWaveform stimulus,
                                     PipelineOptions options)
    : bank_(std::move(bank)),
      compiled_bank_(kernels::CompiledMonitorBank::compile(bank_)),
      stimulus_(std::move(stimulus)), options_(options) {
    XYSIG_EXPECTS(bank_.size() >= 1);
    XYSIG_EXPECTS(options_.samples_per_period >= 64);
    XYSIG_EXPECTS(options_.noise_sigma >= 0.0);
}

XyTrace SignaturePipeline::trace(const filter::Cut& cut, Rng* noise_rng) const {
    XyTrace tr = cut.respond(stimulus_, options_.samples_per_period);
    if (noise_rng != nullptr && options_.noise_sigma > 0.0)
        tr.add_white_noise(*noise_rng, options_.noise_sigma);
    return tr;
}

capture::Chronogram SignaturePipeline::chronogram(const filter::Cut& cut,
                                                  Rng* noise_rng) const {
    const XyTrace tr = trace(cut, noise_rng);
    capture::Chronogram ideal = capture::Chronogram::from_trace(tr, bank_);
    if (!options_.quantise)
        return ideal;
    const capture::CaptureUnit unit(options_.capture);
    return unit.capture(ideal).signature.to_chronogram();
}

capture::CaptureResult SignaturePipeline::capture(const filter::Cut& cut,
                                                  Rng* noise_rng) const {
    const XyTrace tr = trace(cut, noise_rng);
    const capture::CaptureUnit unit(options_.capture);
    return unit.capture(tr, bank_);
}

std::string SignaturePipeline::golden_cache_key(const filter::Cut& cut) const {
    const std::string cut_key = cut.cache_key();
    if (cut_key.empty())
        return {};
    const std::string bank_fp = bank_.fingerprint();
    if (bank_fp.empty())
        return {};
    // Built with discrete appends: the `"x" + std::string&&` concat chain
    // trips GCC's -Wrestrict false positive at -O3 once inlined, and the
    // hardening lane builds with -Werror.
    std::string key = "cut{";
    key += cut_key;
    key += "}|bank{";
    key += bank_fp;
    key += "}|stim{";
    key += format_double_exact(stimulus_.offset());
    for (const Tone& tone : stimulus_.tones()) {
        key += ';';
        key += format_double_exact(tone.amplitude);
        key += ',';
        key += format_double_exact(tone.frequency_hz);
        key += ',';
        key += format_double_exact(tone.phase_rad);
    }
    key += "}|spp=" + std::to_string(options_.samples_per_period);
    key += "|ck=";
    key += options_.compiled_kernels ? '1' : '0';
    return key;
}

void SignaturePipeline::set_golden(const filter::Cut& golden_cut) {
    NdfScratch scratch;
    std::shared_ptr<const capture::Chronogram> ideal;
    const std::string key = golden_cache_key(golden_cut);
    if (key.empty()) {
        ideal = std::make_shared<const capture::Chronogram>(
            ideal_chronogram(golden_cut, scratch, nullptr));
    } else {
        ideal = GoldenSignatureCache::instance().find_or_compute(
            key, [&] { return ideal_chronogram(golden_cut, scratch, nullptr); });
    }
    if (!options_.quantise) {
        golden_ = *ideal;
        return;
    }
    const capture::CaptureUnit unit(options_.capture);
    golden_ = unit.capture(*ideal).signature.to_chronogram();
}

const capture::Chronogram& SignaturePipeline::golden() const {
    XYSIG_EXPECTS(golden_.has_value());
    return *golden_;
}

double SignaturePipeline::ndf_of(const filter::Cut& cut, Rng* noise_rng) const {
    return ndf(chronogram(cut, noise_rng), golden());
}

capture::Chronogram SignaturePipeline::ideal_chronogram(const filter::Cut& cut,
                                                        NdfScratch& scratch,
                                                        Rng* noise_rng) const {
    double dt = 0.0;
    cut.respond_into(stimulus_, options_.samples_per_period, scratch.xs_,
                     scratch.ys_, dt);
    if (noise_rng != nullptr && options_.noise_sigma > 0.0) {
        // Same draw order as XyTrace::add_white_noise: all of x, then all
        // of y, so noisy results stay bit-identical to the allocating path.
        for (double& v : scratch.xs_)
            v += noise_rng->normal(0.0, options_.noise_sigma);
        for (double& v : scratch.ys_)
            v += noise_rng->normal(0.0, options_.noise_sigma);
    }
    if (options_.compiled_kernels) {
        // Fused zoning -> run-length path: one devirtualised monitor pass
        // per bit-plane, then RLE over the code buffer. Bit-identical to
        // encode_events (tests/kernels pin this).
        compiled_bank_.codes_into(scratch.xs_, scratch.ys_, scratch.codes_);
        capture::Chronogram::encode_codes(scratch.codes_, dt, scratch.events_);
    } else {
        capture::Chronogram::encode_events(scratch.xs_, scratch.ys_, dt, bank_,
                                           scratch.events_);
    }
    const double period = dt * static_cast<double>(scratch.xs_.size());
    return capture::Chronogram(period, static_cast<unsigned>(bank_.size()),
                               scratch.events_);
}

double SignaturePipeline::ndf_of(const filter::Cut& cut, NdfScratch& scratch,
                                 Rng* noise_rng) const {
    // One copy of the observed-chronogram -> NDF sequence: delegating keeps
    // the "bit-identical to evaluate()" contract true by construction.
    return evaluate(cut, scratch, noise_rng).ndf;
}

SignaturePipeline::CutEvaluation SignaturePipeline::evaluate(
    const filter::Cut& cut, NdfScratch& scratch, Rng* noise_rng) const {
    capture::Chronogram observed = ideal_chronogram(cut, scratch, noise_rng);
    if (options_.quantise) {
        const capture::CaptureUnit unit(options_.capture);
        observed = unit.capture(observed).signature.to_chronogram();
    }
    const double value = ndf(observed, golden());
    return {value, std::move(observed)};
}

} // namespace xysig::core
