#include "core/pipeline.h"

#include <utility>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/golden_cache.h"
#include "core/trace_cache.h"

namespace xysig::core {

SignaturePipeline::SignaturePipeline(monitor::MonitorBank bank,
                                     MultitoneWaveform stimulus,
                                     PipelineOptions options)
    : bank_(std::move(bank)),
      compiled_bank_(kernels::CompiledMonitorBank::compile(bank_)),
      stimulus_(std::move(stimulus)), options_(options) {
    XYSIG_EXPECTS(bank_.size() >= 1);
    XYSIG_EXPECTS(options_.samples_per_period >= 64);
    XYSIG_EXPECTS(options_.noise_sigma >= 0.0);
    refresh_stimulus_trace();
}

void SignaturePipeline::set_fast_math(bool enable) {
    if (options_.fast_math == enable)
        return;
    options_.fast_math = enable;
    // The stored golden was computed under the other mode; comparing an
    // observation against it would mix modes, which the keying scheme
    // exists to forbid. Callers re-set it (the sweep service does so per
    // job anyway).
    golden_.reset();
    refresh_stimulus_trace();
}

void SignaturePipeline::refresh_stimulus_trace() {
    const SampleMode mode = sample_mode();
    stimulus_trace_ = StimulusTraceCache::instance().find_or_compute(
        stimulus_trace_key(stimulus_, options_.samples_per_period, mode), [&] {
            std::vector<double> trace;
            SampledSignal::sample_waveform_into(stimulus_, 0.0,
                                                stimulus_.period(),
                                                options_.samples_per_period,
                                                trace, mode);
            return trace;
        });
}

XyTrace SignaturePipeline::trace(const filter::Cut& cut, Rng* noise_rng) const {
    XyTrace tr = cut.respond(stimulus_, options_.samples_per_period);
    if (noise_rng != nullptr && options_.noise_sigma > 0.0)
        tr.add_white_noise(*noise_rng, options_.noise_sigma);
    return tr;
}

capture::Chronogram SignaturePipeline::chronogram(const filter::Cut& cut,
                                                  Rng* noise_rng) const {
    const XyTrace tr = trace(cut, noise_rng);
    capture::Chronogram ideal = capture::Chronogram::from_trace(tr, bank_);
    if (!options_.quantise)
        return ideal;
    const capture::CaptureUnit unit(options_.capture);
    return unit.capture(ideal).signature.to_chronogram();
}

capture::CaptureResult SignaturePipeline::capture(const filter::Cut& cut,
                                                  Rng* noise_rng) const {
    const XyTrace tr = trace(cut, noise_rng);
    const capture::CaptureUnit unit(options_.capture);
    return unit.capture(tr, bank_);
}

std::string SignaturePipeline::golden_cache_key(const filter::Cut& cut) const {
    const std::string cut_key = cut.cache_key();
    if (cut_key.empty())
        return {};
    const std::string bank_fp = bank_.fingerprint();
    if (bank_fp.empty())
        return {};
    // Built with discrete appends: the `"x" + std::string&&` concat chain
    // trips GCC's -Wrestrict false positive at -O3 once inlined, and the
    // hardening lane builds with -Werror.
    std::string key = "cut{";
    key += cut_key;
    key += "}|bank{";
    key += bank_fp;
    key += "}|stim{";
    key += format_double_exact(stimulus_.offset());
    for (const Tone& tone : stimulus_.tones()) {
        key += ';';
        key += format_double_exact(tone.amplitude);
        key += ',';
        key += format_double_exact(tone.frequency_hz);
        key += ',';
        key += format_double_exact(tone.phase_rad);
    }
    key += "}|spp=" + std::to_string(options_.samples_per_period);
    key += "|ck=";
    key += options_.compiled_kernels ? '1' : '0';
    // Goldens from different sampling modes differ within the fast-math
    // ULP tolerance and must never alias (signatures are only comparable
    // within one mode).
    key += "|fm=";
    key += options_.fast_math ? '1' : '0';
    return key;
}

void SignaturePipeline::set_golden(const filter::Cut& golden_cut) {
    NdfScratch scratch;
    std::shared_ptr<const capture::Chronogram> ideal;
    const std::string key = golden_cache_key(golden_cut);
    if (key.empty()) {
        ideal = std::make_shared<const capture::Chronogram>(
            ideal_chronogram(golden_cut, scratch, nullptr));
    } else {
        ideal = GoldenSignatureCache::instance().find_or_compute(
            key, [&] { return ideal_chronogram(golden_cut, scratch, nullptr); });
    }
    if (!options_.quantise) {
        golden_ = *ideal;
        return;
    }
    const capture::CaptureUnit unit(options_.capture);
    golden_ = unit.capture(*ideal).signature.to_chronogram();
}

const capture::Chronogram& SignaturePipeline::golden() const {
    XYSIG_EXPECTS(golden_.has_value());
    return *golden_;
}

double SignaturePipeline::ndf_of(const filter::Cut& cut, Rng* noise_rng) const {
    // Delegates to the scratch path (bit-identical to the virtual
    // chronogram route by the evaluate() contract) so every NDF — one-shot
    // or batched — flows through the shared stimulus trace and the
    // fast-math plumbing.
    NdfScratch scratch;
    return ndf_of(cut, scratch, noise_rng);
}

capture::Chronogram SignaturePipeline::ideal_chronogram(const filter::Cut& cut,
                                                        NdfScratch& scratch,
                                                        Rng* noise_rng) const {
    double dt = 0.0;
    if (cut.x_is_stimulus()) {
        // x is the sampled stimulus bit for bit (the cut promised), so
        // fill it from the shared immutable trace — sampled once per
        // (stimulus, spp, mode) process-wide — and ask the cut for y
        // only. This is the members×samples transcendental saving; in
        // exact mode it is bit-identical to respond_into by construction.
        const std::vector<double>& trace = *stimulus_trace_;
        scratch.xs_.assign(trace.begin(), trace.end());
        cut.respond_y_into(stimulus_, options_.samples_per_period,
                           scratch.ys_, dt, sample_mode());
    } else {
        cut.respond_into(stimulus_, options_.samples_per_period, scratch.xs_,
                         scratch.ys_, dt);
    }
    if (noise_rng != nullptr && options_.noise_sigma > 0.0) {
        // Same draw order as XyTrace::add_white_noise: all of x, then all
        // of y, so noisy results stay bit-identical to the allocating path.
        for (double& v : scratch.xs_)
            v += noise_rng->normal(0.0, options_.noise_sigma);
        for (double& v : scratch.ys_)
            v += noise_rng->normal(0.0, options_.noise_sigma);
    }
    if (options_.compiled_kernels) {
        // Fused zoning -> run-length path: one devirtualised monitor pass
        // per bit-plane, then RLE over the code buffer. Bit-identical to
        // encode_events (tests/kernels pin this).
        compiled_bank_.codes_into(scratch.xs_, scratch.ys_, scratch.codes_,
                                  sample_mode());
        capture::Chronogram::encode_codes(scratch.codes_, dt, scratch.events_);
    } else {
        capture::Chronogram::encode_events(scratch.xs_, scratch.ys_, dt, bank_,
                                           scratch.events_);
    }
    const double period = dt * static_cast<double>(scratch.xs_.size());
    return capture::Chronogram(period, static_cast<unsigned>(bank_.size()),
                               scratch.events_);
}

double SignaturePipeline::ndf_of(const filter::Cut& cut, NdfScratch& scratch,
                                 Rng* noise_rng) const {
    // One copy of the observed-chronogram -> NDF sequence: delegating keeps
    // the "bit-identical to evaluate()" contract true by construction.
    return evaluate(cut, scratch, noise_rng).ndf;
}

SignaturePipeline::CutEvaluation SignaturePipeline::evaluate(
    const filter::Cut& cut, NdfScratch& scratch, Rng* noise_rng) const {
    capture::Chronogram observed = ideal_chronogram(cut, scratch, noise_rng);
    if (options_.quantise) {
        const capture::CaptureUnit unit(options_.capture);
        observed = unit.capture(observed).signature.to_chronogram();
    }
    const double value = ndf(observed, golden());
    return {value, std::move(observed)};
}

} // namespace xysig::core
