#ifndef XYSIG_CORE_BATCH_NDF_H
#define XYSIG_CORE_BATCH_NDF_H

/// \file batch_ndf.h
/// Parallel batch NDF engine: evaluates a vector of CUTs — a fault
/// universe, a set of mismatch samples, an f0/Q sweep — against one golden
/// SignaturePipeline concurrently. Each worker thread owns an NdfScratch,
/// so a batch of thousands of evaluations reuses a handful of trace
/// allocations instead of reallocating per sample. Results are in input
/// order and bit-identical to calling SignaturePipeline::ndf_of one by one.

#include <memory>
#include <span>
#include <vector>

#include "capture/fault_injection.h"
#include "core/sweep.h"

namespace xysig::core {

struct BatchNdfOptions {
    unsigned threads = 0; ///< worker count; 0 = default_thread_count()
    /// Map a CUT whose simulation fails to converge (NumericError) to quiet
    /// NaN instead of aborting the whole batch. Catastrophic fault universes
    /// legitimately contain members with no stable solution — an open
    /// loop-feedback resistor under ideal opamps has no DC operating point —
    /// and one such member must not kill a thousand-point sweep. NaN keeps
    /// "simulation failed" distinguishable from any real NDF; callers decide
    /// whether that means "detected" for their universe.
    /// evaluate_netlist_faults() always evaluates under this policy.
    bool nan_on_numeric_error = false;
};

/// How a SPICE netlist CUT is driven and observed (the SpiceCut parameters
/// shared by every member of a fault universe).
struct SpiceObservation {
    std::string input_source = "Vin"; ///< VoltageSource receiving the stimulus
    std::string x_node = "in";        ///< observed x(t) node
    std::string y_node = "lp";        ///< observed y(t) node
    int settle_periods = 8;           ///< periods discarded before capture
};

class BatchNdfEvaluator {
public:
    using Options = BatchNdfOptions;

    /// The pipeline is kept by reference and must outlive the evaluator;
    /// its golden signature must be set before evaluate() is called.
    explicit BatchNdfEvaluator(const SignaturePipeline& pipeline,
                               Options options = {});

    [[nodiscard]] const SignaturePipeline& pipeline() const noexcept {
        return *pipeline_;
    }

    /// NDF of every CUT against the golden signature, in input order. CUTs
    /// are evaluated concurrently and must not share mutable state:
    /// BehaviouralCut is safe; SpiceCuts must each own a distinct netlist.
    [[nodiscard]] std::vector<double> evaluate(
        std::span<const filter::Cut* const> cuts) const;

    /// Owning-pointer convenience overload.
    [[nodiscard]] std::vector<double> evaluate(
        const std::vector<std::unique_ptr<filter::Cut>>& cuts) const;

    /// Builds the deviated-Biquad universe of a parameter sweep (the
    /// Fig. 8 experiment's inner loop) and evaluates it.
    [[nodiscard]] std::vector<double> evaluate_deviations(
        const filter::Biquad& nominal, std::span<const double> deviations_percent,
        SweptParameter parameter = SweptParameter::f0) const;

    /// One owning SpiceCut per fault, each over its own deep-cloned,
    /// fault-injected netlist — the universe shape evaluate() requires for
    /// concurrent SPICE simulation (see the Cut thread-safety contract).
    [[nodiscard]] static std::vector<std::unique_ptr<filter::Cut>>
    build_fault_universe(const spice::Netlist& nominal,
                         std::span<const capture::NetlistFault> faults,
                         const SpiceObservation& observation);

    /// Batch NDF of a bridging/open fault universe over a SPICE netlist:
    /// clones + injects every fault, then evaluates concurrently. Results
    /// are in fault order and bit-identical to simulating the same faulty
    /// netlists serially, at any thread count. Non-convergent members come
    /// back as quiet NaN (the nan_on_numeric_error policy is always on
    /// here) so one pathological fault cannot abort the universe.
    [[nodiscard]] std::vector<double> evaluate_netlist_faults(
        const spice::Netlist& nominal,
        std::span<const capture::NetlistFault> faults,
        const SpiceObservation& observation) const;

private:
    const SignaturePipeline* pipeline_;
    Options options_;
};

} // namespace xysig::core

#endif // XYSIG_CORE_BATCH_NDF_H
