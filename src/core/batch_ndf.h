#ifndef XYSIG_CORE_BATCH_NDF_H
#define XYSIG_CORE_BATCH_NDF_H

/// \file batch_ndf.h
/// Parallel batch NDF engine: evaluates a vector of CUTs — a fault
/// universe, a set of mismatch samples, an f0/Q sweep — against one golden
/// SignaturePipeline concurrently. Each worker thread owns an NdfScratch,
/// so a batch of thousands of evaluations reuses a handful of trace
/// allocations instead of reallocating per sample. Results are in input
/// order and bit-identical to calling SignaturePipeline::ndf_of one by one.

#include <memory>
#include <span>
#include <vector>

#include "core/sweep.h"

namespace xysig::core {

struct BatchNdfOptions {
    unsigned threads = 0; ///< worker count; 0 = default_thread_count()
};

class BatchNdfEvaluator {
public:
    using Options = BatchNdfOptions;

    /// The pipeline is kept by reference and must outlive the evaluator;
    /// its golden signature must be set before evaluate() is called.
    explicit BatchNdfEvaluator(const SignaturePipeline& pipeline,
                               Options options = {});

    [[nodiscard]] const SignaturePipeline& pipeline() const noexcept {
        return *pipeline_;
    }

    /// NDF of every CUT against the golden signature, in input order. CUTs
    /// are evaluated concurrently and must not share mutable state:
    /// BehaviouralCut is safe; SpiceCuts must each own a distinct netlist.
    [[nodiscard]] std::vector<double> evaluate(
        std::span<const filter::Cut* const> cuts) const;

    /// Owning-pointer convenience overload.
    [[nodiscard]] std::vector<double> evaluate(
        const std::vector<std::unique_ptr<filter::Cut>>& cuts) const;

    /// Builds the deviated-Biquad universe of a parameter sweep (the
    /// Fig. 8 experiment's inner loop) and evaluates it.
    [[nodiscard]] std::vector<double> evaluate_deviations(
        const filter::Biquad& nominal, std::span<const double> deviations_percent,
        SweptParameter parameter = SweptParameter::f0) const;

private:
    const SignaturePipeline* pipeline_;
    Options options_;
};

} // namespace xysig::core

#endif // XYSIG_CORE_BATCH_NDF_H
