#include "core/estimator.h"

#include "common/contracts.h"
#include "common/matrix.h"

namespace xysig::core {

SignatureRegressor::SignatureRegressor(unsigned code_bits)
    : code_bits_(code_bits) {
    XYSIG_EXPECTS(code_bits >= 1 && code_bits <= 16);
}

std::vector<double> SignatureRegressor::features(const capture::Chronogram& ch) const {
    XYSIG_EXPECTS(ch.code_bits() == code_bits_);
    const std::size_t dim = (std::size_t{1} << code_bits_) + 1;
    std::vector<double> f(dim, 0.0);
    for (std::size_t i = 0; i < ch.events().size(); ++i)
        f[ch.events()[i].code] += ch.dwell(i) / ch.period();
    f.back() = 1.0; // bias
    return f;
}

void SignatureRegressor::fit(std::span<const capture::Chronogram> chronograms,
                             std::span<const double> targets, double ridge) {
    XYSIG_EXPECTS(chronograms.size() == targets.size());
    XYSIG_EXPECTS(chronograms.size() >= 2);
    XYSIG_EXPECTS(ridge >= 0.0);

    const std::size_t dim = (std::size_t{1} << code_bits_) + 1;
    Matrix<double> a(chronograms.size(), dim);
    std::vector<double> b(targets.begin(), targets.end());
    for (std::size_t r = 0; r < chronograms.size(); ++r) {
        const auto f = features(chronograms[r]);
        for (std::size_t c = 0; c < dim; ++c)
            a(r, c) = f[c];
    }
    weights_ = solve_least_squares(a, b, ridge);
}

double SignatureRegressor::predict(const capture::Chronogram& ch) const {
    XYSIG_EXPECTS(is_fitted());
    const auto f = features(ch);
    double acc = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i)
        acc += weights_[i] * f[i];
    return acc;
}

} // namespace xysig::core
