#ifndef XYSIG_CORE_NDF_H
#define XYSIG_CORE_NDF_H

/// \file ndf.h
/// The paper's metric (Eq. 2): the normalized discrepancy factor
///   NDF = (1/T) * Integral_0^T dH(S_O(t), S_G(t)) dt,
/// the time-average Hamming distance between the observed and golden
/// zone-code chronograms over one Lissajous period.
///
/// The integral is evaluated exactly by merging the two event sequences
/// (the integrand is piecewise constant), so there is no sampling error; a
/// sampled estimator is provided as an independent cross-check for tests.

#include <vector>

#include "capture/chronogram.h"

namespace xysig::core {

/// Bit-count Hamming distance between two zone codes.
[[nodiscard]] unsigned hamming_distance(unsigned a, unsigned b) noexcept;

/// Exact NDF between two chronograms. Periods must agree within 0.1%
/// (the capture clock quantises the period slightly); the integration
/// window is the smaller period.
[[nodiscard]] double ndf(const capture::Chronogram& observed,
                         const capture::Chronogram& golden);

/// One piece of the Hamming-distance chronogram (Fig. 7, lower plot).
struct HammingSegment {
    double t_begin;
    double t_end;
    unsigned distance;
};

/// The full piecewise Hamming profile dH(S_O(t), S_G(t)) over one period.
[[nodiscard]] std::vector<HammingSegment> hamming_profile(
    const capture::Chronogram& observed, const capture::Chronogram& golden);

/// Riemann-sum NDF with n samples (tests only; converges to ndf()).
[[nodiscard]] double ndf_sampled(const capture::Chronogram& observed,
                                 const capture::Chronogram& golden, std::size_t n);

} // namespace xysig::core

#endif // XYSIG_CORE_NDF_H
