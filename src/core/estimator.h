#ifndef XYSIG_CORE_ESTIMATOR_H
#define XYSIG_CORE_ESTIMATOR_H

/// \file estimator.h
/// Extension (direction of the paper's ref [14]): instead of a PASS/FAIL
/// threshold, regress the parameter deviation from the digital signature.
/// Features are the per-zone dwell-time fractions of the chronogram, which
/// are exactly what the hardware signature {(Zi, Di)} provides; a ridge
/// least-squares model maps them to the f0 deviation in percent.

#include <span>
#include <vector>

#include "capture/chronogram.h"

namespace xysig::core {

/// Ridge regression from signature dwell features to a scalar parameter.
class SignatureRegressor {
public:
    /// \param code_bits width of the zone code (feature dimension 2^bits+1)
    explicit SignatureRegressor(unsigned code_bits);

    /// Dwell-time fraction per zone code, plus a bias term.
    [[nodiscard]] std::vector<double> features(const capture::Chronogram& ch) const;

    /// Fits on chronogram/target pairs. ridge > 0 keeps the under-determined
    /// 2^bits-dimensional problem well-posed with few training points.
    void fit(std::span<const capture::Chronogram> chronograms,
             std::span<const double> targets, double ridge = 1e-6);

    [[nodiscard]] bool is_fitted() const noexcept { return !weights_.empty(); }

    /// Predicted target (e.g. f0 deviation in percent).
    [[nodiscard]] double predict(const capture::Chronogram& ch) const;

private:
    unsigned code_bits_;
    std::vector<double> weights_;
};

} // namespace xysig::core

#endif // XYSIG_CORE_ESTIMATOR_H
