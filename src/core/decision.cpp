#include "core/decision.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "common/error.h"

namespace xysig::core {

NdfThreshold::NdfThreshold(double threshold) : threshold_(threshold) {
    XYSIG_EXPECTS(threshold >= 0.0);
}

namespace {

/// Linear interpolation of the sweep's NDF at a deviation value.
double interpolate_ndf(std::span<const SweepPoint> sweep, double dev) {
    std::vector<SweepPoint> sorted(sweep.begin(), sweep.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const SweepPoint& a, const SweepPoint& b) {
                  return a.deviation_percent < b.deviation_percent;
              });
    if (dev < sorted.front().deviation_percent ||
        dev > sorted.back().deviation_percent)
        throw InvalidInput("NdfThreshold: tolerance outside the sweep range");
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (dev <= sorted[i].deviation_percent) {
            const auto& lo = sorted[i - 1];
            const auto& hi = sorted[i];
            const double span = hi.deviation_percent - lo.deviation_percent;
            // xylint: exact-compare(only an exactly-zero span divides by zero below; duplicated grid point guard)
            if (span == 0.0)
                return lo.ndf_value;
            const double frac = (dev - lo.deviation_percent) / span;
            return lo.ndf_value + frac * (hi.ndf_value - lo.ndf_value);
        }
    }
    return sorted.back().ndf_value;
}

} // namespace

NdfThreshold NdfThreshold::from_sweep(std::span<const SweepPoint> sweep,
                                      double tolerance_percent) {
    XYSIG_EXPECTS(sweep.size() >= 2);
    XYSIG_EXPECTS(tolerance_percent > 0.0);
    const double plus = interpolate_ndf(sweep, tolerance_percent);
    const double minus = interpolate_ndf(sweep, -tolerance_percent);
    return NdfThreshold(std::min(plus, minus));
}

} // namespace xysig::core
