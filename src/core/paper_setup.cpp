#include "core/paper_setup.h"

#include "common/math_util.h"

namespace xysig::core {

MultitoneWaveform paper_stimulus() {
    return MultitoneWaveform(0.5, {{0.3, 5e3, 0.0}, {0.15, 15e3, kPi}});
}

filter::Biquad paper_biquad() {
    filter::BiquadDesign d;
    d.f0 = 14e3;
    d.q = 1.0;
    d.gain = 1.0;
    d.kind = filter::BiquadKind::low_pass;
    return filter::Biquad(d);
}

} // namespace xysig::core
