#ifndef XYSIG_CORE_PIPELINE_H
#define XYSIG_CORE_PIPELINE_H

/// \file pipeline.h
/// End-to-end test pipeline: stimulus -> CUT -> (optional noise) -> monitor
/// bank -> (optional capture quantisation) -> chronogram -> NDF against the
/// golden signature. This is the paper's complete verification flow in one
/// object.

#include <optional>

#include "capture/capture_unit.h"
#include "core/ndf.h"
#include "filter/cut.h"
#include "kernels/compiled_monitor_bank.h"
#include "monitor/monitor_bank.h"

namespace xysig::core {

/// Knobs of the flow.
struct PipelineOptions {
    std::size_t samples_per_period = 8192; ///< CUT simulation resolution
    double noise_sigma = 0.0;              ///< white noise on x and y (V)
    bool quantise = false;                 ///< run through the Fig. 5 capture
    capture::CaptureOptions capture{};     ///< used when quantise is true
    /// Route the scratch NDF path through the compiled zoning/encode
    /// kernels (bit-identical to the virtual path; off is the reference
    /// baseline bench_kernels measures against). Scope: this flag selects
    /// zoning + event encoding only — stimulus sampling always uses the
    /// waveform kernel inside SampledSignal::sample_waveform_into, whose
    /// own bit identity is gated separately (bench_kernels stage 1 and
    /// tests/kernels compare it against the per-sample value() loop).
    bool compiled_kernels = true;
    /// Opt-in SIMD math (kernels/vecmath.h): tone-table sines on the
    /// NDF/golden path evaluate through the batched polynomial kernels —
    /// each sine within 2 ULP of the exact value (gate-enforced by
    /// bench_kernels and tests/kernels/test_vecmath_differential) — and,
    /// when compiled_kernels is also on, the EKV comparators zone through
    /// the batched softplus kernel (within 4 ULP of correctly rounded).
    /// Results are bit-identical across ISAs but NOT to exact mode, so
    /// signatures computed under different modes must never be compared
    /// (golden cache keys and the trace cache key this flag for that
    /// reason). Scope: closed-form sampling and zoning on the
    /// scratch/NDF/golden path for cuts with x_is_stimulus(); SPICE/
    /// transient cuts are solver-driven and keep exact sampling, as do
    /// PWL/pulse/custom waveforms and the virtual observation APIs
    /// (trace()/chronogram()/capture()), which always stay exact.
    /// Default off: exact mode is the paper's contract.
    bool fast_math = false;
};

/// Reusable workspace for repeated NDF evaluations: the trace sample
/// buffers (the dominant allocations — two samples_per_period arrays per
/// call) and the run-length event buffer are written in place, so a batch
/// of thousands of evaluations stops reallocating traces. The small event
/// list is still copied into each Chronogram (tens of entries; a deliberate
/// tradeoff to keep Chronogram immutable). One instance must not be shared
/// between threads concurrently (give each worker its own, as
/// BatchNdfEvaluator does).
class NdfScratch {
private:
    friend class SignaturePipeline;
    std::vector<double> xs_;
    std::vector<double> ys_;
    std::vector<unsigned> codes_; ///< per-sample zone codes (compiled path)
    std::vector<capture::CodeEvent> events_;
};

/// The flow, bound to a monitor bank and a stimulus.
class SignaturePipeline {
public:
    SignaturePipeline(monitor::MonitorBank bank, MultitoneWaveform stimulus,
                      PipelineOptions options = {});

    [[nodiscard]] const monitor::MonitorBank& bank() const noexcept { return bank_; }
    [[nodiscard]] const MultitoneWaveform& stimulus() const noexcept {
        return stimulus_;
    }
    [[nodiscard]] const PipelineOptions& options() const noexcept { return options_; }

    /// One steady-state period of the CUT's (x, y), with noise if configured
    /// (pass the RNG; no RNG means no noise even if noise_sigma > 0).
    [[nodiscard]] XyTrace trace(const filter::Cut& cut, Rng* noise_rng = nullptr) const;

    /// The observed chronogram of a CUT: ideal, or capture-quantised when
    /// options().quantise is set.
    [[nodiscard]] capture::Chronogram chronogram(const filter::Cut& cut,
                                                 Rng* noise_rng = nullptr) const;

    /// Raw captured signature of a CUT (regardless of options().quantise).
    [[nodiscard]] capture::CaptureResult capture(const filter::Cut& cut,
                                                 Rng* noise_rng = nullptr) const;

    /// Stores the golden signature (noise-free by definition). Runs the
    /// same scratch path as ndf_of (compiled kernels when enabled) instead
    /// of the virtual chronogram path, and serves the ideal (unquantised)
    /// chronogram from the process-wide GoldenSignatureCache when the
    /// (bank, stimulus, sampling options, cut) tuple has an exact
    /// fingerprint — see golden_cache_key(). Cache hits are bit-identical
    /// to recomputation; quantisation (options().quantise) is applied after
    /// lookup because it depends on the capture options, which are
    /// deliberately outside the key.
    void set_golden(const filter::Cut& golden_cut);

    /// The cache key set_golden files the ideal golden chronogram under:
    /// exact fingerprints of (golden cut, monitor bank, stimulus,
    /// samples_per_period, compiled_kernels, fast_math). Empty when the
    /// cut or a monitor cannot produce an exact fingerprint — set_golden
    /// then computes without caching.
    [[nodiscard]] std::string golden_cache_key(const filter::Cut& cut) const;

    /// Flips options().fast_math in place (the sweep service applies the
    /// per-job wire flag through this). Changing the mode drops any stored
    /// golden — it was computed under the other mode and comparing across
    /// modes is exactly what the keying scheme exists to prevent — so
    /// callers must set_golden() again before evaluating.
    void set_fast_math(bool enable);

    /// The immutable per-(stimulus, spp, mode) trace shared through the
    /// process-wide StimulusTraceCache; every x_is_stimulus() member of a
    /// job reads this one buffer instead of re-sampling the stimulus.
    /// Exposed for tests and the bench probes.
    [[nodiscard]] const std::shared_ptr<const std::vector<double>>&
    stimulus_trace() const noexcept {
        return stimulus_trace_;
    }
    [[nodiscard]] bool has_golden() const noexcept { return golden_.has_value(); }
    [[nodiscard]] const capture::Chronogram& golden() const;

    /// NDF of a CUT against the stored golden signature.
    [[nodiscard]] double ndf_of(const filter::Cut& cut, Rng* noise_rng = nullptr) const;

    /// Scratch-buffer variant used by the batch engine: bit-identical to
    /// ndf_of(cut, noise_rng) but reuses the caller's buffers across calls.
    [[nodiscard]] double ndf_of(const filter::Cut& cut, NdfScratch& scratch,
                                Rng* noise_rng = nullptr) const;

    /// One member's full evaluation: the NDF plus the observed chronogram it
    /// was computed against (capture-quantised when options().quantise is
    /// set). The NDF is bit-identical to ndf_of(cut, scratch, noise_rng) —
    /// this is what the sweep service streams as (member_id, ndf, signature).
    struct CutEvaluation {
        double ndf;
        capture::Chronogram observed;
    };
    [[nodiscard]] CutEvaluation evaluate(const filter::Cut& cut,
                                         NdfScratch& scratch,
                                         Rng* noise_rng = nullptr) const;

    /// The lowered form of bank() the compiled path zones with.
    [[nodiscard]] const kernels::CompiledMonitorBank& compiled_bank() const noexcept {
        return compiled_bank_;
    }

private:
    /// Shared trunk of ndf_of(scratch) and set_golden: CUT response into the
    /// scratch buffers, optional noise, zoning + run-length encoding (the
    /// compiled kernels when options().compiled_kernels is set), returned as
    /// the ideal (unquantised) chronogram.
    [[nodiscard]] capture::Chronogram ideal_chronogram(const filter::Cut& cut,
                                                       NdfScratch& scratch,
                                                       Rng* noise_rng) const;

    [[nodiscard]] SampleMode sample_mode() const noexcept {
        return options_.fast_math ? SampleMode::fast_math : SampleMode::exact;
    }

    /// (Re)fetches stimulus_trace_ from the StimulusTraceCache for the
    /// current (stimulus, samples_per_period, mode); called at
    /// construction and on set_fast_math.
    void refresh_stimulus_trace();

    monitor::MonitorBank bank_;
    kernels::CompiledMonitorBank compiled_bank_;
    MultitoneWaveform stimulus_;
    PipelineOptions options_;
    std::shared_ptr<const std::vector<double>> stimulus_trace_;
    std::optional<capture::Chronogram> golden_;
};

} // namespace xysig::core

#endif // XYSIG_CORE_PIPELINE_H
