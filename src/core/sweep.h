#ifndef XYSIG_CORE_SWEEP_H
#define XYSIG_CORE_SWEEP_H

/// \file sweep.h
/// Parameter-deviation sweeps: the Fig. 8 experiment (NDF versus % defect
/// in f0) and its Q-deviation sibling.

#include <span>
#include <vector>

#include "core/pipeline.h"
#include "filter/biquad.h"

namespace xysig::core {

/// One sweep sample.
struct SweepPoint {
    double deviation_percent = 0.0;
    double ndf_value = 0.0;
};

/// Which Biquad parameter the sweep deviates.
enum class SweptParameter { f0, q };

/// Runs the deviation sweep of a behavioural Biquad CUT. The pipeline's
/// golden signature is (re)set to the nominal filter first. Sweep points
/// are evaluated concurrently through the batch NDF engine (threads == 0
/// uses default_thread_count()); results do not depend on the thread count.
[[nodiscard]] std::vector<SweepPoint> deviation_sweep(
    SignaturePipeline& pipeline, const filter::Biquad& nominal,
    std::span<const double> deviations_percent,
    SweptParameter parameter = SweptParameter::f0, unsigned threads = 0);

/// Summary of the Fig. 8 shape claims: linearity and +/- symmetry.
struct SweepShape {
    double slope_per_percent = 0.0;  ///< |dNDF/d%| from a linear fit on |dev|
    double r_squared = 0.0;          ///< fit quality (paper: "almost linearly")
    double asymmetry = 0.0;          ///< mean |NDF(+d) - NDF(-d)| / mean NDF
    double max_ndf = 0.0;
};

/// Fits the shape descriptors over a symmetric sweep.
[[nodiscard]] SweepShape analyse_sweep(std::span<const SweepPoint> points);

} // namespace xysig::core

#endif // XYSIG_CORE_SWEEP_H
