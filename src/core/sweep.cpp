#include "core/sweep.h"

#include <cmath>
#include <map>

#include "common/contracts.h"
#include "common/statistics.h"
#include "core/batch_ndf.h"

namespace xysig::core {

std::vector<SweepPoint> deviation_sweep(SignaturePipeline& pipeline,
                                        const filter::Biquad& nominal,
                                        std::span<const double> deviations_percent,
                                        SweptParameter parameter, unsigned threads) {
    XYSIG_EXPECTS(!deviations_percent.empty());
    pipeline.set_golden(filter::BehaviouralCut(nominal));

    const BatchNdfEvaluator batch(pipeline, {.threads = threads});
    const std::vector<double> ndfs =
        batch.evaluate_deviations(nominal, deviations_percent, parameter);

    std::vector<SweepPoint> out;
    out.reserve(deviations_percent.size());
    for (std::size_t i = 0; i < deviations_percent.size(); ++i)
        out.push_back({deviations_percent[i], ndfs[i]});
    return out;
}

SweepShape analyse_sweep(std::span<const SweepPoint> points) {
    XYSIG_EXPECTS(points.size() >= 3);
    SweepShape shape;

    std::vector<double> abs_dev, ndf_vals;
    std::map<double, double> by_dev;
    for (const auto& p : points) {
        abs_dev.push_back(std::abs(p.deviation_percent));
        ndf_vals.push_back(p.ndf_value);
        by_dev[p.deviation_percent] = p.ndf_value;
        shape.max_ndf = std::max(shape.max_ndf, p.ndf_value);
    }

    const LineFit fit = fit_line(abs_dev, ndf_vals);
    shape.slope_per_percent = fit.slope;
    shape.r_squared = fit.r_squared;

    // Symmetry: compare each +d with its -d partner where both exist.
    double asym_acc = 0.0;
    double ndf_acc = 0.0;
    std::size_t pairs = 0;
    for (const auto& [dev, val] : by_dev) {
        if (dev <= 0.0)
            continue;
        const auto it = by_dev.find(-dev);
        if (it == by_dev.end())
            continue;
        asym_acc += std::abs(val - it->second);
        ndf_acc += 0.5 * (val + it->second);
        ++pairs;
    }
    shape.asymmetry = (pairs > 0 && ndf_acc > 0.0) ? asym_acc / (2.0 * ndf_acc) : 0.0;
    return shape;
}

} // namespace xysig::core
