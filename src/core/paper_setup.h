#ifndef XYSIG_CORE_PAPER_SETUP_H
#define XYSIG_CORE_PAPER_SETUP_H

/// \file paper_setup.h
/// The reference experiment configuration used to reproduce the paper's
/// figures. The paper specifies its stimulus and Biquad only graphically;
/// these values were calibrated (see EXPERIMENTS.md) so that the published
/// anchors hold with the Table I monitor bank:
///  * Lissajous period T = 200 us (Fig. 7 time axis),
///  * NDF(+10% f0) ~ 0.10 (paper: 0.1021),
///  * NDF growing almost linearly and nearly symmetrically to ~0.2-0.3 at
///    +/-20% (Fig. 8),
///  * 16 Gray-coded zones with exactly Fig. 6's code set.

#include "filter/biquad.h"
#include "signal/waveform.h"

namespace xysig::core {

/// Two-tone stimulus: 0.5 + 0.3 sin(2pi 5kHz t) + 0.15 sin(2pi 15kHz t + pi).
/// Common period exactly 200 us; excursion [0.05, 0.95] V fits the monitor
/// window.
[[nodiscard]] MultitoneWaveform paper_stimulus();

/// The CUT: low-pass Biquad, f0 = 14 kHz, Q = 1, unity DC gain.
[[nodiscard]] filter::Biquad paper_biquad();

} // namespace xysig::core

#endif // XYSIG_CORE_PAPER_SETUP_H
