#include "capture/chronogram.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace xysig::capture {

Chronogram::Chronogram(double period, unsigned code_bits,
                       std::vector<CodeEvent> events)
    : period_(period), code_bits_(code_bits), events_(std::move(events)) {
    XYSIG_EXPECTS(period > 0.0);
    XYSIG_EXPECTS(code_bits >= 1 && code_bits <= 32);
    XYSIG_EXPECTS(!events_.empty());
    // xylint: exact-compare(contract: the first event is emitted at exactly t=0)
    XYSIG_EXPECTS(events_.front().t == 0.0);
    for (std::size_t i = 1; i < events_.size(); ++i) {
        XYSIG_EXPECTS(events_[i].t > events_[i - 1].t);
        XYSIG_EXPECTS(events_[i].code != events_[i - 1].code);
    }
    XYSIG_EXPECTS(events_.back().t < period);
}

unsigned Chronogram::code_at(double t) const {
    double tf = std::fmod(t, period_);
    if (tf < 0.0)
        tf += period_;
    // Last event with t <= tf.
    const auto it = std::upper_bound(
        events_.begin(), events_.end(), tf,
        [](double lhs, const CodeEvent& ev) { return lhs < ev.t; });
    XYSIG_ASSERT(it != events_.begin());
    return (it - 1)->code;
}

double Chronogram::dwell(std::size_t i) const {
    XYSIG_EXPECTS(i < events_.size());
    const double t_next =
        (i + 1 < events_.size()) ? events_[i + 1].t : period_ + events_.front().t;
    return t_next - events_[i].t;
}

Chronogram Chronogram::from_trace(const XyTrace& trace,
                                  const monitor::MonitorBank& bank) {
    // xylint: exact-compare(contract: traces are rendered from exactly t=0)
    XYSIG_EXPECTS(trace.start_time() == 0.0);
    std::vector<CodeEvent> events;
    encode_events(trace.x().samples(), trace.y().samples(), trace.dt(), bank,
                  events);
    const double period = trace.dt() * static_cast<double>(trace.size());
    return Chronogram(period, static_cast<unsigned>(bank.size()), std::move(events));
}

void Chronogram::encode_events(std::span<const double> xs,
                               std::span<const double> ys, double dt,
                               const monitor::MonitorBank& bank,
                               std::vector<CodeEvent>& events) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    events.clear();
    unsigned prev = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const unsigned code = bank.code(xs[i], ys[i]);
        if (i == 0 || code != prev) {
            events.push_back({static_cast<double>(i) * dt, code});
            prev = code;
        }
    }
}

void Chronogram::encode_codes(std::span<const unsigned> codes, double dt,
                              std::vector<CodeEvent>& events) {
    events.clear();
    unsigned prev = 0;
    for (std::size_t i = 0; i < codes.size(); ++i) {
        const unsigned code = codes[i];
        if (i == 0 || code != prev) {
            events.push_back({static_cast<double>(i) * dt, code});
            prev = code;
        }
    }
}

} // namespace xysig::capture
