#ifndef XYSIG_CAPTURE_SIGNATURE_H
#define XYSIG_CAPTURE_SIGNATURE_H

/// \file signature.h
/// The digital signature of Eq. (1): the sequence of (zone code Zi, dwell
/// interval Di) pairs, with dwell measured in master-clock ticks by the
/// m-bit counter of Fig. 5.

#include <cstdint>
#include <vector>

#include "capture/chronogram.h"

namespace xysig::capture {

/// One captured (Zi, Di) pair. `ticks` is the value read from the m-bit
/// time register, i.e. it may have wrapped if the dwell exceeded 2^m - 1.
struct SignatureEntry {
    unsigned code = 0;
    std::uint64_t ticks = 0;
};

/// A captured digital signature.
class Signature {
public:
    Signature(double f_clk, unsigned counter_bits, unsigned code_bits,
              std::vector<SignatureEntry> entries, std::uint64_t total_ticks);

    [[nodiscard]] double f_clk() const noexcept { return f_clk_; }
    [[nodiscard]] double tick_period() const noexcept { return 1.0 / f_clk_; }
    [[nodiscard]] unsigned counter_bits() const noexcept { return counter_bits_; }
    [[nodiscard]] unsigned code_bits() const noexcept { return code_bits_; }
    [[nodiscard]] const std::vector<SignatureEntry>& entries() const noexcept {
        return entries_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// Length of the captured window in ticks / seconds (one Lissajous
    /// period as seen by the capture clock).
    [[nodiscard]] std::uint64_t total_ticks() const noexcept { return total_ticks_; }
    [[nodiscard]] double duration() const noexcept {
        return static_cast<double>(total_ticks_) * tick_period();
    }

    /// Reconstructs the piecewise-constant code function. Only valid when no
    /// counter overflow occurred (the entries then tile the full window).
    [[nodiscard]] Chronogram to_chronogram() const;

private:
    double f_clk_;
    unsigned counter_bits_;
    unsigned code_bits_;
    std::vector<SignatureEntry> entries_;
    std::uint64_t total_ticks_;
};

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_SIGNATURE_H
