#include "capture/capture_unit.h"

#include <cmath>

#include "common/contracts.h"

namespace xysig::capture {

CaptureUnit::CaptureUnit(const CaptureOptions& options) : options_(options) {
    XYSIG_EXPECTS(options.f_clk > 0.0);
    XYSIG_EXPECTS(options.counter_bits >= 1 && options.counter_bits <= 64);
}

CaptureResult CaptureUnit::capture(const Chronogram& ideal) const {
    const double tick = 1.0 / options_.f_clk;
    const auto total_ticks =
        static_cast<std::uint64_t>(std::llround(ideal.period() / tick));
    XYSIG_EXPECTS(total_ticks >= 2);

    const std::uint64_t wrap =
        (options_.counter_bits >= 64) ? 0 : (std::uint64_t{1} << options_.counter_bits);

    std::vector<SignatureEntry> entries;
    int overflows = 0;

    unsigned prev_code = ideal.code_at(0.0);
    std::uint64_t dwell_ticks = 0;
    for (std::uint64_t k = 1; k <= total_ticks; ++k) {
        ++dwell_ticks;
        // The detector compares the bus at every tick; at the period end the
        // capture window closes and the running dwell is flushed. Sampling
        // happens mid-tick so a code edge exactly on a tick boundary is not
        // at the mercy of floating-point rounding (the hardware analogue:
        // data is stable when the clock edge samples it).
        const bool window_end = (k == total_ticks);
        const unsigned code =
            window_end ? prev_code
                       : ideal.code_at((static_cast<double>(k) + 0.5) * tick);
        if (code != prev_code || window_end) {
            std::uint64_t stored = dwell_ticks;
            if (wrap != 0 && stored >= wrap) {
                stored %= wrap;
                ++overflows;
            }
            entries.push_back({prev_code, stored});
            prev_code = code;
            dwell_ticks = 0;
        }
    }

    // Zones the clock never saw: ideal visits minus captured entries (the
    // capture can only lose visits, never invent them).
    const int missed = static_cast<int>(ideal.zone_visits()) -
                       static_cast<int>(entries.size());

    CaptureResult result{Signature(options_.f_clk, options_.counter_bits,
                                   ideal.code_bits(), std::move(entries),
                                   total_ticks),
                         overflows, missed < 0 ? 0 : missed};
    return result;
}

CaptureResult CaptureUnit::capture(const XyTrace& trace,
                                   const monitor::MonitorBank& bank) const {
    return capture(Chronogram::from_trace(trace, bank));
}

} // namespace xysig::capture
