#include "capture/fault_injection.h"

#include <functional>

#include "common/contracts.h"
#include "common/strings.h"
#include "spice/elements.h"

namespace xysig::capture {

namespace {

/// Rebuilds a chronogram from mapped codes, merging equal neighbours.
Chronogram remap(const Chronogram& ch, const std::function<unsigned(unsigned)>& f) {
    std::vector<CodeEvent> events;
    for (const auto& ev : ch.events()) {
        const unsigned code = f(ev.code);
        if (events.empty() || events.back().code != code)
            events.push_back({ev.t, code});
    }
    return Chronogram(ch.period(), ch.code_bits(), std::move(events));
}

} // namespace

Chronogram apply_stuck_bit(const Chronogram& ch, const StuckBitFault& fault) {
    XYSIG_EXPECTS(fault.bit_index < ch.code_bits());
    const unsigned mask = 1u << fault.bit_index;
    return remap(ch, [&](unsigned code) {
        return fault.stuck_value ? (code | mask) : (code & ~mask);
    });
}

Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a, unsigned bit_b) {
    XYSIG_EXPECTS(bit_a < ch.code_bits());
    XYSIG_EXPECTS(bit_b < ch.code_bits());
    XYSIG_EXPECTS(bit_a != bit_b);
    return remap(ch, [&](unsigned code) {
        const unsigned a = (code >> bit_a) & 1u;
        const unsigned b = (code >> bit_b) & 1u;
        unsigned out = code & ~((1u << bit_a) | (1u << bit_b));
        out |= a << bit_b;
        out |= b << bit_a;
        return out;
    });
}

// -------------------------------------------------------- circuit-side faults

std::string NetlistFault::description() const {
    if (kind == Kind::bridging)
        return "bridge(" + node_a + "," + node_b + "," + format_double(value, 4) +
               ")";
    return "open(" + device + ",x" + format_double(value, 4) + ")";
}

std::vector<NetlistFault> enumerate_bridging_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options) {
    XYSIG_EXPECTS(options.bridge_resistance > 0.0);
    std::vector<NetlistFault> faults;
    const auto n = static_cast<spice::NodeId>(nominal.node_count());
    for (spice::NodeId a = 1; a < n; ++a) {
        if (options.bridge_to_ground)
            faults.push_back({NetlistFault::Kind::bridging,
                              nominal.node_name(a), nominal.node_name(spice::kGround),
                              {}, options.bridge_resistance});
        for (spice::NodeId b = a + 1; b < n; ++b)
            faults.push_back({NetlistFault::Kind::bridging, nominal.node_name(a),
                              nominal.node_name(b), {},
                              options.bridge_resistance});
    }
    return faults;
}

std::vector<NetlistFault> enumerate_open_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options) {
    XYSIG_EXPECTS(options.open_factor > 1.0);
    std::vector<NetlistFault> faults;
    for (const auto& dev : nominal.devices()) {
        if (dynamic_cast<const spice::Resistor*>(dev.get()) != nullptr ||
            dynamic_cast<const spice::Capacitor*>(dev.get()) != nullptr)
            faults.push_back({NetlistFault::Kind::open, {}, {}, dev->name(),
                              options.open_factor});
    }
    return faults;
}

spice::Netlist apply_fault(const spice::Netlist& nominal,
                           const NetlistFault& fault) {
    spice::Netlist nl = nominal.clone();
    (void)inject_fault(nl, fault);
    return nl;
}

FaultRepair inject_fault(spice::Netlist& netlist, const NetlistFault& fault) {
    FaultRepair repair;
    repair.kind = fault.kind;
    if (fault.kind == NetlistFault::Kind::bridging) {
        XYSIG_EXPECTS(fault.value > 0.0);
        // find_node() before add(): an unknown node must leave the netlist
        // untouched instead of half-injecting.
        const spice::NodeId a = netlist.find_node(fault.node_a);
        const spice::NodeId b = netlist.find_node(fault.node_b);
        repair.bridge_device = "Rbridge_" + fault.node_a + "_" + fault.node_b;
        netlist.add<spice::Resistor>(repair.bridge_device, a, b, fault.value);
        return repair;
    }
    XYSIG_EXPECTS(fault.value > 1.0);
    repair.faulted_device = fault.device;
    if (auto* r = netlist.try_get<spice::Resistor>(fault.device)) {
        repair.original_value = r->resistance();
        r->set_resistance(repair.original_value * fault.value);
        return repair;
    }
    if (auto* c = netlist.try_get<spice::Capacitor>(fault.device)) {
        repair.original_value = c->capacitance();
        c->set_capacitance(repair.original_value / fault.value);
        return repair;
    }
    throw InvalidInput("inject_fault: open fault target '" + fault.device +
                       "' is not a Resistor or Capacitor");
}

void repair_fault(spice::Netlist& netlist, const FaultRepair& repair) {
    if (repair.kind == NetlistFault::Kind::bridging) {
        netlist.remove_device(repair.bridge_device);
        return;
    }
    if (auto* r = netlist.try_get<spice::Resistor>(repair.faulted_device)) {
        r->set_resistance(repair.original_value);
        return;
    }
    netlist.get<spice::Capacitor>(repair.faulted_device)
        .set_capacitance(repair.original_value);
}

} // namespace xysig::capture
