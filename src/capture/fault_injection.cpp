#include "capture/fault_injection.h"

#include <functional>

#include "common/contracts.h"

namespace xysig::capture {

namespace {

/// Rebuilds a chronogram from mapped codes, merging equal neighbours.
Chronogram remap(const Chronogram& ch, const std::function<unsigned(unsigned)>& f) {
    std::vector<CodeEvent> events;
    for (const auto& ev : ch.events()) {
        const unsigned code = f(ev.code);
        if (events.empty() || events.back().code != code)
            events.push_back({ev.t, code});
    }
    return Chronogram(ch.period(), ch.code_bits(), std::move(events));
}

} // namespace

Chronogram apply_stuck_bit(const Chronogram& ch, const StuckBitFault& fault) {
    XYSIG_EXPECTS(fault.bit_index < ch.code_bits());
    const unsigned mask = 1u << fault.bit_index;
    return remap(ch, [&](unsigned code) {
        return fault.stuck_value ? (code | mask) : (code & ~mask);
    });
}

Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a, unsigned bit_b) {
    XYSIG_EXPECTS(bit_a < ch.code_bits());
    XYSIG_EXPECTS(bit_b < ch.code_bits());
    XYSIG_EXPECTS(bit_a != bit_b);
    return remap(ch, [&](unsigned code) {
        const unsigned a = (code >> bit_a) & 1u;
        const unsigned b = (code >> bit_b) & 1u;
        unsigned out = code & ~((1u << bit_a) | (1u << bit_b));
        out |= a << bit_b;
        out |= b << bit_a;
        return out;
    });
}

} // namespace xysig::capture
