#include "capture/fault_injection.h"

#include <functional>

#include "common/contracts.h"
#include "common/strings.h"
#include "spice/elements.h"

namespace xysig::capture {

namespace {

/// Rebuilds a chronogram from mapped codes, merging equal neighbours.
Chronogram remap(const Chronogram& ch, const std::function<unsigned(unsigned)>& f) {
    std::vector<CodeEvent> events;
    for (const auto& ev : ch.events()) {
        const unsigned code = f(ev.code);
        if (events.empty() || events.back().code != code)
            events.push_back({ev.t, code});
    }
    return Chronogram(ch.period(), ch.code_bits(), std::move(events));
}

} // namespace

Chronogram apply_stuck_bit(const Chronogram& ch, const StuckBitFault& fault) {
    XYSIG_EXPECTS(fault.bit_index < ch.code_bits());
    const unsigned mask = 1u << fault.bit_index;
    return remap(ch, [&](unsigned code) {
        return fault.stuck_value ? (code | mask) : (code & ~mask);
    });
}

Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a, unsigned bit_b) {
    XYSIG_EXPECTS(bit_a < ch.code_bits());
    XYSIG_EXPECTS(bit_b < ch.code_bits());
    XYSIG_EXPECTS(bit_a != bit_b);
    return remap(ch, [&](unsigned code) {
        const unsigned a = (code >> bit_a) & 1u;
        const unsigned b = (code >> bit_b) & 1u;
        unsigned out = code & ~((1u << bit_a) | (1u << bit_b));
        out |= a << bit_b;
        out |= b << bit_a;
        return out;
    });
}

// -------------------------------------------------------- circuit-side faults

std::string NetlistFault::description() const {
    if (kind == Kind::bridging)
        return "bridge(" + node_a + "," + node_b + "," + format_double(value, 4) +
               ")";
    return "open(" + device + ",x" + format_double(value, 4) + ")";
}

std::vector<NetlistFault> enumerate_bridging_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options) {
    XYSIG_EXPECTS(options.bridge_resistance > 0.0);
    std::vector<NetlistFault> faults;
    const auto n = static_cast<spice::NodeId>(nominal.node_count());
    for (spice::NodeId a = 1; a < n; ++a) {
        if (options.bridge_to_ground)
            faults.push_back({NetlistFault::Kind::bridging,
                              nominal.node_name(a), nominal.node_name(spice::kGround),
                              {}, options.bridge_resistance});
        for (spice::NodeId b = a + 1; b < n; ++b)
            faults.push_back({NetlistFault::Kind::bridging, nominal.node_name(a),
                              nominal.node_name(b), {},
                              options.bridge_resistance});
    }
    return faults;
}

std::vector<NetlistFault> enumerate_open_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options) {
    XYSIG_EXPECTS(options.open_factor > 1.0);
    std::vector<NetlistFault> faults;
    for (const auto& dev : nominal.devices()) {
        if (dynamic_cast<const spice::Resistor*>(dev.get()) != nullptr ||
            dynamic_cast<const spice::Capacitor*>(dev.get()) != nullptr)
            faults.push_back({NetlistFault::Kind::open, {}, {}, dev->name(),
                              options.open_factor});
    }
    return faults;
}

spice::Netlist apply_fault(const spice::Netlist& nominal,
                           const NetlistFault& fault) {
    spice::Netlist nl = nominal.clone();
    if (fault.kind == NetlistFault::Kind::bridging) {
        XYSIG_EXPECTS(fault.value > 0.0);
        nl.add<spice::Resistor>("Rbridge_" + fault.node_a + "_" + fault.node_b,
                                nl.find_node(fault.node_a),
                                nl.find_node(fault.node_b), fault.value);
        return nl;
    }
    XYSIG_EXPECTS(fault.value > 1.0);
    if (auto* r = nl.try_get<spice::Resistor>(fault.device)) {
        r->set_resistance(r->resistance() * fault.value);
        return nl;
    }
    if (auto* c = nl.try_get<spice::Capacitor>(fault.device)) {
        c->set_capacitance(c->capacitance() / fault.value);
        return nl;
    }
    throw InvalidInput("apply_fault: open fault target '" + fault.device +
                       "' is not a Resistor or Capacitor");
}

} // namespace xysig::capture
