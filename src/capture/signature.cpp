#include "capture/signature.h"

#include <numeric>

#include "common/contracts.h"
#include "common/error.h"

namespace xysig::capture {

Signature::Signature(double f_clk, unsigned counter_bits, unsigned code_bits,
                     std::vector<SignatureEntry> entries, std::uint64_t total_ticks)
    : f_clk_(f_clk), counter_bits_(counter_bits), code_bits_(code_bits),
      entries_(std::move(entries)), total_ticks_(total_ticks) {
    XYSIG_EXPECTS(f_clk > 0.0);
    XYSIG_EXPECTS(counter_bits >= 1 && counter_bits <= 64);
    XYSIG_EXPECTS(code_bits >= 1 && code_bits <= 32);
    XYSIG_EXPECTS(total_ticks >= 1);
}

Chronogram Signature::to_chronogram() const {
    XYSIG_EXPECTS(!entries_.empty());
    const std::uint64_t sum = std::accumulate(
        entries_.begin(), entries_.end(), std::uint64_t{0},
        [](std::uint64_t acc, const SignatureEntry& e) { return acc + e.ticks; });
    if (sum != total_ticks_)
        throw NumericError("Signature::to_chronogram: entries do not tile the "
                           "capture window (counter overflow corrupted the "
                           "time registers)");

    std::vector<CodeEvent> events;
    events.reserve(entries_.size());
    std::uint64_t t = 0;
    for (const auto& e : entries_) {
        XYSIG_EXPECTS(e.ticks >= 1);
        events.push_back({static_cast<double>(t) * tick_period(), e.code});
        t += e.ticks;
    }
    return Chronogram(duration(), code_bits_, std::move(events));
}

} // namespace xysig::capture
