#ifndef XYSIG_CAPTURE_CAPTURE_UNIT_H
#define XYSIG_CAPTURE_CAPTURE_UNIT_H

/// \file capture_unit.h
/// Behavioural model of the asynchronous capture of Fig. 5: the monitor
/// code bus is watched by a transition detector; on every code change the
/// m-bit counter value (ticks of the master clock since the previous
/// change) is stored with the previous code, and the counter resets.
///
/// The model is cycle-accurate at master-clock granularity: codes are
/// observed at clock ticks, so zones dwelt in for less than one tick are
/// missed and dwells are quantised to the tick — exactly the error sources
/// the real hardware has. Counter overflow wraps modulo 2^m (hardware-
/// faithful) and is reported.

#include "capture/signature.h"

namespace xysig::capture {

/// Hardware parameters of the capture unit.
struct CaptureOptions {
    double f_clk = 10e6;       ///< master clock (Hz)
    unsigned counter_bits = 16;///< m of Fig. 5
};

/// Result of one capture run.
struct CaptureResult {
    Signature signature;
    int overflow_events = 0; ///< dwells that wrapped the m-bit counter
    int missed_zones = 0;    ///< ideal zone visits shorter than one tick
};

/// The capture hardware.
class CaptureUnit {
public:
    explicit CaptureUnit(const CaptureOptions& options);

    [[nodiscard]] const CaptureOptions& options() const noexcept { return options_; }

    /// Captures one period of an ideal chronogram.
    [[nodiscard]] CaptureResult capture(const Chronogram& ideal) const;

    /// Convenience: trace -> ideal chronogram -> capture.
    [[nodiscard]] CaptureResult capture(const XyTrace& trace,
                                        const monitor::MonitorBank& bank) const;

private:
    CaptureOptions options_;
};

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_CAPTURE_UNIT_H
