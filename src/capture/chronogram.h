#ifndef XYSIG_CAPTURE_CHRONOGRAM_H
#define XYSIG_CAPTURE_CHRONOGRAM_H

/// \file chronogram.h
/// Piecewise-constant zone-code functions of time over one Lissajous period
/// — the S(t) functions the NDF metric integrates (paper Fig. 7).

#include <span>
#include <vector>

#include "monitor/monitor_bank.h"
#include "signal/sampled.h"

namespace xysig::capture {

/// A code change: the zone code holds `code` from time t until the next
/// event (or the period end, wrapping to the first event).
struct CodeEvent {
    double t = 0.0;
    unsigned code = 0;
};

/// Zone code as a function of time on [0, period).
class Chronogram {
public:
    /// events must be non-empty, start at t = 0, be strictly increasing and
    /// end before `period`; consecutive events must change the code.
    Chronogram(double period, unsigned code_bits, std::vector<CodeEvent> events);

    [[nodiscard]] double period() const noexcept { return period_; }
    [[nodiscard]] unsigned code_bits() const noexcept { return code_bits_; }
    [[nodiscard]] const std::vector<CodeEvent>& events() const noexcept {
        return events_;
    }
    [[nodiscard]] std::size_t zone_visits() const noexcept { return events_.size(); }

    /// Code at time t (t folded into [0, period)).
    [[nodiscard]] unsigned code_at(double t) const;

    /// Dwell time of the i-th visit (to the next event, wrapping).
    [[nodiscard]] double dwell(std::size_t i) const;

    /// Builds the ideal (unquantised) chronogram of a trace through a
    /// monitor bank: the code of every sample, run-length encoded. The trace
    /// must start at t = 0 (one steady-state period).
    static Chronogram from_trace(const XyTrace& trace,
                                 const monitor::MonitorBank& bank);

    /// The run-length encoding step of from_trace on raw sample buffers:
    /// clears `events` and fills it with the code changes of the (x, y)
    /// samples (t = 0 trace, spacing dt). Shared with the batch engine so
    /// per-thread event buffers can be reused across evaluations.
    static void encode_events(std::span<const double> xs,
                              std::span<const double> ys, double dt,
                              const monitor::MonitorBank& bank,
                              std::vector<CodeEvent>& events);

    /// The run-length-compression step alone, over a precomputed per-sample
    /// code buffer (as produced by kernels::CompiledMonitorBank::codes_into).
    /// Together those two calls are the fused sampling -> zoning -> event
    /// path of the compiled kernels; the events are bit-identical to
    /// encode_events over the same trace.
    static void encode_codes(std::span<const unsigned> codes, double dt,
                             std::vector<CodeEvent>& events);

private:
    double period_;
    unsigned code_bits_;
    std::vector<CodeEvent> events_;
};

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_CHRONOGRAM_H
