#ifndef XYSIG_CAPTURE_FAULT_INJECTION_H
#define XYSIG_CAPTURE_FAULT_INJECTION_H

/// \file fault_injection.h
/// Faults of the test hardware itself (extension beyond the paper): what
/// happens to the verdict when the monitor bus or the capture unit is
/// defective? Used by the ablation bench to quantify tester-induced escapes
/// and overkill.

#include "capture/chronogram.h"

namespace xysig::capture {

/// A monitor output line stuck at 0 or 1.
struct StuckBitFault {
    unsigned bit_index = 0; ///< 0 = LSB of the zone code
    bool stuck_value = false;
};

/// Applies a stuck line to every code of a chronogram. Adjacent events that
/// become equal-coded are merged (the transition detector would not fire).
[[nodiscard]] Chronogram apply_stuck_bit(const Chronogram& ch,
                                         const StuckBitFault& fault);

/// Two monitor lines swapped in the bus wiring (a layout/assembly defect).
[[nodiscard]] Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a,
                                            unsigned bit_b);

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_FAULT_INJECTION_H
