#ifndef XYSIG_CAPTURE_FAULT_INJECTION_H
#define XYSIG_CAPTURE_FAULT_INJECTION_H

/// \file fault_injection.h
/// Fault models on both sides of the tester:
///  * tester-side faults (stuck / swapped monitor bus lines) applied to a
///    chronogram — what the verdict does when the test hardware itself is
///    defective (extension beyond the paper);
///  * circuit-side catastrophic faults (bridging shorts and opens) applied
///    to a SPICE netlist — the classic analog fault universe the signature
///    method is graded against. Universes are enumerated structurally from
///    the nominal netlist and applied to deep clones, so every faulty
///    circuit is an independent, re-entrant simulation target for the batch
///    NDF engine.

#include <string>
#include <vector>

#include "capture/chronogram.h"
#include "spice/netlist.h"

namespace xysig::capture {

/// A monitor output line stuck at 0 or 1.
struct StuckBitFault {
    unsigned bit_index = 0; ///< 0 = LSB of the zone code
    bool stuck_value = false;
};

/// Applies a stuck line to every code of a chronogram. Adjacent events that
/// become equal-coded are merged (the transition detector would not fire).
[[nodiscard]] Chronogram apply_stuck_bit(const Chronogram& ch,
                                         const StuckBitFault& fault);

/// Two monitor lines swapped in the bus wiring (a layout/assembly defect).
[[nodiscard]] Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a,
                                            unsigned bit_b);

// ------------------------------------------------------ circuit-side faults

/// One catastrophic defect of the circuit under test.
struct NetlistFault {
    enum class Kind {
        bridging, ///< resistive short between two circuit nodes
        open      ///< broken component: R scaled up / C scaled down by `value`
    };

    Kind kind = Kind::bridging;
    std::string node_a; ///< bridging: first bridged node
    std::string node_b; ///< bridging: second bridged node
    std::string device; ///< open: name of the faulted Resistor or Capacitor
    /// Bridge resistance in ohms (bridging) or open severity factor (open:
    /// the resistance is multiplied / the capacitance divided by it).
    double value = 0.0;

    /// Stable one-line label ("bridge(bp,lp,100)" / "open(R2,x1e+06)").
    [[nodiscard]] std::string description() const;
};

/// Knobs of the structural fault enumeration.
struct FaultUniverseOptions {
    double bridge_resistance = 100.0; ///< ohms of every bridging short
    double open_factor = 1e6;         ///< severity of every open defect
    /// Also include bridges from each signal node to ground (shorts to the
    /// substrate); off by default because grounding the driven input node
    /// mostly measures the source impedance, not the CUT.
    bool bridge_to_ground = false;
};

/// Every unordered pair of distinct non-ground nodes as a bridging fault
/// (plus node-to-ground bridges when enabled). Deterministic order: by node
/// id, lexicographic (a < b).
[[nodiscard]] std::vector<NetlistFault> enumerate_bridging_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options = {});

/// Every Resistor and Capacitor as an open fault, in device insertion order.
[[nodiscard]] std::vector<NetlistFault> enumerate_open_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options = {});

/// Deep-clones the nominal netlist and applies one fault to the clone; the
/// nominal circuit is never touched. Throws InvalidInput when the fault
/// references unknown nodes/devices or an open targets an unsupported
/// device type.
[[nodiscard]] spice::Netlist apply_fault(const spice::Netlist& nominal,
                                         const NetlistFault& fault);

/// Everything needed to undo one inject_fault() exactly: the injected
/// bridge device's name, or the faulted component's exact pre-fault value.
struct FaultRepair {
    NetlistFault::Kind kind = NetlistFault::Kind::bridging;
    std::string bridge_device;   ///< bridging: name of the injected resistor
    std::string faulted_device;  ///< open: name of the scaled R / C
    double original_value = 0.0; ///< open: exact pre-fault resistance/capacitance
};

/// Applies one fault to `netlist` IN PLACE and returns the undo record.
/// Injecting then repairing leaves the netlist structurally and numerically
/// identical to before (the open repair restores the exact stored value, and
/// the bridge repair removes the appended device), so a faulty netlist built
/// by inject_fault() simulates bit-identically to one built by apply_fault()
/// on a fresh clone. This inject/repair pair is what lets a sweep-service
/// worker reuse ONE netlist clone across an entire fault universe instead of
/// cloning per fault. Throws InvalidInput on unknown nodes/devices, leaving
/// the netlist untouched.
[[nodiscard]] FaultRepair inject_fault(spice::Netlist& netlist,
                                       const NetlistFault& fault);

/// Undoes one inject_fault(). Repairs must be applied in reverse injection
/// order when several faults are stacked (the usual case is exactly one).
void repair_fault(spice::Netlist& netlist, const FaultRepair& repair);

/// RAII inject/repair: injects in the constructor, repairs in the
/// destructor, so a worker loop that throws mid-evaluation (e.g. a
/// non-convergent member) still hands the next fault a pristine netlist.
class ScopedFaultInjection {
public:
    ScopedFaultInjection(spice::Netlist& netlist, const NetlistFault& fault)
        : netlist_(&netlist), repair_(inject_fault(netlist, fault)) {}
    ~ScopedFaultInjection() { repair_fault(*netlist_, repair_); }

    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

private:
    spice::Netlist* netlist_;
    FaultRepair repair_;
};

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_FAULT_INJECTION_H
