#ifndef XYSIG_CAPTURE_FAULT_INJECTION_H
#define XYSIG_CAPTURE_FAULT_INJECTION_H

/// \file fault_injection.h
/// Fault models on both sides of the tester:
///  * tester-side faults (stuck / swapped monitor bus lines) applied to a
///    chronogram — what the verdict does when the test hardware itself is
///    defective (extension beyond the paper);
///  * circuit-side catastrophic faults (bridging shorts and opens) applied
///    to a SPICE netlist — the classic analog fault universe the signature
///    method is graded against. Universes are enumerated structurally from
///    the nominal netlist and applied to deep clones, so every faulty
///    circuit is an independent, re-entrant simulation target for the batch
///    NDF engine.

#include <string>
#include <vector>

#include "capture/chronogram.h"
#include "spice/netlist.h"

namespace xysig::capture {

/// A monitor output line stuck at 0 or 1.
struct StuckBitFault {
    unsigned bit_index = 0; ///< 0 = LSB of the zone code
    bool stuck_value = false;
};

/// Applies a stuck line to every code of a chronogram. Adjacent events that
/// become equal-coded are merged (the transition detector would not fire).
[[nodiscard]] Chronogram apply_stuck_bit(const Chronogram& ch,
                                         const StuckBitFault& fault);

/// Two monitor lines swapped in the bus wiring (a layout/assembly defect).
[[nodiscard]] Chronogram apply_swapped_bits(const Chronogram& ch, unsigned bit_a,
                                            unsigned bit_b);

// ------------------------------------------------------ circuit-side faults

/// One catastrophic defect of the circuit under test.
struct NetlistFault {
    enum class Kind {
        bridging, ///< resistive short between two circuit nodes
        open      ///< broken component: R scaled up / C scaled down by `value`
    };

    Kind kind = Kind::bridging;
    std::string node_a; ///< bridging: first bridged node
    std::string node_b; ///< bridging: second bridged node
    std::string device; ///< open: name of the faulted Resistor or Capacitor
    /// Bridge resistance in ohms (bridging) or open severity factor (open:
    /// the resistance is multiplied / the capacitance divided by it).
    double value = 0.0;

    /// Stable one-line label ("bridge(bp,lp,100)" / "open(R2,x1e+06)").
    [[nodiscard]] std::string description() const;
};

/// Knobs of the structural fault enumeration.
struct FaultUniverseOptions {
    double bridge_resistance = 100.0; ///< ohms of every bridging short
    double open_factor = 1e6;         ///< severity of every open defect
    /// Also include bridges from each signal node to ground (shorts to the
    /// substrate); off by default because grounding the driven input node
    /// mostly measures the source impedance, not the CUT.
    bool bridge_to_ground = false;
};

/// Every unordered pair of distinct non-ground nodes as a bridging fault
/// (plus node-to-ground bridges when enabled). Deterministic order: by node
/// id, lexicographic (a < b).
[[nodiscard]] std::vector<NetlistFault> enumerate_bridging_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options = {});

/// Every Resistor and Capacitor as an open fault, in device insertion order.
[[nodiscard]] std::vector<NetlistFault> enumerate_open_faults(
    const spice::Netlist& nominal, const FaultUniverseOptions& options = {});

/// Deep-clones the nominal netlist and applies one fault to the clone; the
/// nominal circuit is never touched. Throws InvalidInput when the fault
/// references unknown nodes/devices or an open targets an unsupported
/// device type.
[[nodiscard]] spice::Netlist apply_fault(const spice::Netlist& nominal,
                                         const NetlistFault& fault);

} // namespace xysig::capture

#endif // XYSIG_CAPTURE_FAULT_INJECTION_H
