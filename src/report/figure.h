#ifndef XYSIG_REPORT_FIGURE_H
#define XYSIG_REPORT_FIGURE_H

/// \file figure.h
/// Bench output helpers: each reproduced figure is emitted as labelled CSV
/// series (machine-readable) plus an ASCII rendering (eyeball-readable),
/// and paper-vs-measured anchors are printed as a comparison table.

#include <ostream>
#include <string>
#include <vector>

namespace xysig::report {

/// One named data series.
struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
};

/// A reproduced figure: id ("fig8"), title, axis labels and its series.
class Figure {
public:
    Figure(std::string id, std::string title, std::string x_label,
           std::string y_label);

    void add_series(Series series);
    [[nodiscard]] const std::vector<Series>& series() const noexcept {
        return series_;
    }

    /// Prints header, one CSV block per series, and a combined ASCII plot
    /// (each series gets its own glyph: 1-9, a-z).
    void print(std::ostream& out, bool with_ascii_plot = true) const;

private:
    std::string id_;
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<Series> series_;
};

/// Paper-vs-measured anchor table.
class PaperComparison {
public:
    explicit PaperComparison(std::string title);

    void add(const std::string& quantity, const std::string& paper_value,
             const std::string& measured_value, const std::string& note = "");
    void add(const std::string& quantity, const std::string& paper_value,
             double measured_value, const std::string& note = "");

    void print(std::ostream& out) const;

private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xysig::report

#endif // XYSIG_REPORT_FIGURE_H
