#include "report/figure.h"

#include <algorithm>

#include "common/ascii_plot.h"
#include "common/contracts.h"
#include "common/csv.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "common/table.h"

namespace xysig::report {

Figure::Figure(std::string id, std::string title, std::string x_label,
               std::string y_label)
    : id_(std::move(id)), title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {
    XYSIG_EXPECTS(!id_.empty());
}

void Figure::add_series(Series series) {
    XYSIG_EXPECTS(series.xs.size() == series.ys.size());
    XYSIG_EXPECTS(!series.xs.empty());
    series_.push_back(std::move(series));
}

void Figure::print(std::ostream& out, bool with_ascii_plot) const {
    out << "=== [" << id_ << "] " << title_ << " ===\n";
    for (const auto& s : series_) {
        out << "-- series: " << s.name << " --\n";
        CsvWriter::write_series(out, x_label_, s.xs, y_label_ + ":" + s.name, s.ys);
    }
    if (!with_ascii_plot || series_.empty())
        return;

    double x_lo = series_.front().xs.front(), x_hi = x_lo;
    double y_lo = series_.front().ys.front(), y_hi = y_lo;
    for (const auto& s : series_) {
        x_lo = std::min(x_lo, min_value(s.xs));
        x_hi = std::max(x_hi, max_value(s.xs));
        y_lo = std::min(y_lo, min_value(s.ys));
        y_hi = std::max(y_hi, max_value(s.ys));
    }
    // xylint: exact-compare(exactly-degenerate axis range guard)
    if (x_hi == x_lo)
        x_hi = x_lo + 1.0;
    // xylint: exact-compare(exactly-degenerate axis range guard)
    if (y_hi == y_lo)
        y_hi = y_lo + 1.0;
    AsciiCanvas canvas(x_lo, x_hi, y_lo, y_hi);
    static constexpr char glyphs[] = "123456789abcdefghijklmnopqrstuvwxyz";
    for (std::size_t i = 0; i < series_.size(); ++i)
        canvas.polyline(series_[i].xs, series_[i].ys,
                        glyphs[i % (sizeof(glyphs) - 1)]);
    canvas.print(out, title_ + "  [x: " + x_label_ + ", y: " + y_label_ + "]");
    for (std::size_t i = 0; i < series_.size(); ++i)
        out << "  glyph '" << glyphs[i % (sizeof(glyphs) - 1)]
            << "' = " << series_[i].name << "\n";
}

PaperComparison::PaperComparison(std::string title) : title_(std::move(title)) {}

void PaperComparison::add(const std::string& quantity, const std::string& paper_value,
                          const std::string& measured_value, const std::string& note) {
    rows_.push_back({quantity, paper_value, measured_value, note});
}

void PaperComparison::add(const std::string& quantity, const std::string& paper_value,
                          double measured_value, const std::string& note) {
    add(quantity, paper_value, format_double(measured_value, 4), note);
}

void PaperComparison::print(std::ostream& out) const {
    out << "--- " << title_ << ": paper vs measured ---\n";
    TextTable table({"quantity", "paper", "measured", "note"});
    for (const auto& row : rows_)
        table.add_row(row);
    table.print(out);
}

} // namespace xysig::report
