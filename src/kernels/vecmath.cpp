#include "kernels/vecmath.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/error.h"
#include "kernels/vecmath_detail.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace xysig::kernels::vecmath {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
/// Two lanes via SSE2 (baseline on x86-64; no SSE4 instructions, so the
/// compares/selects are built from the integer sub/and/or primitives).
struct Sse2Pack {
    static constexpr std::size_t width = 2;
    using pack = __m128d;
    using ipack = __m128i;

    static pack load(const double* p) noexcept { return _mm_loadu_pd(p); }
    static void store(double* p, pack v) noexcept { _mm_storeu_pd(p, v); }
    static pack set1(double v) noexcept { return _mm_set1_pd(v); }
    static pack add(pack a, pack b) noexcept { return _mm_add_pd(a, b); }
    static pack sub(pack a, pack b) noexcept { return _mm_sub_pd(a, b); }
    static pack mul(pack a, pack b) noexcept { return _mm_mul_pd(a, b); }
    static pack div(pack a, pack b) noexcept { return _mm_div_pd(a, b); }
    static ipack bits(pack v) noexcept { return _mm_castpd_si128(v); }
    static pack from_bits(ipack v) noexcept { return _mm_castsi128_pd(v); }
    static ipack iset1(std::uint64_t v) noexcept {
        return _mm_set1_epi64x(static_cast<long long>(v));
    }
    static ipack iand(ipack a, ipack b) noexcept { return _mm_and_si128(a, b); }
    static ipack ior(ipack a, ipack b) noexcept { return _mm_or_si128(a, b); }
    static ipack ixor(ipack a, ipack b) noexcept { return _mm_xor_si128(a, b); }
    static ipack iadd(ipack a, ipack b) noexcept { return _mm_add_epi64(a, b); }
    static ipack isub(ipack a, ipack b) noexcept { return _mm_sub_epi64(a, b); }
    template <int Shift> static ipack ishl(ipack a) noexcept {
        return _mm_slli_epi64(a, Shift);
    }
    template <int Shift> static ipack ishr(ipack a) noexcept {
        return _mm_srli_epi64(a, Shift);
    }
    static ipack lane_mask(ipack a) noexcept {
        return _mm_sub_epi64(_mm_setzero_si128(), a);
    }
    static pack select(ipack mask, pack a, pack b) noexcept {
        return from_bits(_mm_or_si128(_mm_and_si128(mask, bits(a)),
                                      _mm_andnot_si128(mask, bits(b))));
    }
};
#endif

#if defined(__aarch64__)
/// Two lanes via NEON (baseline on aarch64).
struct NeonPack {
    static constexpr std::size_t width = 2;
    using pack = float64x2_t;
    using ipack = uint64x2_t;

    static pack load(const double* p) noexcept { return vld1q_f64(p); }
    static void store(double* p, pack v) noexcept { vst1q_f64(p, v); }
    static pack set1(double v) noexcept { return vdupq_n_f64(v); }
    static pack add(pack a, pack b) noexcept { return vaddq_f64(a, b); }
    static pack sub(pack a, pack b) noexcept { return vsubq_f64(a, b); }
    static pack mul(pack a, pack b) noexcept { return vmulq_f64(a, b); }
    static pack div(pack a, pack b) noexcept { return vdivq_f64(a, b); }
    static ipack bits(pack v) noexcept { return vreinterpretq_u64_f64(v); }
    static pack from_bits(ipack v) noexcept { return vreinterpretq_f64_u64(v); }
    static ipack iset1(std::uint64_t v) noexcept { return vdupq_n_u64(v); }
    static ipack iand(ipack a, ipack b) noexcept { return vandq_u64(a, b); }
    static ipack ior(ipack a, ipack b) noexcept { return vorrq_u64(a, b); }
    static ipack ixor(ipack a, ipack b) noexcept { return veorq_u64(a, b); }
    static ipack iadd(ipack a, ipack b) noexcept { return vaddq_u64(a, b); }
    static ipack isub(ipack a, ipack b) noexcept { return vsubq_u64(a, b); }
    template <int Shift> static ipack ishl(ipack a) noexcept {
        return vshlq_n_u64(a, Shift);
    }
    template <int Shift> static ipack ishr(ipack a) noexcept {
        return vshrq_n_u64(a, Shift);
    }
    static ipack lane_mask(ipack a) noexcept {
        return vsubq_u64(vdupq_n_u64(0), a);
    }
    static pack select(ipack mask, pack a, pack b) noexcept {
        return vbslq_f64(mask, a, b);
    }
};
#endif

// Forced-ISA test hook; -1 means "dispatch to native".
std::atomic<int> g_forced_isa{-1};

} // namespace

const char* isa_name(Isa isa) noexcept {
    switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::sse2: return "sse2";
    case Isa::avx2: return "avx2";
    case Isa::neon: return "neon";
    }
    return "unknown";
}

bool isa_supported(Isa isa) noexcept {
    switch (isa) {
    case Isa::scalar:
        return true;
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::sse2:
        return true; // baseline on x86-64
    case Isa::avx2:
        return __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__)
    case Isa::neon:
        return true; // baseline on aarch64
#endif
    default:
        return false;
    }
}

Isa native_isa() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    static const Isa native =
        __builtin_cpu_supports("avx2") ? Isa::avx2 : Isa::sse2;
    return native;
#elif defined(__aarch64__)
    return Isa::neon;
#else
    return Isa::scalar;
#endif
}

Isa active_isa() noexcept {
    const int forced = g_forced_isa.load(std::memory_order_relaxed);
    return forced >= 0 ? static_cast<Isa>(forced) : native_isa();
}

void force_isa(Isa isa) {
    if (!isa_supported(isa))
        throw InvalidInput(std::string("vecmath: cannot force ISA '") +
                           isa_name(isa) + "' on this CPU");
    g_forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_forced_isa() noexcept {
    g_forced_isa.store(-1, std::memory_order_relaxed);
}

void sin_batch(const double* x, double* out, std::size_t n) {
    switch (active_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::avx2:
        detail::sin_batch_avx2(x, out, n);
        return;
    case Isa::sse2:
        detail::sin_batch_impl<Sse2Pack>(x, out, n);
        return;
#elif defined(__aarch64__)
    case Isa::neon:
        detail::sin_batch_impl<NeonPack>(x, out, n);
        return;
#endif
    default:
        detail::sin_batch_impl<detail::ScalarPack>(x, out, n);
        return;
    }
}

void exp_batch(const double* x, double* out, std::size_t n) {
    switch (active_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::avx2:
        detail::exp_batch_avx2(x, out, n);
        return;
    case Isa::sse2:
        detail::exp_batch_impl<Sse2Pack>(x, out, n);
        return;
#elif defined(__aarch64__)
    case Isa::neon:
        detail::exp_batch_impl<NeonPack>(x, out, n);
        return;
#endif
    default:
        detail::exp_batch_impl<detail::ScalarPack>(x, out, n);
        return;
    }
}

void log_batch(const double* x, double* out, std::size_t n) {
    switch (active_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::avx2:
        detail::log_batch_avx2(x, out, n);
        return;
    case Isa::sse2:
        detail::log_batch_impl<Sse2Pack>(x, out, n);
        return;
#elif defined(__aarch64__)
    case Isa::neon:
        detail::log_batch_impl<NeonPack>(x, out, n);
        return;
#endif
    default:
        detail::log_batch_impl<detail::ScalarPack>(x, out, n);
        return;
    }
}

void softplus_batch(const double* x, double* out, std::size_t n) {
    switch (active_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::avx2:
        detail::softplus_batch_avx2(x, out, n);
        return;
    case Isa::sse2:
        detail::softplus_batch_impl<Sse2Pack>(x, out, n);
        return;
#elif defined(__aarch64__)
    case Isa::neon:
        detail::softplus_batch_impl<NeonPack>(x, out, n);
        return;
#endif
    default:
        detail::softplus_batch_impl<detail::ScalarPack>(x, out, n);
        return;
    }
}

double sin_scalar(double x) noexcept {
    return detail::sin_pack<detail::ScalarPack>(x);
}

double exp_scalar(double x) noexcept {
    return detail::exp_pack<detail::ScalarPack>(x);
}

double log_scalar(double x) noexcept {
    return detail::log_pack<detail::ScalarPack>(x);
}

double softplus_scalar(double x) noexcept {
    return detail::softplus_pack<detail::ScalarPack>(x);
}

bool tones_in_range(const ToneTable& tt, double t0, double dt,
                    std::size_t n) noexcept {
    if (n == 0)
        return true;
    const double t_last = t0 + static_cast<double>(n - 1) * dt;
    const double t_max = std::fmax(std::fabs(t0), std::fabs(t_last));
    for (std::size_t k = 0; k < tt.tones; ++k) {
        const double bound =
            std::fabs(tt.omega[k]) * t_max + std::fabs(tt.phase[k]);
        if (!(bound <= kMaxSinArgument))
            return false; // also rejects NaN coefficients
    }
    return true;
}

void sample_multitone(const ToneTable& tt, double t0, double dt,
                      std::size_t n, double* out) {
    XYSIG_EXPECTS(out != nullptr || n == 0);
    // Per-thread scratch: argument and sine lanes for one tone pass.
    thread_local std::vector<double> args;
    thread_local std::vector<double> sines;
    args.resize(n);
    sines.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = tt.offset;
    // Tone-outer / sample-inner: per sample the additions still land in
    // declaration order (offset, tone 0, tone 1, ...), so the rounding
    // sequence per sample matches the exact fused pass; only the sine
    // values themselves differ (polynomial vs libm). The surrounding
    // mul/add loops are elementwise, so autovectorisation cannot change
    // their per-lane results; this TU is built with -ffp-contract=off.
    for (std::size_t k = 0; k < tt.tones; ++k) {
        const double amp = tt.amplitude[k];
        const double omg = tt.omega[k];
        const double ph = tt.phase[k];
        for (std::size_t i = 0; i < n; ++i) {
            const double t = t0 + static_cast<double>(i) * dt;
            args[i] = omg * t + ph;
        }
        sin_batch(args.data(), sines.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            out[i] += amp * sines[i];
    }
}

std::uint64_t ulp_distance(double a, double b) noexcept {
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::uint64_t>::max();
    // Map to a monotone unsigned scale: negatives fold below positives.
    const auto key = [](double v) noexcept -> std::uint64_t {
        const auto u = std::bit_cast<std::uint64_t>(v);
        const std::uint64_t sign = 0x8000000000000000ULL;
        return (u & sign) != 0 ? (sign - 1) - (u & ~sign) : u + sign;
    };
    const std::uint64_t ka = key(a);
    const std::uint64_t kb = key(b);
    return ka > kb ? ka - kb : kb - ka;
}

double ulp_of(double x) noexcept {
    const double ax = std::fabs(x);
    return std::nextafter(ax, std::numeric_limits<double>::infinity()) - ax;
}

} // namespace xysig::kernels::vecmath
