/// \file vecmath_avx2.cpp
/// AVX2 instantiation of the generic vecmath kernel. This is the one TU
/// built with -mavx2 (see CMakeLists.txt), which is why the AVX2 pack
/// lives here and not in vecmath.cpp: the intrinsics need the target
/// flag, and keeping them in their own TU guarantees the compiler never
/// emits AVX2 instructions on a path reachable before the CPUID check in
/// vecmath.cpp's dispatcher. Like the other vecmath TUs it is compiled
/// with -ffp-contract=off so the lanes round exactly like the scalar
/// reference build.

#include "kernels/vecmath_detail.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace xysig::kernels::vecmath::detail {
namespace {

/// Four lanes via AVX2.
struct Avx2Pack {
    static constexpr std::size_t width = 4;
    using pack = __m256d;
    using ipack = __m256i;

    static pack load(const double* p) noexcept { return _mm256_loadu_pd(p); }
    static void store(double* p, pack v) noexcept { _mm256_storeu_pd(p, v); }
    static pack set1(double v) noexcept { return _mm256_set1_pd(v); }
    static pack add(pack a, pack b) noexcept { return _mm256_add_pd(a, b); }
    static pack sub(pack a, pack b) noexcept { return _mm256_sub_pd(a, b); }
    static pack mul(pack a, pack b) noexcept { return _mm256_mul_pd(a, b); }
    static pack div(pack a, pack b) noexcept { return _mm256_div_pd(a, b); }
    static ipack bits(pack v) noexcept { return _mm256_castpd_si256(v); }
    static pack from_bits(ipack v) noexcept { return _mm256_castsi256_pd(v); }
    static ipack iset1(std::uint64_t v) noexcept {
        return _mm256_set1_epi64x(static_cast<long long>(v));
    }
    static ipack iand(ipack a, ipack b) noexcept { return _mm256_and_si256(a, b); }
    static ipack ior(ipack a, ipack b) noexcept { return _mm256_or_si256(a, b); }
    static ipack ixor(ipack a, ipack b) noexcept { return _mm256_xor_si256(a, b); }
    static ipack iadd(ipack a, ipack b) noexcept { return _mm256_add_epi64(a, b); }
    static ipack isub(ipack a, ipack b) noexcept { return _mm256_sub_epi64(a, b); }
    template <int Shift> static ipack ishl(ipack a) noexcept {
        return _mm256_slli_epi64(a, Shift);
    }
    template <int Shift> static ipack ishr(ipack a) noexcept {
        return _mm256_srli_epi64(a, Shift);
    }
    static ipack lane_mask(ipack a) noexcept {
        return _mm256_sub_epi64(_mm256_setzero_si256(), a);
    }
    static pack select(ipack mask, pack a, pack b) noexcept {
        return from_bits(_mm256_or_si256(_mm256_and_si256(mask, bits(a)),
                                         _mm256_andnot_si256(mask, bits(b))));
    }
};

} // namespace

void sin_batch_avx2(const double* x, double* out, std::size_t n) noexcept {
    sin_batch_impl<Avx2Pack>(x, out, n);
}

void exp_batch_avx2(const double* x, double* out, std::size_t n) noexcept {
    exp_batch_impl<Avx2Pack>(x, out, n);
}

void log_batch_avx2(const double* x, double* out, std::size_t n) noexcept {
    log_batch_impl<Avx2Pack>(x, out, n);
}

void softplus_batch_avx2(const double* x, double* out, std::size_t n) noexcept {
    softplus_batch_impl<Avx2Pack>(x, out, n);
}

} // namespace xysig::kernels::vecmath::detail

#endif // x86-64
