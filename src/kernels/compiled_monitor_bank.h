#ifndef XYSIG_KERNELS_COMPILED_MONITOR_BANK_H
#define XYSIG_KERNELS_COMPILED_MONITOR_BANK_H

/// \file compiled_monitor_bank.h
/// Devirtualised zoning kernel.
///
/// MonitorBank::code pays one virtual Boundary::h per monitor per sample;
/// the MOS monitors additionally merge a MosParams struct per leg per call
/// and evaluate gm/gds they never use. CompiledMonitorBank lowers each
/// boundary once, at construction:
///  * LinearBoundary  -> the (a, b, c) coefficient triple,
///  * MosCurrentBoundary -> four flat terms; DC-driven legs are
///    constant-folded to their precomputed drain current, X/Y-driven legs
///    lower to the id-only drain-current model with per-leg constants
///    (ispec, clm, beta, ...) hoisted out of the sample loop, and legs that
///    are identical across monitors — the paper's Table I shares its X and
///    Y input devices between rows — are deduplicated so each unique leg
///    current is evaluated once per sample for the whole bank;
///  * anything else   -> a cloned fallback boundary kept on the virtual path.
///
/// codes_into walks the trace once per linear/fallback monitor (bit-plane
/// OR) and once for all MOS monitors together (unique legs, then the
/// per-monitor current comparisons), so the hot loop is branch-light and
/// free of virtual dispatch for every compilable monitor. Codes are
/// bit-identical to MonitorBank::code at every sample, whatever the mix of
/// compiled and fallback monitors.
///
/// Under SampleMode::fast_math the EKV sub-bank switches to the batched
/// vecmath softplus kernel: the drain-current softplus pair of every
/// unique leg is evaluated over the whole trace with the SIMD polynomial
/// instead of libm's exp+log1p. Codes may then differ from the exact
/// path for samples sitting within the softplus tolerance of a zone
/// boundary — the same opt-in contract as fast_math sampling. The fast
/// pass falls back to the exact loop (deterministically, from the trace
/// alone) when a trace excursion would push a softplus argument outside
/// the vecmath domain, so out-of-contract inputs never reach the kernel.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "monitor/monitor_bank.h"
#include "signal/sample_mode.h"
#include "spice/mosfet.h"

namespace xysig::kernels {

class CompiledMonitorBank {
public:
    CompiledMonitorBank() = default;

    /// Lowers every monitor of the bank. Never fails: non-compilable
    /// boundaries are cloned into the fallback list, so the compiled bank is
    /// self-contained and does not reference `bank` afterwards.
    [[nodiscard]] static CompiledMonitorBank compile(const monitor::MonitorBank& bank);

    CompiledMonitorBank(const CompiledMonitorBank& other);
    CompiledMonitorBank& operator=(const CompiledMonitorBank& other);
    CompiledMonitorBank(CompiledMonitorBank&&) noexcept = default;
    CompiledMonitorBank& operator=(CompiledMonitorBank&&) noexcept = default;

    /// Total monitors / how many were lowered / how many stayed virtual.
    [[nodiscard]] std::size_t size() const noexcept { return n_monitors_; }
    [[nodiscard]] std::size_t fallback_count() const noexcept {
        return fallback_.size();
    }
    [[nodiscard]] std::size_t compiled_count() const noexcept {
        return n_monitors_ - fallback_.size();
    }
    /// Deduplicated dynamic MOS legs evaluated per sample (tests pin the
    /// Table I sharing: 12 legs collapse to 6).
    [[nodiscard]] std::size_t unique_leg_count() const noexcept {
        return legs_.size();
    }

    /// Zone code of every (x, y) sample, one monitor pass at a time; codes
    /// is resized to xs.size(). In exact mode (the default) bit-identical
    /// to calling MonitorBank::code per sample. fast_math batches the EKV
    /// softplus pairs through vecmath (see the file comment); linear and
    /// fallback monitors always take the exact path. The bank must be
    /// non-empty.
    void codes_into(std::span<const double> xs, std::span<const double> ys,
                    std::vector<unsigned>& codes,
                    SampleMode mode = SampleMode::exact) const;

    /// Single-point code (spot checks / tests); same bits as codes_into.
    [[nodiscard]] unsigned code(double x, double y) const;

private:
    /// Which evaluator a deduplicated dynamic leg lowers to. The common
    /// paper case — nMOS with the positive drain bias the boundary
    /// constructor enforces — inlines the id-only model with its per-leg
    /// constants hoisted; anything else (pMOS, ...) calls spice::mos_id,
    /// which is still bit-identical, just not flat.
    enum class LegKind { ekv, level1, generic };

    struct MosLeg {
        bool x_input = true; ///< gate driven by x (else y)
        LegKind kind = LegKind::generic;
        double vds = 0.0; ///< drain bias shared by the flat evaluators
        // EKV coefficients: id = (ispec * (sf^2 - sr^2)) * clm.
        double vt0 = 0.0;
        double n_slope = 1.0;
        double ispec = 0.0;
        double clm = 1.0;
        // Level-1 extras: beta, 0.5*beta and (0.5*vds)*vds, hoisted with
        // the same association the model uses.
        double beta = 0.0;
        double half_beta = 0.0;
        double half_vds2 = 0.0;
        spice::MosParams params{}; ///< per-leg merged device (generic kind)
    };

    /// One of the four summed currents of a comparator: either a folded DC
    /// constant or a reference into the unique-leg table.
    struct MosTerm {
        bool is_constant = true;
        double constant = 0.0;
        std::uint32_t leg = 0;
    };

    struct LinearMonitor {
        unsigned mask; ///< bit of this monitor in the zone code
        double a, b, c;
    };

    struct MosMonitor {
        unsigned mask;
        std::array<MosTerm, 4> terms;
        double offset_current;
        double orientation;
    };

    struct FallbackMonitor {
        unsigned mask;
        std::unique_ptr<monitor::Boundary> boundary;
    };

    [[nodiscard]] static double leg_value(const MosLeg& leg, double x, double y);
    [[nodiscard]] static double mos_h(const MosMonitor& m,
                                      const double* leg_values);
    /// The fast_math MOS pass: batched softplus legs, then the comparator
    /// sweep. Returns false — having written nothing — when no EKV leg
    /// exists or a trace excursion leaves the vecmath softplus domain;
    /// the caller then runs the exact loop.
    bool fast_mos_codes(const double* px, const double* py, std::size_t n,
                        unsigned* out) const;

    std::size_t n_monitors_ = 0;
    std::vector<LinearMonitor> linear_;
    std::vector<MosLeg> legs_; ///< deduplicated dynamic legs
    std::vector<MosMonitor> mos_;
    std::vector<FallbackMonitor> fallback_;
};

} // namespace xysig::kernels

#endif // XYSIG_KERNELS_COMPILED_MONITOR_BANK_H
