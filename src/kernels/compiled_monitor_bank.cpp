#include "kernels/compiled_monitor_bank.h"

#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "common/math_util.h"
#include "kernels/vecmath.h"
#include "monitor/mos_boundary.h"

namespace xysig::kernels {

namespace {
/// Overflow guard for the fast-zoning trace scan: excursions beyond this
/// (or NaN) are physically meaningless for a comparator input and force
/// the exact path.
constexpr double kMaxZoneInput = 1e300;
} // namespace

CompiledMonitorBank CompiledMonitorBank::compile(const monitor::MonitorBank& bank) {
    CompiledMonitorBank out;
    const std::size_t n = bank.size();
    out.n_monitors_ = n;

    // Dedup key: the full leg description. Identical legs across monitors
    // (Table I rows 3-6 share their X and Y input devices) evaluate once
    // per sample; reusing the value is bit-identical because the drain
    // current is a pure function of (params, vgs, vds).
    const auto intern_leg = [&out](const MosLeg& leg) -> std::uint32_t {
        for (std::size_t i = 0; i < out.legs_.size(); ++i) {
            const MosLeg& have = out.legs_[i];
            if (have.x_input == leg.x_input && have.kind == leg.kind &&
                // xylint: exact-compare(leg dedup must be bit-exact or two monitors would alias onto one slightly-different leg)
                have.vds == leg.vds && have.params == leg.params)
                return static_cast<std::uint32_t>(i);
        }
        out.legs_.push_back(leg);
        return static_cast<std::uint32_t>(out.legs_.size() - 1);
    };

    for (std::size_t i = 0; i < n; ++i) {
        const monitor::Boundary& b = bank.monitor(i);
        // Monitor 0 is the MSB (paper Fig. 6 order), as in MonitorBank::code.
        const unsigned mask = 1u << (n - 1 - i);

        if (const auto* lin = dynamic_cast<const monitor::LinearBoundary*>(&b)) {
            out.linear_.push_back({mask, lin->a(), lin->b(), lin->c()});
            continue;
        }
        if (const auto* mos = dynamic_cast<const monitor::MosCurrentBoundary*>(&b)) {
            const monitor::MonitorConfig& cfg = mos->config();
            MosMonitor m;
            m.mask = mask;
            m.offset_current = cfg.offset_current;
            m.orientation = mos->orientation();
            for (std::size_t leg_i = 0; leg_i < 4; ++leg_i) {
                const monitor::MonitorLeg& l = cfg.legs[leg_i];
                // Same per-leg merge MonitorConfig::leg_current performs on
                // every call, hoisted to compile time.
                spice::MosParams p = cfg.device;
                p.w = l.width;
                p.vt0 = cfg.device.vt0 + l.vt0_delta;
                p.kp = cfg.device.kp * l.kp_scale;

                MosTerm& term = m.terms[leg_i];
                if (l.input == monitor::MonitorInput::dc) {
                    term.is_constant = true;
                    term.constant = spice::mos_id(p, l.dc_level, cfg.vds_eval);
                    continue;
                }
                MosLeg leg;
                leg.x_input = l.input == monitor::MonitorInput::x_axis;
                leg.vds = cfg.vds_eval;
                leg.params = p;
                if (p.type == spice::MosType::nmos && cfg.vds_eval > 0.0) {
                    // Hoist the per-leg constants of the id-only model,
                    // using exactly the expressions (and association) the
                    // model evaluates per call, so the flat form stays
                    // bit-identical.
                    leg.vt0 = p.vt0;
                    leg.clm = 1.0 + p.lambda * cfg.vds_eval;
                    if (p.model == spice::MosModel::ekv) {
                        leg.kind = LegKind::ekv;
                        leg.n_slope = p.n_slope;
                        leg.ispec = 2.0 * p.n_slope * p.kp * p.aspect_ratio() *
                                    kThermalVoltage300K * kThermalVoltage300K;
                    } else {
                        leg.kind = LegKind::level1;
                        leg.beta = p.kp * p.aspect_ratio();
                        leg.half_beta = 0.5 * leg.beta;
                        leg.half_vds2 = 0.5 * cfg.vds_eval * cfg.vds_eval;
                    }
                } else {
                    leg.kind = LegKind::generic;
                }
                term.is_constant = false;
                term.leg = intern_leg(leg);
            }
            out.mos_.push_back(m);
            continue;
        }
        out.fallback_.push_back({mask, b.clone()});
    }
    return out;
}

CompiledMonitorBank::CompiledMonitorBank(const CompiledMonitorBank& other)
    : n_monitors_(other.n_monitors_), linear_(other.linear_), legs_(other.legs_),
      mos_(other.mos_) {
    fallback_.reserve(other.fallback_.size());
    for (const FallbackMonitor& f : other.fallback_)
        fallback_.push_back({f.mask, f.boundary->clone()});
}

CompiledMonitorBank& CompiledMonitorBank::operator=(const CompiledMonitorBank& other) {
    if (this != &other) {
        CompiledMonitorBank tmp(other);
        *this = std::move(tmp);
    }
    return *this;
}

double CompiledMonitorBank::leg_value(const MosLeg& leg, double x, double y) {
    const double vgs = leg.x_input ? x : y;
    switch (leg.kind) {
    case LegKind::ekv: {
        // Same expressions (and rounding) as the id-only EKV model, with
        // the vp normalisation constants already in registers. SYNC
        // CONTRACT: third copy of the drain-current arithmetic — see the
        // note above ekv_id_nmos in spice/mosfet.cpp.
        const double vp = (vgs - leg.vt0) / leg.n_slope;
        const double sf = softplus(0.5 * (vp / kThermalVoltage300K));
        const double sr =
            softplus(0.5 * ((vp - leg.vds) / kThermalVoltage300K));
        return (leg.ispec * (sf * sf - sr * sr)) * leg.clm;
    }
    case LegKind::level1: {
        const double vov = vgs - leg.vt0;
        if (vov <= 0.0)
            return 0.0;
        if (leg.vds < vov)
            return leg.beta * (vov * leg.vds - leg.half_vds2) * leg.clm;
        return ((leg.half_beta * vov) * vov) * leg.clm;
    }
    case LegKind::generic:
        return spice::mos_id(leg.params, vgs, leg.vds);
    }
    return 0.0; // unreachable
}

double CompiledMonitorBank::mos_h(const MosMonitor& m, const double* leg_values) {
    const auto term = [&](const MosTerm& t) {
        return t.is_constant ? t.constant : leg_values[t.leg];
    };
    // Same association as MosCurrentBoundary::current_difference:
    // (((I1 + I2) - I3) - I4) + offset, then the orientation sign.
    const double diff = term(m.terms[0]) + term(m.terms[1]) - term(m.terms[2]) -
                        term(m.terms[3]) + m.offset_current;
    return m.orientation * diff;
}

bool CompiledMonitorBank::fast_mos_codes(const double* px, const double* py,
                                         std::size_t n, unsigned* out) const {
    bool any_ekv = false;
    for (const MosLeg& leg : legs_)
        any_ekv = any_ekv || leg.kind == LegKind::ekv;
    if (!any_ekv)
        return false; // nothing to batch; the exact loop is as fast

    // One pass over the trace: the softplus arguments are bounded by the
    // peak |vgs|, so a single max-excursion scan (NaN-rejecting: the
    // negated comparison is false for NaN) proves the whole batch stays
    // inside the vecmath domain. Deterministic in the trace alone, so
    // every process takes the same path for the same job.
    double max_x = 0.0;
    double max_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double ax = std::fabs(px[i]);
        const double ay = std::fabs(py[i]);
        if (!(ax <= kMaxZoneInput) || !(ay <= kMaxZoneInput))
            return false;
        max_x = ax > max_x ? ax : max_x;
        max_y = ay > max_y ? ay : max_y;
    }
    for (const MosLeg& leg : legs_) {
        if (leg.kind != LegKind::ekv)
            continue;
        const double vgs_max = leg.x_input ? max_x : max_y;
        const double vp_max =
            (vgs_max + std::fabs(leg.vt0)) / std::fabs(leg.n_slope);
        const double arg_bound =
            0.5 * ((vp_max + std::fabs(leg.vds)) / kThermalVoltage300K);
        if (!(arg_bound <= vecmath::kMaxExpArgument))
            return false;
    }

    // Per-thread scratch: one value lane per unique leg, plus the packed
    // (forward | reverse) softplus argument pair of the EKV legs.
    thread_local std::vector<double> values;
    thread_local std::vector<double> args;
    thread_local std::vector<double> sp;
    values.resize(legs_.size() * n);
    args.resize(2 * n);
    sp.resize(2 * n);
    for (std::size_t u = 0; u < legs_.size(); ++u) {
        const MosLeg& leg = legs_[u];
        double* const lv = values.data() + u * n;
        if (leg.kind != LegKind::ekv) {
            // level1/generic legs are cheap algebra (or rare); the scalar
            // evaluator is already exact and branch-predictable.
            for (std::size_t i = 0; i < n; ++i)
                lv[i] = leg_value(leg, px[i], py[i]);
            continue;
        }
        // Same argument expressions (and association) as leg_value's EKV
        // case; only the softplus evaluation changes.
        for (std::size_t i = 0; i < n; ++i) {
            const double vgs = leg.x_input ? px[i] : py[i];
            const double vp = (vgs - leg.vt0) / leg.n_slope;
            args[i] = 0.5 * (vp / kThermalVoltage300K);
            args[n + i] = 0.5 * ((vp - leg.vds) / kThermalVoltage300K);
        }
        vecmath::softplus_batch(args.data(), sp.data(), 2 * n);
        for (std::size_t i = 0; i < n; ++i) {
            const double sf = sp[i];
            const double sr = sp[n + i];
            lv[i] = (leg.ispec * (sf * sf - sr * sr)) * leg.clm;
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        unsigned bits = 0;
        for (const MosMonitor& m : mos_) {
            // Same association as mos_h, reading the per-leg lanes.
            const auto term = [&](const MosTerm& t) {
                return t.is_constant ? t.constant : values[t.leg * n + i];
            };
            const double diff = term(m.terms[0]) + term(m.terms[1]) -
                                term(m.terms[2]) - term(m.terms[3]) +
                                m.offset_current;
            bits |= (m.orientation * diff > 0.0) ? m.mask : 0u;
        }
        out[i] |= bits;
    }
    return true;
}

void CompiledMonitorBank::codes_into(std::span<const double> xs,
                                     std::span<const double> ys,
                                     std::vector<unsigned>& codes,
                                     SampleMode mode) const {
    XYSIG_EXPECTS(xs.size() == ys.size());
    XYSIG_EXPECTS(n_monitors_ > 0);
    const std::size_t n = xs.size();
    codes.assign(n, 0u);
    unsigned* const out = codes.data();
    const double* const px = xs.data();
    const double* const py = ys.data();

    for (const LinearMonitor& m : linear_) {
        const double a = m.a;
        const double b = m.b;
        const double c = m.c;
        const unsigned mask = m.mask;
#pragma omp simd
        for (std::size_t i = 0; i < n; ++i)
            out[i] |= (a * px[i] + b * py[i] + c > 0.0) ? mask : 0u;
    }

    if (!mos_.empty() && mode == SampleMode::fast_math &&
        fast_mos_codes(px, py, n, out)) {
        // EKV sub-bank handled by the batched pass above.
    } else if (!mos_.empty()) {
        // One fused pass for the whole MOS sub-bank: evaluate each unique
        // leg current once, then run every comparator off the shared
        // values.
        double leg_values_buf[16];
        std::vector<double> leg_values_heap;
        double* leg_values = leg_values_buf;
        if (legs_.size() > 16) {
            leg_values_heap.resize(legs_.size());
            leg_values = leg_values_heap.data();
        }
        const std::size_t n_legs = legs_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const double x = px[i];
            const double y = py[i];
            for (std::size_t u = 0; u < n_legs; ++u)
                leg_values[u] = leg_value(legs_[u], x, y);
            unsigned bits = 0;
            for (const MosMonitor& m : mos_)
                bits |= (mos_h(m, leg_values) > 0.0) ? m.mask : 0u;
            out[i] |= bits;
        }
    }

    for (const FallbackMonitor& f : fallback_) {
        const monitor::Boundary& b = *f.boundary;
        const unsigned mask = f.mask;
        for (std::size_t i = 0; i < n; ++i)
            out[i] |= b.side(px[i], py[i]) ? mask : 0u;
    }
}

unsigned CompiledMonitorBank::code(double x, double y) const {
    XYSIG_EXPECTS(n_monitors_ > 0);
    unsigned c = 0;
    for (const LinearMonitor& m : linear_)
        c |= (m.a * x + m.b * y + m.c > 0.0) ? m.mask : 0u;
    if (!mos_.empty()) {
        std::vector<double> leg_values(legs_.size());
        for (std::size_t u = 0; u < legs_.size(); ++u)
            leg_values[u] = leg_value(legs_[u], x, y);
        for (const MosMonitor& m : mos_)
            c |= (mos_h(m, leg_values.data()) > 0.0) ? m.mask : 0u;
    }
    for (const FallbackMonitor& f : fallback_)
        c |= f.boundary->side(x, y) ? f.mask : 0u;
    return c;
}

} // namespace xysig::kernels
