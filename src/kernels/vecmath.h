#ifndef XYSIG_KERNELS_VECMATH_H
#define XYSIG_KERNELS_VECMATH_H

/// \file vecmath.h
/// Batched polynomial math layer (the fast_math kernels).
///
/// sin/exp over contiguous lanes of doubles, evaluated with a fixed
/// polynomial pipeline (Cody-Waite range reduction with exact-product
/// constant splits, then a minimax polynomial) instead of libm. The same
/// generic kernel is instantiated for scalar, SSE2, AVX2 and NEON packs,
/// so every ISA executes the identical IEEE-754 operation sequence per
/// lane and the results are **bit-identical across ISAs** — the dispatch
/// width changes throughput, never values. The TUs implementing this
/// layer are compiled with -ffp-contract=off so no target fuses a
/// multiply-add the others round twice.
///
/// Accuracy contract (gate-enforced by bench_kernels and the
/// differential harness): for arguments within ±kMaxArgument,
/// sin_batch/exp_batch are within 2 ULP of the correctly rounded result.
/// Results are NOT bit-identical to libm — that is the whole point of
/// the opt-in PipelineOptions::fast_math mode; the exact path stays
/// default and untouched.
///
/// Out-of-range arguments are the caller's responsibility: use
/// tones_in_range / args_in_range before the batched calls and fall back
/// to the exact path when they fail. NaN/Inf lanes are outside the
/// contract.

#include <cstddef>
#include <cstdint>

namespace xysig::kernels::vecmath {

/// Instruction sets the dispatcher can select. scalar is always
/// available and is the reference build of the polynomial.
enum class Isa : std::uint8_t { scalar = 0, sse2 = 1, avx2 = 2, neon = 3 };

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// True when this process can execute `isa` (scalar: always; sse2/avx2:
/// x86-64 with the CPUID bit; neon: aarch64).
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

/// Widest supported ISA on this CPU (the default dispatch choice).
[[nodiscard]] Isa native_isa() noexcept;

/// ISA the next batch call will use: the forced one if set, else native.
[[nodiscard]] Isa active_isa() noexcept;

/// Test hook: pin dispatch to one ISA (e.g. scalar, to prove the SIMD
/// lanes are bit-identical to the reference build). Throws InvalidInput
/// if the CPU cannot execute it. Affects every thread.
void force_isa(Isa isa);
void clear_forced_isa() noexcept;

/// Documented argument range for the 2-ULP contract. The Cody-Waite
/// quotient stays far below the exact-product limit of the constant
/// splits at this bound (see vecmath_detail.h).
inline constexpr double kMaxSinArgument = 1048576.0; // 2^20 rad
inline constexpr double kMaxExpArgument = 700.0;     // exp(708) overflows

/// out[i] = sin(x[i]) for i in [0, n). In/out may alias elementwise.
void sin_batch(const double* x, double* out, std::size_t n);

/// out[i] = exp(x[i]) for i in [0, n).
void exp_batch(const double* x, double* out, std::size_t n);

/// out[i] = ln(x[i]) for i in [0, n). Contract: every x[i] a positive
/// NORMAL double (>= 2^-1022, finite); subnormals/zero/inf/NaN are
/// outside the contract. Within 2 ULP (the fdlibm kernel, de-branched).
void log_batch(const double* x, double* out, std::size_t n);

/// out[i] = ln(1 + exp(x[i])) for i in [0, n). Contract: |x[i]| <=
/// kMaxExpArgument. Within 4 ULP of the correctly rounded softplus
/// (gate-checked against a long-double reference by the differential
/// harness; NOT bit-identical to common/math_util.h softplus, whose
/// own |x| > 30 branches drop the second-order term). Like every
/// vecmath kernel, bit-identical across ISAs. This is the EKV drain
/// current's hot function — the fast_math zoning path batches it.
void softplus_batch(const double* x, double* out, std::size_t n);

/// One lane of the reference polynomial (exactly what the batch calls
/// compute per lane, regardless of ISA). Exposed so the differential
/// harness can pin batch == scalar-reference bit for bit.
[[nodiscard]] double sin_scalar(double x) noexcept;
[[nodiscard]] double exp_scalar(double x) noexcept;
[[nodiscard]] double log_scalar(double x) noexcept;
[[nodiscard]] double softplus_scalar(double x) noexcept;

/// Non-owning view of a flattened tone table (CompiledWaveform layout):
/// value(t) = offset + sum_k amplitude[k] * sin(omega[k] * t + phase[k]).
struct ToneTable {
    const double* amplitude = nullptr;
    const double* omega = nullptr;
    const double* phase = nullptr;
    std::size_t tones = 0;
    double offset = 0.0;
};

/// True when every sine argument |omega_k * t + phase_k| over the grid
/// t_i = t0 + i*dt, i in [0, n), stays within kMaxSinArgument. Callers
/// must fall back to the exact path when this fails.
[[nodiscard]] bool tones_in_range(const ToneTable& tt, double t0, double dt,
                                  std::size_t n) noexcept;

/// Fused fast sampling pass: out[i] = offset + sum_k amp_k *
/// sin(omega_k * (t0 + i*dt) + phase_k) using sin_batch. The argument
/// arithmetic and the accumulation order (offset, then tones in
/// declaration order) match CompiledWaveform::sample_into exactly; only
/// the sine evaluation differs (polynomial instead of libm). `out` must
/// hold n doubles. Callers must have checked tones_in_range.
void sample_multitone(const ToneTable& tt, double t0, double dt,
                      std::size_t n, double* out);

/// Distance in representable doubles between a and b (0 when bitwise
/// equal; UINT64_MAX when either is NaN). ±0 are one ULP apart.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) noexcept;

/// Spacing between |x| and the next representable double above it.
[[nodiscard]] double ulp_of(double x) noexcept;

} // namespace xysig::kernels::vecmath

#endif // XYSIG_KERNELS_VECMATH_H
