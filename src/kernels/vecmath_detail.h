#ifndef XYSIG_KERNELS_VECMATH_DETAIL_H
#define XYSIG_KERNELS_VECMATH_DETAIL_H

/// \file vecmath_detail.h
/// The generic vecmath kernel, shared by every ISA instantiation.
///
/// Each ISA provides a "pack" policy (lane type + lane-wise IEEE-754
/// ops); the kernels below are written once against that policy, so the
/// scalar reference and every SIMD build execute the identical operation
/// sequence per lane. Bit-identity across ISAs is by construction, not
/// by testing alone — there is no branch, no FMA (the vecmath TUs are
/// compiled with -ffp-contract=off) and no lane-order-dependent step.
///
/// Only the vecmath*.cpp TUs may include this header.
///
/// Numerics:
///  * sin: Cody-Waite reduction by pi/2 using the round-to-nearest magic
///    constant 1.5*2^52; the quotient q is recovered from the low
///    mantissa bits. pi/2 is split into four parts with short mantissas
///    (the sleef PI_A..PI_D split, halved — halving only changes the
///    exponent, so it is exact). Each part carries <= 28 significant
///    bits, so q * part is EXACT for |q| < 2^24; with arguments bounded
///    by 2^20 the quotient stays below 2^20 and the reduced argument r
///    carries the full input precision. The [-pi/4, pi/4] polynomials
///    are the cephes/sleef minimax sin and cos polynomials (< 1 ULP on
///    the interval); quadrant selection and sign flip are pure bit ops.
///  * exp: reduction by ln2 with the fdlibm hi/lo split (hi has 33
///    significant bits; q < 2^11, so q * hi is exact), Taylor/Horner
///    polynomial through r^13/13! (truncation < 0.05 ULP at
///    |r| <= ln2/2), then exponent scaling via integer bit assembly.
///  * log: the fdlibm kernel made branch-free. The mantissa is recentred
///    to [sqrt(2)/2, sqrt(2)) with the musl offset trick (pure integer
///    ops on the bit pattern; the exponent k is recovered by 12-bit
///    sign extension and turned back into a double with the same
///    round-magic bit trick the sin quadrant uses, exact for |k| < 2^51),
///    then the fdlibm rational approximation in s = f/(2+f) with the
///    Lg1..Lg7 coefficients and the ln2 hi/lo recombination, association
///    preserved verbatim.
///  * softplus: ln(1+e^x) as max(x,0) + log1p(e^-|x|), with log1p(y)
///    evaluated as log(u) * y/(u-1) for u = 1+y (the classic exact
///    correction). Lanes where u rounds to 1 (y < 2^-53) fall back to y
///    itself via a zero-test mask built from integer ops — no FP compare
///    exists in the pack policy, and none is needed.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace xysig::kernels::vecmath::detail {

// Round-to-nearest extraction magic: adding 1.5*2^52 to |v| < 2^51 leaves
// round(v) in the low mantissa bits (two's complement for negative v).
inline constexpr double kRoundMagic = 6755399441055744.0; // 1.5 * 2^52
inline constexpr std::uint64_t kRoundMagicBits = 0x4338000000000000ULL;

inline constexpr double kTwoOverPi = 0.63661977236758134308;

// pi/2 in four exact-product parts (sleef PI_A..PI_D halved).
inline constexpr double kPio2A = 1.5707963109016418457;
inline constexpr double kPio2B = 1.5893254712295856734e-08;
inline constexpr double kPio2C = 6.1232339320535942511e-17;
inline constexpr double kPio2D = 6.3683171635109499082e-25;

// cephes sincof: sin(r) = r + r*s*P(s), s = r^2.
inline constexpr double kSinC1 = -1.66666666666666307295e-1;
inline constexpr double kSinC2 = 8.33333333332211858878e-3;
inline constexpr double kSinC3 = -1.98412698295895385996e-4;
inline constexpr double kSinC4 = 2.75573136213857245213e-6;
inline constexpr double kSinC5 = -2.50507477628578072866e-8;
inline constexpr double kSinC6 = 1.58962301576546568060e-10;

// cephes coscof: cos(r) = 1 - s/2 + s^2*Q(s).
inline constexpr double kCosC0 = -1.13585365213876817300e-11;
inline constexpr double kCosC1 = 2.08757008419747316778e-9;
inline constexpr double kCosC2 = -2.75573141792967388112e-7;
inline constexpr double kCosC3 = 2.48015872888517179954e-5;
inline constexpr double kCosC4 = -1.38888888888730564116e-3;
inline constexpr double kCosC5 = 4.16666666666665929218e-2;

inline constexpr double kLog2E = 1.4426950408889634074;
// fdlibm ln2 split: hi is 0x3FE62E42FEE00000 (33 significant bits).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

// exp Taylor coefficients 1/k!: exp(r) = 1 + r + r^2 * sum r^(k-2)/k!.
inline constexpr double kExpC2 = 5.00000000000000000000e-01;
inline constexpr double kExpC3 = 1.66666666666666666667e-01;
inline constexpr double kExpC4 = 4.16666666666666666667e-02;
inline constexpr double kExpC5 = 8.33333333333333333333e-03;
inline constexpr double kExpC6 = 1.38888888888888888889e-03;
inline constexpr double kExpC7 = 1.98412698412698412698e-04;
inline constexpr double kExpC8 = 2.48015873015873015873e-05;
inline constexpr double kExpC9 = 2.75573192239858906526e-06;
inline constexpr double kExpC10 = 2.75573192239858906526e-07;
inline constexpr double kExpC11 = 2.50521083854417187751e-08;
inline constexpr double kExpC12 = 2.08767569878680989792e-09;
inline constexpr double kExpC13 = 1.60590438368216145994e-10;

// fdlibm log: minimax coefficients of the s^2 series on
// [sqrt(2)/2, sqrt(2)), s = f/(2+f).
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
// musl's OFF: subtracting this from bits(x) puts the recentred mantissa
// boundary at sqrt(2)/2, so the masked-off top 12 bits are exactly k.
inline constexpr std::uint64_t kLogOff = 0x3fe6955500000000ULL;

inline constexpr std::uint64_t kSignMask = 0x8000000000000000ULL;
inline constexpr std::uint64_t kAbsMask = 0x7fffffffffffffffULL;

/// Reference pack: one lane of plain IEEE doubles. The SIMD packs mirror
/// these ops one for one; the integer ops use uint64 wraparound, which is
/// exactly what the vector integer instructions do.
struct ScalarPack {
    static constexpr std::size_t width = 1;
    using pack = double;
    using ipack = std::uint64_t;

    static pack load(const double* p) noexcept { return *p; }
    static void store(double* p, pack v) noexcept { *p = v; }
    static pack set1(double v) noexcept { return v; }
    static pack add(pack a, pack b) noexcept { return a + b; }
    static pack sub(pack a, pack b) noexcept { return a - b; }
    static pack mul(pack a, pack b) noexcept { return a * b; }
    static pack div(pack a, pack b) noexcept { return a / b; }
    static ipack bits(pack v) noexcept { return std::bit_cast<std::uint64_t>(v); }
    static pack from_bits(ipack v) noexcept { return std::bit_cast<double>(v); }
    static ipack iset1(std::uint64_t v) noexcept { return v; }
    static ipack iand(ipack a, ipack b) noexcept { return a & b; }
    static ipack ior(ipack a, ipack b) noexcept { return a | b; }
    static ipack ixor(ipack a, ipack b) noexcept { return a ^ b; }
    static ipack iadd(ipack a, ipack b) noexcept { return a + b; }
    static ipack isub(ipack a, ipack b) noexcept { return a - b; }
    template <int Shift> static ipack ishl(ipack a) noexcept { return a << Shift; }
    template <int Shift> static ipack ishr(ipack a) noexcept { return a >> Shift; }
    /// 0 -> all-zero lane, 1 -> all-one lane (two's complement negate).
    static ipack lane_mask(ipack a) noexcept { return ipack{0} - a; }
    static pack select(ipack mask, pack a, pack b) noexcept {
        return from_bits((bits(a) & mask) | (bits(b) & ~mask));
    }
};

/// sin of one pack. Contract: every lane within +-kMaxSinArgument.
template <class P>
[[nodiscard]] inline typename P::pack sin_pack(typename P::pack x) noexcept {
    using pk = typename P::pack;
    using ik = typename P::ipack;
    // q = round(x * 2/pi); quadrant and sign come from q's low bits.
    const pk t = P::add(P::mul(x, P::set1(kTwoOverPi)), P::set1(kRoundMagic));
    const ik qbits = P::bits(t);
    const pk qf = P::sub(t, P::set1(kRoundMagic));
    // r = x - q*pi/2, each q*part product exact (short-mantissa parts).
    pk r = P::sub(x, P::mul(qf, P::set1(kPio2A)));
    r = P::sub(r, P::mul(qf, P::set1(kPio2B)));
    r = P::sub(r, P::mul(qf, P::set1(kPio2C)));
    r = P::sub(r, P::mul(qf, P::set1(kPio2D)));
    const pk s = P::mul(r, r);
    pk ps = P::set1(kSinC6);
    ps = P::add(P::mul(ps, s), P::set1(kSinC5));
    ps = P::add(P::mul(ps, s), P::set1(kSinC4));
    ps = P::add(P::mul(ps, s), P::set1(kSinC3));
    ps = P::add(P::mul(ps, s), P::set1(kSinC2));
    ps = P::add(P::mul(ps, s), P::set1(kSinC1));
    const pk sin_r = P::add(r, P::mul(P::mul(r, s), ps));
    pk pc = P::set1(kCosC0);
    pc = P::add(P::mul(pc, s), P::set1(kCosC1));
    pc = P::add(P::mul(pc, s), P::set1(kCosC2));
    pc = P::add(P::mul(pc, s), P::set1(kCosC3));
    pc = P::add(P::mul(pc, s), P::set1(kCosC4));
    pc = P::add(P::mul(pc, s), P::set1(kCosC5));
    const pk cos_r = P::add(P::sub(P::set1(1.0), P::mul(P::set1(0.5), s)),
                            P::mul(P::mul(s, s), pc));
    // Quadrant select: odd q -> cos polynomial; q & 2 -> flip the sign.
    const ik use_cos = P::lane_mask(P::iand(qbits, P::iset1(1)));
    const pk picked = P::select(use_cos, cos_r, sin_r);
    const ik sign = P::template ishl<62>(P::iand(qbits, P::iset1(2)));
    return P::from_bits(P::ixor(P::bits(picked), sign));
}

/// exp of one pack. Contract: every lane within +-kMaxExpArgument.
template <class P>
[[nodiscard]] inline typename P::pack exp_pack(typename P::pack x) noexcept {
    using pk = typename P::pack;
    using ik = typename P::ipack;
    // q = round(x / ln2); r = x - q*ln2 in [-ln2/2, ln2/2].
    const pk t = P::add(P::mul(x, P::set1(kLog2E)), P::set1(kRoundMagic));
    const ik qbits = P::bits(t);
    const pk qf = P::sub(t, P::set1(kRoundMagic));
    pk r = P::sub(x, P::mul(qf, P::set1(kLn2Hi)));
    r = P::sub(r, P::mul(qf, P::set1(kLn2Lo)));
    pk p = P::set1(kExpC13);
    p = P::add(P::mul(p, r), P::set1(kExpC12));
    p = P::add(P::mul(p, r), P::set1(kExpC11));
    p = P::add(P::mul(p, r), P::set1(kExpC10));
    p = P::add(P::mul(p, r), P::set1(kExpC9));
    p = P::add(P::mul(p, r), P::set1(kExpC8));
    p = P::add(P::mul(p, r), P::set1(kExpC7));
    p = P::add(P::mul(p, r), P::set1(kExpC6));
    p = P::add(P::mul(p, r), P::set1(kExpC5));
    p = P::add(P::mul(p, r), P::set1(kExpC4));
    p = P::add(P::mul(p, r), P::set1(kExpC3));
    p = P::add(P::mul(p, r), P::set1(kExpC2));
    const pk e = P::add(P::set1(1.0), P::add(r, P::mul(P::mul(r, r), p)));
    // Scale by 2^q: t's mantissa holds magic+q, so bits(t)-bits(magic)=q
    // as a (wrapping) integer; assemble the exponent field directly.
    const ik q = P::isub(qbits, P::iset1(kRoundMagicBits));
    const ik scale = P::template ishl<52>(P::iadd(q, P::iset1(1023)));
    return P::mul(e, P::from_bits(scale));
}

/// Natural log of one pack. Contract: every lane a positive NORMAL
/// double (no subnormals, no zero/inf/NaN). The fdlibm algorithm,
/// de-branched: mantissa recentring is integer arithmetic on the bit
/// pattern, and the exponent k returns to the FP domain through the
/// round-magic trick (exact, |k| <= 2047 << 2^51).
template <class P>
[[nodiscard]] inline typename P::pack log_pack(typename P::pack x) noexcept {
    using pk = typename P::pack;
    using ik = typename P::ipack;
    const ik ix = P::bits(x);
    const ik tmp = P::isub(ix, P::iset1(kLogOff));
    // k = top 12 bits of tmp, sign-extended ((v ^ 0x800) - 0x800): the
    // wrapping subtraction above keeps two's complement intact, so this
    // recovers the true exponent for the whole normal range.
    const ik k12 = P::template ishr<52>(tmp);
    const ik k = P::isub(P::ixor(k12, P::iset1(0x800)), P::iset1(0x800));
    // m = x / 2^k, recentred into [sqrt(2)/2, sqrt(2)).
    const ik mbits =
        P::isub(ix, P::iand(tmp, P::iset1(0xfff0000000000000ULL)));
    const pk m = P::from_bits(mbits);
    // k as a double: bits(magic) + k reassembles magic + k exactly.
    const pk dk = P::sub(P::from_bits(P::iadd(P::iset1(kRoundMagicBits), k)),
                         P::set1(kRoundMagic));
    // fdlibm core on f = m-1, s = f/(2+f), verbatim association.
    const pk f = P::sub(m, P::set1(1.0));
    const pk s = P::div(f, P::add(P::set1(2.0), f));
    const pk z = P::mul(s, s);
    const pk w = P::mul(z, z);
    const pk t1 = P::mul(
        w, P::add(P::set1(kLg2),
                  P::mul(w, P::add(P::set1(kLg4),
                                   P::mul(w, P::set1(kLg6))))));
    const pk t2 = P::mul(
        z, P::add(P::set1(kLg1),
                  P::mul(w, P::add(P::set1(kLg3),
                                   P::mul(w, P::add(P::set1(kLg5),
                                                    P::mul(w, P::set1(kLg7))))))));
    const pk r = P::add(t2, t1);
    const pk hfsq = P::mul(P::mul(P::set1(0.5), f), f);
    // dk*ln2hi - ((hfsq - (s*(hfsq+r) + dk*ln2lo)) - f)
    const pk inner = P::add(P::mul(s, P::add(hfsq, r)),
                            P::mul(dk, P::set1(kLn2Lo)));
    return P::sub(P::mul(dk, P::set1(kLn2Hi)),
                  P::sub(P::sub(hfsq, inner), f));
}

/// softplus ln(1+e^x) of one pack. Contract: |x| <= kMaxExpArgument.
/// Evaluated as max(x,0) + log1p(e^-|x|); both the max and the sign flip
/// are exact bit ops, and log1p uses the u = 1+y correction so the
/// result tracks the correctly rounded softplus within a few ULP.
template <class P>
[[nodiscard]] inline typename P::pack
softplus_pack(typename P::pack x) noexcept {
    using pk = typename P::pack;
    using ik = typename P::ipack;
    const pk ax = P::from_bits(P::iand(P::bits(x), P::iset1(kAbsMask)));
    // max(x, 0) = (x + |x|)/2, both steps exact.
    const pk mx = P::mul(P::set1(0.5), P::add(x, ax));
    const pk nax = P::from_bits(P::ixor(P::bits(ax), P::iset1(kSignMask)));
    const pk e = exp_pack<P>(nax); // e^-|x| in (0, 1]
    const pk u = P::add(P::set1(1.0), e);
    const pk d = P::sub(u, P::set1(1.0));
    // Lanes where u rounded to 1 (e < 2^-53): log1p(e) = e to full
    // precision. d == +0 exactly there; build the zero-test mask from
    // integer ops ((v | -v) >> 63 is 1 iff v != 0).
    const ik dbits = P::bits(d);
    const ik nonzero = P::template ishr<63>(
        P::ior(dbits, P::isub(P::iset1(0), dbits)));
    const ik mask = P::lane_mask(nonzero);
    const pk safe_d = P::select(mask, d, P::set1(1.0));
    const pk corr = P::mul(log_pack<P>(u), P::div(e, safe_d));
    return P::add(mx, P::select(mask, corr, e));
}

template <class P>
inline void sin_batch_impl(const double* x, double* out, std::size_t n) noexcept {
    constexpr std::size_t w = P::width;
    std::size_t i = 0;
    for (; i + w <= n; i += w)
        P::store(out + i, sin_pack<P>(P::load(x + i)));
    for (; i < n; ++i)
        out[i] = sin_pack<ScalarPack>(x[i]); // identical ops, one lane
}

template <class P>
inline void exp_batch_impl(const double* x, double* out, std::size_t n) noexcept {
    constexpr std::size_t w = P::width;
    std::size_t i = 0;
    for (; i + w <= n; i += w)
        P::store(out + i, exp_pack<P>(P::load(x + i)));
    for (; i < n; ++i)
        out[i] = exp_pack<ScalarPack>(x[i]);
}

template <class P>
inline void log_batch_impl(const double* x, double* out, std::size_t n) noexcept {
    constexpr std::size_t w = P::width;
    std::size_t i = 0;
    for (; i + w <= n; i += w)
        P::store(out + i, log_pack<P>(P::load(x + i)));
    for (; i < n; ++i)
        out[i] = log_pack<ScalarPack>(x[i]);
}

template <class P>
inline void softplus_batch_impl(const double* x, double* out,
                                std::size_t n) noexcept {
    constexpr std::size_t w = P::width;
    std::size_t i = 0;
    for (; i + w <= n; i += w)
        P::store(out + i, softplus_pack<P>(P::load(x + i)));
    for (; i < n; ++i)
        out[i] = softplus_pack<ScalarPack>(x[i]);
}

#if defined(__x86_64__) || defined(_M_X64)
// Implemented in vecmath_avx2.cpp (the one TU built with -mavx2); only
// dispatched to after __builtin_cpu_supports("avx2") says yes.
void sin_batch_avx2(const double* x, double* out, std::size_t n) noexcept;
void exp_batch_avx2(const double* x, double* out, std::size_t n) noexcept;
void log_batch_avx2(const double* x, double* out, std::size_t n) noexcept;
void softplus_batch_avx2(const double* x, double* out, std::size_t n) noexcept;
#endif

} // namespace xysig::kernels::vecmath::detail

#endif // XYSIG_KERNELS_VECMATH_DETAIL_H
