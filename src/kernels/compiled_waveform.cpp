#include "kernels/compiled_waveform.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"
#include "kernels/vecmath.h"

namespace xysig::kernels {

std::optional<CompiledWaveform> CompiledWaveform::compile(const Waveform& w) {
    CompiledWaveform out;
    if (compile_into(w, out))
        return out;
    return std::nullopt;
}

bool CompiledWaveform::compile_into(const Waveform& w, CompiledWaveform& out) {
    out.amplitude_.clear();
    out.omega_.clear();
    out.phase_.clear();
    if (const auto* dc = dynamic_cast<const DcWaveform*>(&w)) {
        out.offset_ = dc->level();
        return true;
    }
    if (const auto* sine = dynamic_cast<const SineWaveform*>(&w)) {
        out.offset_ = sine->offset();
        out.amplitude_.push_back(sine->amplitude());
        // kTwoPi * f pre-multiplied: value() evaluates the sine argument as
        // (kTwoPi * f) * t + phase, so folding the first product keeps the
        // rounding identical.
        out.omega_.push_back(kTwoPi * sine->frequency());
        out.phase_.push_back(sine->phase());
        return true;
    }
    if (const auto* multi = dynamic_cast<const MultitoneWaveform*>(&w)) {
        out.offset_ = multi->offset();
        const auto& tones = multi->tones();
        out.amplitude_.reserve(tones.size());
        out.omega_.reserve(tones.size());
        out.phase_.reserve(tones.size());
        for (const Tone& tone : tones) {
            out.amplitude_.push_back(tone.amplitude);
            out.omega_.push_back(kTwoPi * tone.frequency_hz);
            out.phase_.push_back(tone.phase_rad);
        }
        return true;
    }
    return false;
}

void CompiledWaveform::sample_into(double t0, double duration, std::size_t n,
                                   std::vector<double>& buffer,
                                   SampleMode mode) const {
    XYSIG_EXPECTS(duration > 0.0);
    XYSIG_EXPECTS(n >= 2);
    const double dt = duration / static_cast<double>(n);
    buffer.resize(n);
    double* const out = buffer.data();

    const std::size_t n_tones = amplitude_.size();

    if (mode == SampleMode::fast_math && n_tones > 0) {
        const vecmath::ToneTable table{amplitude_.data(), omega_.data(),
                                       phase_.data(), n_tones, offset_};
        if (vecmath::tones_in_range(table, t0, dt, n)) {
            // Same argument arithmetic and accumulation order as the loop
            // below; only the sine evaluation differs (see vecmath.h for
            // the 2-ULP contract). Out-of-range arguments fall through to
            // the exact path so the mode never changes the domain.
            vecmath::sample_multitone(table, t0, dt, n, out);
            return;
        }
    }
    const double off = offset_;
    const double* const amp = amplitude_.data();
    const double* const omg = omega_.data();
    const double* const ph = phase_.data();

    // One fused pass: each sample accumulates offset then the tones in
    // declaration order — the exact addition sequence of the virtual
    // per-sample path, so the result is bit-identical — with the flat
    // coefficient arrays streaming from L1 instead of a virtual dispatch
    // plus tone-vector walk per sample.
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + static_cast<double>(i) * dt;
        double acc = off;
        for (std::size_t k = 0; k < n_tones; ++k)
            acc += amp[k] * std::sin(omg[k] * t + ph[k]);
        out[i] = acc;
    }
}

double CompiledWaveform::value(double t) const {
    double acc = offset_;
    for (std::size_t k = 0; k < amplitude_.size(); ++k)
        acc += amplitude_[k] * std::sin(omega_[k] * t + phase_[k]);
    return acc;
}

} // namespace xysig::kernels
