#ifndef XYSIG_KERNELS_COMPILED_WAVEFORM_H
#define XYSIG_KERNELS_COMPILED_WAVEFORM_H

/// \file compiled_waveform.h
/// Devirtualised stimulus sampling kernel.
///
/// The virtual sampling path pays one Waveform::value dispatch per sample
/// and walks the tone vector through a pointer each time. CompiledWaveform
/// flattens the closed-form waveforms (DC, sine, multitone) into a
/// struct-of-arrays tone table — amplitude[k], omega[k] = 2*pi*f_k,
/// phase[k] — and samples in one fused, branch-free pass over the time
/// axis with the flat coefficient arrays streaming from L1. The
/// accumulation order (offset, then tones in declaration order) matches
/// MultitoneWaveform::value exactly, so results are bit-identical to the
/// virtual path.
///
/// Waveforms that are not closed-form sums of sines (PWL, pulse, ...) do
/// not compile; callers fall back to the virtual per-sample loop.

#include <cstddef>
#include <optional>
#include <vector>

#include "signal/sample_mode.h"
#include "signal/waveform.h"

namespace xysig::kernels {

class CompiledWaveform {
public:
    /// Flattens a DcWaveform, SineWaveform or MultitoneWaveform; nullopt
    /// for any other waveform type (the caller keeps the virtual loop).
    [[nodiscard]] static std::optional<CompiledWaveform> compile(const Waveform& w);

    /// Allocation-reusing variant for hot loops: recompiles w into `out`,
    /// keeping the tone-table capacity from previous calls. Returns false
    /// (leaving `out` unspecified) for non-compilable waveforms. The batch
    /// path recompiles two waveforms per CUT evaluation, so this keeps the
    /// per-evaluation heap traffic at zero.
    [[nodiscard]] static bool compile_into(const Waveform& w, CompiledWaveform& out);

    /// Samples [t0, t0 + duration) with n samples (endpoint excluded) into
    /// buffer (resized to n). Same sampling arithmetic as
    /// SampledSignal::sample_waveform_into: t_i = t0 + i * (duration / n).
    ///
    /// SampleMode::exact (the default) keeps the libm path, bit-identical
    /// to the virtual loop. SampleMode::fast_math evaluates the sines
    /// through vecmath::sample_multitone — within 2 ULP per tone of the
    /// exact value, bit-identical across ISAs — falling back to the exact
    /// path when an argument would leave vecmath's documented range (and
    /// for pure-DC tables, where both paths agree bit for bit anyway).
    void sample_into(double t0, double duration, std::size_t n,
                     std::vector<double>& buffer,
                     SampleMode mode = SampleMode::exact) const;

    /// Scalar evaluation (tests / spot checks); bit-identical to the source
    /// waveform's value(t).
    [[nodiscard]] double value(double t) const;

    [[nodiscard]] std::size_t tone_count() const noexcept {
        return amplitude_.size();
    }
    [[nodiscard]] double offset() const noexcept { return offset_; }

private:
    double offset_ = 0.0;
    // Struct-of-arrays tone table (kept separate so each per-tone pass
    // streams one coefficient set through registers).
    std::vector<double> amplitude_;
    std::vector<double> omega_; ///< 2*pi*frequency, pre-multiplied
    std::vector<double> phase_;
};

} // namespace xysig::kernels

#endif // XYSIG_KERNELS_COMPILED_WAVEFORM_H
