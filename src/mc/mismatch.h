#ifndef XYSIG_MC_MISMATCH_H
#define XYSIG_MC_MISMATCH_H

/// \file mismatch.h
/// Process and mismatch variability models for the Monte-Carlo experiments
/// (the paper validates its measured boundary curves against foundry
/// process+mismatch Monte-Carlo predictions; this is our equivalent).

#include "common/rng.h"

namespace xysig::mc {

/// Pelgrom-law local mismatch: parameter spreads scale as 1/sqrt(W*L).
/// Constants are in SI (V*m and m), i.e. A_vt = 3.5 mV*um = 3.5e-9 V*m.
struct PelgromModel {
    double a_vt = 3.5e-9;   ///< threshold mismatch coefficient (V*m)
    double a_beta = 1.0e-8; ///< relative beta mismatch coefficient (m)

    /// Standard deviation of a single device's Vt deviation (V).
    [[nodiscard]] double sigma_vt(double w, double l) const;
    /// Standard deviation of a single device's relative kp deviation.
    [[nodiscard]] double sigma_beta_rel(double w, double l) const;
};

/// Die-level (global) process variation applied identically to all devices
/// of one sample.
struct ProcessVariation {
    double sigma_vt0 = 0.015;  ///< global Vt shift spread (V)
    double sigma_kp_rel = 0.04;///< global kp relative spread
    /// Comparator offset current spread (A): load mismatch + leakage
    /// referred to the current comparison. Dominates the decision when the
    /// input devices are in subthreshold (nA-scale currents).
    double sigma_offset_current = 2e-9;
};

/// One Monte-Carlo sample of the global process state.
struct ProcessSample {
    double delta_vt0 = 0.0; ///< added to every device's vt0
    double kp_scale = 1.0;  ///< multiplies every device's kp
};

[[nodiscard]] ProcessSample sample_process(const ProcessVariation& pv, Rng& rng);

} // namespace xysig::mc

#endif // XYSIG_MC_MISMATCH_H
