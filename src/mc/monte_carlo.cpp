#include "mc/monte_carlo.h"

#include <cmath>

#include "common/contracts.h"
#include "common/parallel.h"
#include "common/statistics.h"

namespace xysig::mc {

namespace {

/// The n independent per-sample streams, forked in sample order. Both the
/// serial and the parallel engines consume exactly this sequence, which is
/// what makes their results bit-for-bit identical.
std::vector<Rng> fork_streams(int n, std::uint64_t seed) {
    Rng parent(seed);
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        streams.push_back(parent.fork());
    return streams;
}

/// Column order statistics shared by the serial and parallel envelope
/// builders (identical reduction code, so identical rounding).
CurveEnvelope envelope_from_curves(std::vector<double> xs,
                                   const std::vector<std::vector<double>>& curves) {
    CurveEnvelope env;
    env.xs = std::move(xs);
    const std::size_t m = env.xs.size();
    env.p05.resize(m);
    env.p50.resize(m);
    env.p95.resize(m);
    env.lo.resize(m);
    env.hi.resize(m);
    std::vector<double> column;
    for (std::size_t j = 0; j < m; ++j) {
        column.clear();
        for (const auto& c : curves)
            if (!std::isnan(c[j]))
                column.push_back(c[j]);
        if (column.empty()) {
            const double nan = std::nan("");
            env.p05[j] = env.p50[j] = env.p95[j] = env.lo[j] = env.hi[j] = nan;
            continue;
        }
        env.p05[j] = percentile(column, 5.0);
        env.p50[j] = percentile(column, 50.0);
        env.p95[j] = percentile(column, 95.0);
        env.lo[j] = min_value(column);
        env.hi[j] = max_value(column);
    }
    return env;
}

} // namespace

std::vector<double> run_monte_carlo(int n, std::uint64_t seed,
                                    const std::function<double(Rng&)>& fn) {
    XYSIG_EXPECTS(n >= 1);
    Rng parent(seed);
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Rng stream = parent.fork();
        out.push_back(fn(stream));
    }
    return out;
}

std::vector<double> run_monte_carlo_parallel(int n, std::uint64_t seed,
                                             const std::function<double(Rng&)>& fn,
                                             unsigned threads) {
    XYSIG_EXPECTS(n >= 1);
    std::vector<Rng> streams = fork_streams(n, seed);
    std::vector<double> out(static_cast<std::size_t>(n));
    parallel_for(
        0, static_cast<std::size_t>(n),
        [&](std::size_t i) { out[i] = fn(streams[i]); }, threads);
    return out;
}

bool CurveEnvelope::contains(std::span<const double> ys, double tolerance) const {
    XYSIG_EXPECTS(ys.size() == xs.size());
    for (std::size_t i = 0; i < ys.size(); ++i) {
        if (std::isnan(ys[i]))
            continue;
        if (ys[i] < p05[i] - tolerance || ys[i] > p95[i] + tolerance)
            return false;
    }
    return true;
}

CurveEnvelope monte_carlo_envelope(
    int n, std::uint64_t seed, std::vector<double> xs,
    const std::function<std::vector<double>(Rng&, const std::vector<double>&)>&
        curve_fn) {
    XYSIG_EXPECTS(n >= 2);
    XYSIG_EXPECTS(!xs.empty());

    Rng parent(seed);
    std::vector<std::vector<double>> curves;
    curves.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Rng stream = parent.fork();
        std::vector<double> ys = curve_fn(stream, xs);
        XYSIG_ASSERT(ys.size() == xs.size());
        curves.push_back(std::move(ys));
    }
    return envelope_from_curves(std::move(xs), curves);
}

CurveEnvelope monte_carlo_envelope_parallel(
    int n, std::uint64_t seed, std::vector<double> xs,
    const std::function<std::vector<double>(Rng&, const std::vector<double>&)>&
        curve_fn,
    unsigned threads) {
    XYSIG_EXPECTS(n >= 2);
    XYSIG_EXPECTS(!xs.empty());

    std::vector<Rng> streams = fork_streams(n, seed);
    std::vector<std::vector<double>> curves(static_cast<std::size_t>(n));
    parallel_for(
        0, static_cast<std::size_t>(n),
        [&](std::size_t i) {
            std::vector<double> ys = curve_fn(streams[i], xs);
            XYSIG_ASSERT(ys.size() == xs.size());
            curves[i] = std::move(ys);
        },
        threads);
    return envelope_from_curves(std::move(xs), curves);
}

} // namespace xysig::mc
