#include "mc/mismatch.h"

#include <cmath>

#include "common/contracts.h"

namespace xysig::mc {

double PelgromModel::sigma_vt(double w, double l) const {
    XYSIG_EXPECTS(w > 0.0 && l > 0.0);
    return a_vt / std::sqrt(w * l);
}

double PelgromModel::sigma_beta_rel(double w, double l) const {
    XYSIG_EXPECTS(w > 0.0 && l > 0.0);
    return a_beta / std::sqrt(w * l);
}

ProcessSample sample_process(const ProcessVariation& pv, Rng& rng) {
    ProcessSample s;
    s.delta_vt0 = rng.normal(0.0, pv.sigma_vt0);
    s.kp_scale = 1.0 + rng.normal(0.0, pv.sigma_kp_rel);
    // Guard against absurd tail draws that would make kp non-physical.
    if (s.kp_scale < 0.5)
        s.kp_scale = 0.5;
    return s;
}

} // namespace xysig::mc
