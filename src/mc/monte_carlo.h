#ifndef XYSIG_MC_MONTE_CARLO_H
#define XYSIG_MC_MONTE_CARLO_H

/// \file monte_carlo.h
/// Monte-Carlo engine: reproducible sampling with per-sample forked RNG
/// streams, scalar statistics and curve envelopes (the "predicted range"
/// the paper compares its measured boundary curves against).

#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"

namespace xysig::mc {

/// Runs fn n times, each with an independent forked stream; returns the
/// scalar observations in sample order (deterministic in seed).
[[nodiscard]] std::vector<double> run_monte_carlo(
    int n, std::uint64_t seed, const std::function<double(Rng&)>& fn);

/// Percentile envelope of a family of curves sampled on a common x grid.
struct CurveEnvelope {
    std::vector<double> xs;
    std::vector<double> p05; ///< 5th percentile per x
    std::vector<double> p50; ///< median per x
    std::vector<double> p95; ///< 95th percentile per x
    std::vector<double> lo;  ///< minimum per x
    std::vector<double> hi;  ///< maximum per x

    /// True when y(x) lies inside [p05, p95] at every grid point where y is
    /// finite; used to check nominal curves against the predicted MC range.
    [[nodiscard]] bool contains(std::span<const double> ys,
                                double tolerance = 0.0) const;
};

/// Builds the envelope from n sampled curves. curve_fn(rng, xs) returns the
/// y values of one random curve on the grid (NaN marks "no value at this x",
/// which is excluded from the order statistics of that column).
[[nodiscard]] CurveEnvelope monte_carlo_envelope(
    int n, std::uint64_t seed, std::vector<double> xs,
    const std::function<std::vector<double>(Rng&, const std::vector<double>&)>&
        curve_fn);

} // namespace xysig::mc

#endif // XYSIG_MC_MONTE_CARLO_H
