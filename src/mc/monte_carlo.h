#ifndef XYSIG_MC_MONTE_CARLO_H
#define XYSIG_MC_MONTE_CARLO_H

/// \file monte_carlo.h
/// Monte-Carlo engine: reproducible sampling with per-sample forked RNG
/// streams, scalar statistics and curve envelopes (the "predicted range"
/// the paper compares its measured boundary curves against).

#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"

namespace xysig::mc {

/// Runs fn n times, each with an independent forked stream; returns the
/// scalar observations in sample order (deterministic in seed).
[[nodiscard]] std::vector<double> run_monte_carlo(
    int n, std::uint64_t seed, const std::function<double(Rng&)>& fn);

/// Parallel batch variant of run_monte_carlo: the n per-sample streams are
/// forked up front in sample order (identical parent-RNG evolution to the
/// serial path), then the samples are evaluated concurrently, each writing
/// its own output slot. Results are bit-for-bit identical to
/// run_monte_carlo for the same (n, seed, fn), whatever the thread count.
/// fn must be safe to call concurrently on distinct Rng streams.
/// threads == 0 uses default_thread_count().
[[nodiscard]] std::vector<double> run_monte_carlo_parallel(
    int n, std::uint64_t seed, const std::function<double(Rng&)>& fn,
    unsigned threads = 0);

/// Percentile envelope of a family of curves sampled on a common x grid.
struct CurveEnvelope {
    std::vector<double> xs;
    std::vector<double> p05; ///< 5th percentile per x
    std::vector<double> p50; ///< median per x
    std::vector<double> p95; ///< 95th percentile per x
    std::vector<double> lo;  ///< minimum per x
    std::vector<double> hi;  ///< maximum per x

    /// True when y(x) lies inside [p05, p95] at every grid point where y is
    /// finite; used to check nominal curves against the predicted MC range.
    [[nodiscard]] bool contains(std::span<const double> ys,
                                double tolerance = 0.0) const;
};

/// Builds the envelope from n sampled curves. curve_fn(rng, xs) returns the
/// y values of one random curve on the grid (NaN marks "no value at this x",
/// which is excluded from the order statistics of that column).
[[nodiscard]] CurveEnvelope monte_carlo_envelope(
    int n, std::uint64_t seed, std::vector<double> xs,
    const std::function<std::vector<double>(Rng&, const std::vector<double>&)>&
        curve_fn);

/// Parallel batch variant of monte_carlo_envelope, with the same pre-forked
/// stream scheme as run_monte_carlo_parallel: bit-for-bit identical to the
/// serial envelope for the same inputs, independent of thread count.
/// curve_fn must be safe to call concurrently on distinct Rng streams.
[[nodiscard]] CurveEnvelope monte_carlo_envelope_parallel(
    int n, std::uint64_t seed, std::vector<double> xs,
    const std::function<std::vector<double>(Rng&, const std::vector<double>&)>&
        curve_fn,
    unsigned threads = 0);

} // namespace xysig::mc

#endif // XYSIG_MC_MONTE_CARLO_H
