#include "filter/cut.h"

#include <utility>

#include "common/contracts.h"
#include "common/strings.h"
#include "spice/elements.h"
#include "spice/transient.h"

namespace xysig::filter {

void Cut::respond_into(const MultitoneWaveform& stimulus,
                       std::size_t samples_per_period, std::vector<double>& xs,
                       std::vector<double>& ys, double& dt) const {
    const XyTrace tr = respond(stimulus, samples_per_period);
    xs.assign(tr.x().samples().begin(), tr.x().samples().end());
    ys.assign(tr.y().samples().begin(), tr.y().samples().end());
    dt = tr.dt();
}

void Cut::respond_y_into(const MultitoneWaveform& stimulus,
                         std::size_t samples_per_period, std::vector<double>& ys,
                         double& dt, SampleMode /*mode*/) const {
    // Correct-but-unaccelerated fallback: evaluate both channels and keep
    // y. Cuts that advertise x_is_stimulus() should override this; the
    // exact-mode values still match respond_into's y channel bit for bit,
    // which is all the pipeline's trace-cache path requires. The mode is
    // deliberately dropped — a cut without a closed-form y has nothing
    // fast_math may legally change.
    thread_local std::vector<double> xs_discard;
    respond_into(stimulus, samples_per_period, xs_discard, ys, dt);
}

BehaviouralCut::BehaviouralCut(Biquad filter) : filter_(std::move(filter)) {}

XyTrace BehaviouralCut::respond(const MultitoneWaveform& stimulus,
                                std::size_t samples_per_period) const {
    // One copy of the sampling arithmetic: the batch engine's bit-identity
    // contract depends on respond() and respond_into() never diverging.
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    respond_into(stimulus, samples_per_period, xs, ys, dt);
    return XyTrace(SampledSignal(0.0, dt, std::move(xs)),
                   SampledSignal(0.0, dt, std::move(ys)));
}

void BehaviouralCut::respond_into(const MultitoneWaveform& stimulus,
                                  std::size_t samples_per_period,
                                  std::vector<double>& xs, std::vector<double>& ys,
                                  double& dt) const {
    XYSIG_EXPECTS(samples_per_period >= 16);
    const double period = stimulus.period();
    SampledSignal::sample_waveform_into(stimulus, 0.0, period, samples_per_period,
                                        xs);
    respond_y_into(stimulus, samples_per_period, ys, dt, SampleMode::exact);
}

void BehaviouralCut::respond_y_into(const MultitoneWaveform& stimulus,
                                    std::size_t samples_per_period,
                                    std::vector<double>& ys, double& dt,
                                    SampleMode mode) const {
    XYSIG_EXPECTS(samples_per_period >= 16);
    const double period = stimulus.period();
    const MultitoneWaveform out = filter_.steady_state_output(stimulus);
    SampledSignal::sample_waveform_into(out, 0.0, period, samples_per_period, ys,
                                        mode);
    dt = period / static_cast<double>(samples_per_period);
}

std::string BehaviouralCut::description() const {
    return "behavioural biquad f0=" + format_double(filter_.design().f0, 6) +
           " Hz, Q=" + format_double(filter_.design().q, 4);
}

std::string BehaviouralCut::cache_key() const {
    // Exact (hexfloat) design parameters: equal keys <=> bit-identical
    // steady-state responses.
    const BiquadDesign& d = filter_.design();
    return "biquad{f0=" + format_double_exact(d.f0) +
           ",q=" + format_double_exact(d.q) +
           ",g=" + format_double_exact(d.gain) +
           ",k=" + std::to_string(static_cast<int>(d.kind)) + "}";
}

SpiceCut::SpiceCut(spice::Netlist& netlist, std::string input_source,
                   std::string x_node, std::string y_node, int settle_periods)
    : netlist_(&netlist), input_source_(std::move(input_source)),
      x_node_(std::move(x_node)), y_node_(std::move(y_node)),
      settle_periods_(settle_periods) {
    XYSIG_EXPECTS(settle_periods >= 1);
}

SpiceCut::SpiceCut(std::unique_ptr<spice::Netlist> netlist,
                   std::string input_source, std::string x_node,
                   std::string y_node, int settle_periods)
    : owned_(std::move(netlist)), netlist_(owned_.get()),
      input_source_(std::move(input_source)), x_node_(std::move(x_node)),
      y_node_(std::move(y_node)), settle_periods_(settle_periods) {
    XYSIG_EXPECTS(owned_ != nullptr);
    XYSIG_EXPECTS(settle_periods >= 1);
}

XyTrace SpiceCut::respond(const MultitoneWaveform& stimulus,
                          std::size_t samples_per_period) const {
    // Same single-copy scheme as BehaviouralCut: respond() and
    // respond_into() must never diverge (batch bit-identity contract).
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    respond_into(stimulus, samples_per_period, xs, ys, dt);
    return XyTrace(SampledSignal(0.0, dt, std::move(xs)),
                   SampledSignal(0.0, dt, std::move(ys)));
}

void SpiceCut::respond_into(const MultitoneWaveform& stimulus,
                            std::size_t samples_per_period,
                            std::vector<double>& xs, std::vector<double>& ys,
                            double& dt) const {
    XYSIG_EXPECTS(samples_per_period >= 16);
    const double period = stimulus.period();
    auto& src = netlist_->get<spice::VoltageSource>(input_source_);
    src.set_waveform(stimulus);

    spice::TransientOptions opts;
    opts.t_start = 0.0;
    opts.t_stop = static_cast<double>(settle_periods_ + 1) * period;
    opts.dt = period / static_cast<double>(samples_per_period);
    spice::run_transient_into(*netlist_, opts, tran_);

    // Extract the final period and re-base it to t = 0 (the stimulus is
    // T-periodic, so its phase at k*T equals its phase at 0).
    const std::size_t first =
        static_cast<std::size_t>(settle_periods_) * samples_per_period;
    const spice::NodeId xn = netlist_->find_node(x_node_);
    const spice::NodeId yn = netlist_->find_node(y_node_);
    xs.resize(samples_per_period);
    ys.resize(samples_per_period);
    for (std::size_t i = 0; i < samples_per_period; ++i) {
        xs[i] = tran_.voltage(xn, first + i);
        ys[i] = tran_.voltage(yn, first + i);
    }
    dt = opts.dt;
}

std::string SpiceCut::description() const {
    return "spice netlist CUT (x=" + x_node_ + ", y=" + y_node_ + ")";
}

} // namespace xysig::filter
