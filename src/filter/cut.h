#ifndef XYSIG_FILTER_CUT_H
#define XYSIG_FILTER_CUT_H

/// \file cut.h
/// Circuit-under-test abstraction: anything that, driven by the multitone
/// stimulus, produces one steady-state period of the (x(t), y(t)) pair the
/// monitors observe. Two implementations:
///  * BehaviouralCut — exact LTI steady state of a Biquad (fast path for
///    sweeps and Monte-Carlo);
///  * SpiceCut — transient simulation of an arbitrary netlist (Tow-Thomas,
///    Sallen-Key, ...) with settling periods discarded.

#include <functional>
#include <memory>
#include <string>

#include "filter/biquad.h"
#include "signal/sampled.h"
#include "signal/waveform.h"
#include "spice/netlist.h"
#include "spice/transient.h"
#include "spice/types.h"

namespace xysig::filter {

/// Produces the observed Lissajous period for a stimulus.
///
/// Thread-safety contract (relied on by core::BatchNdfEvaluator): a single
/// Cut instance may be evaluated from at most one thread at a time, but
/// distinct instances must be safe to evaluate concurrently — they must not
/// share mutable state. BehaviouralCut is stateless and satisfies this
/// trivially; SpiceCut satisfies it when every instance owns (or exclusively
/// references) its own netlist, which is what the owning constructor and
/// Netlist::clone() provide.
class Cut {
public:
    virtual ~Cut() = default;

    /// One steady-state stimulus period of (x, y), re-based to t = 0, with
    /// samples_per_period uniform samples. x is the stimulus itself unless
    /// the CUT observes something else.
    [[nodiscard]] virtual XyTrace respond(const MultitoneWaveform& stimulus,
                                          std::size_t samples_per_period) const = 0;

    /// Buffer-reusing variant of respond() for the batch evaluation engine:
    /// writes the x/y samples into the given buffers (resized to
    /// samples_per_period) and sets dt to the sample spacing. Values are
    /// bit-identical to respond(). The default forwards to respond() and
    /// copies; BehaviouralCut overrides it to sample in place so per-thread
    /// scratch buffers survive across a whole batch.
    virtual void respond_into(const MultitoneWaveform& stimulus,
                              std::size_t samples_per_period,
                              std::vector<double>& xs, std::vector<double>& ys,
                              double& dt) const;

    /// Capability flag for the stimulus trace cache: true when the x
    /// channel of respond()/respond_into() is exactly the sampled
    /// stimulus (bit for bit, one period from t = 0). The pipeline then
    /// fills x from a shared immutable trace sampled once per job and
    /// asks only for y via respond_y_into() — eliminating one stimulus
    /// sampling per member. BehaviouralCut qualifies (x = stimulus by
    /// construction); SpiceCut does not (its x is a solver-produced node
    /// voltage).
    [[nodiscard]] virtual bool x_is_stimulus() const noexcept { return false; }

    /// y channel only, for cuts with x_is_stimulus(): writes the y
    /// samples (resized to samples_per_period) and sets dt, bit-identical
    /// to the y channel respond_into() produces under the same mode. The
    /// default falls back to respond_into() and discards x, so a custom
    /// cut that sets the capability flag without overriding this stays
    /// correct (merely unaccelerated). mode selects exact or fast_math
    /// sine evaluation; implementations without a closed-form y must
    /// ignore it (fast_math is a no-op outside tone-table sampling).
    virtual void respond_y_into(const MultitoneWaveform& stimulus,
                                std::size_t samples_per_period,
                                std::vector<double>& ys, double& dt,
                                SampleMode mode) const;

    /// Human-readable description for reports.
    [[nodiscard]] virtual std::string description() const = 0;

    /// Exact fingerprint for the golden-signature cache: two cuts with equal
    /// non-empty keys must produce bit-identical responses to any stimulus.
    /// The default (empty) marks the cut as non-cacheable; description() is
    /// NOT a substitute — it rounds values for display.
    [[nodiscard]] virtual std::string cache_key() const { return {}; }
};

/// Exact steady-state Biquad response (x = stimulus, y = filter output).
class BehaviouralCut final : public Cut {
public:
    explicit BehaviouralCut(Biquad filter);

    [[nodiscard]] XyTrace respond(const MultitoneWaveform& stimulus,
                                  std::size_t samples_per_period) const override;
    void respond_into(const MultitoneWaveform& stimulus,
                      std::size_t samples_per_period, std::vector<double>& xs,
                      std::vector<double>& ys, double& dt) const override;
    [[nodiscard]] bool x_is_stimulus() const noexcept override { return true; }
    void respond_y_into(const MultitoneWaveform& stimulus,
                        std::size_t samples_per_period, std::vector<double>& ys,
                        double& dt, SampleMode mode) const override;
    [[nodiscard]] std::string description() const override;
    [[nodiscard]] std::string cache_key() const override;

    [[nodiscard]] const Biquad& filter() const noexcept { return filter_; }

private:
    Biquad filter_;
};

/// Transient-simulated netlist response.
///
/// The netlist is either owned externally (reference constructor — the
/// caller promises it outlives the cut and is not simulated elsewhere) or by
/// the cut itself (owning constructor — the building block of SPICE fault
/// universes, where every cut gets its own deep clone). respond() mutates
/// the netlist (stimulus waveform + device transient state) and reuses an
/// internal transient buffer, so one instance must never be evaluated from
/// two threads at once; distinct instances over distinct netlists evaluate
/// concurrently without contention (see the Cut contract above).
class SpiceCut final : public Cut {
public:
    /// \param netlist        circuit to simulate (kept by reference)
    /// \param input_source   VoltageSource that receives the stimulus
    /// \param x_node,y_node  observed nodes
    /// \param settle_periods stimulus periods discarded before capture
    SpiceCut(spice::Netlist& netlist, std::string input_source, std::string x_node,
             std::string y_node, int settle_periods = 8);

    /// Owning variant: the cut keeps the netlist alive for its lifetime and
    /// is safe to evaluate concurrently with any other SpiceCut.
    SpiceCut(std::unique_ptr<spice::Netlist> netlist, std::string input_source,
             std::string x_node, std::string y_node, int settle_periods = 8);

    [[nodiscard]] XyTrace respond(const MultitoneWaveform& stimulus,
                                  std::size_t samples_per_period) const override;
    void respond_into(const MultitoneWaveform& stimulus,
                      std::size_t samples_per_period, std::vector<double>& xs,
                      std::vector<double>& ys, double& dt) const override;
    [[nodiscard]] std::string description() const override;

    [[nodiscard]] const spice::Netlist& netlist() const noexcept { return *netlist_; }

private:
    std::unique_ptr<spice::Netlist> owned_; ///< set by the owning constructor
    spice::Netlist* netlist_;
    std::string input_source_;
    std::string x_node_;
    std::string y_node_;
    int settle_periods_;
    /// Per-instance transient scratch: row buffers survive across respond()
    /// calls, so repeated evaluations stop reallocating the trajectory.
    mutable spice::TransientResult tran_;
};

} // namespace xysig::filter

#endif // XYSIG_FILTER_CUT_H
