#ifndef XYSIG_FILTER_CUT_H
#define XYSIG_FILTER_CUT_H

/// \file cut.h
/// Circuit-under-test abstraction: anything that, driven by the multitone
/// stimulus, produces one steady-state period of the (x(t), y(t)) pair the
/// monitors observe. Two implementations:
///  * BehaviouralCut — exact LTI steady state of a Biquad (fast path for
///    sweeps and Monte-Carlo);
///  * SpiceCut — transient simulation of an arbitrary netlist (Tow-Thomas,
///    Sallen-Key, ...) with settling periods discarded.

#include <functional>
#include <memory>
#include <string>

#include "filter/biquad.h"
#include "signal/sampled.h"
#include "signal/waveform.h"
#include "spice/netlist.h"
#include "spice/types.h"

namespace xysig::filter {

/// Produces the observed Lissajous period for a stimulus.
class Cut {
public:
    virtual ~Cut() = default;

    /// One steady-state stimulus period of (x, y), re-based to t = 0, with
    /// samples_per_period uniform samples. x is the stimulus itself unless
    /// the CUT observes something else.
    [[nodiscard]] virtual XyTrace respond(const MultitoneWaveform& stimulus,
                                          std::size_t samples_per_period) const = 0;

    /// Buffer-reusing variant of respond() for the batch evaluation engine:
    /// writes the x/y samples into the given buffers (resized to
    /// samples_per_period) and sets dt to the sample spacing. Values are
    /// bit-identical to respond(). The default forwards to respond() and
    /// copies; BehaviouralCut overrides it to sample in place so per-thread
    /// scratch buffers survive across a whole batch.
    virtual void respond_into(const MultitoneWaveform& stimulus,
                              std::size_t samples_per_period,
                              std::vector<double>& xs, std::vector<double>& ys,
                              double& dt) const;

    /// Human-readable description for reports.
    [[nodiscard]] virtual std::string description() const = 0;
};

/// Exact steady-state Biquad response (x = stimulus, y = filter output).
class BehaviouralCut final : public Cut {
public:
    explicit BehaviouralCut(Biquad filter);

    [[nodiscard]] XyTrace respond(const MultitoneWaveform& stimulus,
                                  std::size_t samples_per_period) const override;
    void respond_into(const MultitoneWaveform& stimulus,
                      std::size_t samples_per_period, std::vector<double>& xs,
                      std::vector<double>& ys, double& dt) const override;
    [[nodiscard]] std::string description() const override;

    [[nodiscard]] const Biquad& filter() const noexcept { return filter_; }

private:
    Biquad filter_;
};

/// Transient-simulated netlist response. The netlist is owned externally;
/// SpiceCut mutates only the named input source's waveform.
class SpiceCut final : public Cut {
public:
    /// \param netlist        circuit to simulate (kept by reference)
    /// \param input_source   VoltageSource that receives the stimulus
    /// \param x_node,y_node  observed nodes
    /// \param settle_periods stimulus periods discarded before capture
    SpiceCut(spice::Netlist& netlist, std::string input_source, std::string x_node,
             std::string y_node, int settle_periods = 8);

    [[nodiscard]] XyTrace respond(const MultitoneWaveform& stimulus,
                                  std::size_t samples_per_period) const override;
    [[nodiscard]] std::string description() const override;

private:
    spice::Netlist* netlist_;
    std::string input_source_;
    std::string x_node_;
    std::string y_node_;
    int settle_periods_;
};

} // namespace xysig::filter

#endif // XYSIG_FILTER_CUT_H
