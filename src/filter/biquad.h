#ifndef XYSIG_FILTER_BIQUAD_H
#define XYSIG_FILTER_BIQUAD_H

/// \file biquad.h
/// Second-order (biquadratic) filter models — the paper's CUT.
///
/// The behavioural model represents
///   H(s) = N(s) / (s^2 + (w0/Q) s + w0^2)
/// with N(s) selected by the response kind (low-pass: G*w0^2, band-pass:
/// G*(w0/Q)*s, high-pass: G*s^2). For periodic multitone stimuli the exact
/// steady-state output is computed per tone (LTI superposition), which is
/// both faster and more accurate than time stepping; a time-domain RK4
/// simulation is provided for cross-checks and arbitrary stimuli.

#include <complex>

#include "signal/sampled.h"
#include "signal/waveform.h"

namespace xysig::filter {

enum class BiquadKind { low_pass, band_pass, high_pass };

/// Design parameters of a second-order section.
struct BiquadDesign {
    double f0 = 10e3;  ///< natural frequency (Hz)
    double q = 1.0;    ///< quality factor
    double gain = 1.0; ///< pass-band gain G
    BiquadKind kind = BiquadKind::low_pass;
};

/// Analytic second-order filter.
class Biquad {
public:
    explicit Biquad(const BiquadDesign& design);

    [[nodiscard]] const BiquadDesign& design() const noexcept { return design_; }

    /// Returns a copy with the natural frequency shifted by the given
    /// fraction (the paper's defect model: f0' = f0 * (1 + delta)).
    [[nodiscard]] Biquad with_f0_shift(double delta_fraction) const;
    /// Same for Q deviations (extension experiments).
    [[nodiscard]] Biquad with_q_shift(double delta_fraction) const;

    /// Complex transfer function at frequency f (Hz).
    [[nodiscard]] std::complex<double> transfer(double f_hz) const;
    [[nodiscard]] double magnitude(double f_hz) const;
    [[nodiscard]] double phase(double f_hz) const;

    /// Exact steady-state output for a multitone input: each tone is scaled
    /// by |H| and shifted by arg(H); the DC offset is scaled by H(0).
    [[nodiscard]] MultitoneWaveform steady_state_output(
        const MultitoneWaveform& input) const;

    /// Time-domain simulation from zero initial state (classic RK4 on the
    /// controllable-canonical state space). Used to validate the
    /// steady-state path and for aperiodic stimuli.
    [[nodiscard]] SampledSignal simulate(const Waveform& input, double t0,
                                         double duration, std::size_t n) const;

private:
    BiquadDesign design_;
};

} // namespace xysig::filter

#endif // XYSIG_FILTER_BIQUAD_H
