#include "filter/biquad.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"

namespace xysig::filter {

Biquad::Biquad(const BiquadDesign& design) : design_(design) {
    XYSIG_EXPECTS(design.f0 > 0.0);
    XYSIG_EXPECTS(design.q > 0.0);
}

Biquad Biquad::with_f0_shift(double delta_fraction) const {
    XYSIG_EXPECTS(delta_fraction > -1.0);
    BiquadDesign d = design_;
    d.f0 *= (1.0 + delta_fraction);
    return Biquad(d);
}

Biquad Biquad::with_q_shift(double delta_fraction) const {
    XYSIG_EXPECTS(delta_fraction > -1.0);
    BiquadDesign d = design_;
    d.q *= (1.0 + delta_fraction);
    return Biquad(d);
}

std::complex<double> Biquad::transfer(double f_hz) const {
    const double w0 = kTwoPi * design_.f0;
    const std::complex<double> s(0.0, kTwoPi * f_hz);
    std::complex<double> num;
    switch (design_.kind) {
    case BiquadKind::low_pass:
        num = design_.gain * w0 * w0;
        break;
    case BiquadKind::band_pass:
        num = design_.gain * (w0 / design_.q) * s;
        break;
    case BiquadKind::high_pass:
        num = design_.gain * s * s;
        break;
    }
    const std::complex<double> den = s * s + (w0 / design_.q) * s + w0 * w0;
    return num / den;
}

double Biquad::magnitude(double f_hz) const { return std::abs(transfer(f_hz)); }

double Biquad::phase(double f_hz) const { return std::arg(transfer(f_hz)); }

MultitoneWaveform Biquad::steady_state_output(const MultitoneWaveform& input) const {
    const double h0 = transfer(0.0).real(); // H(0) is real
    std::vector<Tone> tones;
    tones.reserve(input.tones().size());
    for (const Tone& t : input.tones()) {
        const std::complex<double> h = transfer(t.frequency_hz);
        Tone out;
        out.frequency_hz = t.frequency_hz;
        out.amplitude = t.amplitude * std::abs(h);
        out.phase_rad = t.phase_rad + std::arg(h);
        tones.push_back(out);
    }
    return MultitoneWaveform(input.offset() * h0, std::move(tones));
}

SampledSignal Biquad::simulate(const Waveform& input, double t0, double duration,
                               std::size_t n) const {
    XYSIG_EXPECTS(n >= 2);
    XYSIG_EXPECTS(duration > 0.0);
    const double w0 = kTwoPi * design_.f0;
    const double a1 = w0 / design_.q; // s^1 denominator coefficient
    const double a0 = w0 * w0;        // s^0 denominator coefficient

    // Controllable canonical form: x1' = x2, x2' = -a0 x1 - a1 x2 + u.
    // Outputs: LP: G*a0*x1 ; BP: G*(w0/Q)*x2 ; HP: G*(u - a0 x1 - a1 x2).
    const double dt = duration / static_cast<double>(n);
    double x1 = 0.0, x2 = 0.0;

    auto deriv = [&](double s1, double s2, double u, double& d1, double& d2) {
        d1 = s2;
        d2 = -a0 * s1 - a1 * s2 + u;
    };

    std::vector<double> out(n);
    auto output = [&](double s1, double s2, double u) {
        switch (design_.kind) {
        case BiquadKind::low_pass:
            return design_.gain * a0 * s1;
        case BiquadKind::band_pass:
            return design_.gain * a1 * s2;
        case BiquadKind::high_pass:
            return design_.gain * (u - a0 * s1 - a1 * s2);
        }
        return 0.0; // unreachable
    };

    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + static_cast<double>(i) * dt;
        out[i] = output(x1, x2, input.value(t));

        // RK4 step from t to t+dt.
        double k1a, k1b, k2a, k2b, k3a, k3b, k4a, k4b;
        const double u1 = input.value(t);
        const double u2 = input.value(t + 0.5 * dt);
        const double u3 = input.value(t + dt);
        deriv(x1, x2, u1, k1a, k1b);
        deriv(x1 + 0.5 * dt * k1a, x2 + 0.5 * dt * k1b, u2, k2a, k2b);
        deriv(x1 + 0.5 * dt * k2a, x2 + 0.5 * dt * k2b, u2, k3a, k3b);
        deriv(x1 + dt * k3a, x2 + dt * k3b, u3, k4a, k4b);
        x1 += dt / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
        x2 += dt / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);
    }
    return SampledSignal(t0, dt, std::move(out));
}

} // namespace xysig::filter
