#ifndef XYSIG_FILTER_SALLEN_KEY_H
#define XYSIG_FILTER_SALLEN_KEY_H

/// \file sallen_key.h
/// Unity-gain Sallen-Key low-pass as a second CUT (application scenario
/// beyond the paper's Biquad; same test method, different topology).
///
/// Design (K = 1 follower, equal resistors R):
///   w0 = 1/(R*sqrt(C1*C2)),  Q = sqrt(C1*C2)/(2*C2) = 0.5*sqrt(C1/C2).
/// f0 deviations scale both capacitors: C' = C/(1+d)^... both by 1/(1+d).

#include <string>

#include "filter/biquad.h"
#include "spice/netlist.h"

namespace xysig::filter {

/// Component values of the unity-gain Sallen-Key section.
struct SallenKeyDesign {
    double r = 10e3; ///< both series resistors
    double c1 = 3.18e-9;
    double c2 = 0.8e-9;

    /// Derives values for a low-pass BiquadDesign (gain is forced to 1).
    static SallenKeyDesign from_biquad(const BiquadDesign& d, double r_base = 10e3);

    [[nodiscard]] double f0() const noexcept;
    [[nodiscard]] double q_factor() const noexcept;
};

/// Built Sallen-Key circuit with its observation points.
struct SallenKeyCircuit {
    spice::Netlist netlist;
    std::string input_source = "Vin";
    std::string input_node = "in";
    std::string lp_node = "out";
    SallenKeyDesign design;

    /// f0' = f0*(1+delta) by scaling both capacitors.
    void inject_f0_shift(double delta_fraction);
};

[[nodiscard]] SallenKeyCircuit build_sallen_key(const SallenKeyDesign& design);

} // namespace xysig::filter

#endif // XYSIG_FILTER_SALLEN_KEY_H
