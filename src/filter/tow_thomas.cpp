#include "filter/tow_thomas.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"
#include "spice/elements.h"

namespace xysig::filter {

TowThomasDesign TowThomasDesign::from_biquad(const BiquadDesign& d, double r_base) {
    XYSIG_EXPECTS(r_base > 0.0);
    XYSIG_EXPECTS(d.kind == BiquadKind::low_pass);
    TowThomasDesign t;
    t.r = r_base;
    t.rq = d.q * r_base;
    t.rin = r_base / d.gain;
    t.rg = r_base;
    t.c = 1.0 / (kTwoPi * d.f0 * r_base);
    return t;
}

double TowThomasDesign::f0() const noexcept { return 1.0 / (kTwoPi * r * c); }

TowThomasCircuit build_tow_thomas(const TowThomasDesign& design) {
    TowThomasCircuit ckt;
    ckt.design = design;
    spice::Netlist& nl = ckt.netlist;

    const auto in = nl.node("in");
    const auto sum1 = nl.node("sum1"); // A1 virtual ground
    const auto bp = nl.node("bp");
    const auto sum2 = nl.node("sum2"); // A2 virtual ground
    const auto lp = nl.node("lp");     // non-inverted LP output (A2)
    const auto sum3 = nl.node("sum3"); // A3 virtual ground
    const auto lpi = nl.node("lpi");   // inverted LP (A3), closes the loop

    nl.add<spice::VoltageSource>("Vin", in, spice::kGround, 0.0);

    // A1: lossy integrator. The loop feedback comes from the INVERTED
    // low-pass output so the loop is negative (stable); the observed
    // low-pass output with +R/Rin DC gain is A2's output.
    nl.add<spice::Resistor>("Rin", in, sum1, design.rin);
    nl.add<spice::Resistor>("Rf", lpi, sum1, design.r);
    nl.add<spice::Resistor>("Rq", sum1, bp, design.rq);
    nl.add<spice::Capacitor>("C1", sum1, bp, design.c);
    nl.add<spice::IdealOpamp>("A1", spice::kGround, sum1, bp);

    // A2: integrator -> lp.
    nl.add<spice::Resistor>("R2", bp, sum2, design.r);
    nl.add<spice::Capacitor>("C2", sum2, lp, design.c);
    nl.add<spice::IdealOpamp>("A2", spice::kGround, sum2, lp);

    // A3: unity inverter feeding the loop.
    nl.add<spice::Resistor>("Rg1", lp, sum3, design.rg);
    nl.add<spice::Resistor>("Rg2", sum3, lpi, design.rg);
    nl.add<spice::IdealOpamp>("A3", spice::kGround, sum3, lpi);

    return ckt;
}

void TowThomasCircuit::inject_f0_shift(double delta_fraction) {
    XYSIG_EXPECTS(delta_fraction > -1.0);
    const double scale = 1.0 / (1.0 + delta_fraction);
    auto& c1 = netlist.get<spice::Capacitor>("C1");
    auto& c2 = netlist.get<spice::Capacitor>("C2");
    c1.set_capacitance(design.c * scale);
    c2.set_capacitance(design.c * scale);
}

} // namespace xysig::filter
