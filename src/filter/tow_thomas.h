#ifndef XYSIG_FILTER_TOW_THOMAS_H
#define XYSIG_FILTER_TOW_THOMAS_H

/// \file tow_thomas.h
/// Tow-Thomas two-integrator-loop Biquad as a SPICE netlist — the circuit
/// realisation of the paper's CUT.
///
/// Topology (three ideal opamps):
///   A1: lossy inverting integrator, feedback C1 || Rq, inputs Vin via Rin
///       and the inverted low-pass output v(lpi) via Rf -> v(bp) (band-pass)
///   A2: inverting integrator, input v(bp) via R2, feedback C2 -> v(lp),
///       the non-inverting low-pass output (DC gain +R/Rin)
///   A3: unity inverter (Rg/Rg) -> v(lpi), closing the loop
///
/// With R2 = Rf = R and C1 = C2 = C the design equations are
///   w0 = 1/(R*C),  Q = Rq/R,  DC gain (at v(lp)) = R/Rin.
/// f0 deviations are injected by scaling both capacitors:
/// f0' = f0*(1+d) <=> C' = C/(1+d).

#include <string>

#include "filter/biquad.h"
#include "spice/netlist.h"

namespace xysig::filter {

/// Component values realising a BiquadDesign.
struct TowThomasDesign {
    double r = 10e3;   ///< integrator resistor R (= R2 = Rf)
    double rq = 10e3;  ///< damping resistor (Q = rq/r)
    double rin = 10e3; ///< input resistor (gain = r/rin)
    double rg = 10e3;  ///< inverter resistors
    double c = 1.59e-9;///< integrator capacitors C1 = C2

    /// Derives component values from a behavioural design, with the given
    /// base resistance.
    static TowThomasDesign from_biquad(const BiquadDesign& d, double r_base = 10e3);

    [[nodiscard]] double f0() const noexcept;
    [[nodiscard]] double q_factor() const noexcept { return rq / r; }
    [[nodiscard]] double dc_gain() const noexcept { return r / rin; }
};

/// A built Tow-Thomas circuit: the netlist plus the names needed to drive
/// and observe it.
struct TowThomasCircuit {
    spice::Netlist netlist;
    std::string input_source = "Vin"; ///< VoltageSource to set the stimulus on
    std::string input_node = "in";    ///< x(t) observation point
    std::string lp_node = "lp";       ///< y(t): non-inverted low-pass output
    std::string bp_node = "bp";       ///< band-pass output (A1)
    TowThomasDesign design;

    /// Scales both integrator capacitors so the realised natural frequency
    /// becomes f0*(1+delta) — the paper's parametric defect.
    void inject_f0_shift(double delta_fraction);
};

/// Builds the circuit with a zero-volt input source (replace its waveform to
/// apply a stimulus).
[[nodiscard]] TowThomasCircuit build_tow_thomas(const TowThomasDesign& design);

} // namespace xysig::filter

#endif // XYSIG_FILTER_TOW_THOMAS_H
