#include "filter/sallen_key.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"
#include "spice/elements.h"

namespace xysig::filter {

SallenKeyDesign SallenKeyDesign::from_biquad(const BiquadDesign& d, double r_base) {
    XYSIG_EXPECTS(r_base > 0.0);
    XYSIG_EXPECTS(d.kind == BiquadKind::low_pass);
    // With equal R: Q = 0.5*sqrt(c1/c2) and w0 = 1/(R*sqrt(c1*c2)).
    SallenKeyDesign s;
    s.r = r_base;
    const double w0 = kTwoPi * d.f0;
    const double c_geom = 1.0 / (w0 * r_base); // sqrt(c1*c2)
    const double ratio = 4.0 * d.q * d.q;      // c1/c2
    s.c1 = c_geom * std::sqrt(ratio);
    s.c2 = c_geom / std::sqrt(ratio);
    return s;
}

double SallenKeyDesign::f0() const noexcept {
    return 1.0 / (kTwoPi * r * std::sqrt(c1 * c2));
}

double SallenKeyDesign::q_factor() const noexcept {
    return 0.5 * std::sqrt(c1 / c2);
}

SallenKeyCircuit build_sallen_key(const SallenKeyDesign& design) {
    SallenKeyCircuit ckt;
    ckt.design = design;
    spice::Netlist& nl = ckt.netlist;

    const auto in = nl.node("in");
    const auto mid = nl.node("mid");
    const auto plus = nl.node("plus");
    const auto out = nl.node("out");

    nl.add<spice::VoltageSource>("Vin", in, spice::kGround, 0.0);
    nl.add<spice::Resistor>("R1", in, mid, design.r);
    nl.add<spice::Resistor>("R2", mid, plus, design.r);
    nl.add<spice::Capacitor>("C1", mid, out, design.c1); // bootstrap
    nl.add<spice::Capacitor>("C2", plus, spice::kGround, design.c2);
    // Unity-gain follower: inn tied to out.
    nl.add<spice::IdealOpamp>("U1", plus, out, out);
    return ckt;
}

void SallenKeyCircuit::inject_f0_shift(double delta_fraction) {
    XYSIG_EXPECTS(delta_fraction > -1.0);
    const double scale = 1.0 / (1.0 + delta_fraction);
    netlist.get<spice::Capacitor>("C1").set_capacitance(design.c1 * scale);
    netlist.get<spice::Capacitor>("C2").set_capacitance(design.c2 * scale);
}

} // namespace xysig::filter
