#ifndef XYSIG_SPICE_PARSER_H
#define XYSIG_SPICE_PARSER_H

/// \file parser.h
/// A SPICE-deck parser covering the element set of this engine, so circuits
/// can be described as text instead of C++ (examples, regression decks,
/// interchange with other tools).
///
/// Supported card set (case-insensitive, engineering suffixes like 4.7k,
/// 180n, 2meg accepted everywhere a number is expected):
///
///   * title line          first line is the deck title (ignored)
///   * Rname n1 n2 value
///   * Cname n1 n2 value
///   * Lname n1 n2 value
///   * Vname n+ n- value               DC source
///   * Vname n+ n- SIN(off amp freq [phase_deg])
///   * Vname n+ n- PULSE(v1 v2 delay rise fall width period)
///   * Vname n+ n- PWL(t1 v1 t2 v2 ...)
///   * Vname n+ n- ... AC mag [phase_deg]   appended AC spec
///   * Iname n+ n- value
///   * Ename p n cp cn gain            VCVS
///   * Gname p n cp cn gm              VCCS
///   * Dname anode cathode [IS=..] [N=..]
///   * Mname d g s MODELNAME [W=..] [L=..]
///   * Uname inp inn out               ideal opamp (xysig extension)
///   * .MODEL name NMOS|PMOS [VTO=..] [KP=..] [LAMBDA=..] [N=..]
///                 [LEVEL=1|EKV]
///   * * comment / blank lines         ignored
///   * .END                            optional terminator
///
/// Unknown cards raise InvalidInput with the line number.

#include <string_view>

#include "spice/netlist.h"

namespace xysig::spice {

/// Parses a whole deck into a netlist. Throws InvalidInput with a
/// line-numbered message on any malformed card.
[[nodiscard]] Netlist parse_deck(std::string_view deck);

} // namespace xysig::spice

#endif // XYSIG_SPICE_PARSER_H
