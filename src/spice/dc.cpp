#include "spice/dc.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/matrix.h"
#include "spice/elements.h"

namespace xysig::spice {

OperatingPoint::OperatingPoint(const Netlist& nl, std::vector<double> x)
    : netlist_(&nl), x_(std::move(x)) {}

double OperatingPoint::voltage(NodeId node) const {
    if (node == kGround)
        return 0.0;
    XYSIG_EXPECTS(static_cast<std::size_t>(node) <= x_.size());
    return x_[static_cast<std::size_t>(node) - 1];
}

double OperatingPoint::voltage(const std::string& node_name) const {
    return voltage(netlist_->find_node(node_name));
}

namespace detail {

int newton_solve(const Netlist& nl, std::vector<double>& x, std::size_t n_unknowns,
                 const NewtonOptions& opts, AnalysisMode mode, Integrator integrator,
                 double time, double dt, double gmin, double source_scale) {
    Matrix<double> a(n_unknowns, n_unknowns);
    std::vector<double> b(n_unknowns, 0.0);
    const std::size_t n_node_vars = nl.node_count() - 1;

    for (int iter = 1; iter <= opts.max_iterations; ++iter) {
        a.fill(0.0);
        std::fill(b.begin(), b.end(), 0.0);
        RealAssembler mna(a, b, nl.node_count());

        StampContext ctx;
        ctx.mode = mode;
        ctx.integrator = integrator;
        ctx.time = time;
        ctx.dt = dt;
        ctx.source_scale = source_scale;
        ctx.gmin = gmin;
        ctx.x = x;
        ctx.mna = &mna;

        for (const auto& dev : nl.devices())
            dev->stamp(ctx);
        for (std::size_t i = 0; i < n_node_vars; ++i)
            a(i, i) += gmin;

        std::vector<double> x_new;
        try {
            x_new = solve_linear_system(std::move(a), b);
        } catch (const NumericError&) {
            return -1; // singular at this iterate; let the caller escalate
        }
        a = Matrix<double>(n_unknowns, n_unknowns); // solve consumed it

        // Damping: scale the update so no unknown moves more than max_step.
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n_unknowns; ++i)
            max_delta = std::max(max_delta, std::abs(x_new[i] - x[i]));
        const double damp = (max_delta > opts.max_step) ? opts.max_step / max_delta : 1.0;

        bool converged = true;
        for (std::size_t i = 0; i < n_unknowns; ++i) {
            const double delta = x_new[i] - x[i];
            if (std::abs(delta) > opts.abstol + opts.reltol * std::abs(x[i]))
                converged = false;
            x[i] += damp * delta;
        }
        // xylint: exact-compare(damp is assigned the literal 1.0 when damping is off; exact state flag)
        if (converged && damp == 1.0)
            return iter;
    }
    return -1;
}

} // namespace detail

OperatingPoint dc_operating_point(const Netlist& nl, const DcOptions& opts,
                                  double time) {
    nl.validate();
    const std::size_t n = nl.assign_unknowns();
    std::vector<double> x(n, 0.0);

    // Ladder 1: plain Newton from a zero start.
    int iters = detail::newton_solve(nl, x, n, opts.newton, AnalysisMode::dc_op,
                                     Integrator::trapezoidal, time, 0.0, opts.gmin,
                                     1.0);
    if (iters > 0) {
        OperatingPoint op(nl, std::move(x));
        op.newton_iterations = iters;
        return op;
    }

    // Ladder 2: gmin stepping — start heavily damped and relax.
    bool gmin_ok = true;
    std::fill(x.begin(), x.end(), 0.0);
    int total_iters = 0;
    for (double g = opts.gmin_stepping_start; g >= opts.gmin; g /= 10.0) {
        iters = detail::newton_solve(nl, x, n, opts.newton, AnalysisMode::dc_op,
                                     Integrator::trapezoidal, time, 0.0, g, 1.0);
        if (iters < 0) {
            gmin_ok = false;
            break;
        }
        total_iters += iters;
    }
    if (gmin_ok) {
        // Final polish at the target gmin.
        iters = detail::newton_solve(nl, x, n, opts.newton, AnalysisMode::dc_op,
                                     Integrator::trapezoidal, time, 0.0, opts.gmin,
                                     1.0);
        if (iters > 0) {
            OperatingPoint op(nl, std::move(x));
            op.newton_iterations = total_iters + iters;
            op.used_gmin_stepping = true;
            return op;
        }
    }

    // Ladder 3: source stepping — ramp all independent sources from zero.
    std::fill(x.begin(), x.end(), 0.0);
    total_iters = 0;
    bool source_ok = true;
    for (int s = 1; s <= opts.source_steps; ++s) {
        const double scale = static_cast<double>(s) / opts.source_steps;
        iters = detail::newton_solve(nl, x, n, opts.newton, AnalysisMode::dc_op,
                                     Integrator::trapezoidal, time, 0.0, opts.gmin,
                                     scale);
        if (iters < 0) {
            source_ok = false;
            break;
        }
        total_iters += iters;
    }
    if (source_ok) {
        OperatingPoint op(nl, std::move(x));
        op.newton_iterations = total_iters;
        op.used_source_stepping = true;
        return op;
    }

    throw NumericError("dc_operating_point: no convergence (plain NR, gmin "
                       "stepping and source stepping all failed)");
}

std::vector<double> dc_sweep(Netlist& nl, const std::string& source_name,
                             std::span<const double> levels,
                             const std::string& probe_node, const DcOptions& opts) {
    auto& src = nl.get<VoltageSource>(source_name);
    const NodeId probe = nl.find_node(probe_node);
    std::vector<double> out;
    out.reserve(levels.size());

    const std::size_t n = nl.assign_unknowns();
    std::vector<double> x(n, 0.0);
    bool have_previous = false;
    for (const double level : levels) {
        src.set_waveform(DcWaveform(level));
        if (have_previous) {
            // Warm start from the previous point; fall back to the full
            // ladder when the fast path fails.
            const int iters = detail::newton_solve(
                nl, x, n, opts.newton, AnalysisMode::dc_op,
                Integrator::trapezoidal, 0.0, 0.0, opts.gmin, 1.0);
            if (iters > 0) {
                out.push_back(probe == kGround
                                  ? 0.0
                                  : x[static_cast<std::size_t>(probe) - 1]);
                continue;
            }
        }
        OperatingPoint op = dc_operating_point(nl, opts);
        x.assign(op.unknowns().begin(), op.unknowns().end());
        have_previous = true;
        out.push_back(op.voltage(probe));
    }
    return out;
}

} // namespace xysig::spice
