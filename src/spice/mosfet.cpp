#include "spice/mosfet.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"

namespace xysig::spice {

namespace {

/// EKV normalised current F(u) = ln^2(1 + exp(u/2)) and its derivative
/// F'(u) = ln(1+exp(u/2)) * logistic(u/2).
struct FEval {
    double f;
    double df;
};

FEval ekv_f(double u) noexcept {
    const double sp = softplus(0.5 * u);
    return {sp * sp, sp * logistic(0.5 * u)};
}

/// nMOS-referenced EKV evaluation; vgs/vds in the nMOS sense.
///
/// The model is source-referenced (vp = (VGS-VT0)/n), so exact drain/source
/// antisymmetry is restored by an explicit terminal swap for vds < 0:
/// id(vgs, vds) = -id(vgs - vds, -vds). At vds = 0 both branches give id = 0
/// with matching gm, so Newton never sees a discontinuity at the crossover.
MosEval ekv_nmos(const MosParams& p, double vgs, double vds) {
    if (vds < 0.0) {
        const MosEval sw = ekv_nmos(p, vgs - vds, -vds);
        MosEval e;
        e.id = -sw.id;
        // id(vgs,vds) = -id_sw(vgs - vds, -vds):
        // d/dvgs = -gm_sw ; d/dvds = gm_sw + gds_sw.
        e.gm = -sw.gm;
        e.gds = sw.gm + sw.gds;
        return e;
    }
    const double phi_t = kThermalVoltage300K;
    const double n = p.n_slope;
    const double vp = (vgs - p.vt0) / n;
    const double ispec = 2.0 * n * p.kp * p.aspect_ratio() * phi_t * phi_t;

    const FEval ff = ekv_f(vp / phi_t);
    const FEval fr = ekv_f((vp - vds) / phi_t);

    const double id0 = ispec * (ff.f - fr.f);
    const double clm = 1.0 + p.lambda * vds;

    MosEval e;
    e.id = id0 * clm;
    e.gm = ispec * (ff.df - fr.df) / (n * phi_t) * clm;
    e.gds = ispec * fr.df / phi_t * clm + id0 * p.lambda;
    return e;
}

/// Classic Shichman-Hodges level-1; piecewise, zero below threshold.
/// Handles vds < 0 by the source/drain swap symmetry.
MosEval level1_nmos(const MosParams& p, double vgs, double vds) {
    if (vds < 0.0) {
        // Swap roles: terminal currents negate, gate referenced to the new
        // source (the original drain).
        const MosEval sw = level1_nmos(p, vgs - vds, -vds);
        MosEval e;
        e.id = -sw.id;
        // id(vgs,vds) = -id_sw(vgs-vds, -vds):
        // d/dvgs = -gm_sw ; d/dvds = -(gm_sw*(-1) + gds_sw*(-1)) = gm_sw+gds_sw
        e.gm = -sw.gm;
        e.gds = sw.gm + sw.gds;
        return e;
    }
    const double vov = vgs - p.vt0;
    const double beta = p.kp * p.aspect_ratio();
    MosEval e;
    if (vov <= 0.0)
        return e; // cut-off: ideal level-1 carries no current
    const double clm = 1.0 + p.lambda * vds;
    if (vds < vov) { // triode
        e.id = beta * (vov * vds - 0.5 * vds * vds) * clm;
        e.gm = beta * vds * clm;
        e.gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * p.lambda;
    } else { // saturation
        e.id = 0.5 * beta * vov * vov * clm;
        e.gm = beta * vov * clm;
        e.gds = 0.5 * beta * vov * vov * p.lambda;
    }
    return e;
}

/// id-only twin of ekv_nmos: the same expressions in the same order minus
/// the gm/gds terms, so the result is bit-identical while evaluating one
/// softplus per ekv_f instead of a softplus + logistic pair.
///
/// SYNC CONTRACT: the drain-current arithmetic exists in three places that
/// must stay bitwise-aligned — ekv_nmos/level1_nmos above, these id-only
/// twins, and the hoisted-constant form in
/// kernels::CompiledMonitorBank::leg_value. Any model change must be
/// replicated with identical association in all three;
/// tests/kernels/test_compiled_kernels.cpp pins the equality over a dense
/// (model x type x bias) grid and fails on any drift.
double ekv_id_nmos(const MosParams& p, double vgs, double vds) {
    if (vds < 0.0)
        return -ekv_id_nmos(p, vgs - vds, -vds);
    const double phi_t = kThermalVoltage300K;
    const double n = p.n_slope;
    const double vp = (vgs - p.vt0) / n;
    const double ispec = 2.0 * n * p.kp * p.aspect_ratio() * phi_t * phi_t;
    const double sf = softplus(0.5 * (vp / phi_t));
    const double sr = softplus(0.5 * ((vp - vds) / phi_t));
    const double id0 = ispec * (sf * sf - sr * sr);
    return id0 * (1.0 + p.lambda * vds);
}

/// id-only twin of level1_nmos (same expressions, same order).
double level1_id_nmos(const MosParams& p, double vgs, double vds) {
    if (vds < 0.0)
        return -level1_id_nmos(p, vgs - vds, -vds);
    const double vov = vgs - p.vt0;
    const double beta = p.kp * p.aspect_ratio();
    if (vov <= 0.0)
        return 0.0;
    const double clm = 1.0 + p.lambda * vds;
    if (vds < vov)
        return beta * (vov * vds - 0.5 * vds * vds) * clm;
    return 0.5 * beta * vov * vov * clm;
}

} // namespace

MosEval mos_evaluate(const MosParams& p, double vgs, double vds) {
    XYSIG_EXPECTS(p.w > 0.0 && p.l > 0.0);
    XYSIG_EXPECTS(p.kp > 0.0 && p.n_slope >= 1.0 && p.lambda >= 0.0);

    const auto eval_n = (p.model == MosModel::ekv) ? ekv_nmos : level1_nmos;
    if (p.type == MosType::nmos)
        return eval_n(p, vgs, vds);

    // pMOS: mirror voltages into the nMOS frame (vsg, vsd) and negate the
    // terminal current. id_p(vgs,vds) = -id_n(-vgs,-vds) gives
    // d/dvgs = +gm_n, d/dvds = +gds_n evaluated at the mirrored point.
    const MosEval n = eval_n(p, -vgs, -vds);
    MosEval e;
    e.id = -n.id;
    e.gm = n.gm;
    e.gds = n.gds;
    return e;
}

double mos_id(const MosParams& p, double vgs, double vds) {
    XYSIG_EXPECTS(p.w > 0.0 && p.l > 0.0);
    XYSIG_EXPECTS(p.kp > 0.0 && p.n_slope >= 1.0 && p.lambda >= 0.0);

    const auto id_n = (p.model == MosModel::ekv) ? ekv_id_nmos : level1_id_nmos;
    if (p.type == MosType::nmos)
        return id_n(p, vgs, vds);
    return -id_n(p, -vgs, -vds);
}

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               MosParams params)
    : Device(std::move(name), {drain, gate, source}), params_(params) {}

void Mosfet::stamp(StampContext& ctx) const {
    const NodeId d = nodes()[0];
    const NodeId g = nodes()[1];
    const NodeId s = nodes()[2];
    const double vgs = ctx.v(g) - ctx.v(s);
    const double vds = ctx.v(d) - ctx.v(s);
    const MosEval e = mos_evaluate(params_, vgs, vds);

    // Linearised drain current: id = gds*vds + gm*vgs + ieq,
    // flowing d -> s through the device.
    const double ieq = e.id - e.gm * vgs - e.gds * vds;
    ctx.mna->conductance(d, s, e.gds);
    ctx.mna->transconductance(d, s, g, s, e.gm);
    ctx.mna->current_into(d, -ieq);
    ctx.mna->current_into(s, ieq);
}

void Mosfet::stamp_ac(AcStampContext& ctx) const {
    const NodeId d = nodes()[0];
    const NodeId g = nodes()[1];
    const NodeId s = nodes()[2];
    const double vgs = ctx.op_v(g) - ctx.op_v(s);
    const double vds = ctx.op_v(d) - ctx.op_v(s);
    const MosEval e = mos_evaluate(params_, vgs, vds);
    ctx.mna->conductance(d, s, {e.gds, 0.0});
    ctx.mna->transconductance(d, s, g, s, {e.gm, 0.0});
}

double Mosfet::drain_current(std::span<const double> x) const {
    const double vgs = node_v(x, 1) - node_v(x, 2);
    const double vds = node_v(x, 0) - node_v(x, 2);
    return mos_evaluate(params_, vgs, vds).id;
}

} // namespace xysig::spice
