#include "spice/elements.h"

#include <cmath>

#include "common/contracts.h"

namespace xysig::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId n1, NodeId n2, double resistance)
    : Device(std::move(name), {n1, n2}), resistance_(resistance) {
    XYSIG_EXPECTS(resistance > 0.0);
}

std::unique_ptr<Device> Resistor::clone() const {
    return std::make_unique<Resistor>(*this);
}

void Resistor::set_resistance(double r) {
    XYSIG_EXPECTS(r > 0.0);
    resistance_ = r;
}

void Resistor::stamp(StampContext& ctx) const {
    ctx.mna->conductance(nodes()[0], nodes()[1], 1.0 / resistance_);
}

void Resistor::stamp_ac(AcStampContext& ctx) const {
    ctx.mna->conductance(nodes()[0], nodes()[1], {1.0 / resistance_, 0.0});
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId n1, NodeId n2, double capacitance)
    : Device(std::move(name), {n1, n2}), capacitance_(capacitance) {
    XYSIG_EXPECTS(capacitance > 0.0);
}

std::unique_ptr<Device> Capacitor::clone() const {
    return std::make_unique<Capacitor>(*this);
}

void Capacitor::set_capacitance(double c) {
    XYSIG_EXPECTS(c > 0.0);
    capacitance_ = c;
}

void Capacitor::stamp(StampContext& ctx) const {
    if (ctx.mode == AnalysisMode::dc_op)
        return; // open circuit in DC
    XYSIG_EXPECTS(ctx.dt > 0.0);
    // Companion: i(t+h) = geq * v(t+h) - ieq
    double geq = 0.0;
    double ieq = 0.0;
    if (ctx.integrator == Integrator::trapezoidal) {
        geq = 2.0 * capacitance_ / ctx.dt;
        ieq = geq * v_prev_ + i_prev_;
    } else {
        geq = capacitance_ / ctx.dt;
        ieq = geq * v_prev_;
    }
    ctx.mna->conductance(nodes()[0], nodes()[1], geq);
    ctx.mna->current_into(nodes()[0], ieq);
    ctx.mna->current_into(nodes()[1], -ieq);
}

void Capacitor::stamp_ac(AcStampContext& ctx) const {
    ctx.mna->conductance(nodes()[0], nodes()[1], {0.0, ctx.omega * capacitance_});
}

void Capacitor::begin_transient(std::span<const double> op_solution) {
    v_prev_ = node_v(op_solution, 0) - node_v(op_solution, 1);
    i_prev_ = 0.0; // steady state at the operating point
}

void Capacitor::step_accepted(std::span<const double> x, double /*time*/, double dt,
                              Integrator integrator) {
    const double v_now = node_v(x, 0) - node_v(x, 1);
    if (integrator == Integrator::trapezoidal)
        i_prev_ = (2.0 * capacitance_ / dt) * (v_now - v_prev_) - i_prev_;
    else
        i_prev_ = (capacitance_ / dt) * (v_now - v_prev_);
    v_prev_ = v_now;
}

std::vector<double> Capacitor::save_state() const { return {v_prev_, i_prev_}; }

void Capacitor::save_state_into(std::vector<double>& out) const {
    out.resize(2);
    out[0] = v_prev_;
    out[1] = i_prev_;
}

void Capacitor::restore_state(std::span<const double> state) {
    XYSIG_EXPECTS(state.size() == 2);
    v_prev_ = state[0];
    i_prev_ = state[1];
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId n1, NodeId n2, double inductance)
    : Device(std::move(name), {n1, n2}), inductance_(inductance) {
    XYSIG_EXPECTS(inductance > 0.0);
}

std::unique_ptr<Device> Inductor::clone() const {
    return std::make_unique<Inductor>(*this);
}

void Inductor::stamp(StampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    // Branch current enters at node 1, leaves at node 2.
    ctx.mna->entry_node_raw(nodes()[0], br, 1.0);
    ctx.mna->entry_node_raw(nodes()[1], br, -1.0);
    ctx.mna->entry_raw_node(br, nodes()[0], 1.0);
    ctx.mna->entry_raw_node(br, nodes()[1], -1.0);
    if (ctx.mode == AnalysisMode::dc_op) {
        // v = 0 (short); the 1/-1 row entries above already express v - 0 = 0.
        return;
    }
    XYSIG_EXPECTS(ctx.dt > 0.0);
    // v = L di/dt. Trapezoidal: v_{n+1} + v_n = (2L/h)(i_{n+1} - i_n)
    //  -> v_{n+1} - (2L/h) i_{n+1} = -v_n - (2L/h) i_n
    if (ctx.integrator == Integrator::trapezoidal) {
        const double req = 2.0 * inductance_ / ctx.dt;
        ctx.mna->entry_raw(br, br, -req);
        ctx.mna->rhs_raw(br, -v_prev_ - req * i_prev_);
    } else {
        const double req = inductance_ / ctx.dt;
        ctx.mna->entry_raw(br, br, -req);
        ctx.mna->rhs_raw(br, -req * i_prev_);
    }
}

void Inductor::stamp_ac(AcStampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_node_raw(nodes()[0], br, {1.0, 0.0});
    ctx.mna->entry_node_raw(nodes()[1], br, {-1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[0], {1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[1], {-1.0, 0.0});
    ctx.mna->entry_raw(br, br, {0.0, -ctx.omega * inductance_});
}

void Inductor::begin_transient(std::span<const double> op_solution) {
    i_prev_ = op_solution[static_cast<std::size_t>(extra_base())];
    v_prev_ = 0.0;
}

void Inductor::step_accepted(std::span<const double> x, double /*time*/, double /*dt*/,
                             Integrator /*integrator*/) {
    i_prev_ = x[static_cast<std::size_t>(extra_base())];
    v_prev_ = node_v(x, 0) - node_v(x, 1);
}

std::vector<double> Inductor::save_state() const { return {i_prev_, v_prev_}; }

void Inductor::save_state_into(std::vector<double>& out) const {
    out.resize(2);
    out[0] = i_prev_;
    out[1] = v_prev_;
}

void Inductor::restore_state(std::span<const double> state) {
    XYSIG_EXPECTS(state.size() == 2);
    i_prev_ = state[0];
    v_prev_ = state[1];
}

// ------------------------------------------------------------ VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn,
                             const Waveform& wave)
    : Device(std::move(name), {np, nn}), wave_(wave.clone()) {}

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn, double dc_level)
    : Device(std::move(name), {np, nn}),
      wave_(std::make_unique<DcWaveform>(dc_level)) {}

VoltageSource::VoltageSource(const VoltageSource& other)
    : Device(other), wave_(other.wave_->clone()),
      ac_magnitude_(other.ac_magnitude_), ac_phase_(other.ac_phase_) {}

std::unique_ptr<Device> VoltageSource::clone() const {
    return std::make_unique<VoltageSource>(*this);
}

void VoltageSource::set_waveform(const Waveform& wave) { wave_ = wave.clone(); }

void VoltageSource::set_ac(double magnitude, double phase_rad) noexcept {
    ac_magnitude_ = magnitude;
    ac_phase_ = phase_rad;
}

double VoltageSource::current(std::span<const double> x) const {
    XYSIG_EXPECTS(extra_base() >= 0);
    return x[static_cast<std::size_t>(extra_base())];
}

void VoltageSource::stamp(StampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_node_raw(nodes()[0], br, 1.0);
    ctx.mna->entry_node_raw(nodes()[1], br, -1.0);
    ctx.mna->entry_raw_node(br, nodes()[0], 1.0);
    ctx.mna->entry_raw_node(br, nodes()[1], -1.0);
    ctx.mna->rhs_raw(br, ctx.source_scale * wave_->value(ctx.time));
}

void VoltageSource::stamp_ac(AcStampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_node_raw(nodes()[0], br, {1.0, 0.0});
    ctx.mna->entry_node_raw(nodes()[1], br, {-1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[0], {1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[1], {-1.0, 0.0});
    ctx.mna->rhs_raw(br, std::polar(ac_magnitude_, ac_phase_));
}

// ------------------------------------------------------------ CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId np, NodeId nn,
                             const Waveform& wave)
    : Device(std::move(name), {np, nn}), wave_(wave.clone()) {}

CurrentSource::CurrentSource(std::string name, NodeId np, NodeId nn, double dc_level)
    : Device(std::move(name), {np, nn}),
      wave_(std::make_unique<DcWaveform>(dc_level)) {}

CurrentSource::CurrentSource(const CurrentSource& other)
    : Device(other), wave_(other.wave_->clone()) {}

std::unique_ptr<Device> CurrentSource::clone() const {
    return std::make_unique<CurrentSource>(*this);
}

void CurrentSource::stamp(StampContext& ctx) const {
    const double i = ctx.source_scale * wave_->value(ctx.time);
    // Positive current flows n+ -> n- through the source: it leaves the
    // circuit at n+ and re-enters at n-.
    ctx.mna->current_into(nodes()[0], -i);
    ctx.mna->current_into(nodes()[1], i);
}

// ------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain)
    : Device(std::move(name), {p, n, cp, cn}), gain_(gain) {}

std::unique_ptr<Device> Vcvs::clone() const {
    return std::make_unique<Vcvs>(*this);
}

void Vcvs::stamp(StampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_node_raw(nodes()[0], br, 1.0);
    ctx.mna->entry_node_raw(nodes()[1], br, -1.0);
    // v(p) - v(n) - gain*(v(cp) - v(cn)) = 0
    ctx.mna->entry_raw_node(br, nodes()[0], 1.0);
    ctx.mna->entry_raw_node(br, nodes()[1], -1.0);
    ctx.mna->entry_raw_node(br, nodes()[2], -gain_);
    ctx.mna->entry_raw_node(br, nodes()[3], gain_);
}

void Vcvs::stamp_ac(AcStampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_node_raw(nodes()[0], br, {1.0, 0.0});
    ctx.mna->entry_node_raw(nodes()[1], br, {-1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[0], {1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[1], {-1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[2], {-gain_, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[3], {gain_, 0.0});
}

// ------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gm)
    : Device(std::move(name), {p, n, cp, cn}), gm_(gm) {}

std::unique_ptr<Device> Vccs::clone() const {
    return std::make_unique<Vccs>(*this);
}

void Vccs::stamp(StampContext& ctx) const {
    ctx.mna->transconductance(nodes()[0], nodes()[1], nodes()[2], nodes()[3], gm_);
}

void Vccs::stamp_ac(AcStampContext& ctx) const {
    ctx.mna->transconductance(nodes()[0], nodes()[1], nodes()[2], nodes()[3],
                              {gm_, 0.0});
}

// ------------------------------------------------------------- IdealOpamp

IdealOpamp::IdealOpamp(std::string name, NodeId inp, NodeId inn, NodeId out)
    : Device(std::move(name), {inp, inn, out}) {}

std::unique_ptr<Device> IdealOpamp::clone() const {
    return std::make_unique<IdealOpamp>(*this);
}

void IdealOpamp::stamp(StampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    // Row: virtual short, v(inp) - v(inn) = 0.
    ctx.mna->entry_raw_node(br, nodes()[0], 1.0);
    ctx.mna->entry_raw_node(br, nodes()[1], -1.0);
    // Column: the output current is whatever satisfies the constraint.
    ctx.mna->entry_node_raw(nodes()[2], br, 1.0);
}

void IdealOpamp::stamp_ac(AcStampContext& ctx) const {
    const int br = extra_base();
    XYSIG_ASSERT(br >= 0);
    ctx.mna->entry_raw_node(br, nodes()[0], {1.0, 0.0});
    ctx.mna->entry_raw_node(br, nodes()[1], {-1.0, 0.0});
    ctx.mna->entry_node_raw(nodes()[2], br, {1.0, 0.0});
}

} // namespace xysig::spice
