#ifndef XYSIG_SPICE_ELEMENTS_H
#define XYSIG_SPICE_ELEMENTS_H

/// \file elements.h
/// Linear circuit elements and independent sources.

#include <memory>

#include "signal/waveform.h"
#include "spice/device.h"

namespace xysig::spice {

/// Linear resistor between two nodes.
class Resistor final : public Device {
public:
    Resistor(std::string name, NodeId n1, NodeId n2, double resistance);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

    [[nodiscard]] double resistance() const noexcept { return resistance_; }
    /// Component value change (Monte-Carlo / defect injection). r > 0.
    void set_resistance(double r);

private:
    double resistance_;
};

/// Linear capacitor. Open in DC; trapezoidal/backward-Euler companion in
/// transient; j*omega*C admittance in AC.
class Capacitor final : public Device {
public:
    Capacitor(std::string name, NodeId n1, NodeId n2, double capacitance);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;
    void begin_transient(std::span<const double> op_solution) override;
    void step_accepted(std::span<const double> x, double time, double dt,
                       Integrator integrator) override;
    [[nodiscard]] std::vector<double> save_state() const override;
    void restore_state(std::span<const double> state) override;
    void save_state_into(std::vector<double>& out) const override;

    [[nodiscard]] double capacitance() const noexcept { return capacitance_; }
    void set_capacitance(double c);

private:
    double capacitance_;
    double v_prev_ = 0.0; ///< branch voltage at the last accepted step
    double i_prev_ = 0.0; ///< branch current at the last accepted step
};

/// Linear inductor; one extra unknown (branch current). Short in DC.
class Inductor final : public Device {
public:
    Inductor(std::string name, NodeId n1, NodeId n2, double inductance);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    [[nodiscard]] int extra_variable_count() const override { return 1; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;
    void begin_transient(std::span<const double> op_solution) override;
    void step_accepted(std::span<const double> x, double time, double dt,
                       Integrator integrator) override;
    [[nodiscard]] std::vector<double> save_state() const override;
    void restore_state(std::span<const double> state) override;
    void save_state_into(std::vector<double>& out) const override;

    [[nodiscard]] double inductance() const noexcept { return inductance_; }

private:
    double inductance_;
    double i_prev_ = 0.0;
    double v_prev_ = 0.0;
};

/// Independent voltage source driven by a Waveform; one extra unknown (its
/// branch current, flowing from n+ through the source to n-).
class VoltageSource final : public Device {
public:
    VoltageSource(std::string name, NodeId np, NodeId nn, const Waveform& wave);
    VoltageSource(std::string name, NodeId np, NodeId nn, double dc_level);
    /// Deep copy: the drive waveform is cloned, never shared.
    VoltageSource(const VoltageSource& other);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    [[nodiscard]] int extra_variable_count() const override { return 1; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

    /// Replaces the drive waveform (DC sweeps, stimulus changes).
    void set_waveform(const Waveform& wave);
    [[nodiscard]] const Waveform& waveform() const noexcept { return *wave_; }

    /// AC small-signal magnitude/phase (only meaningful for AC analysis).
    void set_ac(double magnitude, double phase_rad = 0.0) noexcept;

    /// Branch current in a solution vector (positive n+ -> n- through source).
    [[nodiscard]] double current(std::span<const double> x) const;

private:
    std::unique_ptr<Waveform> wave_;
    double ac_magnitude_ = 0.0;
    double ac_phase_ = 0.0;
};

/// Independent current source; current flows from n+ through the source to
/// n- (SPICE convention), i.e. it injects into the n- node.
class CurrentSource final : public Device {
public:
    CurrentSource(std::string name, NodeId np, NodeId nn, const Waveform& wave);
    CurrentSource(std::string name, NodeId np, NodeId nn, double dc_level);
    /// Deep copy: the drive waveform is cloned, never shared.
    CurrentSource(const CurrentSource& other);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    void stamp(StampContext& ctx) const override;

private:
    std::unique_ptr<Waveform> wave_;
};

/// Voltage-controlled voltage source: v(p,n) = gain * v(cp,cn).
class Vcvs final : public Device {
public:
    Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    [[nodiscard]] int extra_variable_count() const override { return 1; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

    [[nodiscard]] double gain() const noexcept { return gain_; }

private:
    double gain_;
};

/// Voltage-controlled current source: i(p->n) = gm * v(cp,cn).
class Vccs final : public Device {
public:
    Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gm);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

private:
    double gm_;
};

/// Ideal single-ended opamp (nullor): enforces v(inp) == v(inn) with its
/// output current as the balancing unknown. Used by the Tow-Thomas Biquad.
class IdealOpamp final : public Device {
public:
    IdealOpamp(std::string name, NodeId inp, NodeId inn, NodeId out);

    [[nodiscard]] std::unique_ptr<Device> clone() const override;
    [[nodiscard]] int extra_variable_count() const override { return 1; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_ELEMENTS_H
