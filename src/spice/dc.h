#ifndef XYSIG_SPICE_DC_H
#define XYSIG_SPICE_DC_H

/// \file dc.h
/// Nonlinear DC solution: damped Newton-Raphson with gmin stepping and
/// source stepping fallbacks (the standard SPICE convergence ladder).

#include <vector>

#include "spice/netlist.h"
#include "spice/types.h"

namespace xysig::spice {

/// A solved operating point. Holds the full unknown vector; node voltages
/// are looked up through the originating netlist's node ids.
class OperatingPoint {
public:
    OperatingPoint(const Netlist& nl, std::vector<double> x);

    [[nodiscard]] double voltage(NodeId node) const;
    [[nodiscard]] double voltage(const std::string& node_name) const;
    [[nodiscard]] std::span<const double> unknowns() const noexcept { return x_; }

    /// Diagnostics filled in by dc_operating_point().
    int newton_iterations = 0;
    bool used_gmin_stepping = false;
    bool used_source_stepping = false;

private:
    const Netlist* netlist_;
    std::vector<double> x_;
};

/// Solves the DC operating point with sources evaluated at the given time.
/// Throws NumericError when all convergence aids fail.
[[nodiscard]] OperatingPoint dc_operating_point(const Netlist& nl,
                                                const DcOptions& opts = {},
                                                double time = 0.0);

/// DC transfer sweep: sets the named VoltageSource to each level in turn
/// (warm-starting Newton from the previous solution) and records the voltage
/// of the probe node.
[[nodiscard]] std::vector<double> dc_sweep(Netlist& nl, const std::string& source_name,
                                           std::span<const double> levels,
                                           const std::string& probe_node,
                                           const DcOptions& opts = {});

namespace detail {

/// One damped-Newton solve at fixed gmin / source_scale; x is the initial
/// guess on entry and the solution on success. Returns iterations used, or
/// -1 when not converged (including singular-matrix failures).
int newton_solve(const Netlist& nl, std::vector<double>& x, std::size_t n_unknowns,
                 const NewtonOptions& opts, AnalysisMode mode, Integrator integrator,
                 double time, double dt, double gmin, double source_scale);

} // namespace detail

} // namespace xysig::spice

#endif // XYSIG_SPICE_DC_H
