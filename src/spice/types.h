#ifndef XYSIG_SPICE_TYPES_H
#define XYSIG_SPICE_TYPES_H

/// \file types.h
/// Shared vocabulary types of the circuit simulation engine.

#include <cstdint>

namespace xysig::spice {

/// Node identifier. 0 is always ground; analysis unknown index = id - 1.
using NodeId = std::int32_t;

inline constexpr NodeId kGround = 0;

/// What the engine is currently solving.
enum class AnalysisMode {
    dc_op,     ///< nonlinear DC operating point (capacitors open, inductors short)
    transient, ///< time step with companion models
};

/// Implicit integration method for transient analysis.
enum class Integrator {
    backward_euler, ///< A-stable, first order; used for the first step
    trapezoidal,    ///< A-stable, second order; default
};

/// Newton-Raphson controls.
struct NewtonOptions {
    int max_iterations = 200;
    /// Convergence: max |delta_x| over all unknowns below this.
    double abstol = 1e-9;
    /// Relative term added per-unknown: |delta| <= abstol + reltol*|x|.
    double reltol = 1e-6;
    /// Damping: per-iteration update is scaled so its inf-norm never exceeds
    /// this (volts); keeps the exponential device models in range.
    double max_step = 0.5;
};

/// DC operating point controls.
struct DcOptions {
    NewtonOptions newton;
    /// Shunt conductance from every node to ground; aids convergence and
    /// uniquely determines floating nodes.
    double gmin = 1e-12;
    /// Largest gmin used by gmin-stepping when plain NR fails.
    double gmin_stepping_start = 1e-3;
    /// Number of source-stepping ramp points when gmin stepping also fails.
    int source_steps = 10;
};

/// Transient analysis controls.
struct TransientOptions {
    double t_start = 0.0;
    double t_stop = 1e-3;
    double dt = 1e-6;            ///< fixed step, or initial step when adaptive
    Integrator integrator = Integrator::trapezoidal;
    bool adaptive = false;       ///< step-doubling local error control
    double lte_tol = 1e-5;       ///< accepted local error (volts) when adaptive
    double dt_min = 1e-12;       ///< adaptive floor; below this the run fails
    double dt_max = 0.0;         ///< adaptive ceiling; 0 = 10x initial dt
    DcOptions dc;                ///< options for the initial operating point
};

/// AC sweep controls (log-spaced points).
struct AcOptions {
    double f_start = 1.0;
    double f_stop = 1e6;
    std::size_t points_per_decade = 20;
    DcOptions dc; ///< options for the linearisation operating point
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_TYPES_H
