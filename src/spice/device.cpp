#include "spice/device.h"

#include "common/contracts.h"

namespace xysig::spice {

Device::Device(std::string name, std::vector<NodeId> nodes)
    : name_(std::move(name)), nodes_(std::move(nodes)) {
    XYSIG_EXPECTS(!name_.empty());
    for (const NodeId n : nodes_)
        XYSIG_EXPECTS(n >= 0);
}

void Device::stamp_ac(AcStampContext&) const {}

void Device::begin_transient(std::span<const double>) {}

void Device::step_accepted(std::span<const double>, double, double, Integrator) {}

void Device::restore_state(std::span<const double> state) {
    XYSIG_EXPECTS(state.empty()); // devices with state override this
}

void Device::save_state_into(std::vector<double>& out) const {
    const std::vector<double> state = save_state();
    out.assign(state.begin(), state.end());
}

} // namespace xysig::spice
