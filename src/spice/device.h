#ifndef XYSIG_SPICE_DEVICE_H
#define XYSIG_SPICE_DEVICE_H

/// \file device.h
/// Device interface of the circuit engine.
///
/// A device knows how to stamp its companion/linearised model into the MNA
/// system for the current Newton iterate (stamp), how to stamp its
/// small-signal model for AC analysis (stamp_ac), and how to carry reactive
/// state across transient steps (begin_transient / step_accepted, with
/// save/restore used by the adaptive step-doubling error control).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "spice/mna.h"
#include "spice/types.h"

namespace xysig::spice {

/// Everything a device needs to stamp one Newton iteration.
struct StampContext {
    AnalysisMode mode = AnalysisMode::dc_op;
    Integrator integrator = Integrator::trapezoidal;
    double time = 0.0;         ///< evaluation time for sources (end of step)
    double dt = 0.0;           ///< current step; 0 in DC
    double source_scale = 1.0; ///< source stepping ramp; 1 in normal solves
    double gmin = 1e-12;
    std::span<const double> x; ///< current Newton iterate
    RealAssembler* mna = nullptr;

    /// Voltage of a node in the current iterate (0 for ground).
    [[nodiscard]] double v(NodeId n) const {
        return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
    }
    /// Value of an extra branch variable by raw unknown index.
    [[nodiscard]] double extra(int idx) const {
        return x[static_cast<std::size_t>(idx)];
    }
};

/// Context for one AC frequency point.
struct AcStampContext {
    double omega = 0.0;              ///< angular frequency (rad/s)
    std::span<const double> op;      ///< DC operating point (linearisation)
    ComplexAssembler* mna = nullptr;

    [[nodiscard]] double op_v(NodeId n) const {
        return n == kGround ? 0.0 : op[static_cast<std::size_t>(n) - 1];
    }
};

/// Base class of every circuit element.
class Device {
public:
    Device(std::string name, std::vector<NodeId> nodes);
    virtual ~Device() = default;

    Device& operator=(const Device&) = delete;

    /// Deep copy of this device, including any transient state, suitable for
    /// insertion into a cloned netlist (node ids are netlist-relative and
    /// copied verbatim). Backbone of Netlist::clone(), which gives every
    /// batch worker its own re-entrant circuit.
    [[nodiscard]] virtual std::unique_ptr<Device> clone() const = 0;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::span<const NodeId> nodes() const noexcept { return nodes_; }

    /// Number of extra branch variables (voltage-source currents etc.).
    [[nodiscard]] virtual int extra_variable_count() const { return 0; }

    /// Assigned by the analysis before solving; base index of this device's
    /// extra variables in the unknown vector.
    void set_extra_base(int base) noexcept { extra_base_ = base; }
    [[nodiscard]] int extra_base() const noexcept { return extra_base_; }

    /// True when the device's stamp depends on the iterate (triggers
    /// re-stamping every Newton iteration and enables NR-specific limiting).
    [[nodiscard]] virtual bool is_nonlinear() const { return false; }

    /// Adds this device's contribution for the current iterate.
    virtual void stamp(StampContext& ctx) const = 0;

    /// Adds the small-signal contribution at ctx.omega. Default: nothing
    /// (ideal current sources with no AC magnitude, for example).
    virtual void stamp_ac(AcStampContext& ctx) const;

    /// Called once when a transient run starts; op_solution is the t=0
    /// operating point. Reactive devices initialise their state here.
    virtual void begin_transient(std::span<const double> op_solution);

    /// Called after a transient step converged; x is the accepted solution.
    virtual void step_accepted(std::span<const double> x, double time, double dt,
                               Integrator integrator);

    /// Snapshot/restore of transient state for adaptive step control.
    [[nodiscard]] virtual std::vector<double> save_state() const { return {}; }
    virtual void restore_state(std::span<const double> state);

    /// Buffer-reusing snapshot: writes the same values save_state() returns
    /// into `out` (resized in place). The adaptive engine snapshots every
    /// device on every attempted step, so stateful devices override this to
    /// avoid one vector allocation per device per step; the default forwards
    /// to save_state() and copies.
    virtual void save_state_into(std::vector<double>& out) const;

protected:
    /// Copyable by derived clone() implementations only.
    Device(const Device&) = default;

    /// Voltage of the i-th connection node in a solution vector.
    [[nodiscard]] double node_v(std::span<const double> x, std::size_t i) const {
        const NodeId n = nodes_[i];
        return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
    }

private:
    std::string name_;
    std::vector<NodeId> nodes_;
    int extra_base_ = -1;
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_DEVICE_H
