#ifndef XYSIG_SPICE_MOSFET_H
#define XYSIG_SPICE_MOSFET_H

/// \file mosfet.h
/// MOSFET models.
///
/// Two models are provided:
///  * EKV long-channel (default): a single smooth expression covering weak,
///    moderate and strong inversion. In strong-inversion saturation it
///    reduces to the quasi-quadratic law ID ~ (kp/2n)(W/L)(VGS-VT0)^2 that
///    the paper's monitor exploits to draw nonlinear zone boundaries, and in
///    weak inversion it is exponential — which is exactly the paper's
///    explanation for the boundary-curve distortion at small input voltages
///    (Fig. 4, curve 6). Smoothness keeps Newton-Raphson robust.
///  * Level-1 (Shichman-Hodges): the classic piecewise square-law model,
///    kept as an independent cross-check of the EKV implementation.
///
/// mos_evaluate() is a free function so the monitor library can evaluate the
/// same physics without building a netlist.

#include "spice/device.h"

namespace xysig::spice {

enum class MosType { nmos, pmos };
enum class MosModel { ekv, level1 };

/// Process + geometry parameters of one transistor.
///
/// Defaults approximate a 65 nm low-Vt NMOS biased far from minimum length
/// (the paper uses L = 180 nm input devices): VT0 0.30 V, n 1.35,
/// kp 250 uA/V^2, lambda 0.1 V^-1.
struct MosParams {
    MosType type = MosType::nmos;
    MosModel model = MosModel::ekv;
    double w = 1e-6;      ///< channel width (m)
    double l = 180e-9;    ///< channel length (m)
    double vt0 = 0.30;    ///< threshold voltage magnitude (V)
    double kp = 250e-6;   ///< transconductance parameter k' = mu*Cox (A/V^2)
    double n_slope = 1.35;///< subthreshold slope factor
    double lambda = 0.1;  ///< channel-length modulation (1/V)

    [[nodiscard]] double aspect_ratio() const noexcept { return w / l; }

    /// Field-wise equality (compiler-maintained, so a new parameter can
    /// never be silently dropped from comparisons — the compiled monitor
    /// kernels rely on this to deduplicate identical legs).
    [[nodiscard]] bool operator==(const MosParams&) const noexcept = default;
};

/// Drain current and small-signal derivatives at one bias point.
struct MosEval {
    double id = 0.0;  ///< current into the drain terminal (A)
    double gm = 0.0;  ///< d id / d vgs
    double gds = 0.0; ///< d id / d vds
};

/// Evaluates the drain current of a MOSFET at (vgs, vds), both measured at
/// the device terminals (for pMOS they are normally negative in conduction).
/// Works for either sign of vds (source/drain symmetry).
[[nodiscard]] MosEval mos_evaluate(const MosParams& p, double vgs, double vds);

/// Drain current only, bit-identical to mos_evaluate(p, vgs, vds).id but
/// skipping the gm/gds arithmetic (one softplus per inversion charge instead
/// of a softplus + logistic pair in the EKV model). This is the per-sample
/// primitive of the compiled monitor kernels, where derivatives are never
/// needed; tests/kernels pin the bitwise equality over both models and both
/// device types.
[[nodiscard]] double mos_id(const MosParams& p, double vgs, double vds);

/// Three-terminal MOSFET device (bulk tied to source; the monitor circuit
/// operates all input devices source-grounded, so body effect is not
/// exercised by this project's circuits).
class Mosfet final : public Device {
public:
    /// Node order: drain, gate, source.
    Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
           MosParams params);

    [[nodiscard]] std::unique_ptr<Device> clone() const override {
        return std::make_unique<Mosfet>(*this);
    }

    [[nodiscard]] bool is_nonlinear() const override { return true; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

    [[nodiscard]] const MosParams& params() const noexcept { return params_; }
    /// Parameter update used by Monte-Carlo (process/mismatch sampling).
    void set_params(const MosParams& p) noexcept { params_ = p; }

    /// Drain current in a given solution vector.
    [[nodiscard]] double drain_current(std::span<const double> x) const;

private:
    MosParams params_;
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_MOSFET_H
