#ifndef XYSIG_SPICE_MNA_H
#define XYSIG_SPICE_MNA_H

/// \file mna.h
/// Ground-aware stamping into the modified-nodal-analysis system.
///
/// Unknown ordering: node voltages for nodes 1..N-1 first (index = id - 1),
/// then one slot per extra branch variable (voltage-source currents, opamp
/// output currents, inductor currents). Ground rows/columns are skipped by
/// the stamping helpers, which is what keeps device code free of special
/// cases.

#include <complex>
#include <vector>

#include "common/matrix.h"
#include "spice/types.h"

namespace xysig::spice {

/// Stamping facade over a real MNA matrix/RHS (DC and transient).
template <typename T>
class Assembler {
public:
    Assembler(Matrix<T>& a, std::vector<T>& b, std::size_t node_count)
        : a_(&a), b_(&b), node_count_(node_count) {
        XYSIG_EXPECTS(a.rows() == a.cols());
        XYSIG_EXPECTS(a.rows() == b.size());
        XYSIG_EXPECTS(a.rows() >= node_count - 1);
    }

    /// Unknown index of a node; -1 for ground.
    [[nodiscard]] int index_of(NodeId n) const {
        XYSIG_EXPECTS(n >= 0 && static_cast<std::size_t>(n) < node_count_);
        return static_cast<int>(n) - 1;
    }

    /// Conductance g between two nodes (standard 4-point stamp).
    void conductance(NodeId n1, NodeId n2, T g) {
        entry_node(n1, n1, g);
        entry_node(n2, n2, g);
        entry_node(n1, n2, -g);
        entry_node(n2, n1, -g);
    }

    /// Transconductance: current gm*(v(cp)-v(cn)) flowing from op into on
    /// (i.e. out of node op, into node on inside the device).
    void transconductance(NodeId op, NodeId on, NodeId cp, NodeId cn, T gm) {
        entry_node(op, cp, gm);
        entry_node(op, cn, -gm);
        entry_node(on, cp, -gm);
        entry_node(on, cn, gm);
    }

    /// Injects current i INTO node n (adds to the RHS).
    void current_into(NodeId n, T i) {
        const int r = index_of(n);
        if (r >= 0)
            (*b_)[static_cast<std::size_t>(r)] += i;
    }

    /// Raw matrix entry by node pair; either may be ground (skipped).
    void entry_node(NodeId row, NodeId col, T v) {
        const int r = index_of(row);
        const int c = index_of(col);
        if (r >= 0 && c >= 0)
            (*a_)(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
    }

    /// Raw matrix entry by unknown index (for extra branch variables).
    void entry_raw(int row, int col, T v) {
        XYSIG_EXPECTS(row >= 0 && col >= 0);
        (*a_)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
    }

    /// Matrix entry with a node row and a raw (extra-variable) column.
    void entry_node_raw(NodeId row, int col, T v) {
        const int r = index_of(row);
        if (r >= 0)
            entry_raw(r, col, v);
    }

    /// Matrix entry with a raw row and a node column.
    void entry_raw_node(int row, NodeId col, T v) {
        const int c = index_of(col);
        if (c >= 0)
            entry_raw(row, c, v);
    }

    /// RHS contribution on a raw row.
    void rhs_raw(int row, T v) {
        XYSIG_EXPECTS(row >= 0);
        (*b_)[static_cast<std::size_t>(row)] += v;
    }

    [[nodiscard]] std::size_t unknown_count() const noexcept { return b_->size(); }

private:
    Matrix<T>* a_;
    std::vector<T>* b_;
    std::size_t node_count_;
};

using RealAssembler = Assembler<double>;
using ComplexAssembler = Assembler<std::complex<double>>;

} // namespace xysig::spice

#endif // XYSIG_SPICE_MNA_H
