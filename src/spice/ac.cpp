#include "spice/ac.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"
#include "common/matrix.h"
#include "spice/dc.h"

namespace xysig::spice {

std::complex<double> AcResult::voltage(NodeId node, std::size_t point) const {
    XYSIG_EXPECTS(point < rows_.size());
    if (node == kGround)
        return {0.0, 0.0};
    return rows_[point][static_cast<std::size_t>(node) - 1];
}

std::complex<double> AcResult::voltage(const std::string& node,
                                       std::size_t point) const {
    return voltage(netlist_->find_node(node), point);
}

std::vector<double> AcResult::magnitude(const std::string& node) const {
    const NodeId id = netlist_->find_node(node);
    std::vector<double> out(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i)
        out[i] = std::abs(voltage(id, i));
    return out;
}

std::vector<double> AcResult::phase(const std::string& node) const {
    const NodeId id = netlist_->find_node(node);
    std::vector<double> out(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i)
        out[i] = std::arg(voltage(id, i));
    return out;
}

void AcResult::append(double f_hz, std::vector<std::complex<double>> x) {
    freq_hz_.push_back(f_hz);
    rows_.push_back(std::move(x));
}

AcResult run_ac(const Netlist& nl, const AcOptions& opts) {
    XYSIG_EXPECTS(opts.f_start > 0.0);
    XYSIG_EXPECTS(opts.f_stop > opts.f_start);
    XYSIG_EXPECTS(opts.points_per_decade >= 1);

    const OperatingPoint op = dc_operating_point(nl, opts.dc);
    const std::size_t n = nl.assign_unknowns();
    const std::size_t n_node_vars = nl.node_count() - 1;

    AcResult result(nl);
    const double decades = std::log10(opts.f_stop / opts.f_start);
    const auto points = static_cast<std::size_t>(
        std::ceil(decades * static_cast<double>(opts.points_per_decade))) + 1;

    for (std::size_t k = 0; k < points; ++k) {
        const double frac =
            (points == 1) ? 0.0
                          : static_cast<double>(k) / static_cast<double>(points - 1);
        const double f = opts.f_start * std::pow(10.0, frac * decades);
        const double omega = kTwoPi * f;

        Matrix<std::complex<double>> a(n, n);
        std::vector<std::complex<double>> b(n, {0.0, 0.0});
        ComplexAssembler mna(a, b, nl.node_count());

        AcStampContext ctx;
        ctx.omega = omega;
        ctx.op = op.unknowns();
        ctx.mna = &mna;
        for (const auto& dev : nl.devices())
            dev->stamp_ac(ctx);
        for (std::size_t i = 0; i < n_node_vars; ++i)
            a(i, i) += std::complex<double>(opts.dc.gmin, 0.0);

        result.append(f, solve_linear_system(std::move(a), b));
    }
    return result;
}

} // namespace xysig::spice
