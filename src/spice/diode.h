#ifndef XYSIG_SPICE_DIODE_H
#define XYSIG_SPICE_DIODE_H

/// \file diode.h
/// Junction diode with exponential I-V and overflow-safe linear continuation.

#include "spice/device.h"

namespace xysig::spice {

struct DiodeParams {
    double is = 1e-14;      ///< saturation current (A)
    double n_ideality = 1.0;///< ideality factor
};

/// Standard exponential diode. Above an internal critical voltage the
/// exponential is continued linearly (first-order Taylor) so huge Newton
/// overshoots cannot overflow; the continuation is C1 so convergence is
/// unaffected once the iterate returns to the physical region.
class Diode final : public Device {
public:
    /// Node order: anode, cathode.
    Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {});

    [[nodiscard]] std::unique_ptr<Device> clone() const override {
        return std::make_unique<Diode>(*this);
    }

    [[nodiscard]] bool is_nonlinear() const override { return true; }
    void stamp(StampContext& ctx) const override;
    void stamp_ac(AcStampContext& ctx) const override;

    /// Current/conductance at a given junction voltage (exposed for tests).
    struct Eval {
        double id;
        double gd;
    };
    [[nodiscard]] Eval evaluate(double vd) const;

private:
    DiodeParams params_;
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_DIODE_H
