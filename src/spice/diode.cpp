#include "spice/diode.h"

#include <cmath>

#include "common/math_util.h"

namespace xysig::spice {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name), {anode, cathode}), params_(params) {}

Diode::Eval Diode::evaluate(double vd) const {
    const double vte = params_.n_ideality * kThermalVoltage300K;
    // Linear continuation above vcrit ~ 40*vte (exp argument capped at 40).
    const double vcrit = 40.0 * vte;
    if (vd > vcrit) {
        const double ecrit = std::exp(40.0);
        const double id_crit = params_.is * (ecrit - 1.0);
        const double gd_crit = params_.is * ecrit / vte;
        return {id_crit + gd_crit * (vd - vcrit), gd_crit};
    }
    const double e = std::exp(vd / vte);
    return {params_.is * (e - 1.0), params_.is * e / vte};
}

void Diode::stamp(StampContext& ctx) const {
    const NodeId a = nodes()[0];
    const NodeId c = nodes()[1];
    const double vd = ctx.v(a) - ctx.v(c);
    const Eval e = evaluate(vd);
    const double ieq = e.id - e.gd * vd;
    ctx.mna->conductance(a, c, e.gd);
    ctx.mna->current_into(a, -ieq);
    ctx.mna->current_into(c, ieq);
}

void Diode::stamp_ac(AcStampContext& ctx) const {
    const double vd = ctx.op_v(nodes()[0]) - ctx.op_v(nodes()[1]);
    ctx.mna->conductance(nodes()[0], nodes()[1], {evaluate(vd).gd, 0.0});
}

} // namespace xysig::spice
