#include "spice/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace xysig::spice {

TransientResult::TransientResult(const Netlist& nl, bool fixed_step)
    : netlist_(&nl), fixed_step_(fixed_step) {}

void TransientResult::reset(const Netlist& nl, bool fixed_step) {
    netlist_ = &nl;
    fixed_step_ = fixed_step;
    time_.clear(); // rows_ keeps its storage; live length is time_.size()
    total_newton_iterations = 0;
    rejected_steps = 0;
}

void TransientResult::append(double t, std::span<const double> x) {
    if (time_.size() < rows_.size())
        rows_[time_.size()].assign(x.begin(), x.end());
    else
        rows_.emplace_back(x.begin(), x.end());
    time_.push_back(t);
}

double TransientResult::voltage(NodeId node, std::size_t step) const {
    XYSIG_EXPECTS(step < time_.size());
    if (node == kGround)
        return 0.0;
    return rows_[step][static_cast<std::size_t>(node) - 1];
}

std::vector<double> TransientResult::voltage_trace(NodeId node) const {
    std::vector<double> out(time_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = voltage(node, i);
    return out;
}

std::vector<double> TransientResult::voltage_trace(const std::string& node) const {
    XYSIG_EXPECTS(netlist_ != nullptr); // default-constructed: run first
    return voltage_trace(netlist_->find_node(node));
}

double TransientResult::unknown(std::size_t index, std::size_t step) const {
    XYSIG_EXPECTS(step < time_.size());
    XYSIG_EXPECTS(index < rows_[step].size());
    return rows_[step][index];
}

SampledSignal TransientResult::sampled_voltage(NodeId node, double dt) const {
    XYSIG_EXPECTS(dt > 0.0);
    XYSIG_EXPECTS(time_.size() >= 2);
    const double t0 = time_.front();
    const double t1 = time_.back();
    const auto n = static_cast<std::size_t>(std::floor((t1 - t0) / dt));
    XYSIG_EXPECTS(n >= 2);
    std::vector<double> samples(n);
    std::size_t seg = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + static_cast<double>(i) * dt;
        while (seg + 2 < time_.size() && time_[seg + 1] <= t)
            ++seg;
        const double ta = time_[seg];
        const double tb = time_[seg + 1];
        const double va = voltage(node, seg);
        const double vb = voltage(node, seg + 1);
        const double frac = (tb > ta) ? (t - ta) / (tb - ta) : 0.0;
        samples[i] = va + frac * (vb - va);
    }
    return SampledSignal(t0, dt, std::move(samples));
}

SampledSignal TransientResult::sampled_voltage(const std::string& node,
                                               double dt) const {
    XYSIG_EXPECTS(netlist_ != nullptr); // default-constructed: run first
    return sampled_voltage(netlist_->find_node(node), dt);
}

SampledSignal TransientResult::signal(const std::string& node) const {
    XYSIG_EXPECTS(fixed_step_);
    XYSIG_EXPECTS(time_.size() >= 2);
    const double dt = time_[1] - time_[0];
    return SampledSignal(time_.front(), dt, voltage_trace(node));
}

namespace {

/// Snapshot of every device's reactive state into pooled buffers: the
/// adaptive engine calls this on every attempted step, so the outer vector
/// and each device's inner vector are reused across the whole run instead
/// of being reallocated per step (ROADMAP: adaptive-transient batching).
void save_all_states_into(const Netlist& nl,
                          std::vector<std::vector<double>>& states) {
    const auto devs = nl.devices();
    states.resize(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i)
        devs[i]->save_state_into(states[i]);
}

void restore_all_states(const Netlist& nl,
                        const std::vector<std::vector<double>>& states) {
    const auto devs = nl.devices();
    XYSIG_ASSERT(states.size() == devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i)
        devs[i]->restore_state(states[i]);
}

/// One converged implicit step from the current device states.
/// Returns Newton iterations, or -1 when not converged.
int advance(const Netlist& nl, std::vector<double>& x, std::size_t n,
            const TransientOptions& opts, double t_new, double dt,
            Integrator integrator) {
    return detail::newton_solve(nl, x, n, opts.dc.newton, AnalysisMode::transient,
                                integrator, t_new, dt, opts.dc.gmin, 1.0);
}

void accept(const Netlist& nl, std::span<const double> x, double t, double dt,
            Integrator integrator) {
    for (const auto& dev : nl.devices())
        dev->step_accepted(x, t, dt, integrator);
}

} // namespace

TransientResult run_transient(const Netlist& nl, const TransientOptions& opts) {
    TransientResult result;
    run_transient_into(nl, opts, result);
    return result;
}

void run_transient_into(const Netlist& nl, const TransientOptions& opts,
                        TransientResult& out) {
    XYSIG_EXPECTS(opts.t_stop > opts.t_start);
    XYSIG_EXPECTS(opts.dt > 0.0);

    const OperatingPoint op = dc_operating_point(nl, opts.dc, opts.t_start);
    const std::size_t n = nl.assign_unknowns();
    for (const auto& dev : nl.devices())
        dev->begin_transient(op.unknowns());

    TransientResult& result = out;
    result.reset(nl, !opts.adaptive);
    result.append(opts.t_start, op.unknowns());

    std::vector<double> x(op.unknowns().begin(), op.unknowns().end());

    if (!opts.adaptive) {
        const auto steps = static_cast<std::size_t>(
            std::llround((opts.t_stop - opts.t_start) / opts.dt));
        XYSIG_EXPECTS(steps >= 1);
        for (std::size_t k = 1; k <= steps; ++k) {
            const double t_new = opts.t_start + static_cast<double>(k) * opts.dt;
            // First step with BE to damp the op-point discontinuity, then the
            // requested integrator.
            const Integrator integ =
                (k == 1) ? Integrator::backward_euler : opts.integrator;
            const int iters = advance(nl, x, n, opts, t_new, opts.dt, integ);
            if (iters < 0)
                throw NumericError("run_transient: step did not converge at t = " +
                                   std::to_string(t_new));
            result.total_newton_iterations += iters;
            accept(nl, x, t_new, opts.dt, integ);
            result.append(t_new, x);
        }
        return;
    }

    // Adaptive: step doubling. Take one full step and two half steps from the
    // same state; accept the half-step solution when they agree within tol.
    //
    // `dt` is the step-size controller's (unclamped) step; each iteration
    // attempts h = min(dt, time remaining). Keeping the two separate matters
    // at the end of the run: the final attempt is clamped to the sliver of
    // time left, and a rejection there must not trip the dt_min underflow
    // abort — the controller's own step is still healthy, only the clamp
    // made the attempt tiny. A rejected clamped attempt still halves the
    // next attempt (progress stays guaranteed); once the retry is no longer
    // clamp-limited, the dt_min guard applies as usual.
    double t = opts.t_start;
    double dt = opts.dt;
    const double dt_max = (opts.dt_max > 0.0) ? opts.dt_max : 10.0 * opts.dt;
    bool first = true;
    const std::size_t n_node_vars = nl.node_count() - 1;
    // Termination epsilon relative to the span as well as the stop time:
    // with t_stop == 0 (runs ending at the time origin) a purely relative
    // 1e-15 * t_stop degenerates to an exact-equality bound that roundoff
    // in `t += h` may never satisfy.
    const double t_end_eps =
        1e-15 * std::max(std::abs(opts.t_stop), opts.t_stop - opts.t_start);

    // Snapshot / iterate buffers pooled across the whole run: the adaptive
    // loop used to allocate a state table and two solution vectors per
    // attempted step.
    std::vector<std::vector<double>> states;
    std::vector<double> x_full;
    std::vector<double> x_half;

    while (t < opts.t_stop - t_end_eps) {
        const double h = std::min(dt, opts.t_stop - t);
        const Integrator integ = first ? Integrator::backward_euler : opts.integrator;

        save_all_states_into(nl, states);
        x_full = x;
        const int it_full = advance(nl, x_full, n, opts, t + h, h, integ);

        x_half = x;
        int it_half = -1;
        int it_half2 = -1;
        if (it_full >= 0) {
            it_half = advance(nl, x_half, n, opts, t + 0.5 * h, 0.5 * h, integ);
            if (it_half >= 0) {
                accept(nl, x_half, t + 0.5 * h, 0.5 * h, integ);
                it_half2 = advance(nl, x_half, n, opts, t + h, 0.5 * h, integ);
            }
        }

        double err = 0.0;
        if (it_full >= 0 && it_half2 >= 0) {
            for (std::size_t i = 0; i < n_node_vars; ++i)
                err = std::max(err, std::abs(x_full[i] - x_half[i]));
        } else {
            err = std::numeric_limits<double>::infinity();
        }

        if (err <= opts.lte_tol) {
            // Keep the more accurate half-step trajectory (device states are
            // already at t + h/2; advance them through the second half).
            accept(nl, x_half, t + h, 0.5 * h, integ);
            x = x_half;
            t += h;
            result.total_newton_iterations +=
                std::max(it_full, 0) + std::max(it_half, 0) + std::max(it_half2, 0);
            result.append(t, x);
            first = false;
            if (err < 0.25 * opts.lte_tol)
                dt = std::min(dt * 2.0, dt_max);
        } else {
            restore_all_states(nl, states);
            ++result.rejected_steps;
            const bool clamp_limited = h < dt;
            dt = 0.5 * h;
            if (!clamp_limited && dt < opts.dt_min)
                throw NumericError("run_transient: adaptive step underflow at t = " +
                                   std::to_string(t));
        }
    }
}

} // namespace xysig::spice
