#include "spice/netlist.h"

#include <algorithm>
#include <atomic>

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig::spice {

namespace {
/// See Netlist::clone_count(): the deep-copy probe for clone-budget tests.
std::atomic<std::uint64_t> g_clone_count{0};
} // namespace

Netlist::Netlist() {
    names_.push_back("0");
    ids_.emplace("0", kGround);
    ids_.emplace("gnd", kGround);
}

Netlist Netlist::clone() const {
    Netlist out;
    out.names_ = names_;
    out.ids_ = ids_;
    out.devices_.reserve(devices_.size());
    for (const auto& dev : devices_)
        out.devices_.push_back(dev->clone());
    out.device_index_ = device_index_;
    g_clone_count.fetch_add(1, std::memory_order_relaxed);
    return out;
}

std::uint64_t Netlist::clone_count() noexcept {
    return g_clone_count.load(std::memory_order_relaxed);
}

NodeId Netlist::node(const std::string& name) {
    XYSIG_EXPECTS(!name.empty());
    const std::string key = to_lower(name);
    const auto it = ids_.find(key);
    if (it != ids_.end())
        return it->second;
    const auto id = static_cast<NodeId>(names_.size());
    names_.push_back(name);
    ids_.emplace(key, id);
    return id;
}

NodeId Netlist::find_node(const std::string& name) const {
    const auto it = ids_.find(to_lower(name));
    if (it == ids_.end())
        throw InvalidInput("Netlist: unknown node '" + name + "'");
    return it->second;
}

const std::string& Netlist::node_name(NodeId id) const {
    XYSIG_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < names_.size());
    return names_[static_cast<std::size_t>(id)];
}

void Netlist::register_device(std::unique_ptr<Device> dev) {
    XYSIG_EXPECTS(dev != nullptr);
    for (const NodeId n : dev->nodes())
        XYSIG_EXPECTS(static_cast<std::size_t>(n) < names_.size());
    const auto [it, inserted] = device_index_.emplace(dev->name(), devices_.size());
    if (!inserted)
        throw InvalidInput("Netlist: duplicate device name '" + dev->name() + "'");
    devices_.push_back(std::move(dev));
}

void Netlist::remove_device(const std::string& name) {
    const auto it = device_index_.find(name);
    if (it == device_index_.end())
        throw InvalidInput("Netlist: no device named '" + name + "' to remove");
    const std::size_t index = it->second;
    device_index_.erase(it);
    devices_.erase(devices_.begin() + static_cast<std::ptrdiff_t>(index));
    // xylint: order-insensitive(pure per-entry index shift; no read depends on visit order and nothing is emitted)
    for (auto& [unused, idx] : device_index_) {
        if (idx > index)
            --idx;
    }
}

Device* Netlist::find_device(const std::string& name) const {
    const auto it = device_index_.find(name);
    if (it == device_index_.end())
        return nullptr;
    return devices_[it->second].get();
}

std::size_t Netlist::assign_unknowns() const {
    std::size_t next = node_count() - 1;
    for (const auto& dev : devices_) {
        const int extras = dev->extra_variable_count();
        XYSIG_ASSERT(extras >= 0);
        if (extras > 0)
            dev->set_extra_base(static_cast<int>(next));
        next += static_cast<std::size_t>(extras);
    }
    return next;
}

void Netlist::validate() const {
    std::vector<bool> touched(node_count(), false);
    touched[0] = true;
    for (const auto& dev : devices_)
        for (const NodeId n : dev->nodes())
            touched[static_cast<std::size_t>(n)] = true;
    for (std::size_t i = 0; i < touched.size(); ++i) {
        if (!touched[i])
            throw InvalidInput("Netlist: node '" + names_[i] +
                               "' is not connected to any device");
    }
    if (devices_.empty())
        throw InvalidInput("Netlist: empty circuit");
}

} // namespace xysig::spice
