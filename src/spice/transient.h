#ifndef XYSIG_SPICE_TRANSIENT_H
#define XYSIG_SPICE_TRANSIENT_H

/// \file transient.h
/// Time-domain analysis: fixed-step trapezoidal/backward-Euler integration
/// with an optional step-doubling adaptive mode (Richardson local error
/// estimate on the node voltages).

#include <vector>

#include "signal/sampled.h"
#include "spice/dc.h"
#include "spice/netlist.h"
#include "spice/types.h"

namespace xysig::spice {

/// Stored trajectory of every unknown at every accepted time point.
///
/// A TransientResult can be reused across runs via run_transient_into():
/// reset() rewinds the logical length while keeping the row storage, so a
/// driver that simulates thousands of circuits (the batch fault-universe
/// engine) stops reallocating one vector per time point per run.
class TransientResult {
public:
    /// Empty result awaiting run_transient_into(); any accessor that needs
    /// stored steps requires a run first.
    TransientResult() = default;

    TransientResult(const Netlist& nl, bool fixed_step);

    /// Rebinds to a netlist and rewinds to zero stored steps. Row buffers
    /// are kept and overwritten in place by subsequent append() calls.
    void reset(const Netlist& nl, bool fixed_step);

    [[nodiscard]] std::span<const double> time() const noexcept { return time_; }
    [[nodiscard]] std::size_t step_count() const noexcept { return time_.size(); }

    /// Voltage of a node at a stored step index.
    [[nodiscard]] double voltage(NodeId node, std::size_t step) const;

    /// Full voltage trajectory of one node.
    [[nodiscard]] std::vector<double> voltage_trace(NodeId node) const;
    [[nodiscard]] std::vector<double> voltage_trace(const std::string& node) const;

    /// Value of a raw unknown (e.g. a source branch current) at a step.
    [[nodiscard]] double unknown(std::size_t index, std::size_t step) const;

    /// Uniformly resampled node voltage (linear interpolation); works for
    /// both fixed and adaptive runs. t range is [t_first, t_last).
    [[nodiscard]] SampledSignal sampled_voltage(NodeId node, double dt) const;
    [[nodiscard]] SampledSignal sampled_voltage(const std::string& node,
                                                double dt) const;

    /// Fixed-step runs only: zero-copy-ish view as a SampledSignal with the
    /// run's own dt.
    [[nodiscard]] SampledSignal signal(const std::string& node) const;

    /// Total Newton iterations over the whole run (engine benchmark metric).
    int total_newton_iterations = 0;
    /// Steps rejected by the adaptive error control.
    int rejected_steps = 0;

    /// Called by the engine only.
    void append(double t, std::span<const double> x);

private:
    const Netlist* netlist_ = nullptr;
    bool fixed_step_ = false;
    std::vector<double> time_;
    /// Row storage; only the first time_.size() rows are live — reset()
    /// keeps the rest as capacity for the next run.
    std::vector<std::vector<double>> rows_;
};

/// Runs a transient analysis. The initial condition is the DC operating
/// point with sources evaluated at t_start. Throws NumericError when a step
/// fails to converge (fixed) or dt_min is reached (adaptive).
[[nodiscard]] TransientResult run_transient(const Netlist& nl,
                                            const TransientOptions& opts);

/// Buffer-reusing variant: resets `out` and runs the analysis into it,
/// reusing its row storage from previous runs. Numerically identical to
/// run_transient (same code path). The netlist's device state is mutated
/// during the run, so one netlist must never be simulated from two threads
/// at once — clone it per worker (Netlist::clone()).
void run_transient_into(const Netlist& nl, const TransientOptions& opts,
                        TransientResult& out);

} // namespace xysig::spice

#endif // XYSIG_SPICE_TRANSIENT_H
