#ifndef XYSIG_SPICE_AC_H
#define XYSIG_SPICE_AC_H

/// \file ac.h
/// Small-signal AC sweep: linearises the circuit at its DC operating point
/// and solves the complex MNA system over a log-spaced frequency grid.

#include <complex>
#include <vector>

#include "spice/netlist.h"
#include "spice/types.h"

namespace xysig::spice {

/// Complex node responses per frequency point.
class AcResult {
public:
    explicit AcResult(const Netlist& nl) : netlist_(&nl) {}

    [[nodiscard]] std::span<const double> frequencies() const noexcept {
        return freq_hz_;
    }
    [[nodiscard]] std::size_t point_count() const noexcept { return freq_hz_.size(); }

    [[nodiscard]] std::complex<double> voltage(NodeId node, std::size_t point) const;
    [[nodiscard]] std::complex<double> voltage(const std::string& node,
                                               std::size_t point) const;

    /// |V(node)| over the whole sweep.
    [[nodiscard]] std::vector<double> magnitude(const std::string& node) const;
    /// Phase (radians) over the whole sweep.
    [[nodiscard]] std::vector<double> phase(const std::string& node) const;

    /// Called by the engine only.
    void append(double f_hz, std::vector<std::complex<double>> x);

private:
    const Netlist* netlist_;
    std::vector<double> freq_hz_;
    std::vector<std::vector<std::complex<double>>> rows_;
};

/// Runs the AC sweep. Exactly the sources with a non-zero AC magnitude
/// drive the small-signal circuit.
[[nodiscard]] AcResult run_ac(const Netlist& nl, const AcOptions& opts);

} // namespace xysig::spice

#endif // XYSIG_SPICE_AC_H
