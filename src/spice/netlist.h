#ifndef XYSIG_SPICE_NETLIST_H
#define XYSIG_SPICE_NETLIST_H

/// \file netlist.h
/// Circuit container: named nodes plus owned devices.
///
/// Typical use:
/// \code
///   spice::Netlist nl;
///   const auto in  = nl.node("in");
///   const auto out = nl.node("out");
///   nl.add<spice::VoltageSource>("Vin", in, spice::kGround,
///                                SineWaveform(0.5, 0.3, 5e3));
///   nl.add<spice::Resistor>("R1", in, out, 10e3);
///   nl.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9);
///   auto tran = spice::run_transient(nl, {.t_stop = 1e-3, .dt = 1e-7});
/// \endcode

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "spice/device.h"

namespace xysig::spice {

/// Owns the devices and the node name table of one circuit.
///
/// Netlists are movable but not copyable; an explicit deep copy is provided
/// by clone(). Cloning is the re-entrancy primitive of the SPICE backend:
/// transient simulation mutates device state (companion-model history,
/// source waveforms), so concurrent workers must each own a clone instead
/// of sharing one netlist.
class Netlist {
public:
    Netlist();

    /// Deep copy: node table, every device (including waveforms and
    /// transient state) and the lookup indices. The clone shares no mutable
    /// state with the original — simulating one never affects the other.
    [[nodiscard]] Netlist clone() const;

    /// Process-wide count of clone() calls since start-up. This is the
    /// clone-budget probe the sweep service's tests rely on: a sharded
    /// sweep must clone once per worker, not once per fault, and that
    /// invariant is only checkable against the true deep-copy count.
    [[nodiscard]] static std::uint64_t clone_count() noexcept;

    /// Returns the id for a named node, creating it on first use.
    /// The name "0" and "gnd" map to ground.
    NodeId node(const std::string& name);

    /// Looks up an existing node; throws InvalidInput if absent.
    [[nodiscard]] NodeId find_node(const std::string& name) const;

    /// Name of a node id (for reports); ids are dense, 0 = ground.
    [[nodiscard]] const std::string& node_name(NodeId id) const;

    /// Number of nodes including ground.
    [[nodiscard]] std::size_t node_count() const noexcept { return names_.size(); }

    /// Constructs a device in place and returns a reference to it.
    /// Device names must be unique within the netlist.
    template <typename T, typename... Args>
    T& add(Args&&... args) {
        auto dev = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *dev;
        register_device(std::move(dev));
        return ref;
    }

    /// All devices in insertion order.
    [[nodiscard]] std::span<const std::unique_ptr<Device>> devices() const noexcept {
        return devices_;
    }

    /// Finds a device by name and downcasts it; throws InvalidInput when the
    /// name is unknown or the type does not match.
    template <typename T>
    [[nodiscard]] T& get(const std::string& name) const {
        Device* dev = find_device(name);
        if (dev == nullptr)
            throw InvalidInput("Netlist: no device named '" + name + "'");
        auto* typed = dynamic_cast<T*>(dev);
        if (typed == nullptr)
            throw InvalidInput("Netlist: device '" + name + "' has unexpected type");
        return *typed;
    }

    /// Non-throwing lookup: nullptr when the name is unknown or the type
    /// does not match (used by fault enumeration to probe device kinds).
    template <typename T>
    [[nodiscard]] T* try_get(const std::string& name) const {
        return dynamic_cast<T*>(find_device(name));
    }

    /// Removes a device by name (throws InvalidInput when absent). The
    /// repair half of transient fault injection: removing the injected
    /// bridge resistor restores the netlist to its pre-fault structure, so
    /// one worker clone can be reused across a whole fault universe.
    void remove_device(const std::string& name);

    /// Total unknowns: (node_count-1) node voltages + extra branch variables.
    /// Also (re)assigns each device's extra-variable base index; analyses
    /// call this before assembling.
    [[nodiscard]] std::size_t assign_unknowns() const;

    /// Sanity pass: every non-ground node must be reachable by at least one
    /// device terminal (catches typo'd node names early). Throws InvalidInput.
    void validate() const;

private:
    void register_device(std::unique_ptr<Device> dev);
    [[nodiscard]] Device* find_device(const std::string& name) const;

    std::vector<std::string> names_; // index = NodeId
    std::unordered_map<std::string, NodeId> ids_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, std::size_t> device_index_;
};

} // namespace xysig::spice

#endif // XYSIG_SPICE_NETLIST_H
