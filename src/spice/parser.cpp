#include "spice/parser.h"

#include <cmath>
#include <map>
#include <sstream>

#include "common/contracts.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "spice/diode.h"
#include "spice/elements.h"
#include "spice/mosfet.h"

namespace xysig::spice {

namespace {

[[noreturn]] void fail(int line_no, const std::string& message) {
    throw InvalidInput("deck line " + std::to_string(line_no) + ": " + message);
}

/// "key=value" pairs at the tail of a card; keys lowercased.
std::map<std::string, double> parse_kv(const std::vector<std::string>& tokens,
                                       std::size_t first, int line_no) {
    std::map<std::string, double> kv;
    for (std::size_t i = first; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos)
            fail(line_no, "expected key=value, got '" + tokens[i] + "'");
        const std::string key = to_lower(tokens[i].substr(0, eq));
        const std::string value = tokens[i].substr(eq + 1);
        if (key.empty() || value.empty())
            fail(line_no, "malformed key=value '" + tokens[i] + "'");
        try {
            kv[key] = parse_spice_number(value);
        } catch (const InvalidInput&) {
            // Non-numeric values (e.g. LEVEL=EKV) are handled by the caller.
            kv[key] = std::nan("");
        }
    }
    return kv;
}

/// Collects the arguments of a function-style source spec:
/// tokens like "SIN(0.5" "0.3" "5k)" -> {0.5, 0.3, 5000}.
std::vector<double> function_args(const std::vector<std::string>& tokens,
                                  std::size_t first, int line_no,
                                  std::size_t* consumed) {
    std::string joined;
    std::size_t i = first;
    bool closed = false;
    for (; i < tokens.size(); ++i) {
        joined += tokens[i];
        joined += ' ';
        if (tokens[i].find(')') != std::string::npos) {
            closed = true;
            ++i;
            break;
        }
    }
    if (!closed)
        fail(line_no, "unterminated source specification");
    *consumed = i;

    const auto open = joined.find('(');
    const auto close = joined.rfind(')');
    XYSIG_ASSERT(open != std::string::npos && close != std::string::npos);
    const std::string inner = joined.substr(open + 1, close - open - 1);
    std::vector<double> args;
    for (const auto& tok : split(inner, " \t,"))
        args.push_back(parse_spice_number(tok));
    return args;
}

/// Builds the waveform of a V/I source card starting at tokens[first].
/// Returns the token index after the consumed spec.
std::size_t parse_source_spec(const std::vector<std::string>& tokens,
                              std::size_t first, int line_no,
                              std::unique_ptr<Waveform>* out) {
    if (first >= tokens.size())
        fail(line_no, "missing source value");
    const std::string head = to_lower(tokens[first]);

    if (starts_with(head, "sin")) {
        std::size_t consumed = 0;
        const auto args = function_args(tokens, first, line_no, &consumed);
        if (args.size() < 3 || args.size() > 4)
            fail(line_no, "SIN expects (offset amplitude freq [phase_deg])");
        const double phase =
            args.size() == 4 ? args[3] * kPi / 180.0 : 0.0;
        *out = std::make_unique<SineWaveform>(args[0], args[1], args[2], phase);
        return consumed;
    }
    if (starts_with(head, "pulse")) {
        std::size_t consumed = 0;
        const auto args = function_args(tokens, first, line_no, &consumed);
        if (args.size() != 7)
            fail(line_no, "PULSE expects (v1 v2 delay rise fall width period)");
        *out = std::make_unique<PulseWaveform>(args[0], args[1], args[2], args[3],
                                               args[4], args[5], args[6]);
        return consumed;
    }
    if (starts_with(head, "pwl")) {
        std::size_t consumed = 0;
        const auto args = function_args(tokens, first, line_no, &consumed);
        if (args.size() < 2 || args.size() % 2 != 0)
            fail(line_no, "PWL expects an even number of t/v values");
        std::vector<PwlWaveform::Point> points;
        for (std::size_t i = 0; i < args.size(); i += 2)
            points.push_back({args[i], args[i + 1]});
        *out = std::make_unique<PwlWaveform>(std::move(points));
        return consumed;
    }
    // Plain DC level.
    *out = std::make_unique<DcWaveform>(parse_spice_number(tokens[first]));
    return first + 1;
}

struct ModelCard {
    MosParams params;
};

} // namespace

Netlist parse_deck(std::string_view deck) {
    Netlist nl;
    std::map<std::string, ModelCard> models;

    // Two passes: .MODEL cards first so device order does not matter.
    std::istringstream stream_models{std::string(deck)};
    std::string raw;
    int line_no = 0;
    bool first_line = true;
    while (std::getline(stream_models, raw)) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (first_line) {
            first_line = false;
            continue; // title
        }
        if (line.empty() || line.front() == '*')
            continue;
        const auto tokens = split(line);
        if (!iequals(tokens[0], ".model"))
            continue;
        if (tokens.size() < 3)
            fail(line_no, ".MODEL needs a name and a type");
        ModelCard card;
        const std::string type = to_lower(tokens[2]);
        if (type == "nmos")
            card.params.type = MosType::nmos;
        else if (type == "pmos")
            card.params.type = MosType::pmos;
        else
            fail(line_no, "unknown model type '" + tokens[2] + "'");
        for (std::size_t i = 3; i < tokens.size(); ++i) {
            const auto eq = tokens[i].find('=');
            if (eq == std::string::npos)
                fail(line_no, "expected key=value in .MODEL");
            const std::string key = to_lower(tokens[i].substr(0, eq));
            const std::string value = to_lower(tokens[i].substr(eq + 1));
            if (key == "level") {
                if (value == "1")
                    card.params.model = MosModel::level1;
                else if (value == "ekv")
                    card.params.model = MosModel::ekv;
                else
                    fail(line_no, "unsupported LEVEL '" + value + "'");
            } else if (key == "vto" || key == "vt0") {
                card.params.vt0 = parse_spice_number(value);
            } else if (key == "kp") {
                card.params.kp = parse_spice_number(value);
            } else if (key == "lambda") {
                card.params.lambda = parse_spice_number(value);
            } else if (key == "n") {
                card.params.n_slope = parse_spice_number(value);
            } else {
                fail(line_no, "unknown .MODEL parameter '" + key + "'");
            }
        }
        models[to_lower(tokens[1])] = card;
    }

    std::istringstream stream{std::string(deck)};
    line_no = 0;
    first_line = true;
    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (first_line) {
            first_line = false;
            continue;
        }
        if (line.empty() || line.front() == '*')
            continue;
        const auto tokens = split(line);
        const std::string& name = tokens[0];
        const char kind = static_cast<char>(
            std::tolower(static_cast<unsigned char>(name[0])));

        if (kind == '.') {
            if (iequals(name, ".end"))
                break;
            if (iequals(name, ".model"))
                continue; // handled in the first pass
            fail(line_no, "unsupported directive '" + name + "'");
        }

        auto need = [&](std::size_t n, const char* what) {
            if (tokens.size() < n)
                fail(line_no, std::string("too few fields for ") + what);
        };

        switch (kind) {
        case 'r': {
            need(4, "resistor");
            nl.add<Resistor>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                             parse_spice_number(tokens[3]));
            break;
        }
        case 'c': {
            need(4, "capacitor");
            nl.add<Capacitor>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                              parse_spice_number(tokens[3]));
            break;
        }
        case 'l': {
            need(4, "inductor");
            nl.add<Inductor>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                             parse_spice_number(tokens[3]));
            break;
        }
        case 'v': {
            need(4, "voltage source");
            std::unique_ptr<Waveform> wave;
            std::size_t next = parse_source_spec(tokens, 3, line_no, &wave);
            auto& src = nl.add<VoltageSource>(name, nl.node(tokens[1]),
                                              nl.node(tokens[2]), *wave);
            if (next < tokens.size() && iequals(tokens[next], "ac")) {
                if (next + 1 >= tokens.size())
                    fail(line_no, "AC needs a magnitude");
                const double mag = parse_spice_number(tokens[next + 1]);
                const double ph =
                    (next + 2 < tokens.size())
                        ? parse_spice_number(tokens[next + 2]) * kPi / 180.0
                        : 0.0;
                src.set_ac(mag, ph);
            }
            break;
        }
        case 'i': {
            need(4, "current source");
            std::unique_ptr<Waveform> wave;
            (void)parse_source_spec(tokens, 3, line_no, &wave);
            nl.add<CurrentSource>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                                  *wave);
            break;
        }
        case 'e': {
            need(6, "VCVS");
            nl.add<Vcvs>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                         nl.node(tokens[3]), nl.node(tokens[4]),
                         parse_spice_number(tokens[5]));
            break;
        }
        case 'g': {
            need(6, "VCCS");
            nl.add<Vccs>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                         nl.node(tokens[3]), nl.node(tokens[4]),
                         parse_spice_number(tokens[5]));
            break;
        }
        case 'd': {
            need(3, "diode");
            DiodeParams dp;
            const auto kv = parse_kv(tokens, 3, line_no);
            if (const auto it = kv.find("is"); it != kv.end())
                dp.is = it->second;
            if (const auto it = kv.find("n"); it != kv.end())
                dp.n_ideality = it->second;
            nl.add<Diode>(name, nl.node(tokens[1]), nl.node(tokens[2]), dp);
            break;
        }
        case 'm': {
            need(5, "MOSFET");
            const auto model_it = models.find(to_lower(tokens[4]));
            if (model_it == models.end())
                fail(line_no, "unknown model '" + tokens[4] + "'");
            MosParams params = model_it->second.params;
            const auto kv = parse_kv(tokens, 5, line_no);
            if (const auto it = kv.find("w"); it != kv.end())
                params.w = it->second;
            if (const auto it = kv.find("l"); it != kv.end())
                params.l = it->second;
            nl.add<Mosfet>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                           nl.node(tokens[3]), params);
            break;
        }
        case 'u': {
            need(4, "opamp");
            nl.add<IdealOpamp>(name, nl.node(tokens[1]), nl.node(tokens[2]),
                               nl.node(tokens[3]));
            break;
        }
        default:
            fail(line_no, "unsupported element '" + name + "'");
        }
    }
    return nl;
}

} // namespace xysig::spice
