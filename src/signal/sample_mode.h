#ifndef XYSIG_SIGNAL_SAMPLE_MODE_H
#define XYSIG_SIGNAL_SAMPLE_MODE_H

/// \file sample_mode.h
/// Sampling-mode selector threaded from PipelineOptions down to the
/// stimulus sampling kernels.

#include <cstdint>

namespace xysig {

/// How closed-form waveforms are sampled.
///
/// exact (the default) is the paper's contract: libm sines, bit-identical
/// across every code path, machine and build of this library — the only
/// mode whose signatures are comparable artifacts.
///
/// fast_math routes multitone sampling through the batched polynomial
/// kernels in kernels/vecmath.h: every sine is within 2 ULP of the
/// correctly rounded value (gate-enforced), and results are bit-identical
/// across ISAs (scalar/SSE2/AVX2/NEON) — but NOT bit-identical to exact
/// mode, so signatures from the two modes must never be compared.
/// Waveforms without a tone-table form (PWL, pulse, custom) ignore the
/// mode entirely: fast_math is a no-op for them by contract.
enum class SampleMode : std::uint8_t { exact = 0, fast_math = 1 };

} // namespace xysig

#endif // XYSIG_SIGNAL_SAMPLE_MODE_H
