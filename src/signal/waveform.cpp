#include "signal/waveform.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/error.h"
#include "common/math_util.h"

namespace xysig {

SineWaveform::SineWaveform(double offset, double amplitude, double frequency_hz,
                           double phase_rad)
    : offset_(offset), amplitude_(amplitude), frequency_hz_(frequency_hz),
      phase_rad_(phase_rad) {
    XYSIG_EXPECTS(frequency_hz > 0.0);
}

double SineWaveform::value(double t) const {
    return offset_ + amplitude_ * std::sin(kTwoPi * frequency_hz_ * t + phase_rad_);
}

double SineWaveform::period() const { return 1.0 / frequency_hz_; }

double common_period(const std::vector<double>& frequencies_hz) {
    if (frequencies_hz.empty())
        throw NumericError("common_period: empty frequency set");
    for (double f : frequencies_hz)
        if (!(f > 0.0))
            throw NumericError("common_period: non-positive frequency");

    // Express every frequency as a rational multiple of the first. The
    // common period is T1 * lcm(denominators of the ratios) / gcd-structure:
    // if f_i/f_1 = p_i/q_i then T = (1/f_1) * lcm(q_i) ... but we also need
    // the result to be a multiple of every T_i, handled by tracking the
    // period ratio T_i/T_1 = q_i/p_i and taking the rational lcm.
    const double f1 = frequencies_hz.front();
    std::int64_t num_lcm = 1; // lcm of period-ratio numerators (q_i)
    std::int64_t den_gcd = 1; // gcd of period-ratio denominators (p_i)
    bool first = true;
    for (double f : frequencies_hz) {
        const Rational ratio = to_rational(f / f1);
        if (ratio.num() == 0)
            throw NumericError("common_period: frequency ratio underflow");
        // T_i / T_1 = q/p with ratio = p/q.
        const std::int64_t q = ratio.den();
        const std::int64_t p = ratio.num();
        if (first) {
            num_lcm = q;
            den_gcd = p;
            first = false;
        } else {
            num_lcm = lcm_i64(num_lcm, q);
            den_gcd = gcd_i64(den_gcd, p);
        }
    }
    const double t1 = 1.0 / f1;
    return t1 * static_cast<double>(num_lcm) / static_cast<double>(den_gcd);
}

MultitoneWaveform::MultitoneWaveform(double offset, std::vector<Tone> tones)
    : offset_(offset), tones_(std::move(tones)) {
    XYSIG_EXPECTS(!tones_.empty());
    std::vector<double> freqs;
    freqs.reserve(tones_.size());
    for (const auto& tone : tones_) {
        XYSIG_EXPECTS(tone.frequency_hz > 0.0);
        freqs.push_back(tone.frequency_hz);
    }
    period_ = common_period(freqs);
}

double MultitoneWaveform::value(double t) const {
    double acc = offset_;
    for (const auto& tone : tones_)
        acc += tone.amplitude * std::sin(kTwoPi * tone.frequency_hz * t + tone.phase_rad);
    return acc;
}

double MultitoneWaveform::max_abs_excursion() const noexcept {
    double acc = 0.0;
    for (const auto& tone : tones_)
        acc += std::abs(tone.amplitude);
    return acc;
}

PwlWaveform::PwlWaveform(std::vector<Point> points) : points_(std::move(points)) {
    XYSIG_EXPECTS(!points_.empty());
    for (std::size_t i = 1; i < points_.size(); ++i)
        XYSIG_EXPECTS(points_[i].t > points_[i - 1].t);
}

double PwlWaveform::value(double t) const {
    if (t <= points_.front().t)
        return points_.front().v;
    if (t >= points_.back().t)
        return points_.back().v;
    // Binary search for the segment containing t.
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double lhs, const Point& rhs) { return lhs < rhs.t; });
    const Point& hi = *it;
    const Point& lo = *(it - 1);
    const double frac = (t - lo.t) / (hi.t - lo.t);
    return lerp(lo.v, hi.v, frac);
}

PulseWaveform::PulseWaveform(double v1, double v2, double delay, double rise,
                             double fall, double width, double period)
    : v1_(v1), v2_(v2), delay_(delay), rise_(rise), fall_(fall), width_(width),
      period_(period) {
    XYSIG_EXPECTS(rise >= 0.0 && fall >= 0.0 && width >= 0.0);
    XYSIG_EXPECTS(period > 0.0);
    XYSIG_EXPECTS(rise + width + fall <= period);
}

double PulseWaveform::value(double t) const {
    if (t < delay_)
        return v1_;
    const double tp = std::fmod(t - delay_, period_);
    if (tp < rise_)
        // xylint: exact-compare(rise=0 is the exact ideal-edge configuration; guards the division)
        return rise_ == 0.0 ? v2_ : lerp(v1_, v2_, tp / rise_);
    if (tp < rise_ + width_)
        return v2_;
    if (tp < rise_ + width_ + fall_)
        // xylint: exact-compare(fall=0 is the exact ideal-edge configuration; guards the division)
        return fall_ == 0.0 ? v1_ : lerp(v2_, v1_, (tp - rise_ - width_) / fall_);
    return v1_;
}

} // namespace xysig
