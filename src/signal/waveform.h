#ifndef XYSIG_SIGNAL_WAVEFORM_H
#define XYSIG_SIGNAL_WAVEFORM_H

/// \file waveform.h
/// Continuous-time stimulus descriptions.
///
/// A Waveform is an analytic function of time used both as a SPICE source
/// value and as the direct input of behavioural CUT models. The multitone
/// waveform is the paper's stimulus: the Lissajous trace is periodic exactly
/// when all tone frequencies are commensurable, and MultitoneWaveform
/// computes that common period exactly over rationals.

#include <memory>
#include <vector>

namespace xysig {

/// A real-valued function of time with an optional period.
class Waveform {
public:
    virtual ~Waveform() = default;

    /// Value at time t (seconds).
    [[nodiscard]] virtual double value(double t) const = 0;

    /// Fundamental period in seconds; 0 means constant / aperiodic.
    [[nodiscard]] virtual double period() const = 0;

    /// Deep copy (waveforms are cheap value-like objects held behind the
    /// interface; netlists clone their sources on copy).
    [[nodiscard]] virtual std::unique_ptr<Waveform> clone() const = 0;

protected:
    Waveform() = default;
    Waveform(const Waveform&) = default;
    Waveform& operator=(const Waveform&) = default;
};

/// Constant level.
class DcWaveform final : public Waveform {
public:
    explicit DcWaveform(double level) : level_(level) {}
    [[nodiscard]] double value(double) const override { return level_; }
    [[nodiscard]] double period() const override { return 0.0; }
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<DcWaveform>(*this);
    }

    [[nodiscard]] double level() const noexcept { return level_; }

private:
    double level_;
};

/// offset + amplitude * sin(2*pi*frequency*t + phase).
class SineWaveform final : public Waveform {
public:
    SineWaveform(double offset, double amplitude, double frequency_hz,
                 double phase_rad = 0.0);
    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double period() const override;
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<SineWaveform>(*this);
    }

    [[nodiscard]] double frequency() const noexcept { return frequency_hz_; }
    [[nodiscard]] double amplitude() const noexcept { return amplitude_; }
    [[nodiscard]] double offset() const noexcept { return offset_; }
    [[nodiscard]] double phase() const noexcept { return phase_rad_; }

private:
    double offset_;
    double amplitude_;
    double frequency_hz_;
    double phase_rad_;
};

/// One tone of a multitone stimulus.
struct Tone {
    double amplitude = 0.0;
    double frequency_hz = 0.0;
    double phase_rad = 0.0;
};

/// offset + sum of sinusoidal tones. The paper's Biquad experiments use a
/// two-tone stimulus whose composition with the filter output draws the
/// Lissajous curve of Fig. 1 / Fig. 6.
class MultitoneWaveform final : public Waveform {
public:
    MultitoneWaveform(double offset, std::vector<Tone> tones);

    [[nodiscard]] double value(double t) const override;
    /// Exact common period of all tones (least common multiple of the tone
    /// periods, computed over rationals). Throws NumericError when the tone
    /// frequencies are not commensurable within 1e-9 relative accuracy.
    [[nodiscard]] double period() const override { return period_; }
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<MultitoneWaveform>(*this);
    }

    [[nodiscard]] const std::vector<Tone>& tones() const noexcept { return tones_; }
    [[nodiscard]] double offset() const noexcept { return offset_; }

    /// Peak-to-peak bound: offset +/- sum of |amplitudes| (reached only if
    /// phases align, but a safe bound for range checks).
    [[nodiscard]] double max_abs_excursion() const noexcept;

private:
    double offset_;
    std::vector<Tone> tones_;
    double period_;
};

/// Piecewise-linear waveform through (t, v) breakpoints; constant before the
/// first and after the last breakpoint (SPICE PWL semantics).
class PwlWaveform final : public Waveform {
public:
    struct Point {
        double t;
        double v;
    };
    explicit PwlWaveform(std::vector<Point> points);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double period() const override { return 0.0; }
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<PwlWaveform>(*this);
    }

private:
    std::vector<Point> points_;
};

/// SPICE-style pulse: v1 -> v2 with delay, rise, fall, width, period.
class PulseWaveform final : public Waveform {
public:
    PulseWaveform(double v1, double v2, double delay, double rise, double fall,
                  double width, double period);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double period() const override { return period_; }
    [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
        return std::make_unique<PulseWaveform>(*this);
    }

private:
    double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// Common period (seconds) of a set of frequencies (Hz); the Lissajous
/// period of signals containing exactly these tones. Throws NumericError if
/// the set is empty, contains non-positive frequencies, or is
/// incommensurable within the rational approximation bound.
[[nodiscard]] double common_period(const std::vector<double>& frequencies_hz);

} // namespace xysig

#endif // XYSIG_SIGNAL_WAVEFORM_H
