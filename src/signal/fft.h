#ifndef XYSIG_SIGNAL_FFT_H
#define XYSIG_SIGNAL_FFT_H

/// \file fft.h
/// Radix-2 FFT and single-bin Goertzel evaluation.
///
/// Used to verify the Biquad filter's measured frequency response against
/// the analytic transfer function and to extract tone magnitudes/phases from
/// simulated CUT outputs.

#include <complex>
#include <vector>

namespace xysig {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. inverse=true applies the conjugate transform scaled by 1/N.
void fft_radix2(std::vector<std::complex<double>>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Complex amplitude of the component exp(j*2*pi*f*t) in a real signal
/// sampled at rate fs (Goertzel-style correlation against an exact
/// frequency, so f need not fall on an FFT bin). The returned value A
/// satisfies: the signal contains A.real()*cos + (-A.imag())*sin... more
/// usefully, for input a*sin(2*pi*f*t + phi) the result has magnitude a and
/// argument (phi - pi/2).
[[nodiscard]] std::complex<double> tone_component(const std::vector<double>& samples,
                                                  double fs, double f);

/// Magnitude spectrum of a real signal at the FFT bin frequencies k*fs/N,
/// k = 0..N/2, scaled so a full-scale sine of amplitude a reads a at its bin.
[[nodiscard]] std::vector<double> magnitude_spectrum(const std::vector<double>& samples);

} // namespace xysig

#endif // XYSIG_SIGNAL_FFT_H
