#include "signal/sampled.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/rng.h"
#include "kernels/compiled_waveform.h"

namespace xysig {

SampledSignal::SampledSignal(double start_time, double dt, std::vector<double> samples)
    : start_time_(start_time), dt_(dt), samples_(std::move(samples)) {
    XYSIG_EXPECTS(dt > 0.0);
}

SampledSignal SampledSignal::from_waveform(const Waveform& w, double t0,
                                           double duration, std::size_t n) {
    XYSIG_EXPECTS(duration > 0.0);
    XYSIG_EXPECTS(n >= 2);
    const double dt = duration / static_cast<double>(n);
    std::vector<double> samples;
    sample_waveform_into(w, t0, duration, n, samples);
    return SampledSignal(t0, dt, std::move(samples));
}

void SampledSignal::sample_waveform_into(const Waveform& w, double t0,
                                         double duration, std::size_t n,
                                         std::vector<double>& buffer,
                                         SampleMode mode) {
    XYSIG_EXPECTS(duration > 0.0);
    XYSIG_EXPECTS(n >= 2);
    // Closed-form waveforms sample through the flattened tone-table kernel
    // (fused branch-free pass, no per-sample virtual dispatch); in exact
    // mode the values are bit-identical to the loop below, which remains
    // the path for PWL/pulse/custom waveforms (those ignore `mode` — the
    // fast_math polynomial only ever replaces tone-table sines). The
    // per-thread scratch keeps the batch engine's two recompilations per
    // CUT evaluation allocation-free.
    thread_local kernels::CompiledWaveform compiled;
    if (kernels::CompiledWaveform::compile_into(w, compiled)) {
        compiled.sample_into(t0, duration, n, buffer, mode);
        return;
    }
    const double dt = duration / static_cast<double>(n);
    buffer.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        buffer[i] = w.value(t0 + static_cast<double>(i) * dt);
}

double SampledSignal::time_at(std::size_t i) const {
    XYSIG_EXPECTS(i < samples_.size());
    return start_time_ + static_cast<double>(i) * dt_;
}

double SampledSignal::operator[](std::size_t i) const {
    XYSIG_EXPECTS(i < samples_.size());
    return samples_[i];
}

double SampledSignal::value_at(double t) const {
    XYSIG_EXPECTS(!samples_.empty());
    const double pos = (t - start_time_) / dt_;
    if (pos <= 0.0)
        return samples_.front();
    if (pos >= static_cast<double>(samples_.size() - 1))
        return samples_.back();
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    return samples_[i] + frac * (samples_[i + 1] - samples_[i]);
}

double SampledSignal::rms() const {
    XYSIG_EXPECTS(!samples_.empty());
    double acc = 0.0;
    for (double s : samples_)
        acc += s * s;
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampledSignal::min() const {
    XYSIG_EXPECTS(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampledSignal::max() const {
    XYSIG_EXPECTS(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

SampledSignal SampledSignal::slice_time(double t_begin, double t_end) const {
    XYSIG_EXPECTS(t_end > t_begin);
    const std::size_t n = samples_.size();
    const auto time_of = [this](std::size_t i) {
        return start_time_ + static_cast<double>(i) * dt_;
    };
    // The kept range is contiguous (times are monotone), so compute the
    // index bounds arithmetically, then nudge by at most a step or two so
    // the boundary samples satisfy exactly the same floating-point
    // predicate (t >= t_begin && t < t_end) the previous full scan applied.
    const auto first_index_at_or_after = [&](double t_limit, std::size_t lo) {
        const double pos = std::ceil((t_limit - start_time_) / dt_);
        std::size_t i = lo;
        if (pos > static_cast<double>(lo))
            i = pos >= static_cast<double>(n) ? n : static_cast<std::size_t>(pos);
        while (i > lo && time_of(i - 1) >= t_limit)
            --i;
        while (i < n && time_of(i) < t_limit)
            ++i;
        return i;
    };
    const std::size_t first = first_index_at_or_after(t_begin, 0);
    const std::size_t end = first_index_at_or_after(t_end, first);
    XYSIG_ENSURES(end > first);
    std::vector<double> out(samples_.begin() + static_cast<std::ptrdiff_t>(first),
                            samples_.begin() + static_cast<std::ptrdiff_t>(end));
    return SampledSignal(time_of(first), dt_, std::move(out));
}

void SampledSignal::add_white_noise(Rng& rng, double sigma) {
    XYSIG_EXPECTS(sigma >= 0.0);
    for (double& s : samples_)
        s += rng.normal(0.0, sigma);
}

XyTrace::XyTrace(SampledSignal x, SampledSignal y) : x_(std::move(x)), y_(std::move(y)) {
    XYSIG_EXPECTS(x_.size() == y_.size());
    XYSIG_EXPECTS(x_.size() >= 2);
    // xylint: exact-compare(contract: both channels are sampled on the identical grid, bit for bit)
    XYSIG_EXPECTS(x_.dt() == y_.dt());
    // xylint: exact-compare(contract: both channels start at the identical instant, bit for bit)
    XYSIG_EXPECTS(x_.start_time() == y_.start_time());
}

XyTrace::Box XyTrace::bounding_box() const {
    return Box{x_.min(), x_.max(), y_.min(), y_.max()};
}

void XyTrace::add_white_noise(Rng& rng, double sigma) {
    x_.add_white_noise(rng, sigma);
    y_.add_white_noise(rng, sigma);
}

} // namespace xysig
