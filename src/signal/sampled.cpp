#include "signal/sampled.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/rng.h"

namespace xysig {

SampledSignal::SampledSignal(double start_time, double dt, std::vector<double> samples)
    : start_time_(start_time), dt_(dt), samples_(std::move(samples)) {
    XYSIG_EXPECTS(dt > 0.0);
}

SampledSignal SampledSignal::from_waveform(const Waveform& w, double t0,
                                           double duration, std::size_t n) {
    XYSIG_EXPECTS(duration > 0.0);
    XYSIG_EXPECTS(n >= 2);
    const double dt = duration / static_cast<double>(n);
    std::vector<double> samples;
    sample_waveform_into(w, t0, duration, n, samples);
    return SampledSignal(t0, dt, std::move(samples));
}

void SampledSignal::sample_waveform_into(const Waveform& w, double t0,
                                         double duration, std::size_t n,
                                         std::vector<double>& buffer) {
    XYSIG_EXPECTS(duration > 0.0);
    XYSIG_EXPECTS(n >= 2);
    const double dt = duration / static_cast<double>(n);
    buffer.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        buffer[i] = w.value(t0 + static_cast<double>(i) * dt);
}

double SampledSignal::time_at(std::size_t i) const {
    XYSIG_EXPECTS(i < samples_.size());
    return start_time_ + static_cast<double>(i) * dt_;
}

double SampledSignal::operator[](std::size_t i) const {
    XYSIG_EXPECTS(i < samples_.size());
    return samples_[i];
}

double SampledSignal::value_at(double t) const {
    XYSIG_EXPECTS(!samples_.empty());
    const double pos = (t - start_time_) / dt_;
    if (pos <= 0.0)
        return samples_.front();
    if (pos >= static_cast<double>(samples_.size() - 1))
        return samples_.back();
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    return samples_[i] + frac * (samples_[i + 1] - samples_[i]);
}

double SampledSignal::rms() const {
    XYSIG_EXPECTS(!samples_.empty());
    double acc = 0.0;
    for (double s : samples_)
        acc += s * s;
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampledSignal::min() const {
    XYSIG_EXPECTS(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampledSignal::max() const {
    XYSIG_EXPECTS(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

SampledSignal SampledSignal::slice_time(double t_begin, double t_end) const {
    XYSIG_EXPECTS(t_end > t_begin);
    std::vector<double> out;
    double new_start = t_begin;
    bool first = true;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const double t = time_at(i);
        if (t >= t_begin && t < t_end) {
            if (first) {
                new_start = t;
                first = false;
            }
            out.push_back(samples_[i]);
        }
    }
    XYSIG_ENSURES(!out.empty());
    return SampledSignal(new_start, dt_, std::move(out));
}

void SampledSignal::add_white_noise(Rng& rng, double sigma) {
    XYSIG_EXPECTS(sigma >= 0.0);
    for (double& s : samples_)
        s += rng.normal(0.0, sigma);
}

XyTrace::XyTrace(SampledSignal x, SampledSignal y) : x_(std::move(x)), y_(std::move(y)) {
    XYSIG_EXPECTS(x_.size() == y_.size());
    XYSIG_EXPECTS(x_.size() >= 2);
    XYSIG_EXPECTS(x_.dt() == y_.dt());
    XYSIG_EXPECTS(x_.start_time() == y_.start_time());
}

XyTrace::Box XyTrace::bounding_box() const {
    return Box{x_.min(), x_.max(), y_.min(), y_.max()};
}

void XyTrace::add_white_noise(Rng& rng, double sigma) {
    x_.add_white_noise(rng, sigma);
    y_.add_white_noise(rng, sigma);
}

} // namespace xysig
