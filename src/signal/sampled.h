#ifndef XYSIG_SIGNAL_SAMPLED_H
#define XYSIG_SIGNAL_SAMPLED_H

/// \file sampled.h
/// Uniformly sampled signals — the discrete representation flowing between
/// the CUT simulation, the monitor bank and the capture unit.

#include <span>
#include <vector>

#include "signal/sample_mode.h"
#include "signal/waveform.h"

namespace xysig {
class Rng;

/// A uniformly sampled real signal: samples[i] is the value at
/// t = start_time + i * dt.
class SampledSignal {
public:
    SampledSignal() = default;

    /// Takes ownership of the samples. dt > 0.
    SampledSignal(double start_time, double dt, std::vector<double> samples);

    /// Samples a waveform on [t0, t0 + duration) with n samples (endpoint
    /// excluded so that consecutive periods concatenate seamlessly).
    static SampledSignal from_waveform(const Waveform& w, double t0,
                                       double duration, std::size_t n);

    /// Same sampling arithmetic as from_waveform, but written into an
    /// existing buffer (resized to n). Batch evaluation uses this to reuse
    /// per-thread trace buffers instead of reallocating them per sample.
    ///
    /// mode selects the sine evaluation for closed-form waveforms (see
    /// SampleMode). Waveforms that do not compile into a tone table
    /// (PWL, pulse, custom) always take the exact virtual loop — for
    /// them fast_math is a no-op by contract.
    static void sample_waveform_into(const Waveform& w, double t0,
                                     double duration, std::size_t n,
                                     std::vector<double>& buffer,
                                     SampleMode mode = SampleMode::exact);

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double dt() const noexcept { return dt_; }
    [[nodiscard]] double start_time() const noexcept { return start_time_; }
    [[nodiscard]] double duration() const noexcept {
        return dt_ * static_cast<double>(samples_.size());
    }
    [[nodiscard]] double time_at(std::size_t i) const;
    [[nodiscard]] double operator[](std::size_t i) const;
    [[nodiscard]] std::span<const double> samples() const noexcept { return samples_; }
    [[nodiscard]] std::span<double> mutable_samples() noexcept { return samples_; }

    /// Linear interpolation at arbitrary time t inside the sampled span;
    /// clamps to the first/last sample outside it.
    [[nodiscard]] double value_at(double t) const;

    /// Root-mean-square of the samples.
    [[nodiscard]] double rms() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

    /// New signal keeping samples with time in [t_begin, t_end).
    [[nodiscard]] SampledSignal slice_time(double t_begin, double t_end) const;

    /// Adds white Gaussian noise of the given sigma in place. The paper's
    /// robustness study uses null-mean noise with 3*sigma = 15 mV.
    void add_white_noise(Rng& rng, double sigma);

private:
    double start_time_ = 0.0;
    double dt_ = 1.0;
    std::vector<double> samples_;
};

/// An (x(t), y(t)) pair sampled on a common time base — the Lissajous
/// trajectory observed by the monitor bank.
class XyTrace {
public:
    /// Both signals must share start time, dt and length.
    XyTrace(SampledSignal x, SampledSignal y);

    [[nodiscard]] const SampledSignal& x() const noexcept { return x_; }
    [[nodiscard]] const SampledSignal& y() const noexcept { return y_; }
    [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
    [[nodiscard]] double dt() const noexcept { return x_.dt(); }
    [[nodiscard]] double start_time() const noexcept { return x_.start_time(); }
    [[nodiscard]] double time_at(std::size_t i) const { return x_.time_at(i); }

    /// Bounding box of the trace; used to auto-window plots.
    struct Box {
        double x_min, x_max, y_min, y_max;
    };
    [[nodiscard]] Box bounding_box() const;

    /// Adds independent white noise to both channels (paper Section IV-C).
    void add_white_noise(Rng& rng, double sigma);

private:
    SampledSignal x_;
    SampledSignal y_;
};

} // namespace xysig

#endif // XYSIG_SIGNAL_SAMPLED_H
