#include "signal/fft.h"

#include <cmath>

#include "common/contracts.h"
#include "common/math_util.h"

namespace xysig {

std::size_t next_pow2(std::size_t n) {
    XYSIG_EXPECTS(n >= 1);
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void fft_radix2(std::vector<std::complex<double>>& data, bool inverse) {
    const std::size_t n = data.size();
    XYSIG_EXPECTS(n >= 1 && (n & (n - 1)) == 0);
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[i + k];
                const std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto& c : data)
            c *= scale;
    }
}

std::complex<double> tone_component(const std::vector<double>& samples, double fs,
                                    double f) {
    XYSIG_EXPECTS(!samples.empty());
    XYSIG_EXPECTS(fs > 0.0);
    XYSIG_EXPECTS(f >= 0.0 && f < fs / 2.0);
    // Correlate with exp(-j w t); scale 2/N recovers the amplitude of a real
    // sinusoid (1/N for the DC component).
    std::complex<double> acc(0.0, 0.0);
    const double w = kTwoPi * f / fs;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double ph = w * static_cast<double>(i);
        acc += samples[i] * std::complex<double>(std::cos(ph), -std::sin(ph));
    }
    // xylint: exact-compare(DC bin selection; f is exactly 0.0 only when the caller asks for DC)
    const double scale = (f == 0.0 ? 1.0 : 2.0) / static_cast<double>(samples.size());
    return acc * scale;
}

std::vector<double> magnitude_spectrum(const std::vector<double>& samples) {
    XYSIG_EXPECTS(!samples.empty());
    const std::size_t n = next_pow2(samples.size());
    std::vector<std::complex<double>> buf(n, {0.0, 0.0});
    for (std::size_t i = 0; i < samples.size(); ++i)
        buf[i] = samples[i];
    fft_radix2(buf);
    std::vector<double> mags(n / 2 + 1);
    const double scale = 2.0 / static_cast<double>(samples.size());
    for (std::size_t k = 0; k <= n / 2; ++k) {
        const double s = (k == 0 || k == n / 2) ? scale / 2.0 : scale;
        mags[k] = std::abs(buf[k]) * s;
    }
    return mags;
}

} // namespace xysig
