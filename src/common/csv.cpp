#include "common/csv.h"

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig {

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::write_cells(std::span<const std::string> cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0)
            *out_ << ',';
        *out_ << csv_escape(cells[i]);
    }
    *out_ << '\n';
}

void CsvWriter::write_header(std::span<const std::string> names) {
    write_cells(names);
}

void CsvWriter::write_row(std::span<const std::string> cells) {
    write_cells(cells);
}

void CsvWriter::write_row(std::span<const double> values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(format_double(v, 9));
    write_cells(cells);
}

void CsvWriter::write_series(std::ostream& out, const std::string& x_name,
                             std::span<const double> xs, const std::string& y_name,
                             std::span<const double> ys) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    CsvWriter w(out);
    const std::string header[] = {x_name, y_name};
    w.write_header(header);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double row[] = {xs[i], ys[i]};
        w.write_row(row);
    }
}

} // namespace xysig
